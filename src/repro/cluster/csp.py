"""Hierarchical CSP: lower single-server collectives to cluster ops.

The collective sampler and feature loader are topology-agnostic — they
emit ``k x k`` :class:`~repro.sampling.ops.AllToAll` matrices over all
``k = S * G`` GPUs as if one NVLink mesh connected them.  On a cluster
there is no such mesh, so this pass rewrites every trace before pricing
(GSplit's two-stage shuffle, FastSample's hierarchical exchange):

- **AllToAll** becomes up to three barrier-separated ops:

  1. an intra-server all-to-all that delivers the within-server payload
     *and* funnels each GPU's cross-server bytes to its server's
     gateway GPU over NVLink (all servers shuffle concurrently — their
     link sets are disjoint, so one block-diagonal matrix prices them
     in parallel);
  2. one batched ``S x S`` :class:`~repro.sampling.ops.NetworkTransfer`
     moving the aggregated cross-server payload NIC-to-NIC;
  3. an intra-server scatter from each gateway to the final
     destination GPUs.

- **AllReduce** becomes the hierarchical ring: an intra-server
  reduce-scatter ring, a cross-server ring allreduce of the scattered
  shards (``2 (S-1)/S`` of the gradient through every NIC), and an
  intra-server allgather ring.

Every other op type is already cluster-correct on the block-diagonal
topology (per-GPU kernels, UVA/PCIe channels are per-server resources;
host work is handled by :class:`repro.cluster.engine.ClusterCostEngine`)
and passes through unchanged.  With ``num_servers == 1`` the input
trace is returned *as the same object* — the single-server oracle.

Byte conservation is asserted on every lowered AllToAll: the lowered
network matrix must carry exactly the cross-server payload of the
original matrix, and the intra-server stages exactly the within-server
payload plus the gateway funnel/scatter bytes.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.ops import (
    AllReduce,
    AllToAll,
    NetworkTransfer,
    OpTrace,
    ParallelGroup,
)
from repro.utils.errors import ReproError


def _split_alltoall(matrix: np.ndarray, num_servers: int,
                    gpus_per_server: int, label: str) -> list:
    """Rewrite one global all-to-all into the two-stage shuffle."""
    s, g = num_servers, gpus_per_server
    k = s * g
    m = np.asarray(matrix, dtype=np.float64)
    if m.shape != (k, k):
        raise ReproError(
            f"alltoall matrix is {m.shape}, expected ({k}, {k}) for "
            f"{s} servers x {g} GPUs"
        )
    blocks = m.reshape(s, g, s, g)
    server_ids = np.arange(s)
    within = blocks[server_ids, :, server_ids, :]  # (s, g, g) diagonal blocks
    cross_total = float(m.sum() - within.sum())
    if cross_total == 0.0:
        return [AllToAll(m, label=label)]

    # stage 1: within-server payload + funnel cross-server bytes to the
    # gateway (local GPU 0) of the sending server
    stage1 = np.zeros((s, g, s, g))
    stage1[server_ids, :, server_ids, :] = within
    outbound = blocks.sum(axis=3)  # (s, g, s): bytes from (s, g) to server s'
    outbound[server_ids, :, server_ids] = 0.0
    to_gateway = outbound.sum(axis=2)  # (s, g)
    stage1[server_ids, :, server_ids, 0] += to_gateway

    # stage 2: one batched NIC-to-NIC exchange of the aggregated payload
    net = blocks.sum(axis=(1, 3))  # (s, s)
    net[server_ids, server_ids] = 0.0

    # stage 3: each receiving gateway scatters to the destination GPUs
    inbound = blocks.sum(axis=1)  # (s, s', g'): bytes into (s', g') from s
    inbound[server_ids, server_ids, :] = 0.0
    from_gateway = inbound.sum(axis=0)  # (s', g')
    stage3 = np.zeros((s, g, s, g))
    stage3[server_ids, 0, server_ids, :] = from_gateway

    # byte conservation across the lowering (cheap, always on)
    if not np.isclose(net.sum(), cross_total):
        raise ReproError(
            f"{label}: network bytes {net.sum()} != cross-server "
            f"payload {cross_total}"
        )
    if not np.isclose(stage1.sum(), within.sum() + cross_total):
        raise ReproError(f"{label}: stage-1 bytes not conserved")
    if not np.isclose(stage3.sum(), cross_total):
        raise ReproError(f"{label}: stage-3 bytes not conserved")

    ops = [AllToAll(stage1.reshape(k, k), label=f"{label}-intra"),
           NetworkTransfer(net, label=f"{label}-net")]
    if from_gateway[:, 1:].any():
        ops.append(AllToAll(stage3.reshape(k, k), label=f"{label}-scatter"))
    return ops


def _ring_matrix(num_servers: int, gpus_per_server: int,
                 per_gpu_bytes: float) -> np.ndarray:
    """Block-diagonal intra-server ring: each GPU sends to its local
    successor (all servers ring concurrently on disjoint links)."""
    s, g = num_servers, gpus_per_server
    k = s * g
    m = np.zeros((k, k))
    for srv in range(s):
        for local in range(g):
            src = srv * g + local
            dst = srv * g + (local + 1) % g
            if src != dst:
                m[src, dst] = per_gpu_bytes
    return m


def _split_allreduce(op: AllReduce, num_servers: int,
                     gpus_per_server: int) -> list:
    """Hierarchical allreduce: intra reduce-scatter, NIC ring, allgather."""
    s, g = num_servers, gpus_per_server
    nbytes = float(op.nbytes)
    ops: list = []
    if g > 1:
        phase = _ring_matrix(s, g, (g - 1) / g * nbytes)
        ops.append(AllToAll(phase, label=f"{op.label}-reduce-scatter"))
    # every server pushes 2 (S-1)/S of the (shard-partitioned) gradient
    # through its NIC — the same ring volume a flat ring charges
    ring = np.zeros((s, s))
    per = 2.0 * (s - 1) / s * nbytes
    for srv in range(s):
        ring[srv, (srv + 1) % s] = per
    ops.append(NetworkTransfer(ring, label=f"{op.label}-net-ring"))
    if g > 1:
        phase = _ring_matrix(s, g, (g - 1) / g * nbytes)
        ops.append(AllToAll(phase, label=f"{op.label}-allgather"))
    return ops


def _lower_op(op, num_servers: int, gpus_per_server: int) -> list:
    if isinstance(op, AllToAll):
        return _split_alltoall(op.matrix, num_servers, gpus_per_server,
                               op.label)
    if isinstance(op, AllReduce):
        return _split_allreduce(op, num_servers, gpus_per_server)
    if isinstance(op, ParallelGroup):
        branches = tuple(
            tuple(
                out
                for branch_op in branch
                for out in _lower_op(branch_op, num_servers, gpus_per_server)
            )
            for branch in op.branches
        )
        return [ParallelGroup(branches, label=op.label)]
    return [op]


def lower_trace(trace: OpTrace, num_servers: int,
                gpus_per_server: int) -> OpTrace:
    """Lower a single-server op trace to hierarchical cluster form.

    Identity (the same :class:`OpTrace` object) when
    ``num_servers <= 1`` — the bit-identical single-server oracle.
    """
    if num_servers <= 1:
        return trace
    lowered = OpTrace()
    for op in trace:
        for out in _lower_op(op, num_servers, gpus_per_server):
            lowered.add(out)
    return lowered
