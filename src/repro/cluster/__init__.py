"""Multi-node cluster subsystem: one DSP server scaled to ``S``.

The paper's system is one multi-GPU server; this package grows it into
a cluster along the two production axes the ROADMAP names:

- **scale-up training/serving of one model** — ``num_nodes > 1`` on a
  :class:`~repro.core.config.RunConfig` builds the DSP stack across
  ``S`` servers: a block-diagonal NVLink topology with per-server NICs
  (:mod:`repro.hw.network`), a two-level server→GPU graph cut
  (:mod:`repro.cluster.partition`), hierarchical CSP shuffles that do
  the NVLink all-to-all first and one batched cross-server exchange
  after (:mod:`repro.cluster.csp`), and per-server host CPUs
  (:mod:`repro.cluster.engine`);
- **scale-out serving of many users** — ``R`` serving replicas behind a
  deterministic :class:`~repro.cluster.router.ClusterRouter`
  (random / least-loaded / partition-affinity policies) whose merged
  reports flow through the ordinary SLO tooling
  (:mod:`repro.cluster.serve`).

Both axes preserve the repo-wide contracts: a 1-node cluster is
bit-identical to the single-server system, and every cluster run is
byte-identical across ``--workers``.  See ``docs/cluster.md``.
"""

from repro.cluster.csp import lower_trace
from repro.cluster.engine import ClusterCostEngine
from repro.cluster.partition import (
    HierarchicalPartition,
    hierarchical_partition,
)
from repro.cluster.router import ROUTING_POLICIES, ClusterRouter, RouterConfig
from repro.cluster.serve import (
    affinity_map,
    knee_vs_replicas,
    replicated_qps_sweep,
    serve_replicated,
)

__all__ = [
    "lower_trace",
    "ClusterCostEngine",
    "HierarchicalPartition",
    "hierarchical_partition",
    "ROUTING_POLICIES",
    "ClusterRouter",
    "RouterConfig",
    "affinity_map",
    "knee_vs_replicas",
    "replicated_qps_sweep",
    "serve_replicated",
]
