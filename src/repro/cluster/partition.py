"""Hierarchical (server -> GPU) graph partitioning.

GSplit and FastSample both partition in two levels: a server-level cut
minimizes traffic over the slow cross-server network, then each
server's node set is cut again into per-GPU patches for the NVLink
tier.  This module reuses the flat partitioners of
:mod:`repro.graph.partition` at both levels:

1. cut the whole graph into ``S`` server parts;
2. cut the subgraph *induced* by each server's nodes into ``G`` local
   patches (cross-server edges are invisible to the inner cut — they
   are already paid for at the network tier);
3. map local patch ``g`` of server ``s`` to global GPU ``s * G + g``.

The result nests by construction and :meth:`HierarchicalPartition.validate`
re-checks the byte-conservation invariants: every node appears in
exactly one GPU patch, each server part is the disjoint union of its
``G`` patches, and total bytes are conserved across the two levels.

A single-server "cluster" degenerates to the flat partitioner
bit-identically: the server cut is the trivial all-zeros partition (no
RNG draws) and the one induced subgraph is the whole graph under the
identity mapping, so the inner cut sees exactly the arrays the flat
path sees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import (
    Partition,
    hash_partition,
    ldg_partition,
    metis_partition,
)
from repro.utils.errors import PartitionError


def _cut(graph: CSRGraph, num_parts: int, method: str, seed: int) -> Partition:
    """One flat cut, dispatched exactly like ``DSP._prepare`` does."""
    if method == "hash":
        return hash_partition(graph.num_nodes, num_parts, seed=seed)
    if method == "ldg":
        return ldg_partition(graph, num_parts, rng=seed)
    if method == "metis":
        return metis_partition(graph, num_parts, rng=seed)
    raise PartitionError(f"unknown partitioner {method!r}")


def _server_seed(seed: int, server: int) -> int:
    """Independent inner-cut seed per server (pure function of both)."""
    seq = np.random.SeedSequence(entropy=seed, spawn_key=(server,))
    return int(seq.generate_state(1, dtype=np.uint64)[0] % np.iinfo(np.int64).max)


@dataclass(frozen=True)
class HierarchicalPartition:
    """A nested two-level cut: ``S`` servers, ``G`` GPU patches each.

    ``server.assignment[v]`` is node ``v``'s server;
    ``gpu.assignment[v]`` is its global GPU in server-major order, so
    ``gpu.assignment // gpus_per_server == server.assignment``
    everywhere (the nesting invariant).
    """

    server: Partition
    gpu: Partition
    gpus_per_server: int

    def __post_init__(self) -> None:
        if self.gpus_per_server < 1:
            raise PartitionError("gpus_per_server must be positive")
        if self.gpu.num_parts != self.server.num_parts * self.gpus_per_server:
            raise PartitionError(
                "gpu partition must have num_servers * gpus_per_server parts"
            )
        if self.gpu.num_nodes != self.server.num_nodes:
            raise PartitionError("levels must partition the same node set")

    @property
    def num_servers(self) -> int:
        return self.server.num_parts

    @property
    def num_gpus(self) -> int:
        return self.gpu.num_parts

    def server_of_gpu(self, gpu: int) -> int:
        return gpu // self.gpus_per_server

    def imbalance(self) -> tuple[float, float]:
        """(server-level, GPU-level) max/ideal part-size ratios."""
        return self.server.imbalance(), self.gpu.imbalance()

    def validate(self, row_bytes: float = 1.0) -> None:
        """Byte-conservation audit of the two-level cut.

        Checks, with ``row_bytes`` bytes per node: (1) nesting — every
        node's GPU lies inside its server; (2) level conservation —
        each server part holds exactly the bytes of its ``G`` patches;
        (3) global conservation — both levels account for every byte of
        the graph exactly once.  Raises :class:`PartitionError` on any
        violation.
        """
        g = self.gpus_per_server
        if np.any(self.gpu.assignment // g != self.server.assignment):
            raise PartitionError("GPU patches do not nest inside server parts")
        server_bytes = self.server.part_sizes * row_bytes
        gpu_bytes = self.gpu.part_sizes * row_bytes
        rollup = gpu_bytes.reshape(self.num_servers, g).sum(axis=1)
        if not np.array_equal(rollup, server_bytes):
            raise PartitionError(
                f"bytes not conserved across levels: per-server "
                f"{server_bytes.tolist()} != patch roll-up {rollup.tolist()}"
            )
        total = self.server.num_nodes * row_bytes
        if not (server_bytes.sum() == gpu_bytes.sum() == total):
            raise PartitionError(
                f"bytes not conserved globally: graph={total}, "
                f"servers={server_bytes.sum()}, gpus={gpu_bytes.sum()}"
            )


def hierarchical_partition(
    graph: CSRGraph,
    num_servers: int,
    gpus_per_server: int,
    method: str = "metis",
    seed: int = 0,
) -> HierarchicalPartition:
    """Two-level cut of ``graph``: servers first, then per-GPU patches.

    ``method`` is applied at both levels ("metis" | "ldg" | "hash").
    The inner cuts use per-server seeds derived from ``seed`` so the
    result is a pure function of the arguments; with one server the
    inner seed is ``seed`` itself and the GPU level is bit-identical to
    the flat partitioner (the single-server oracle).
    """
    if num_servers < 1 or gpus_per_server < 1:
        raise PartitionError("need at least one server and one GPU per server")
    n = graph.num_nodes
    if num_servers == 1:
        gpu = _cut(graph, gpus_per_server, method, seed)
        server = Partition(np.zeros(n, dtype=np.int64), 1)
        return HierarchicalPartition(server, gpu, gpus_per_server)

    server = _cut(graph, num_servers, method, seed)
    assignment = np.zeros(n, dtype=np.int64)
    for s in range(num_servers):
        nodes = server.nodes_of(s)
        if len(nodes) < gpus_per_server:
            raise PartitionError(
                f"server {s} holds {len(nodes)} nodes — fewer than its "
                f"{gpus_per_server} GPUs; use fewer parts or a larger graph"
            )
        sub, old_ids = graph.induced_subgraph(nodes)
        local = _cut(sub, gpus_per_server, method, _server_seed(seed, s))
        assignment[old_ids] = s * gpus_per_server + local.assignment
    hp = HierarchicalPartition(
        server=server,
        gpu=Partition(assignment, num_servers * gpus_per_server),
        gpus_per_server=gpus_per_server,
    )
    hp.validate()
    return hp
