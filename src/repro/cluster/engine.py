"""Cost engine specialization for multi-server clusters.

The base :class:`~repro.core.cost.CostEngine` already prices every op
correctly on the block-diagonal cluster topology *except* host work: it
assumes one host CPU serving all GPUs, but a cluster has one host per
server and they work concurrently.  This subclass scopes host-work
contention to each server and routes :class:`NetworkTransfer` ops
through the cluster's NIC spec (so ethernet vs infiniband presets and
chaos ``LinkDegrade(link="network")`` factors apply).
"""

from __future__ import annotations

import numpy as np

from repro.core.cost import CostEngine, OpCost
from repro.hw.network import ClusterTopology
from repro.sampling.ops import HostWork
from repro.utils.errors import ConfigError


class ClusterCostEngine(CostEngine):
    """A :class:`CostEngine` spanning ``S`` servers.

    ``cluster.topology`` must be the block-diagonal
    ``cluster_topology.flat()`` view; the NIC becomes the engine's
    ``network`` spec so NetworkTransfer pricing uses the configured
    preset.  With ``num_servers == 1`` this is behaviourally identical
    to the base engine (the host override degenerates to one CPU).
    """

    def __init__(self, cluster, cluster_topology: ClusterTopology,
                 launch_scale: float = 1.0, backend: str = "nccl"):
        if cluster.num_gpus != cluster_topology.num_gpus:
            raise ConfigError(
                f"cluster has {cluster.num_gpus} GPUs but the topology "
                f"describes {cluster_topology.num_gpus}"
            )
        if backend != "nccl":
            raise ConfigError(
                "multi-server clusters support only the nccl backend "
                "(nvshmem needs a full NVLink mesh)"
            )
        super().__init__(cluster, launch_scale=launch_scale,
                         network=cluster_topology.nic, backend=backend)
        self.cluster_topology = cluster_topology
        self.num_servers = cluster_topology.num_servers

    def _host(self, op: HostWork) -> OpCost:
        """Each server's host CPU serves only its own GPUs; the stage
        lasts until the busiest host finishes (hosts run concurrently)."""
        cpu = self.cluster.cpu
        if op.kind == "sample":
            rate = cpu.num_threads * cpu.sample_rate_per_thread
        elif op.kind == "gather":
            rate = cpu.gather_rate
        else:
            raise ConfigError(f"unknown host work kind {op.kind!r}")
        tasks = np.asarray(op.tasks, dtype=np.float64)
        if tasks.shape != (self.k,):
            raise ConfigError(
                f"host work lists {tasks.shape} tasks for {self.k} GPUs"
            )
        per_server = tasks.reshape(
            self.num_servers, self.cluster_topology.gpus_per_server
        ).sum(axis=1)
        worst = float(per_server.max())
        dur = worst / rate if worst else 0.0
        return OpCost(
            label=op.label,
            per_gpu=np.zeros(self.k),
            stage=dur,
            threads=1,
            host=True,
        )

    def degraded(self, nvlink_factor: float = 1.0, pcie_factor: float = 1.0,
                 network_factor: float = 1.0) -> "ClusterCostEngine":
        """A what-if engine with slowed links (capacity planning)."""
        from dataclasses import replace

        topo = self.cluster_topology.degraded(
            nvlink_factor, pcie_factor, network_factor
        )
        return ClusterCostEngine(
            replace(self.cluster, topology=topo.flat()),
            topo,
            launch_scale=self.launch_scale,
        )
