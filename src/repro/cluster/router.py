"""Cluster-level request routing across serving replicas.

A production GNN service runs ``R`` identical replicas (each a full
multi-GPU server with the whole partitioned graph) behind a router.
:class:`ClusterRouter` assigns every incoming request to one replica
with a pluggable, fully deterministic policy:

- ``random`` — seeded uniform choice; the load-balancing baseline.
- ``least-loaded`` — route to the replica with the fewest requests
  routed to it within a trailing window (the router's in-flight
  estimate; real routers track outstanding requests the same way).
  Ties break toward the least-recently-used replica so cold replicas
  warm up round-robin.
- ``affinity`` — partition-affinity: all requests for the same seed
  node (and, given a partition, the same graph patch) land on the same
  replica, maximizing feature-cache and plan-cache locality.  This is
  the policy the knee-QPS scaling benchmark pins.

Determinism matters more than realism here: the executor contract says
cluster runs must be byte-identical across ``--workers``, so routing is
a pure function of ``(config, request stream)`` — the router never
observes simulated replica state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ConfigError
from repro.utils.rng import make_rng

ROUTING_POLICIES = ("random", "least-loaded", "affinity")


@dataclass(frozen=True)
class RouterConfig:
    """Routing policy and replica count for one cluster serving run."""

    num_replicas: int = 1
    policy: str = "affinity"
    seed: int = 0
    #: trailing window (seconds of arrival time) of routed requests the
    #: least-loaded policy counts as still in flight
    window_s: float = 0.05

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ConfigError("need at least one replica")
        if self.policy not in ROUTING_POLICIES:
            raise ConfigError(
                f"unknown routing policy {self.policy!r}; "
                f"available: {list(ROUTING_POLICIES)}"
            )
        if self.window_s <= 0:
            raise ConfigError("window_s must be positive")


class ClusterRouter:
    """Assigns requests to replicas; see module docstring for policies.

    ``affinity_map`` (optional, ``node id -> replica``) refines the
    affinity policy with a real partition — e.g. the serving system's
    patch owners — instead of the default ``node % R`` hashing.
    """

    def __init__(self, config: RouterConfig,
                 affinity_map: np.ndarray | None = None):
        self.config = config
        self.affinity_map = (
            None if affinity_map is None
            else np.asarray(affinity_map, dtype=np.int64)
        )
        if self.affinity_map is not None and len(self.affinity_map) and \
                self.affinity_map.max() >= config.num_replicas:
            raise ConfigError("affinity map routes past the last replica")
        self._rng = make_rng(config.seed)
        r = config.num_replicas
        self._recent: list[list[float]] = [[] for _ in range(r)]
        self._last_used = np.full(r, -np.inf)

    def route(self, request) -> int:
        """The replica for one request (stateful for least-loaded)."""
        cfg = self.config
        r = cfg.num_replicas
        if r == 1:
            return 0
        if cfg.policy == "random":
            return int(self._rng.integers(r))
        if cfg.policy == "affinity":
            if self.affinity_map is not None:
                return int(self.affinity_map[request.node])
            return int(request.node % r)
        # least-loaded: count requests routed within the trailing window
        now = request.arrival
        horizon = now - cfg.window_s
        counts = np.empty(r)
        for rep, recent in enumerate(self._recent):
            while recent and recent[0] < horizon:
                recent.pop(0)
            counts[rep] = len(recent)
        best = np.flatnonzero(counts == counts.min())
        # ties: least recently used first, then lowest id — cold
        # replicas absorb load round-robin instead of replica 0 always
        chosen = int(best[np.argmin(self._last_used[best])])
        self._recent[chosen].append(now)
        self._last_used[chosen] = now
        return chosen

    def assign(self, requests) -> np.ndarray:
        """Replica id per request, in arrival order."""
        return np.array([self.route(r) for r in requests], dtype=np.int64)
