"""Replicated serving: a workload split across replicas by the router.

Each replica is one full serving system (the same partitioned graph and
caches); the :class:`~repro.cluster.router.ClusterRouter` splits the
open-loop arrival stream into per-replica sub-streams, every replica
runs independently through the ordinary :class:`~repro.serve.GNNServer`
pipeline, and the per-request records are merged back — in the original
arrival order — into one :class:`~repro.serve.ServeReport`, so the SLO
accounting, knee picker and report tooling all apply unchanged.

Replicas are independent in the real system (separate servers), so
running them sequentially on the simulator and overlaying their
timelines is exact, not an approximation.  With one replica the run
*is* :func:`repro.serve.serve_once` — bit-identical, the single-replica
oracle.

The sweep fan-out follows the executor contract: each
``(workload, qps, router)`` point is a pure function of its run spec
(the router never observes simulated state), so results are
byte-identical across ``--workers``.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.router import ClusterRouter, RouterConfig
from repro.serve.service import GNNServer, ServeConfig
from repro.serve.stats import ServeReport, build_report
from repro.serve.sweep import (
    SweepPoint,
    _reseed_sampler,
    _reset_dynamic,
    _reset_plan_cache,
    max_sustainable_qps,
    serve_once,
)
from repro.serve.workload import Workload
from repro.utils.errors import ConfigError


def affinity_map(system, num_replicas: int) -> np.ndarray | None:
    """Node -> replica map that shards *within* every GPU patch.

    Each replica serves one contiguous slice of every patch, so a node
    always lands on the same replica (its plan cache and hot feature
    rows stay warm) while each replica's sub-stream still spreads over
    all GPU batchers.  Sharding by patch *owner* instead would send a
    whole patch's stream to one replica — and inside that replica every
    request would route to the owner GPU, so per-GPU load (and the
    knee) would never scale with the replica count.  ``None`` when the
    system has no owner partition (the router falls back to
    ``node % R`` hashing).
    """
    sampler = getattr(system, "sampler", None)
    owner_of = getattr(sampler, "owner_of", None)
    if owner_of is None or num_replicas <= 1:
        return None
    nodes = np.arange(system.data.num_nodes, dtype=np.int64)
    numbering = getattr(system, "numbering", None)
    seeds = numbering.old_to_new[nodes] if numbering is not None else nodes
    owners = np.asarray(owner_of(seeds), dtype=np.int64)
    sizes = np.bincount(owners)
    # rank of each seed inside its owner's patch (argsort is exact even
    # for a non-contiguous numbering)
    offset = np.empty_like(seeds)
    for o in range(len(sizes)):
        mask = owners == o
        offset[mask] = np.argsort(np.argsort(seeds[mask], kind="stable"),
                                  kind="stable")
    return (offset * num_replicas) // np.maximum(sizes[owners], 1)


def serve_replicated(
    system,
    workload: Workload,
    qps: float,
    router: RouterConfig | None = None,
    config: ServeConfig | None = None,
    tracer=None,
    metrics: bool = False,
    metrics_window_s: float | None = None,
) -> ServeReport:
    """Serve ``workload`` at one offered QPS across router-split replicas.

    With ``router.num_replicas == 1`` (or no router) this delegates to
    :func:`~repro.serve.sweep.serve_once` outright.  Otherwise each
    replica's sub-stream runs through a fresh :class:`GNNServer` (the
    sampler RNGs and plan cache are reset per replica, exactly like
    independent sweep points) and the merged report covers the whole
    request stream.  ``report.metrics`` holds the summed SLO accounting
    plus each replica's full summary under ``"replicas"``.
    """
    router = router if router is not None else RouterConfig()
    if router.num_replicas == 1:
        return serve_once(system, workload, qps, config=config, tracer=tracer,
                          metrics=metrics, metrics_window_s=metrics_window_s)
    if tracer is not None:
        raise ConfigError(
            "tracing a replicated run is ambiguous — trace one replica "
            "by serving its sub-stream with serve_once instead"
        )
    requests = workload.requests(qps)
    amap = affinity_map(system, router.num_replicas) \
        if router.policy == "affinity" else None
    assign = ClusterRouter(router, affinity_map=amap).assign(requests)

    cfg = config if config is not None else ServeConfig()
    merged = {}
    num_batches = 0
    hits = done = 0
    summaries = []
    controls = []
    for rep in range(router.num_replicas):
        sub = [r for r, a in zip(requests, assign) if a == rep]
        if not sub:
            summaries.append(None)
            controls.append(None)
            continue
        _reseed_sampler(system)
        # the dynamic cache policy mutates the shared feature store as
        # it follows drift — reset it like the plan cache, so every
        # replica (and every sweep point ordering) starts from the same
        # warmed placement
        _reset_dynamic(system)
        _reset_plan_cache(system)
        invariants = None
        if cfg.check_invariants:
            from repro.chaos.invariants import InvariantChecker

            invariants = InvariantChecker()
        registry = None
        if metrics:
            from repro.metrics import MetricsRegistry

            registry = MetricsRegistry(
                window_s=(metrics_window_s if metrics_window_s is not None
                          else cfg.slo_s)
            )
        server = GNNServer(system, cfg, metrics=registry,
                           invariants=invariants)
        rep_report = server.run(sub, offered_qps=qps)
        controls.append(rep_report.control)
        if invariants is not None:
            invariants.finalize()
        for rec in server.last_records:
            merged[rec.rid] = rec
        num_batches += server.last_num_batches
        acc = server.last_accuracy
        n_done = sum(1 for r in server.last_records
                     if not r.shed and r.prediction is not None)
        if n_done and not np.isnan(acc):
            hits += acc * n_done
            done += n_done
        if registry is not None:
            from repro.metrics import serve_summary

            summaries.append(serve_summary(registry, cfg.slo_s))
        else:
            summaries.append(None)

    ordered = [merged[r.rid] for r in requests]
    accuracy = hits / done if done else float("nan")
    report = build_report(system.name, qps, cfg.slo_s, ordered, num_batches,
                          accuracy=accuracy)
    if metrics:
        present = [s for s in summaries if s is not None]
        report.metrics = {
            "window_ms": present[0]["window_ms"] if present else None,
            "slo": {
                "slo_minutes_violated": sum(
                    s["slo"]["slo_minutes_violated"] for s in present
                ),
                "windows": [],
            },
            "replicas": summaries,
        }
    if cfg.controller is not None:
        # each replica ran its own tuner instance over its sub-stream;
        # the merged report carries all of their action logs
        report.control = {"replicas": controls}
    if cfg.tenancy is not None:
        from repro.control.tenancy import tenant_summary

        report.tenants = tenant_summary(ordered, cfg.slo_s)
    return report


def replicated_qps_sweep(
    system,
    workload: Workload,
    qps_values,
    router: RouterConfig | None = None,
    config: ServeConfig | None = None,
    workers: int = 1,
    metrics: bool = False,
    metrics_window_s: float | None = None,
) -> list[SweepPoint]:
    """A QPS sweep where every point serves through the cluster router.

    Mirrors :func:`~repro.serve.sweep.qps_sweep`: points fan out via
    :mod:`repro.parallel` (run kind ``cluster_point``) and results are
    byte-identical whichever worker executes them.
    """
    from repro.parallel import RunSpec, adopt_system, run_tasks

    values = sorted(float(q) for q in qps_values)
    if not values:
        raise ConfigError("need at least one QPS value")
    router = router if router is not None else RouterConfig()
    specs = [
        RunSpec(
            kind="cluster_point",
            label=f"qps{q:g}-r{router.num_replicas}",
            seed=system.config.seed,
            payload={
                "system": system.name,
                "config": system.config,
                "workload": workload,
                "qps": q,
                "router": router,
                "serve_config": config,
                "metrics": metrics,
                "metrics_window_s": metrics_window_s,
            },
        )
        for q in values
    ]
    if workers <= 1:
        adopt_system(system)
    reports = run_tasks(specs, workers=workers)
    return [SweepPoint(qps=q, report=r) for q, r in zip(values, reports)]


def knee_vs_replicas(
    system,
    workload: Workload,
    qps_values,
    replica_counts,
    policy: str = "affinity",
    config: ServeConfig | None = None,
    workers: int = 1,
    shed_tol: float = 0.01,
) -> dict[int, float]:
    """Knee QPS for each replica count (the scaling curve).

    Under partition-affinity routing each extra replica strictly
    shrinks every replica's sub-stream, so the knee is monotonically
    non-decreasing in the replica count — the property the benchmark
    suite pins.
    """
    knees: dict[int, float] = {}
    for r in sorted(int(c) for c in replica_counts):
        points = replicated_qps_sweep(
            system, workload, qps_values,
            router=RouterConfig(num_replicas=r, policy=policy,
                                seed=system.config.seed),
            config=config, workers=workers,
        )
        knees[r] = max_sustainable_qps(points, shed_tol=shed_tol)
    return knees
