"""Always-on simulation invariants (zero-cost when not installed).

The :class:`InvariantChecker` is an *oracle*: independent bookkeeping
that re-verifies properties the engine is supposed to guarantee by
construction.  Installed on a :class:`~repro.engine.simulator.Simulator`
(``sim.invariants = checker``), every hook site in the engine is guarded
by ``is not None`` so un-instrumented runs execute exactly the same
instructions as before this module existed.

Checked invariants:

``clock-monotone``
    Event times never decrease (the heap contract).
``queue-bound``
    No :class:`~repro.engine.resources.BoundedQueue` ever holds more
    than its capacity.
``ccc-launch-order``
    Every GPU launches collectives at contiguous, increasing positions
    of one shared global order (the CCC legality property that prevents
    Fig 8 deadlocks) — tracked independently of the LaunchGate's own
    state.
``link-bytes``
    Wire bytes accumulated event-by-event equal the analytic total
    recomputed from completed stages at the end of the run (degraded
    collective rounds excepted — their skipped bytes are accounted).
``no-lost-batches``
    Every (gpu, stage, batch) triple either completed or was explicitly
    recorded as lost to an injected fault; nothing vanishes silently.
``tenant-quota``
    Multi-tenant admission never holds more of a tenant's requests in
    one admission queue than that tenant's quota slots allow (checked
    at every admission, independently of the batcher's own counters).
``scale-safety``
    The replica autoscaler never routes a request to a replica after
    that replica was retired — scale-down drains, it never drops
    in-flight work.
"""

from __future__ import annotations

from repro.utils.errors import InvariantViolation

#: relative tolerance for byte-conservation reconciliation
BYTES_RTOL = 1e-9


class InvariantChecker:
    """Independent run-time verification of engine invariants.

    ``strict=True`` (the default) raises
    :class:`~repro.utils.errors.InvariantViolation` at the first broken
    invariant; ``strict=False`` collects violations for inspection
    (used by tests that assert a violation *is* detected).
    """

    def __init__(self, strict: bool = True, tracer=None, metrics=None):
        self.strict = strict
        self.tracer = tracer
        #: optional :class:`repro.metrics.MetricsRegistry` — violations
        #: land on the metrics timeline as annotated events
        self.metrics = metrics
        self.violations: list[str] = []
        self.checks = 0
        self._last_time = 0.0
        # independent CCC order bookkeeping
        self._ccc_order: dict = {}   # tag -> first-seen position
        self._ccc_next: dict = {}    # gpu -> next position expected
        # event-driven byte accumulation per link class
        self.observed_bytes: dict = {}
        #: completed (gpu, stage, batch) triples
        self.completed: set = set()
        #: (gpu, stage, batch) -> reason, for batches lost to faults
        self.lost: dict = {}
        #: replica -> retirement time (autoscaler scale-safety audit)
        self._retired: dict = {}
        self.finalized = False

    # -- failure path ----------------------------------------------------
    def _fail(self, invariant: str, message: str) -> None:
        text = f"[{invariant}] {message}"
        self.violations.append(text)
        if self.tracer is not None:
            self.tracer.instant("chaos", f"violation:{invariant}",
                                self._last_time, cat="chaos",
                                detail=message)
        if self.metrics is not None:
            self.metrics.event(self._last_time, f"violation:{invariant}",
                               detail=message)
        if self.strict:
            raise InvariantViolation(text, invariant=invariant)

    @property
    def clean(self) -> bool:
        return not self.violations

    # -- hooks (called by the engine, guarded by ``is not None``) --------
    def on_event_time(self, t: float) -> None:
        # Under the default bucketed scheduler this fires once per
        # *distinct* timestamp (a dispatch batch); under the legacy
        # heap core, once per event.  ``checks`` totals therefore
        # differ between cores — the monotonicity guarantee does not.
        self.checks += 1
        if t < self._last_time:
            self._fail(
                "clock-monotone",
                f"time went backwards: {self._last_time:g} -> {t:g}",
            )
        self._last_time = t

    def on_queue_push(self, name: str, depth: int, capacity: int) -> None:
        self.checks += 1
        if depth > capacity:
            self._fail(
                "queue-bound",
                f"queue {name} holds {depth} items > capacity {capacity}",
            )

    def on_launch(self, gpu: int, tag, position: int) -> None:
        self.checks += 1
        seen = self._ccc_order.setdefault(tag, position)
        if seen != position:
            self._fail(
                "ccc-launch-order",
                f"collective {tag!r} launched at position {position} on "
                f"gpu {gpu} but at {seen} elsewhere",
            )
        expected = self._ccc_next.get(gpu, 0)
        if position != expected:
            self._fail(
                "ccc-launch-order",
                f"gpu {gpu} launched {tag!r} at position {position}, "
                f"expected {expected}",
            )
        self._ccc_next[gpu] = expected + 1

    def on_bytes(self, link: str, nbytes: float) -> None:
        self.observed_bytes[link] = self.observed_bytes.get(link, 0.0) + nbytes

    def on_stage_done(self, gpu: int, stage: str, batch: int) -> None:
        self.completed.add((gpu, stage, batch))

    def note_lost(self, gpu: int, stage: str, batch: int,
                  reason: str) -> None:
        """Record a (gpu, stage, batch) that will never complete and why."""
        self.lost[(gpu, stage, batch)] = reason

    def on_admit(self, queue: str, tenant: str, pending: int,
                 quota: int) -> None:
        """Multi-tenant admission audit: called by the batcher after
        admitting a request, with the tenant's post-admission pending
        count and its quota ceiling for this queue."""
        self.checks += 1
        if pending > quota:
            self._fail(
                "tenant-quota",
                f"{queue}: tenant {tenant!r} holds {pending} pending "
                f"requests > quota {quota}",
            )

    def on_retire(self, replica: int, t: float) -> None:
        """Autoscaler audit: replica stops accepting work at ``t``."""
        self._retired[replica] = t

    def on_assign(self, replica: int, arrival: float) -> None:
        """Autoscaler audit: a request arriving at ``arrival`` was
        routed to ``replica`` — must precede any retirement."""
        self.checks += 1
        t = self._retired.get(replica)
        if t is not None and arrival > t:
            self._fail(
                "scale-safety",
                f"request at t={arrival:g}s routed to replica "
                f"{replica} retired at t={t:g}s",
            )

    # -- end-of-run reconciliation ---------------------------------------
    def finalize(self, expected_bytes: dict | None = None,
                 expected_batches=None) -> None:
        """Reconcile end-of-run accounting.

        ``expected_bytes`` maps link class -> analytically recomputed
        wire bytes; ``expected_batches`` is the full set of
        (gpu, stage, batch) triples the run was supposed to complete.
        """
        self.finalized = True
        if expected_bytes is not None:
            links = set(expected_bytes) | set(self.observed_bytes)
            for link in sorted(links):
                want = expected_bytes.get(link, 0.0)
                got = self.observed_bytes.get(link, 0.0)
                self.checks += 1
                if abs(got - want) > BYTES_RTOL * max(1.0, abs(want)):
                    self._fail(
                        "link-bytes",
                        f"{link}: observed {got:.6g} B != expected "
                        f"{want:.6g} B",
                    )
        if expected_batches is not None:
            expected = set(expected_batches)
            self.checks += 1
            overlap = self.completed & set(self.lost)
            if overlap:
                self._fail(
                    "no-lost-batches",
                    f"{len(overlap)} triples both completed and lost, "
                    f"e.g. {sorted(overlap)[0]}",
                )
            missing = expected - self.completed - set(self.lost)
            if missing:
                self._fail(
                    "no-lost-batches",
                    f"{len(missing)} unaccounted triples, "
                    f"e.g. {sorted(missing)[0]}",
                )

    # -- reporting -------------------------------------------------------
    def summary(self) -> dict:
        return {
            "checks": self.checks,
            "clean": self.clean,
            "violations": list(self.violations),
            "lost_batches": len(self.lost),
            "finalized": self.finalized,
        }


__all__ = ["BYTES_RTOL", "InvariantChecker"]
