"""The fault model: typed fault events and deterministic fault plans.

A :class:`FaultPlan` is a *schedule* of typed :class:`FaultEvent`
instances against the simulated substrate — GPU straggler slowdowns,
NVLink/PCIe degradation and transient flaps, cache-peer loss, pipeline
worker crashes and stalled queues, delayed/dropped collective
participants.  Plans are immutable, JSON-round-trippable, and (via
:meth:`FaultPlan.random`) derivable from a seed alone, so the same seed
always produces the same faults regardless of worker count or run
order.

Semantics (interpreted by :class:`~repro.chaos.injector.FaultInjector`):

==========================  ===========================================
:class:`GpuStraggler`       local kernels on ``gpu`` run ``slowdown``×
                            slower during ``[start, start+duration)``
:class:`LinkDegrade`        comm ops touching ``link`` run ``factor``×
                            slower during the window
:class:`LinkFlap`           comm ops touching ``link`` that start in
                            the window wait until it ends (blackout)
:class:`CachePeerLoss`      GPU ``gpu``'s feature-cache shard is gone
                            from ``start`` on; lookups fail over to the
                            UVA cold path (serving degradation)
:class:`WorkerCrash`        the ``stage`` worker on ``gpu`` exits at
                            the first batch boundary after ``start``
:class:`QueueStall`         the ``stage`` worker on ``gpu`` pauses for
                            ``duration`` before its next dequeue
:class:`CollectiveDelay`    collectives ``gpu`` joins in the window
                            arrive ``delay`` seconds late
:class:`CollectiveDrop`     ``gpu`` does not rendezvous during the
                            window (a hung participant; the CCC
                            watchdog must re-form or abort the round)
==========================  ===========================================

Fault windows are half-open ``[start, end)``; events without a
``duration`` are permanent.  All faults perturb *timing and placement*
only — functional outputs (samples, features, predictions) must stay
bit-identical under pure-slowdown plans, which the metamorphic tests
assert.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

import numpy as np

from repro.hw.comm import LINK_CLASSES
from repro.utils.errors import ConfigError

#: pipeline stages a worker fault can target
FAULT_STAGES = ("sample", "load", "train")


@dataclass(frozen=True)
class FaultEvent:
    """Base fault: a typed perturbation active over ``[start, end)``."""

    KIND = "fault"

    start: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigError(f"{self.KIND}: start must be >= 0")

    @property
    def end(self) -> float:
        duration = getattr(self, "duration", None)
        return float("inf") if duration is None else self.start + duration

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def to_dict(self) -> dict:
        return {"kind": self.KIND, **asdict(self)}


def _check_window(ev, permanent_ok: bool = False) -> None:
    duration = getattr(ev, "duration", None)
    if duration is None:
        if not permanent_ok:
            raise ConfigError(f"{ev.KIND}: duration required")
        return
    if duration <= 0:
        raise ConfigError(f"{ev.KIND}: duration must be positive")


@dataclass(frozen=True)
class GpuStraggler(FaultEvent):
    """GPU ``gpu`` computes ``slowdown``× slower during the window."""

    KIND = "gpu-straggler"

    gpu: int = 0
    duration: float = 1.0
    slowdown: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_window(self)
        if self.slowdown < 1.0:
            raise ConfigError("slowdown must be >= 1")


@dataclass(frozen=True)
class LinkDegrade(FaultEvent):
    """Traffic over ``link`` runs ``factor``× slower during the window."""

    KIND = "link-degrade"

    link: str = "nvlink"
    duration: float = 1.0
    factor: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_window(self)
        if self.link not in LINK_CLASSES:
            raise ConfigError(f"unknown link class {self.link!r}")
        if self.factor < 1.0:
            raise ConfigError("factor must be >= 1")


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """``link`` blacks out: comm ops starting in the window wait it out."""

    KIND = "link-flap"

    link: str = "nvlink"
    duration: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_window(self)
        if self.link not in LINK_CLASSES:
            raise ConfigError(f"unknown link class {self.link!r}")


@dataclass(frozen=True)
class CachePeerLoss(FaultEvent):
    """GPU ``gpu``'s partitioned feature-cache shard is lost (permanent)."""

    KIND = "cache-peer-loss"

    gpu: int = 0


@dataclass(frozen=True)
class WorkerCrash(FaultEvent):
    """The ``stage`` worker on ``gpu`` exits at its next batch boundary."""

    KIND = "worker-crash"

    gpu: int = 0
    stage: str = "sample"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.stage not in FAULT_STAGES:
            raise ConfigError(f"unknown stage {self.stage!r}")


@dataclass(frozen=True)
class QueueStall(FaultEvent):
    """The ``stage`` worker on ``gpu`` pauses ``duration`` mid-window."""

    KIND = "queue-stall"

    gpu: int = 0
    stage: str = "train"
    duration: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_window(self)
        if self.stage not in FAULT_STAGES:
            raise ConfigError(f"unknown stage {self.stage!r}")


@dataclass(frozen=True)
class CollectiveDelay(FaultEvent):
    """``gpu`` arrives ``delay`` late at collectives inside the window."""

    KIND = "collective-delay"

    gpu: int = 0
    duration: float = 1.0
    delay: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_window(self)
        if self.delay < 0:
            raise ConfigError("delay must be >= 0")


@dataclass(frozen=True)
class CollectiveDrop(FaultEvent):
    """``gpu`` does not rendezvous during the window (hung participant)."""

    KIND = "collective-drop"

    gpu: int = 0
    duration: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_window(self)


#: registry: kind string -> event class (for JSON round trips)
EVENT_KINDS = {
    cls.KIND: cls
    for cls in (
        GpuStraggler, LinkDegrade, LinkFlap, CachePeerLoss,
        WorkerCrash, QueueStall, CollectiveDelay, CollectiveDrop,
    )
}


def _event_sort_key(ev: FaultEvent) -> tuple:
    return (ev.start, ev.KIND, tuple(sorted(ev.to_dict().items())))


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, deterministic schedule of fault events.

    Events are normalized into ``(start, kind, fields)`` order at
    construction so two plans with the same events compare (and
    serialize) identically however they were built.
    """

    events: tuple = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise ConfigError(f"not a FaultEvent: {ev!r}")
        evs = tuple(sorted(self.events, key=_event_sort_key))
        object.__setattr__(self, "events", evs)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def fault_free(self) -> bool:
        return not self.events

    def of_kind(self, kind: str) -> tuple:
        return tuple(ev for ev in self.events if ev.KIND == kind)

    def kind_counts(self) -> dict:
        counts: dict = {}
        for ev in self.events:
            counts[ev.KIND] = counts.get(ev.KIND, 0) + 1
        return counts

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "events": [ev.to_dict() for ev in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        events = []
        for entry in data.get("events", ()):
            entry = dict(entry)
            kind = entry.pop("kind")
            try:
                ev_cls = EVENT_KINDS[kind]
            except KeyError:
                raise ConfigError(f"unknown fault kind {kind!r}") from None
            events.append(ev_cls(**entry))
        return cls(events=tuple(events), seed=data.get("seed"))

    # -- deterministic random plans --------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        num_gpus: int,
        horizon: float,
        max_events: int = 4,
        kinds: tuple = tuple(EVENT_KINDS),
    ) -> "FaultPlan":
        """A bounded random plan: a pure function of its arguments.

        Windows always end within ``2 * horizon`` and factors/slowdowns
        are bounded, so any simulation under a random plan terminates
        (the property tests rely on this).
        """
        if num_gpus < 1:
            raise ConfigError("need at least one GPU")
        if horizon <= 0:
            raise ConfigError("horizon must be positive")
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, max_events + 1))
        events = []
        for _ in range(n):
            kind = kinds[int(rng.integers(len(kinds)))]
            start = float(rng.uniform(0, horizon))
            duration = float(rng.uniform(0.05, 1.0) * horizon)
            gpu = int(rng.integers(num_gpus))
            link = LINK_CLASSES[int(rng.integers(2))]  # nvlink | pcie
            stage = FAULT_STAGES[int(rng.integers(len(FAULT_STAGES)))]
            if kind == "gpu-straggler":
                ev = GpuStraggler(start, gpu, duration,
                                  slowdown=float(rng.uniform(1.5, 8.0)))
            elif kind == "link-degrade":
                ev = LinkDegrade(start, link, duration,
                                 factor=float(rng.uniform(1.5, 10.0)))
            elif kind == "link-flap":
                ev = LinkFlap(start, link, duration=min(duration,
                                                        0.25 * horizon))
            elif kind == "cache-peer-loss":
                ev = CachePeerLoss(start, gpu)
            elif kind == "worker-crash":
                ev = WorkerCrash(start, gpu, stage)
            elif kind == "queue-stall":
                ev = QueueStall(start, gpu, stage,
                                duration=min(duration, 0.5 * horizon))
            elif kind == "collective-delay":
                ev = CollectiveDelay(start, gpu, duration,
                                     delay=float(rng.uniform(0, 0.2) * horizon))
            elif kind == "collective-drop":
                ev = CollectiveDrop(start, gpu,
                                    duration=min(duration, 0.5 * horizon))
            else:  # pragma: no cover - registry and branches in sync
                raise ConfigError(f"unknown fault kind {kind!r}")
            events.append(ev)
        return cls(events=tuple(events), seed=seed)


def _fault_fields(cls) -> tuple:  # pragma: no cover - introspection aid
    return tuple(f.name for f in fields(cls))


__all__ = [
    "FAULT_STAGES",
    "EVENT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "GpuStraggler",
    "LinkDegrade",
    "LinkFlap",
    "CachePeerLoss",
    "WorkerCrash",
    "QueueStall",
    "CollectiveDelay",
    "CollectiveDrop",
]
