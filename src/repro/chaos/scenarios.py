"""Named chaos scenarios and the resilience report behind ``repro chaos``.

Each scenario is a recipe that turns a *horizon* (the fault-free run's
simulated duration) and the GPU count into a :class:`FaultPlan`, so one
scenario stresses every system proportionally: a straggler window that
covers 60% of a DSP epoch also covers 60% of a DGL-UVA epoch, however
different their absolute epoch times are.

:func:`run_scenario` executes one ``(system, scenario)`` cell in two
passes over *fresh* systems (``run_epoch`` advances RNG state, so the
baseline and chaos passes must not share one):

1. a fault-free pass with the invariant checker attached, yielding the
   horizon and the baseline timing;
2. the chaos pass under the scenario's plan, with the full
   injector + watchdog + invariant stack.

A pass that wedges on a crashed worker surfaces as outcome
``"stalled"`` (the diagnosed :class:`~repro.utils.errors.PipelineStall`
— itself a chaos deliverable); anything the invariant oracle rejects
surfaces as ``"invariant-violation"``.

:func:`resilience_report` fans the ``systems × scenarios`` matrix out
through :mod:`repro.parallel` (run kind ``chaos_scenario``) and
assembles one JSON-safe report.  Every cell is a pure function of
``(system name, scenario, RunConfig)``, so the report is bit-identical
across ``--workers`` settings and repeated runs — the determinism
contract the chaos tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.chaos.faults import (
    CachePeerLoss,
    CollectiveDrop,
    FaultPlan,
    GpuStraggler,
    LinkDegrade,
    LinkFlap,
    WorkerCrash,
)
from repro.chaos.injector import FaultInjector
from repro.chaos.invariants import InvariantChecker
from repro.chaos.runtime import ChaosConfig, ChaosRuntime
from repro.utils.errors import ConfigError, InvariantViolation, PipelineStall


@dataclass(frozen=True)
class Scenario:
    """A named fault recipe: ``build(horizon, num_gpus) -> FaultPlan``."""

    name: str
    mode: str  # "train" (epoch replay) | "serve" (online serving)
    build: Callable
    blurb: str


def _straggler(h: float, k: int) -> FaultPlan:
    return FaultPlan((
        GpuStraggler(0.1 * h, gpu=0, duration=0.6 * h, slowdown=4.0),
    ))


def _link_degrade(h: float, k: int) -> FaultPlan:
    return FaultPlan((
        LinkDegrade(0.1 * h, link="nvlink", duration=0.5 * h, factor=4.0),
        LinkDegrade(0.1 * h, link="pcie", duration=0.5 * h, factor=4.0),
    ))


def _link_flap(h: float, k: int) -> FaultPlan:
    return FaultPlan((
        LinkFlap(0.25 * h, link="nvlink", duration=0.1 * h),
        LinkFlap(0.55 * h, link="pcie", duration=0.1 * h),
    ))


def _sampler_crash(h: float, k: int) -> FaultPlan:
    return FaultPlan((WorkerCrash(0.4 * h, gpu=k - 1, stage="sample"),))


def _trainer_crash(h: float, k: int) -> FaultPlan:
    return FaultPlan((WorkerCrash(0.4 * h, gpu=0, stage="train"),))


def _collective_drop(h: float, k: int) -> FaultPlan:
    return FaultPlan((
        CollectiveDrop(0.2 * h, gpu=min(1, k - 1), duration=0.5 * h),
    ))


def _cache_peer_loss(h: float, k: int) -> FaultPlan:
    return FaultPlan((CachePeerLoss(0.0, gpu=0),))


def _net_degrade(h: float, k: int) -> FaultPlan:
    return FaultPlan((
        LinkDegrade(0.1 * h, link="network", duration=0.5 * h, factor=4.0),
    ))


def _net_flap(h: float, k: int) -> FaultPlan:
    return FaultPlan((
        LinkFlap(0.3 * h, link="network", duration=0.15 * h),
    ))


#: the scenario registry, keyed by CLI name
SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario("straggler", "train", _straggler,
                 "GPU 0 computes 4x slower for 60% of the epoch"),
        Scenario("link-degrade", "train", _link_degrade,
                 "NVLink and PCIe run 4x slower for half the epoch"),
        Scenario("link-flap", "train", _link_flap,
                 "short NVLink then PCIe blackouts mid-epoch"),
        Scenario("sampler-crash", "train", _sampler_crash,
                 "the last GPU's sampler worker exits mid-epoch"),
        Scenario("trainer-crash", "train", _trainer_crash,
                 "GPU 0's trainer exits mid-epoch (expected stall)"),
        Scenario("collective-drop", "train", _collective_drop,
                 "one GPU stops joining collectives for half the epoch"),
        Scenario("cache-peer-loss", "serve", _cache_peer_loss,
                 "GPU 0's cache shard is lost; serving fails over to UVA"),
        Scenario("net-degrade", "train", _net_degrade,
                 "the cross-server NIC runs 4x slower for half the epoch"
                 " (no-op on a single server)"),
        Scenario("net-flap", "serve", _net_flap,
                 "a cross-server network blackout mid-run"
                 " (no-op on a single server)"),
    )
}


def _get(scenario: str) -> Scenario:
    try:
        return SCENARIOS[scenario]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {scenario!r}; known: {sorted(SCENARIOS)}"
        ) from None


def _inv_summary(inv: InvariantChecker | None) -> dict | None:
    return None if inv is None else inv.summary()


def run_scenario(
    system_name: str,
    scenario: str,
    config,
    chaos_config: ChaosConfig | None = None,
    max_batches: int | None = 4,
    requests: int = 64,
    qps: float = 2000.0,
    controller=None,
) -> dict:
    """One ``(system, scenario)`` cell -> a JSON-safe result dict.

    ``controller`` (a :class:`repro.control.ControllerConfig`) makes
    serve-mode cells run a *third* pass — same faults, tuner on — and
    adds ``slo_minutes_violated_controller`` / ``controller_actions``
    to the cell, quantifying what closing the loop buys per scenario.
    Train-mode cells ignore it (there is no batcher to tune).
    """
    sc = _get(scenario)
    if sc.mode == "serve":
        return _run_serve_scenario(system_name, sc, config, chaos_config,
                                   requests, qps, controller=controller)
    return _run_train_scenario(system_name, sc, config, chaos_config,
                               max_batches)


def _run_train_scenario(system_name: str, sc: Scenario, config,
                        chaos_config: ChaosConfig | None,
                        max_batches: int | None) -> dict:
    from repro.core import build_system

    baseline_sys = build_system(system_name, config)
    base_chaos = ChaosRuntime(FaultPlan(), chaos_config)
    baseline_sys.run_epoch(max_batches=max_batches, functional=False,
                           chaos=base_chaos)
    base = baseline_sys.last_pipeline_result
    # scenarios scale over the whole cluster, not one server's GPUs
    plan = sc.build(base.epoch_time, config.total_gpus)

    from repro.metrics import MetricsRegistry

    system = build_system(system_name, config)
    runtime = ChaosRuntime(plan, chaos_config)
    # ~20 windows over the fault-free horizon keeps per-window state
    # bounded however long (or short) the epoch simulates to
    registry = MetricsRegistry(window_s=max(base.epoch_time / 20.0, 1e-6))
    outcome, dead = "completed", ()
    try:
        system.run_epoch(max_batches=max_batches, functional=False,
                         chaos=runtime, metrics=registry)
    except PipelineStall as err:
        outcome, dead = "stalled", tuple(sorted(err.dead))
    except InvariantViolation:
        outcome = "invariant-violation"
    res = (getattr(system, "last_pipeline_result", None)
           if outcome == "completed" else None)
    out = {
        "system": system_name,
        "scenario": sc.name,
        "mode": "train",
        "outcome": outcome,
        "faults": plan.kind_counts(),
        "baseline_epoch_time": base.epoch_time,
        "epoch_time": None if res is None else res.epoch_time,
        "slowdown": (
            None if res is None or base.epoch_time <= 0
            else res.epoch_time / base.epoch_time
        ),
        "lost_batches": None if res is None else res.lost_batches,
        "degraded_rounds": None if res is None else res.degraded_rounds,
        "aborted_rounds": None if res is None else res.aborted_rounds,
        # fault activations / clearances / invariant violations that
        # landed on the chaos pass's metrics timeline
        "fault_events": len(registry.events),
        "invariants": _inv_summary(runtime.invariants),
        "baseline_invariants": _inv_summary(base_chaos.invariants),
    }
    if dead:
        out["dead_workers"] = list(dead)
    return out


def _serve_pass(system_name: str, config, serve_cfg, workload, qps: float,
                cc: ChaosConfig, plan: FaultPlan):
    """One serving run on a fresh system with windowed metrics
    attached; returns ``(report, invariants, slo_summary, registry)``.

    The SLO window equals the SLO itself, so "SLO minutes violated" is
    counted over windows as long as the latency bound being enforced.
    """
    from repro.core import build_system
    from repro.metrics import MetricsRegistry, SLOMonitor
    from repro.serve.service import GNNServer

    system = build_system(system_name, config)
    registry = MetricsRegistry(window_s=serve_cfg.slo_s)
    inv = (InvariantChecker(strict=cc.strict_invariants, metrics=registry)
           if cc.check_invariants else None)
    injector = None if plan.fault_free else FaultInjector(plan)
    report = GNNServer(system, serve_cfg, metrics=registry,
                       injector=injector,
                       invariants=inv).run(workload.requests(qps),
                                           offered_qps=qps)
    if inv is not None:
        inv.finalize()
    slo = SLOMonitor(registry, serve_cfg.slo_s).summary()
    return report, inv, slo, registry


def _run_serve_scenario(system_name: str, sc: Scenario, config,
                        chaos_config: ChaosConfig | None,
                        requests: int, qps: float,
                        controller=None) -> dict:
    import numpy as np

    from repro.core import build_system
    from repro.serve import ServeConfig, WorkloadConfig, make_workload

    cc = chaos_config if chaos_config is not None else ChaosConfig()
    serve_cfg = ServeConfig()
    wl_cfg = WorkloadConfig(num_requests=requests, seed=config.seed)
    # one workload shared by both passes, in the dataset's original ids
    probe = build_system(system_name, config)
    workload = make_workload(wl_cfg, np.arange(probe.base_dataset.num_nodes))
    del probe

    base, base_inv, base_slo, _ = _serve_pass(
        system_name, config, serve_cfg, workload, qps, cc, FaultPlan()
    )
    plan = sc.build(base.elapsed, config.total_gpus)
    outcome = "completed"
    report, inv, slo, registry = None, None, None, None
    try:
        report, inv, slo, registry = _serve_pass(
            system_name, config, serve_cfg, workload, qps, cc, plan
        )
    except InvariantViolation:
        outcome = "invariant-violation"
    ctl_report = ctl_slo = None
    if controller is not None and outcome == "completed":
        from dataclasses import replace as _dc_replace

        ctl_cfg = _dc_replace(serve_cfg, controller=controller)
        ctl_report, _, ctl_slo, _ = _serve_pass(
            system_name, config, ctl_cfg, workload, qps, cc, plan
        )
    out = {
        "system": system_name,
        "scenario": sc.name,
        "mode": "serve",
        "outcome": outcome,
        "faults": plan.kind_counts(),
        "baseline_elapsed": base.elapsed,
        "elapsed": None if report is None else report.elapsed,
        "slowdown": (
            None if report is None or base.elapsed <= 0
            else report.elapsed / base.elapsed
        ),
        "degraded": None if report is None else report.degraded,
        "completed": None if report is None else report.completed,
        "shed": None if report is None else report.shed,
        "p99_ms": None if report is None else report.p99 * 1e3,
        # windowed SLO health (p50/p95/p99 series + burn rates) of the
        # chaos pass, and the headline resilience figure of both passes
        "slo": slo,
        "slo_minutes_violated": (
            None if slo is None else slo["slo_minutes_violated"]
        ),
        "baseline_slo_minutes_violated": base_slo["slo_minutes_violated"],
        "fault_events": 0 if registry is None else len(registry.events),
        "invariants": _inv_summary(inv),
        "baseline_invariants": _inv_summary(base_inv),
    }
    if ctl_report is not None:
        # present only when the controller pass ran, so default-path
        # cell payloads stay byte-identical to pre-control outputs
        out["slo_minutes_violated_controller"] = (
            ctl_slo["slo_minutes_violated"]
        )
        out["controller_actions"] = sum(
            (ctl_report.control or {}).get("action_counts", {}).values()
        )
        out["controller_action_counts"] = (
            (ctl_report.control or {}).get("action_counts", {})
        )
        out["controller_shed"] = ctl_report.shed
    return out


def resilience_report(
    systems,
    scenarios,
    config,
    chaos_config: ChaosConfig | None = None,
    max_batches: int | None = 4,
    requests: int = 64,
    qps: float = 2000.0,
    workers: int = 1,
    controller=None,
) -> dict:
    """Run the ``systems × scenarios`` matrix; one JSON-safe report.

    Each cell is an independent :class:`~repro.parallel.RunSpec`
    (kind ``chaos_scenario``), so ``workers > 1`` fans the matrix out
    across processes with bit-identical results.  ``controller`` adds
    the with-controller pass to serve-mode cells (see
    :func:`run_scenario`).
    """
    from repro.parallel import RunSpec, run_tasks

    scenarios = list(scenarios)
    for name in scenarios:
        _get(name)  # fail fast on typos, before any simulation runs
    options = {
        "chaos_config": chaos_config,
        "max_batches": max_batches,
        "requests": requests,
        "qps": qps,
    }
    if controller is not None:
        options["controller"] = controller
    specs = [
        RunSpec(
            kind="chaos_scenario",
            label=f"{system}/{scenario}",
            seed=config.seed,
            payload={
                "system": system,
                "scenario": scenario,
                "config": config,
                "options": options,
            },
        )
        for system in systems
        for scenario in scenarios
    ]
    results = run_tasks(specs, workers=workers)

    by_system: dict = {}
    for res in results:
        by_system.setdefault(res["system"], {})[res["scenario"]] = res
    outcomes = [r["outcome"] for r in results]
    clean = all(
        (r.get("invariants") or {"clean": True})["clean"]
        and (r.get("baseline_invariants") or {"clean": True})["clean"]
        for r in results
    )
    return {
        "scenarios": scenarios,
        "systems": by_system,
        "summary": {
            "runs": len(results),
            "completed": outcomes.count("completed"),
            "stalled": outcomes.count("stalled"),
            "invariant_violations": outcomes.count("invariant-violation"),
            "invariants_clean": clean,
        },
    }


def format_report(payload: dict) -> str:
    """Render a resilience report as the ``repro chaos`` text table."""
    lines = [
        f"{'system':<10} {'scenario':<16} {'outcome':<20} {'slowdown':>9} "
        f"{'lost':>5} {'degr':>5} {'abrt':>5} {'SLO min':>8}  detail"
    ]
    for system, cells in payload["systems"].items():
        for scenario in payload["scenarios"]:
            r = cells[scenario]
            slow = r.get("slowdown")
            slow_s = "-" if slow is None else f"{slow:8.2f}x"
            lost = r.get("lost_batches")
            degr = (r.get("degraded_rounds") if r["mode"] == "train"
                    else r.get("degraded"))
            abrt = r.get("aborted_rounds")
            slo_min = r.get("slo_minutes_violated")
            slo_s = "-" if slo_min is None else f"{slo_min:8.4f}"
            detail = ""
            if r.get("dead_workers"):
                detail = "dead: " + ", ".join(r["dead_workers"])
            elif r["mode"] == "serve" and r.get("shed") is not None:
                detail = f"shed {r['shed']}"
            if "slo_minutes_violated_controller" in r:
                detail = (detail + " " if detail else "") + (
                    f"ctl SLO {r['slo_minutes_violated_controller']:.4f} "
                    f"({r.get('controller_actions', 0)} actions)"
                )
            lines.append(
                f"{system:<10} {scenario:<16} {r['outcome']:<20} "
                f"{slow_s:>9} "
                f"{'-' if lost is None else lost:>5} "
                f"{'-' if degr is None else degr:>5} "
                f"{'-' if abrt is None else abrt:>5} "
                f"{slo_s:>8}  {detail}"
            )
    s = payload["summary"]
    lines.append(
        f"\n{s['runs']} runs: {s['completed']} completed, "
        f"{s['stalled']} stalled, {s['invariant_violations']} invariant "
        f"violation(s); invariants "
        f"{'clean' if s['invariants_clean'] else 'DIRTY'}"
    )
    return "\n".join(lines)


__all__ = [
    "SCENARIOS",
    "Scenario",
    "format_report",
    "resilience_report",
    "run_scenario",
]
