"""Deterministic fault injection and simulation invariant checking.

The chaos layer perturbs the *simulated substrate* — GPU stragglers,
NVLink/PCIe degradation and flaps, cache-peer loss, pipeline worker
crashes, stalled queues, delayed/dropped collective participants —
through typed, seed-derivable :class:`FaultPlan` schedules, and audits
every run with an always-on :class:`InvariantChecker` (clock
monotonicity, per-link byte conservation, queue bounds, CCC
launch-order legality, no lost batches).

Entry points
------------
- :class:`FaultPlan` / the fault event classes — the fault model
  (:mod:`repro.chaos.faults`);
- :class:`FaultInjector` — interprets a plan for the engine
  (:mod:`repro.chaos.injector`);
- :class:`InvariantChecker` — the simulation oracle
  (:mod:`repro.chaos.invariants`);
- :class:`ChaosRuntime` — one run's wiring, threaded through
  ``TrainingSystem.run_epoch(chaos=...)`` (:mod:`repro.chaos.runtime`);
- :func:`run_scenario` / :func:`resilience_report` — the named
  scenario suite behind ``repro chaos``
  (:mod:`repro.chaos.scenarios`, imported lazily because it pulls in
  :mod:`repro.core`).

Determinism contract: every perturbation is a pure function of
``(plan, sim.now)``, so the same seed and plan produce bit-identical
resilience reports regardless of worker count, tracer presence or run
order — and a fault-free plan leaves the simulation's yield sequence
untouched (bit-identical to a run without the chaos layer).
"""

from __future__ import annotations

from repro.chaos.faults import (
    EVENT_KINDS,
    FAULT_STAGES,
    CachePeerLoss,
    CollectiveDelay,
    CollectiveDrop,
    FaultEvent,
    FaultPlan,
    GpuStraggler,
    LinkDegrade,
    LinkFlap,
    QueueStall,
    WorkerCrash,
)
from repro.chaos.injector import FaultInjector
from repro.chaos.invariants import BYTES_RTOL, InvariantChecker
from repro.chaos.runtime import ChaosConfig, ChaosRuntime

#: names resolved lazily from :mod:`repro.chaos.scenarios` (it imports
#: repro.core, which this package must not pull in eagerly)
_SCENARIO_EXPORTS = (
    "SCENARIOS",
    "Scenario",
    "format_report",
    "resilience_report",
    "run_scenario",
)


def __getattr__(name: str):
    if name in _SCENARIO_EXPORTS:
        from repro.chaos import scenarios

        return getattr(scenarios, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BYTES_RTOL",
    "EVENT_KINDS",
    "FAULT_STAGES",
    "CachePeerLoss",
    "ChaosConfig",
    "ChaosRuntime",
    "CollectiveDelay",
    "CollectiveDrop",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GpuStraggler",
    "InvariantChecker",
    "LinkDegrade",
    "LinkFlap",
    "QueueStall",
    "WorkerCrash",
    *_SCENARIO_EXPORTS,
]
