"""Deterministic fault injection against the simulated substrate.

A :class:`FaultInjector` interprets a :class:`~repro.chaos.faults.FaultPlan`
for one simulation run.  It is deliberately *query-based*: every answer
is a pure function of ``(plan, sim.now)``, so injection is independent
of event-callback ordering, worker count, and tracer presence — the
determinism contract the chaos acceptance tests assert.

The pipeline/serving replay loops consult the injector at well-defined
points (op start, batch boundary, collective join) and the injector
answers with multiplicative slowdowns, blackout waits, crash flags and
lost cache peers.  When a tracer is attached, :meth:`install` also
schedules one ``chaos`` instant per fault-window boundary so every
injected fault is visible on the trace timeline.
"""

from __future__ import annotations

from repro.chaos.faults import FaultPlan


class FaultInjector:
    """Interprets a fault plan for one simulation (see module doc)."""

    def __init__(self, plan: FaultPlan, tracer=None):
        self.plan = plan
        self.tracer = tracer
        self.sim = None
        ev = plan.events
        self._stragglers = [e for e in ev if e.KIND == "gpu-straggler"]
        self._degrades = [e for e in ev if e.KIND == "link-degrade"]
        self._flaps = [e for e in ev if e.KIND == "link-flap"]
        self._peer_losses = [e for e in ev if e.KIND == "cache-peer-loss"]
        self._crashes = {
            (e.gpu, e.stage): e.start
            for e in sorted(ev, key=lambda e: -e.start)
            if e.KIND == "worker-crash"
        }  # earliest crash wins (reverse sort + dict overwrite)
        self._stalls = [e for e in ev if e.KIND == "queue-stall"]
        self._delays = [e for e in ev if e.KIND == "collective-delay"]
        self._drops = [e for e in ev if e.KIND == "collective-drop"]
        #: static per-kind event counts (for the resilience report)
        self.injected = plan.kind_counts()

    # -- lifecycle -------------------------------------------------------
    def install(self, sim) -> "FaultInjector":
        """Bind to a simulator; emit trace instants (and metrics
        events, when a registry is attached) at fault boundaries."""
        self.sim = sim
        tracer = self.tracer if self.tracer is not None else sim.tracer
        if tracer is not None:
            for ev in self.plan.events:
                tracer.instant("chaos", f"inject:{ev.KIND}", ev.start,
                               cat="chaos", **ev.to_dict())
                if ev.end != float("inf"):
                    tracer.instant("chaos", f"clear:{ev.KIND}", ev.end,
                                   cat="chaos", kind=ev.KIND)
        metrics = getattr(sim, "metrics", None)
        if metrics is not None:
            for ev in self.plan.events:
                metrics.event(ev.start, f"inject:{ev.KIND}", **ev.to_dict())
                if ev.end != float("inf"):
                    metrics.event(ev.end, f"clear:{ev.KIND}", kind=ev.KIND)
        return self

    @property
    def now(self) -> float:
        return 0.0 if self.sim is None else self.sim.now

    def has_faults(self) -> bool:
        return not self.plan.fault_free

    # -- timing perturbations --------------------------------------------
    def compute_scale(self, gpu: int) -> float:
        """Local-kernel slowdown for ``gpu`` at the current time."""
        now = self.now
        scale = 1.0
        for ev in self._stragglers:
            if ev.gpu == gpu and ev.active(now):
                scale *= ev.slowdown
        return scale

    def comm_scale(self, gpu: int, cost) -> float:
        """Slowdown of a communication op driven by ``gpu``.

        The worst active degradation over the link classes the op
        actually moves bytes on, combined with the driving GPU's own
        straggler slowdown (a slow GPU's comm kernel is slow too).
        """
        now = self.now
        scale = self.compute_scale(gpu)
        link_bytes = cost.link_bytes()
        for ev in self._degrades:
            if ev.active(now) and link_bytes.get(ev.link):
                scale = max(scale, ev.factor)
        return scale

    def blackout_wait(self, cost) -> float:
        """Seconds a comm op starting now waits for flapped links."""
        now = self.now
        until = 0.0
        link_bytes = cost.link_bytes()
        for ev in self._flaps:
            if ev.active(now) and link_bytes.get(ev.link):
                until = max(until, ev.end)
        return max(0.0, until - now)

    # -- worker faults ----------------------------------------------------
    def crashed(self, gpu: int, stage: str) -> bool:
        """Has the ``stage`` worker on ``gpu`` crashed by now?"""
        t = self._crashes.get((gpu, stage))
        return t is not None and t <= self.now

    def queue_stall(self, gpu: int, stage: str) -> float:
        """Pause the ``stage`` worker on ``gpu`` must take before its
        next dequeue (0.0 when no stall window is active)."""
        now = self.now
        wait = 0.0
        for ev in self._stalls:
            if ev.gpu == gpu and ev.stage == stage and ev.active(now):
                wait = max(wait, ev.end - now)
        return wait

    # -- collective participation -----------------------------------------
    def collective_delay(self, gpu: int) -> float:
        now = self.now
        delay = 0.0
        for ev in self._delays:
            if ev.gpu == gpu and ev.active(now):
                delay = max(delay, ev.delay)
        return delay

    def collective_dropped(self, gpu: int) -> bool:
        now = self.now
        return any(ev.gpu == gpu and ev.active(now) for ev in self._drops)

    def drop_wait(self, gpu: int) -> float:
        """How long a dropped participant stays hung from now on."""
        now = self.now
        until = now
        for ev in self._drops:
            if ev.gpu == gpu and ev.active(now):
                until = max(until, ev.end)
        return until - now

    # -- cache degradation -------------------------------------------------
    def lost_peers(self) -> frozenset:
        """GPU ids whose feature-cache shard is gone at the current time."""
        now = self.now
        return frozenset(
            ev.gpu for ev in self._peer_losses if ev.start <= now
        )


__all__ = ["FaultInjector"]
