"""Per-run chaos wiring: plan -> injector + invariant checker.

:class:`ChaosRuntime` is the object callers thread through
``TrainingSystem.run_epoch(chaos=...)`` (or hand to
:class:`~repro.core.pipeline.PipelineRunner` via
``pipeline_kwargs()``).  It is deliberately *one-shot*: the invariant
checker accumulates per-run state, so build a fresh runtime for every
simulated run.

When the plan is fault-free the runtime sets ``injector=None`` and
(unless a timeout is forced) arms no collective watchdog, so the
pristine replay path runs unchanged — the bit-identity guarantee the
property tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaos.faults import FaultPlan
from repro.chaos.injector import FaultInjector
from repro.chaos.invariants import InvariantChecker


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of the fault-response side.

    ``collective_timeout=None`` lets the pipeline auto-scale the
    watchdog timeout to its costliest batch; ``check_invariants``
    toggles the always-on invariant oracle, and ``strict_invariants``
    chooses raise-on-violation vs collect-for-inspection.
    """

    collective_timeout: float | None = None
    max_retries: int = 3
    backoff: float | None = None
    check_invariants: bool = True
    strict_invariants: bool = True


class ChaosRuntime:
    """One run's worth of fault injection + invariant auditing."""

    def __init__(self, plan: FaultPlan | None = None,
                 config: ChaosConfig | None = None, tracer=None):
        self.plan = plan if plan is not None else FaultPlan()
        self.config = config if config is not None else ChaosConfig()
        self.injector = (
            None if self.plan.fault_free
            else FaultInjector(self.plan, tracer=tracer)
        )
        self.invariants = (
            InvariantChecker(strict=self.config.strict_invariants,
                             tracer=tracer)
            if self.config.check_invariants else None
        )

    def pipeline_kwargs(self) -> dict:
        """Keyword arguments for :class:`~repro.core.pipeline.PipelineRunner`."""
        return {
            "injector": self.injector,
            "invariants": self.invariants,
            "collective_timeout": self.config.collective_timeout,
            "max_retries": self.config.max_retries,
            "backoff": self.config.backoff,
        }


__all__ = ["ChaosConfig", "ChaosRuntime"]
