"""Run configuration shared by all systems."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.errors import ConfigError

#: the paper's default sampling fan-out (§7.1)
DEFAULT_FANOUT = (15, 10, 5)


@dataclass(frozen=True)
class RunConfig:
    """Everything that defines one training run.

    The paper's workload (§7.1) is a 3-layer GraphSAGE, hidden 256,
    per-GPU batch 1024, fan-out [15, 10, 5].  The library defaults keep
    everything except the per-GPU batch, which shrinks with the
    ~1000x-smaller datasets (fixed per-batch overheads are rescaled
    accordingly, see :class:`repro.core.cost.CostEngine`).
    """

    dataset: str = "products"
    num_gpus: int = 8
    model: str = "sage"  # "sage" | "gcn" | "gat"
    hidden_dim: int = 256  # the paper's hidden width (§7.1)
    batch_size: int = 32  # seeds per GPU per iteration
    fanout: tuple[int, ...] = DEFAULT_FANOUT
    scheme: str = "node"
    biased: bool = False
    replace: bool = True
    lr: float = 3e-3
    dropout: float = 0.0
    queue_capacity: int = 2  # paper §5: capacity 2 suffices
    pipeline: bool = True
    ccc: bool = True  # centralized communication coordination
    #: worker instances per GPU for the sampler/loader stages; DSP uses
    #: one of each (the multi-instance alternative costs memory and
    #: contention, §5) — the ablation benchmark sweeps these
    sampler_workers: int = 1
    loader_workers: int = 1
    hot_policy: str = "degree"
    #: graph partitioner for DSP's patches: "metis" (default), "ldg"
    #: (one-pass streaming) or "hash" (the locality-free control)
    partitioner: str = "metis"
    #: inter-GPU communication library (paper §3.2): "nccl" works on any
    #: topology; "nvshmem" has lower launch overhead but needs a full
    #: NVLink mesh and is rejected on topologies without one
    comm_backend: str = "nccl"
    #: per-GPU feature-cache budget in bytes; None = whatever memory
    #: remains after the topology (DSP) or a Quiver-like default
    feature_cache_bytes: float | None = None
    #: per-GPU topology budget in bytes; None = cache the whole patch
    #: if it fits (Fig 10 sweeps this against feature_cache_bytes)
    topology_cache_bytes: float | None = None
    #: servers in the cluster; ``num_gpus`` counts GPUs *per server*, so
    #: the total GPU count is ``num_nodes * num_gpus``.  Only DSP-family
    #: systems support ``num_nodes > 1`` (see ``docs/cluster.md``)
    num_nodes: int = 1
    #: cross-server NIC preset for multi-node runs: "ethernet" (100 GbE)
    #: or "infiniband" (HDR); ignored when ``num_nodes == 1``
    nic: str = "ethernet"
    #: access-frequency dynamic feature caching (DSP family only; see
    #: ``docs/caching.md``) — off by default, in which case the cache
    #: is the paper's static layout-time placement
    dynamic_cache: bool = False
    #: loader calls per dynamic promotion/demotion window
    cache_window: int = 8
    #: EWMA weight of the newest window's request counts
    cache_ewma: float = 0.5
    #: max frontier-prefetch promotions per patch per load (0 = off)
    cache_prefetch: int = 32
    #: GNS-style cached-node sampling bias (0 = off, bit-identical to
    #: a sampler without the hook)
    cache_bias: float = 0.0
    #: cold-path feature codec: "none" | "fp16" | "int8"
    compress: str = "none"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigError("need at least one GPU")
        if self.model not in ("sage", "gcn", "gat"):
            raise ConfigError(f"unknown model {self.model!r}")
        if self.batch_size < 1:
            raise ConfigError("batch_size must be positive")
        if self.hidden_dim < 1:
            raise ConfigError("hidden_dim must be positive")
        if self.queue_capacity < 1:
            raise ConfigError("queue_capacity must be positive")
        if not self.fanout:
            raise ConfigError("fanout must be non-empty")
        if self.partitioner not in ("metis", "ldg", "hash"):
            raise ConfigError(f"unknown partitioner {self.partitioner!r}")
        if self.sampler_workers < 1 or self.loader_workers < 1:
            raise ConfigError("worker counts must be positive")
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be positive")
        if self.nic not in ("ethernet", "infiniband"):
            raise ConfigError(f"unknown nic {self.nic!r}")
        if self.cache_window < 1:
            raise ConfigError("cache_window must be positive")
        if not 0.0 < self.cache_ewma <= 1.0:
            raise ConfigError("cache_ewma must be in (0, 1]")
        if self.cache_prefetch < 0:
            raise ConfigError("cache_prefetch must be non-negative")
        if self.cache_bias < 0:
            raise ConfigError("cache_bias must be non-negative")
        if self.compress not in ("none", "fp16", "int8"):
            raise ConfigError(f"unknown codec {self.compress!r}")
        if self.num_nodes > 1 and self.comm_backend == "nvshmem":
            raise ConfigError(
                "nvshmem needs a full NVLink mesh; multi-node clusters "
                "have no cross-server NVLink — use comm_backend='nccl'"
            )

    @property
    def total_gpus(self) -> int:
        """GPUs across the whole cluster (``num_nodes * num_gpus``)."""
        return self.num_nodes * self.num_gpus

    @property
    def num_layers(self) -> int:
        return len(self.fanout)

    def with_(self, **kwargs) -> "RunConfig":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **kwargs)
