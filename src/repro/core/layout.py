"""DSP data-layout planning (paper §3.1, §6; Fig 10).

Decides, per GPU, what lives in device memory:

1. a **workspace** slice for activations and transient buffers,
2. the GPU's **graph patch** — or, when the patch exceeds its budget,
   the adjacency lists of the patch's hottest nodes, with the cold
   remainder left in host memory behind the *adjacency position list*
   and reached via UVA (§6), and
3. a **partitioned feature cache** holding the hottest feature vectors
   of the patch, with cold vectors in host memory (§3.1).

The Fig 10 experiment fixes a total budget and sweeps the split between
(2) and (3); the default planner gives topology priority — the paper's
conclusion — and hands the rest to the feature cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.store import PartitionedCache
from repro.graph.datasets import Dataset
from repro.hw.devices import Cluster
from repro.hw.memory import DeviceMemory
from repro.sampling.local import GraphPatch
from repro.utils.errors import CapacityError, ConfigError

#: fraction of GPU memory reserved for activations and scratch buffers
WORKSPACE_FRACTION = 0.15

ID_BYTES = 8


@dataclass
class DSPLayout:
    """The planned placement for one DSP run."""

    part_offsets: np.ndarray
    patches: list[GraphPatch]
    #: per patch: True for *local* nodes whose adjacency list stayed in
    #: host memory (accessed via UVA by the owning GPU)
    topo_cold: list[np.ndarray]
    store: PartitionedCache
    memory: list[DeviceMemory]

    @property
    def num_gpus(self) -> int:
        return len(self.patches)

    def topo_cold_global(self) -> np.ndarray:
        """Cold-adjacency flag for every global node id."""
        return np.concatenate(self.topo_cold)

    @property
    def topology_coverage(self) -> float:
        """Fraction of adjacency-list bytes resident on the GPUs."""
        total = sum(p.num_edges for p in self.patches)
        if total == 0:
            return 1.0
        cold = 0
        for patch, mask in zip(self.patches, self.topo_cold):
            deg = np.diff(patch.indptr)
            cold += int(deg[mask].sum())
        return 1.0 - cold / total

    @property
    def feature_coverage(self) -> float:
        return self.store.total_cached / len(self.store.owner)


def plan_layout(
    dataset: Dataset,
    part_offsets: np.ndarray,
    cluster: Cluster,
    hot_order: np.ndarray,
    feature_cache_bytes: float | None = None,
    topology_cache_bytes: float | None = None,
    graph=None,
    workspace_fraction: float = WORKSPACE_FRACTION,
    bytes_per_elem: float | None = None,
) -> DSPLayout:
    """Plan DSP's per-GPU memory layout.

    ``dataset.graph`` (or ``graph`` if given) must already be
    renumbered to ``part_offsets``.  ``hot_order`` ranks global node
    ids hottest-first (used for both adjacency and feature residency).
    ``bytes_per_elem`` sizes one feature element for the budget math;
    ``None`` reads it off the dataset's feature dtype.
    """
    graph = dataset.graph if graph is None else graph
    part_offsets = np.asarray(part_offsets, dtype=np.int64)
    k = len(part_offsets) - 1
    if k != cluster.num_gpus:
        raise ConfigError("partition does not match cluster size")
    if bytes_per_elem is None:
        bytes_per_elem = float(dataset.features.dtype.itemsize)
    if bytes_per_elem <= 0:
        raise ConfigError("bytes_per_elem must be positive")
    row_bytes = dataset.feature_dim * bytes_per_elem

    rank = np.empty(graph.num_nodes, dtype=np.int64)
    rank[hot_order] = np.arange(graph.num_nodes)

    patches, topo_cold, memory = [], [], []
    feature_budget_nodes = None
    for g in range(k):
        lo, hi = int(part_offsets[g]), int(part_offsets[g + 1])
        patch = GraphPatch.from_graph(graph, lo, hi)
        patches.append(patch)
        mem = DeviceMemory(capacity=cluster.gpu.memory_bytes)
        mem.reserve("workspace", cluster.gpu.memory_bytes * workspace_fraction)

        # ---- topology residency --------------------------------------
        deg = np.diff(patch.indptr)
        node_bytes = deg * ID_BYTES + ID_BYTES  # adjacency + indptr entry
        if patch.weights is not None:
            node_bytes = node_bytes + deg * 4
        order = np.argsort(rank[lo:hi], kind="stable")  # local hotness
        csum = np.cumsum(node_bytes[order])
        budget = topology_cache_bytes
        if budget is None:
            # topology gets priority (§7.3 conclusion) — but when the
            # patch cannot fully fit anyway, keep a slice of memory for
            # hot features instead of drowning it all in cold adjacency
            needed = float(csum[-1]) if len(csum) else 0.0
            budget = min(needed, 0.75 * mem.free)
        budget = min(budget, mem.free)
        n_resident = int(np.searchsorted(csum, budget, side="right"))
        cold = np.ones(patch.num_local, dtype=bool)
        cold[order[:n_resident]] = False
        topo_cold.append(cold)
        mem.reserve("topology", float(csum[n_resident - 1]) if n_resident else 0.0)

        # ---- feature cache -------------------------------------------
        fbudget = feature_cache_bytes
        if fbudget is None:
            fbudget = mem.free
        if fbudget > mem.free:
            raise CapacityError(
                f"GPU {g}: feature cache budget exceeds free memory"
            )
        nodes_fit = int(fbudget // row_bytes)
        if feature_budget_nodes is None or nodes_fit < feature_budget_nodes:
            feature_budget_nodes = nodes_fit
        memory.append(mem)

    store = PartitionedCache(part_offsets, hot_order, feature_budget_nodes or 0)
    for g in range(k):
        memory[g].reserve(
            "feature-cache",
            store.cache_nbytes(g, dataset.feature_dim, bytes_per_elem),
        )
    return DSPLayout(
        part_offsets=part_offsets,
        patches=patches,
        topo_cold=topo_cold,
        store=store,
        memory=memory,
    )
