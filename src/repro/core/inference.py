"""Distributed full-graph inference.

After sampling-based training, embeddings/predictions for *every* node
are computed layer by layer over the full neighbourhood (no sampling) —
the standard GraphSAGE inference procedure.  Under DSP's layout this is
naturally distributed: each GPU computes the layer-l embeddings of its
own patch nodes; before each layer, the GPUs exchange the boundary
embeddings their cross-patch edges need (one NVLink all-to-all whose
volume is the edge cut times the embedding width — METIS partitioning
pays off again).

The functional path evaluates the trained model exactly (chunked so
memory stays bounded); the trace prices the per-layer exchange, gather
and GEMM work.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor
from repro.sampling.frontier import Block
from repro.sampling.ops import AllToAll, LocalKernel, OpTrace
from repro.utils.errors import ConfigError


def full_graph_inference(
    system,
    chunk_size: int = 4096,
) -> tuple[np.ndarray, OpTrace]:
    """Predictions for every node of ``system.data`` plus the op trace.

    Works for any trained :class:`~repro.core.system.TrainingSystem`;
    for DSP the boundary exchange is computed from the real partition,
    for the single-store baselines everything counts as one patch.
    """
    if chunk_size <= 0:
        raise ConfigError("chunk_size must be positive")
    data = system.data
    graph = data.graph
    model = system.models[0]
    n = graph.num_nodes
    k = system.k
    trace = OpTrace()

    # ownership for boundary accounting (DSP has a real partition)
    sampler = getattr(system, "sampler", None)
    if hasattr(sampler, "part_offsets") and hasattr(sampler, "owner_of"):
        owner = sampler.owner_of(np.arange(n))
    else:
        owner = np.zeros(n, dtype=np.int64)

    h = data.features.astype(np.float32)
    dst_all = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)

    # Layer-independent boundary accounting, hoisted out of the layer
    # loop and fully vectorized: only the byte/FLOP scaling below varies
    # per layer.  pair_nodes[o, g] counts the *unique* boundary sources
    # GPU ``o`` must send GPU ``g`` (a source crossing into g on many
    # edges is exchanged once — embeddings are deduplicated, edges are
    # not), via one bincount over (source node, destination owner) keys.
    src_owner = owner[graph.indices]
    dst_owner = owner[dst_all]
    edges_per_dst_gpu = np.bincount(dst_owner, minlength=k)
    nodes_per_gpu = np.bincount(owner, minlength=k)
    cross = src_owner != dst_owner
    key = graph.indices[cross].astype(np.int64) * k + dst_owner[cross]
    uniq = np.unique(key)
    pair_nodes = np.bincount(
        owner[uniq // k] * k + uniq % k, minlength=k * k
    ).reshape(k, k)

    for layer, conv in enumerate(model.convs):
        # ---- cost: boundary exchange + gather + GEMM per GPU ----------
        in_bytes = h.shape[1] * 4
        exch = pair_nodes * float(in_bytes)
        gather = edges_per_dst_gpu * float(in_bytes)
        flops = nodes_per_gpu * float(conv.flops_per_dst)
        trace.add(AllToAll(exch, label=f"infer-boundary-L{layer}"))
        trace.add(LocalKernel("gather", gather, label=f"infer-gather-L{layer}"))
        trace.add(LocalKernel("compute", flops, label=f"infer-gemm-L{layer}"))

        # ---- functional: chunked full-neighbourhood convolution --------
        outputs = []
        for lo in range(0, n, chunk_size):
            hi = min(lo + chunk_size, n)
            dst = np.arange(lo, hi, dtype=np.int64)
            e_lo, e_hi = graph.indptr[lo], graph.indptr[hi]
            src = graph.indices[e_lo:e_hi]
            offsets = graph.indptr[lo : hi + 1] - e_lo
            block = Block(dst, src, offsets)
            x = Tensor(h[block.all_nodes])
            out = conv(block, x)
            outputs.append(out.data)
        h = np.concatenate(outputs, axis=0)
        if layer < len(model.convs) - 1:
            h = np.maximum(h, 0.0)  # ReLU between layers
    # multi-node systems must not price cross-server boundary exchange
    # as NVLink traffic; _lower is the identity on a single server
    return h, system._lower(trace)
