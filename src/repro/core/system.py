"""End-to-end training systems: the common skeleton and DSP itself.

A :class:`TrainingSystem` really trains (numpy models, real samples,
real features) and simultaneously prices every mini-batch against the
hardware model.  Subclasses define the architecture: where the
topology/features live, which sampler and loader run, what per-batch
software overhead applies, and whether the pipeline is used.
"""

from __future__ import annotations

import numpy as np

from repro.cache.loader import FeatureLoader
from repro.cache.policies import get_policy
from repro.core.config import RunConfig
from repro.core.cost import CostEngine
from repro.core.layout import DSPLayout, plan_layout
from repro.core.metrics import EpochMetrics, RunResult
from repro.core.pipeline import PipelineRunner
from repro.graph.datasets import Dataset, load_dataset, load_partition
from repro.graph.reorder import renumber_by_partition
from repro.hw.devices import Cluster
from repro.hw.memory import AllocatorKind, alloc_overhead
from repro.nn import (
    GAT,
    GCN,
    Adam,
    GraphSAGE,
    Tensor,
    accuracy,
    allreduce_gradients,
    clone_model,
    cross_entropy,
    gradient_nbytes,
)
from repro.sampling.csp import CollectiveSampler, CSPConfig
from repro.sampling.frontier import MiniBatchSample
from repro.sampling.ops import AllReduce, LocalKernel, OpTrace, UVAGather
from repro.utils.errors import ConfigError
from repro.utils.rng import make_rng

MODELS = {"sage": GraphSAGE, "gcn": GCN, "gat": GAT}


def _nanmean(values: list[float]) -> float:
    clean = [v for v in values if not np.isnan(v)]
    return float(np.mean(clean)) if clean else float("nan")

#: transient device buffers (re)allocated per mini-batch — blocks,
#: frontier arrays, feature staging, activations (rough CUDA count)
ALLOCATIONS_PER_BATCH = 60

#: Stage-share correction for the scaled-down datasets.  On the paper's
#: 100M-node graphs a seed's 3-hop sample touches ~700 distinct nodes;
#: on our ~1000x-smaller graphs heavy dedup cuts that to ~75, so the
#: sampled/loaded volume *per seed* is ~9x smaller while the GNN
#: compute per deduplicated node is unchanged.  Left uncorrected, the
#: trainer stage would dwarf sampling/loading and flatten every
#: communication-side experiment (Fig 10/12).  This constant rescales
#: trainer FLOPs so the sample/load/train shares match the paper's
#: (~30/35/35 at 8 GPUs); it is applied identically to every system, so
#: no comparison is biased.
COMPUTE_DEDUP_CORRECTION = 0.15


class TrainingSystem:
    """Base: functional training + cost accounting for one architecture."""

    name = "base"
    allocator = AllocatorKind.POOLED
    pipelined = False
    #: whether the architecture can span multiple servers; only the
    #: DSP family lowers its collectives hierarchically (docs/cluster.md)
    multinode = False

    def __init__(self, config: RunConfig):
        self.config = config
        if config.num_nodes > 1 and not self.multinode:
            raise ConfigError(
                f"{self.name} runs on a single server; only DSP-family "
                f"systems support num_nodes > 1"
            )
        self.base_dataset = load_dataset(config.dataset)
        #: the cluster-level topology (NICs + per-server meshes) when
        #: num_nodes > 1, else None — _make_cluster fills it in
        self.cluster_topology = None
        self.cluster = self._make_cluster()
        # per-batch constant overheads shrink with the batch (see CostEngine)
        self.batch_shrink = config.batch_size / 1024.0
        self.engine = self._make_engine()
        self.k = config.total_gpus
        self.csp_config = CSPConfig(
            fanout=tuple(config.fanout),
            scheme=config.scheme,
            biased=config.biased,
            replace=config.replace,
        )
        self._rng = make_rng(config.seed)
        self._prepare()  # sets self.data, self.sampler, self.loader

        model_cls = MODELS[config.model]
        base = model_cls(
            self.data.feature_dim,
            config.hidden_dim,
            self.data.num_classes,
            num_layers=config.num_layers,
            dropout=config.dropout,
            seed=config.seed,
        )
        self.models = clone_model(base, self.k)
        self.opts = [Adam(m.parameters(), lr=config.lr) for m in self.models]
        self.grad_nbytes = gradient_nbytes(base)
        self.batches_seen = 0

    # -- architecture hooks (subclasses override) -----------------------
    def _make_cluster(self) -> Cluster:
        """The simulated hardware.  A single node is the paper's DGX-1;
        ``num_nodes > 1`` spans S block-diagonal copies joined by NICs."""
        cfg = self.config
        scale = self.base_dataset.spec.scale
        if cfg.num_nodes == 1:
            return Cluster.dgx1(cfg.num_gpus, scale=scale)
        from repro.hw.interconnect import Topology
        from repro.hw.network import ClusterTopology, NICSpec, \
            multi_server_cluster

        self.cluster_topology = ClusterTopology(
            num_servers=cfg.num_nodes,
            server=Topology.dgx1(cfg.num_gpus),
            nic=NICSpec.preset(cfg.nic),
        )
        return multi_server_cluster(self.cluster_topology, scale=scale)

    def _make_engine(self) -> CostEngine:
        """The op-pricing engine; clusters get per-server host CPUs and
        the configured NIC as the network link."""
        cfg = self.config
        if cfg.num_nodes == 1:
            return CostEngine(
                self.cluster,
                launch_scale=self.batch_shrink,
                backend=cfg.comm_backend,
            )
        from repro.cluster.engine import ClusterCostEngine

        return ClusterCostEngine(
            self.cluster,
            self.cluster_topology,
            launch_scale=self.batch_shrink,
            backend=cfg.comm_backend,
        )

    def _lower(self, trace: OpTrace) -> OpTrace:
        """Rewrite single-server collectives into hierarchical cluster
        form before pricing; the identity (same object) on one node."""
        if self.config.num_nodes == 1:
            return trace
        from repro.cluster.csp import lower_trace

        return lower_trace(trace, self.config.num_nodes, self.config.num_gpus)

    def _prepare(self) -> None:
        raise NotImplementedError

    def _assign_seeds(self, seeds: np.ndarray) -> list[np.ndarray]:
        """Default: round-robin split of the global batch across GPUs."""
        return [seeds[g :: self.k] for g in range(self.k)]

    def _sample(self, seeds_per_gpu) -> tuple[list[MiniBatchSample], OpTrace]:
        samples, trace, _ = self.sampler.sample(seeds_per_gpu, self.csp_config)
        return samples, self._lower(trace)

    def _load(self, requests) -> tuple[list[np.ndarray], OpTrace, dict]:
        feats, trace, stats = self.loader.load(requests)
        return feats, self._lower(trace), stats

    def _batch_overhead(self) -> float:
        """Per-batch software overhead (allocator costs, §7.2)."""
        return (
            alloc_overhead(self.allocator, ALLOCATIONS_PER_BATCH)
            * self.batch_shrink
        )

    # -- the training loop ----------------------------------------------
    def _global_batches(self) -> list[np.ndarray]:
        seeds = self.data.train_nodes.copy()
        self._rng.shuffle(seeds)
        global_batch = self.config.batch_size * self.k
        n = len(seeds) // global_batch
        if n == 0:
            raise ConfigError(
                f"dataset {self.data.name!r} has too few train seeds for "
                f"batch {global_batch}"
            )
        return [
            seeds[i * global_batch : (i + 1) * global_batch] for i in range(n)
        ]

    def _train_batch(
        self, samples: list[MiniBatchSample], feats: list[np.ndarray],
        functional: bool,
    ) -> tuple[OpTrace, float, float]:
        """Run (or price) one BSP step; returns (trace, loss, accuracy)."""
        flops = np.zeros(self.k)
        losses, accs, weights = [], [], []
        total_seeds = sum(len(s.seeds) for s in samples)
        for g, (sample, x) in enumerate(zip(samples, feats)):
            # forward + backward ~ 3x forward FLOPs
            flops[g] = (
                3.0 * self.models[g].forward_flops(sample)
                * COMPUTE_DEDUP_CORRECTION
            )
            if not functional or len(sample.seeds) == 0:
                continue
            labels = self.data.labels[sample.seeds]
            out = self.models[g](sample, Tensor(x))
            loss = cross_entropy(out, labels)
            # BSP exactness: scale so the allreduce *mean* equals the
            # global-batch gradient even when per-GPU batches differ
            scale = len(sample.seeds) * self.k / total_seeds
            self.opts[g].zero_grad()
            (loss * scale).backward()
            losses.append(loss.item() * len(sample.seeds))
            accs.append(accuracy(out, labels) * len(sample.seeds))
            weights.append(len(sample.seeds))
        if functional and weights:
            allreduce_gradients(self.models)
            for opt in self.opts:
                opt.step()
        trace = OpTrace()
        trace.add(LocalKernel("compute", flops, label="train-compute"))
        trace.add(AllReduce(self.grad_nbytes, label="grad-allreduce"))
        trace = self._lower(trace)
        mean_loss = sum(losses) / sum(weights) if weights else float("nan")
        mean_acc = sum(accs) / sum(weights) if weights else float("nan")
        return trace, mean_loss, mean_acc

    def run_epoch(
        self, max_batches: int | None = None, functional: bool = True,
        tracer=None, metrics=None, chaos=None,
    ) -> EpochMetrics:
        """One epoch: functional training + cost accounting.

        ``functional=False`` skips the numpy forward/backward (model
        parameters freeze) but keeps sampling, loading and all cost
        accounting — an order of magnitude faster for pure performance
        experiments.  ``max_batches`` truncates the epoch and
        extrapolates the time linearly (steady-state batches are iid).

        ``tracer`` (a :class:`repro.obs.Tracer`) records the simulated
        timeline of the measured batches — op spans, wait spans, SM /
        queue / cache / link-byte counters — through the pipeline
        replay (see ``docs/observability.md``).  The trace covers the
        measured batches only, i.e. the epoch before the ``max_batches``
        extrapolation and the per-batch allocator overhead are applied.

        ``metrics`` (a :class:`repro.metrics.MetricsRegistry`) streams
        the same signals into fixed sim-time windows — SM utilization,
        queue depths, per-link bytes, feature-cache counters — instead
        of retaining a full event log.  Zero-cost when ``None``.

        ``chaos`` (a :class:`repro.chaos.ChaosRuntime`, duck-typed via
        its ``pipeline_kwargs()``) injects faults into the pipeline
        replay and audits it with the invariant checker; the replayed
        :class:`~repro.core.pipeline.PipelineResult` (with its chaos
        accounting) is kept on ``self.last_pipeline_result``.
        """
        if max_batches is not None and max_batches < 1:
            raise ConfigError("max_batches must be >= 1")
        batches = self._global_batches()
        measured = batches if max_batches is None else batches[:max_batches]

        stage_costs: list[dict] = []
        batch_info: list[dict] = []
        losses, accs = [], []
        nvlink = pcie = network = 0.0
        sample_t = load_t = train_t = 0.0
        cache_stats = {"local": 0, "remote": 0, "cold": 0}

        for seeds in measured:
            per_gpu = self._assign_seeds(seeds)
            samples, s_trace = self._sample(per_gpu)
            requests = [s.all_nodes for s in samples]
            feats, l_trace, stats = self._load(requests)
            t_trace, loss, acc = self._train_batch(samples, feats, functional)
            self.batches_seen += 1
            losses.append(loss)
            accs.append(acc)
            for key in cache_stats:
                cache_stats[key] += stats.get(key, 0)
            if tracer is not None or metrics is not None:
                batch_info.append({"cache": dict(stats)})

            costs = {
                "sample": self.engine.trace_cost(s_trace),
                "load": self.engine.trace_cost(l_trace),
                "train": self.engine.trace_cost(t_trace),
            }
            stage_costs.append(costs)
            sample_t += sum(c.stage for c in costs["sample"])
            load_t += sum(c.stage for c in costs["load"])
            train_t += sum(c.stage for c in costs["train"])
            for cs in costs.values():
                nvlink += sum(c.nvlink_bytes for c in cs)
                pcie += sum(c.pcie_bytes for c in cs)
                network += sum(c.network_bytes for c in cs)

        overhead = self._batch_overhead() * len(measured)
        scale_up = len(batches) / len(measured)
        info = (batch_info if (tracer is not None or metrics is not None)
                else None)
        chaos_kwargs = {} if chaos is None else chaos.pipeline_kwargs()
        if self.pipelined:
            result = PipelineRunner(
                self.cluster,
                stage_costs,
                queue_capacity=self.config.queue_capacity,
                ccc=self.config.ccc,
                sampler_workers=self.config.sampler_workers,
                loader_workers=self.config.loader_workers,
                tracer=tracer,
                metrics=metrics,
                batch_info=info,
                **chaos_kwargs,
            ).run()
        else:
            result = PipelineRunner(
                self.cluster, stage_costs, sequential=True,
                tracer=tracer, metrics=metrics, batch_info=info,
                **chaos_kwargs,
            ).run()
        #: the replayed pipeline outcome of the latest epoch, including
        #: chaos accounting (lost batches, degraded rounds, invariants)
        self.last_pipeline_result = result
        epoch_time = (result.epoch_time + overhead) * scale_up
        utilization = result.utilization

        val_acc = float("nan")
        if functional:
            val_acc = self.evaluate(self.data.val_nodes)
        return EpochMetrics(
            epoch_time=epoch_time,
            sample_time=sample_t * scale_up,
            load_time=load_t * scale_up,
            train_time=train_t * scale_up,
            nvlink_bytes=nvlink * scale_up,
            pcie_bytes=pcie * scale_up,
            network_bytes=network * scale_up,
            loss=_nanmean(losses),
            train_accuracy=_nanmean(accs),
            val_accuracy=val_acc,
            num_batches=len(batches),
            utilization=utilization,
            cache_stats=cache_stats,
        )

    def train(self, epochs: int, **kwargs) -> RunResult:
        """Run ``epochs`` epochs and collect their metrics."""
        result = RunResult(self.name, self.config.dataset, self.k)
        for _ in range(epochs):
            result.epochs.append(self.run_epoch(**kwargs))
        return result

    # -- checkpointing ------------------------------------------------------
    def save_checkpoint(self, path) -> None:
        """Persist model parameters and training progress to ``path``.

        BSP keeps every replica identical, so one copy of the
        parameters suffices.  Use :meth:`load_checkpoint` to resume.
        """
        import os

        arrays = {
            f"param_{i}": a for i, a in enumerate(self.models[0].state())
        }
        arrays["batches_seen"] = np.array([self.batches_seen])
        tmp = str(path) + ".tmp"
        np.savez(tmp, **arrays)
        os.replace(tmp if tmp.endswith(".npz") else tmp + ".npz", str(path))

    def load_checkpoint(self, path) -> None:
        """Restore parameters (into every replica) and progress."""
        with np.load(str(path)) as z:
            n = len([k for k in z.files if k.startswith("param_")])
            state = [z[f"param_{i}"] for i in range(n)]
            self.batches_seen = int(z["batches_seen"][0])
        for model in self.models:
            model.load_state(state)

    # -- evaluation -------------------------------------------------------
    def evaluate(self, nodes: np.ndarray, batch: int = 256) -> float:
        """Accuracy on ``nodes`` using the trained replica 0."""
        model = self.models[0]
        correct = total = 0
        for i in range(0, len(nodes), batch):
            chunk = nodes[i : i + batch]
            per_gpu = self._assign_seeds(chunk)
            samples, _ = self._sample(per_gpu)
            for sample in samples:
                if len(sample.seeds) == 0:
                    continue
                x = Tensor(self.data.features[sample.all_nodes])
                out = model(sample, x, training=False)
                labels = self.data.labels[sample.seeds]
                correct += accuracy(out, labels) * len(labels)
                total += len(labels)
        return correct / total if total else float("nan")


class DSP(TrainingSystem):
    """The paper's system: partitioned topology + CSP + partitioned
    cache + producer-consumer pipeline."""

    name = "DSP"
    pipelined = True
    multinode = True

    def _prepare(self) -> None:
        cfg = self.config
        ds = self.base_dataset
        self.hierarchy = None
        if cfg.num_nodes > 1:
            # two-level cut: cross-server edges are minimized first so
            # the slow network tier carries the least shuffle traffic
            from repro.cluster.partition import hierarchical_partition

            self.hierarchy = hierarchical_partition(
                ds.graph, cfg.num_nodes, cfg.num_gpus,
                method=cfg.partitioner, seed=cfg.seed,
            )
            partition = self.hierarchy.gpu
        elif cfg.partitioner == "hash":
            from repro.graph.partition import hash_partition

            partition = hash_partition(ds.num_nodes, self.k, seed=cfg.seed)
        elif cfg.partitioner == "ldg":
            from repro.graph.partition import ldg_partition

            partition = ldg_partition(ds.graph, self.k, rng=cfg.seed)
        else:
            partition = load_partition(cfg.dataset, self.k, seed=cfg.seed)
        rgraph, _, numbering = renumber_by_partition(ds.graph, partition)
        if cfg.biased:
            # §4.2: node weights are materialized onto edges up front
            w = self._rng.random(ds.num_nodes).astype(np.float32)
            rgraph = rgraph.with_node_weights(w)
        self.data: Dataset = ds.permuted(numbering.old_to_new, rgraph)
        self.numbering = numbering

        hot_order = get_policy(cfg.hot_policy)(rgraph)
        # every extra worker instance keeps another mini-batch's buffers
        # in flight, eating into the cache budget (§5)
        from repro.core.layout import WORKSPACE_FRACTION

        workspace = WORKSPACE_FRACTION * (
            1 + 0.5 * (cfg.sampler_workers - 1) + 0.5 * (cfg.loader_workers - 1)
        )
        self.layout: DSPLayout = plan_layout(
            self.data,
            numbering.part_offsets,
            self.cluster,
            hot_order,
            feature_cache_bytes=cfg.feature_cache_bytes,
            topology_cache_bytes=cfg.topology_cache_bytes,
            graph=rgraph,
            workspace_fraction=min(workspace, 0.9),
        )
        self.sampler = CollectiveSampler(
            self.layout.patches, numbering.part_offsets, seed=cfg.seed
        )
        dynamic = None
        if cfg.dynamic_cache:
            from repro.cache.dynamic import DynamicCacheConfig, DynamicCachePolicy

            dynamic = DynamicCachePolicy(
                self.layout.store,
                DynamicCacheConfig(
                    window=cfg.cache_window,
                    ewma=cfg.cache_ewma,
                    prefetch_quota=cfg.cache_prefetch,
                ),
            )
        codec = None if cfg.compress == "none" else cfg.compress
        self.loader = FeatureLoader(
            self.data.features, self.layout.store, codec=codec,
            dynamic=dynamic,
        )
        if cfg.cache_bias > 0:
            # GNS-style biased sampling toward cached nodes; samplers
            # without the hook (e.g. PullDSP's host sampler) skip it
            if hasattr(self.sampler, "set_cache_bias"):
                self.sampler.set_cache_bias(self.layout.store, cfg.cache_bias)
            if dynamic is not None:
                dynamic.on_change.append(self._refresh_cache_bias)
        self._topo_cold = self.layout.topo_cold_global()
        self._has_cold_topo = bool(self._topo_cold.any())

    def _refresh_cache_bias(self) -> None:
        """Rebuild the sampler's biased edge weights after the dynamic
        policy moved nodes in or out of the cache."""
        refresh = getattr(self.sampler, "refresh_cache_bias", None)
        if refresh is not None:
            refresh()

    def _assign_seeds(self, seeds: np.ndarray) -> list[np.ndarray]:
        """Co-partition seeds with graph patches (§3.1).

        One stable sort by owner instead of k boolean-mask passes; the
        relative seed order within each GPU is unchanged.
        """
        owners = self.sampler.owner_of(seeds)
        order = np.argsort(owners, kind="stable")
        bounds = np.cumsum(np.bincount(owners, minlength=self.k))[:-1]
        return np.split(seeds[order], bounds)

    def _sample(self, seeds_per_gpu):
        samples, trace, _ = self.sampler.sample(seeds_per_gpu, self.csp_config)
        if self._has_cold_topo:
            self._add_cold_topology_ops(samples, trace)
        return samples, self._lower(trace)

    def _add_cold_topology_ops(self, samples, trace: OpTrace) -> None:
        """UVA reads for adjacency lists that did not fit in GPU memory.

        The owning GPU reads the sampled entries (plus the two indptr
        bounds) of each cold frontier node from host memory (§6).
        """
        for layer in range(self.config.num_layers):
            items = np.zeros(self.k)
            for g in range(self.k):
                block = samples[g].blocks[layer]
                cold = self._topo_cold[block.dst_nodes]
                if not cold.any():
                    continue
                owners = self.sampler.owner_of(block.dst_nodes[cold])
                counts = np.diff(block.offsets)[cold]
                items += np.bincount(
                    owners, weights=counts + 2.0, minlength=self.k
                )
            if items.any():
                trace.add(
                    UVAGather(items, item_bytes=8, label=f"topo-cold-L{layer}")
                )


class DSPSeq(DSP):
    """DSP with the pipeline disabled (Fig 6 / Fig 12 comparison)."""

    name = "DSP-Seq"
    pipelined = False


def build_system(name: str, config: RunConfig) -> TrainingSystem:
    """Instantiate a system by its paper name."""
    try:
        cls = SYSTEMS[name]
    except KeyError:
        raise ConfigError(
            f"unknown system {name!r}; available: {sorted(SYSTEMS)}"
        ) from None
    return cls(config)


from repro.core.baselines import PyG, DGLCPU, DGLUVA, PullDSP, Quiver  # noqa: E402

SYSTEMS = {
    "DSP": DSP,
    "DSP-Seq": DSPSeq,
    "DSP-Pull": PullDSP,
    "PyG": PyG,
    "DGL-CPU": DGLCPU,
    "DGL-UVA": DGLUVA,
    "Quiver": Quiver,
}
