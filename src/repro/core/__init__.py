"""The DSP training system and the baseline system architectures.

This package assembles the substrates into end-to-end trainable
systems.  Each system is *functional* (it really trains the model, so
accuracy curves are real) and *costed* (every mini-batch emits an op
trace that the cost engine converts into simulated hardware time,
either analytically for sequential execution or through the
discrete-event engine for DSP's producer-consumer pipeline).

Systems (paper §7.1):

====================  ================================================
``DSP``               partitioned topology + CSP + partitioned cache +
                      pipeline (the paper's contribution)
``DSP-Seq``           DSP with the pipeline disabled (Fig 6 / Fig 12)
``DGL-UVA``           topology in host memory, UVA sampling, no cache
``Quiver``            UVA sampling + replicated GPU feature cache +
                      raw cudaMalloc allocation overhead
``DGL-CPU``           CPU sampling, host features, bulk PCIe copies
``PyG``               like DGL-CPU with a slower host sampler
====================  ================================================
"""

from repro.core.config import RunConfig
from repro.core.metrics import BatchCost, EpochMetrics, RunResult
from repro.core.cost import CostEngine
from repro.core.layout import DSPLayout, plan_layout
from repro.core.system import DSP, build_system, SYSTEMS
from repro.core.baselines import PyG, DGLCPU, DGLUVA, Quiver
from repro.core.multimachine import MultiMachineDSP
from repro.core.inference import full_graph_inference

__all__ = [
    "RunConfig",
    "BatchCost",
    "EpochMetrics",
    "RunResult",
    "CostEngine",
    "DSPLayout",
    "plan_layout",
    "DSP",
    "PyG",
    "DGLCPU",
    "DGLUVA",
    "Quiver",
    "build_system",
    "SYSTEMS",
    "MultiMachineDSP",
    "full_graph_inference",
]
