"""The producer-consumer training pipeline (paper §5, Fig 7).

Replays per-mini-batch op costs inside the discrete-event engine with
one sampler, loader and trainer worker per GPU, connected by bounded
queues (capacity 2 by default — the paper finds that sufficient).
Workers of *different* mini-batches overlap: while the trainer computes
batch ``t``, the loader fetches features for ``t + 1`` and the sampler
builds graph samples for ``t + 2``.

Collective kernels acquire one of the GPU's communication channels and
an SM-thread footprint, then rendezvous with their peers — the
conditions that can deadlock (Fig 8).  With ``ccc=True`` a
:class:`~repro.engine.coordination.LaunchGate` serializes the launch
order globally and the pipeline is deadlock-free; with ``ccc=False``
and few channels the Fig 8 interleaving really deadlocks (the ablation
benchmark shows it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost import OpCost
from repro.engine import (
    BoundedQueue,
    LaunchGate,
    Rendezvous,
    Resource,
    Simulator,
)
from repro.engine.simulator import Timeout
from repro.hw.devices import Cluster
from repro.utils.errors import ConfigError

#: pipeline stages in dependency order
STAGES = ("sample", "load", "train")


@dataclass
class PipelineResult:
    """Outcome of one simulated epoch (wall time + utilization)."""

    epoch_time: float
    utilization: float  # mean thread-weighted occupancy across GPUs
    busy_fraction: float  # mean any-kernel-resident fraction
    per_gpu_busy: tuple = ()  # per-GPU any-kernel-resident fractions


class PipelineRunner:
    """Simulate one epoch of the queue-based pipeline."""

    def __init__(
        self,
        cluster: Cluster,
        batches: list[dict],
        queue_capacity: int = 2,
        ccc: bool = True,
        comm_channels: int = 2,
        sequential: bool = False,
        sampler_workers: int = 1,
        loader_workers: int = 1,
        tracer=None,
        batch_info: list | None = None,
    ):
        """``batches[t]`` maps stage name -> list of OpCost for batch t.

        ``sequential=True`` runs the same workers with rendezvous and
        resources but forces each batch's three stages to complete
        before the next batch starts (DSP-Seq), so utilization numbers
        are measured identically in both modes.

        ``sampler_workers`` / ``loader_workers`` > 1 give each GPU
        multiple worker instances striped over mini-batches (the
        multi-instance alternative of §5; the trainer stays single to
        preserve BSP, consuming batches in order).

        ``tracer`` (a :class:`repro.obs.Tracer`) records the full
        timeline: one span per op tagged ``(gpu, stage, batch,
        collective)``, wait spans for every blocked primitive, SM and
        queue-depth counters, cumulative per-link byte counters and —
        when ``batch_info`` supplies per-batch annotations such as
        ``{"cache": {...}}`` — cumulative cache hit/miss counters at
        the simulated time each batch's load stage completes.  With
        ``tracer=None`` no event objects are allocated at all.
        """
        for b in batches:
            if set(b) != set(STAGES):
                raise ConfigError(f"each batch needs stages {STAGES}")
        if sampler_workers < 1 or loader_workers < 1:
            raise ConfigError("need at least one worker per stage")
        if batch_info is not None and len(batch_info) != len(batches):
            raise ConfigError("batch_info must align with batches")
        self.cluster = cluster
        self.batches = batches
        self.queue_capacity = queue_capacity
        self.ccc = ccc
        self.comm_channels = comm_channels
        self.sequential = sequential
        self.sampler_workers = sampler_workers
        self.loader_workers = loader_workers
        self.tracer = tracer
        self.batch_info = batch_info

    # ------------------------------------------------------------------
    def run(self) -> PipelineResult:
        """Simulate the epoch; returns wall time and GPU utilization."""
        k = self.cluster.num_gpus
        tracer = self.tracer
        sim = Simulator(tracer=tracer)
        threads = [
            Resource(sim, self.cluster.gpu.total_threads, name=f"gpu{g}-sm")
            for g in range(k)
        ]
        channels = [
            Resource(sim, self.comm_channels, name=f"gpu{g}-comm")
            for g in range(k)
        ]
        barrier = Rendezvous(sim, name="collective")
        gate = LaunchGate(sim, k) if (self.ccc and k > 1) else None

        # cumulative cluster-wide wire bytes per link class; each GPU's
        # replay of an op adds a 1/k share because OpCost byte fields
        # are already cluster totals for the op
        link_totals = {"nvlink": 0.0, "pcie": 0.0, "network": 0.0}
        cache_totals: dict = {}

        def trace_op(g: int, cost: OpCost, tag, track: str, t0: float):
            stage, batch = tag[0], tag[1]
            tracer.span(
                track, cost.label, cat=stage, start=t0, end=sim.now,
                gpu=g, stage=stage, batch=batch,
                collective=cost.collective, host=cost.host,
            )
            share = 1.0 / k
            bumped = False
            for link, nbytes in cost.link_bytes().items():
                if nbytes:
                    link_totals[link] += nbytes * share
                    bumped = True
            if bumped:
                tracer.counter("link-bytes", "cumulative", sim.now,
                               **link_totals)

        def emit_batch_info(t: int) -> None:
            """Cumulative cache hit/miss counters when batch t's load
            stage completes (emitted once per batch, by GPU 0)."""
            info = self.batch_info[t] if self.batch_info else None
            if not info:
                return
            for key, value in info.get("cache", {}).items():
                cache_totals[key] = cache_totals.get(key, 0) + value
            if cache_totals:
                tracer.counter("cache", "cumulative", sim.now,
                               **cache_totals)

        def run_op(g: int, cost: OpCost, tag, track: str = ""):
            t0 = sim.now
            if cost.host:
                # host-side work: the GPU just waits
                yield Timeout(float(cost.stage))
                if tracer is not None:
                    trace_op(g, cost, tag, track, t0)
                return
            footprint = min(cost.threads, threads[g].capacity)
            if cost.collective:
                if gate is not None:
                    yield gate.wait_turn(g, tag)
                yield channels[g].acquire(1)
                yield threads[g].acquire(footprint)
                if gate is not None:
                    gate.launched(g, tag)
                yield barrier.arrive(tag, k)
                yield Timeout(float(cost.stage))
                threads[g].release(footprint)
                channels[g].release(1)
            else:
                yield threads[g].acquire(footprint)
                yield Timeout(float(cost.per_gpu[g]))
                threads[g].release(footprint)
            if tracer is not None:
                trace_op(g, cost, tag, track, t0)

        B = len(self.batches)
        if self.sequential:
            # one worker per GPU runs sample -> load -> train per batch,
            # with a cross-GPU barrier between batches (BSP steps)
            def worker(g: int):
                track = f"seq-gpu{g}"
                for t in range(B):
                    for stage in STAGES:
                        for i, cost in enumerate(self.batches[t][stage]):
                            yield from run_op(g, cost, (stage, t, i), track)
                        if stage == "load" and tracer is not None and g == 0:
                            emit_batch_info(t)
                    if k > 1:
                        yield barrier.arrive(("batch-end", t), k)

            for g in range(k):
                if tracer is not None:
                    tracer.declare_track(f"seq-gpu{g}", group=f"gpu{g}")
                sim.spawn(worker(g), name=f"seq-gpu{g}")
        else:
            S, L = self.sampler_workers, self.loader_workers
            # one loader input queue per loader instance: batch t is
            # handled by sampler t % S and loader t % L on every GPU
            queues_sl = [
                [BoundedQueue(sim, self.queue_capacity, name=f"gpu{g}-loadq{w}")
                 for w in range(L)]
                for g in range(k)
            ]
            queues_lt = [
                BoundedQueue(sim, self.queue_capacity, name=f"gpu{g}-trainq")
                for g in range(k)
            ]

            def sampler(g: int, w: int):
                track = f"sampler{w}-gpu{g}"
                for t in range(w, B, S):
                    for i, cost in enumerate(self.batches[t]["sample"]):
                        yield from run_op(g, cost, ("sample", t, i), track)
                    yield queues_sl[g][t % L].put(t)

            def loader(g: int, w: int):
                track = f"loader{w}-gpu{g}"
                for _ in range(w, B, L):
                    t = yield queues_sl[g][w].get()
                    for i, cost in enumerate(self.batches[t]["load"]):
                        yield from run_op(g, cost, ("load", t, i), track)
                    if tracer is not None and g == 0:
                        emit_batch_info(t)
                    yield queues_lt[g].put(t)

            def trainer(g: int):
                # BSP: consume strictly in batch order, stashing early
                # arrivals from out-of-order loader instances
                track = f"trainer-gpu{g}"
                stash: set[int] = set()
                next_t = 0
                while next_t < B:
                    if next_t in stash:
                        stash.remove(next_t)
                        for i, cost in enumerate(self.batches[next_t]["train"]):
                            yield from run_op(g, cost, ("train", next_t, i),
                                              track)
                        next_t += 1
                        continue
                    t = yield queues_lt[g].get()
                    stash.add(t)

            for g in range(k):
                if tracer is not None:
                    for w in range(S):
                        tracer.declare_track(f"sampler{w}-gpu{g}",
                                             group=f"gpu{g}", sort=w)
                    for w in range(L):
                        tracer.declare_track(f"loader{w}-gpu{g}",
                                             group=f"gpu{g}", sort=S + w)
                    tracer.declare_track(f"trainer-gpu{g}", group=f"gpu{g}",
                                         sort=S + L)
                for w in range(S):
                    sim.spawn(sampler(g, w), name=f"sampler{w}-gpu{g}")
                for w in range(L):
                    sim.spawn(loader(g, w), name=f"loader{w}-gpu{g}")
                sim.spawn(trainer(g), name=f"trainer-gpu{g}")

        total = sim.run()
        occ = float(np.mean([r.occupancy(total) for r in threads]))
        per_busy = tuple(r.busy_fraction(total) for r in threads)
        busy = float(np.mean(per_busy))
        return PipelineResult(epoch_time=total, utilization=occ,
                              busy_fraction=busy, per_gpu_busy=per_busy)
