"""The producer-consumer training pipeline (paper §5, Fig 7).

Replays per-mini-batch op costs inside the discrete-event engine with
one sampler, loader and trainer worker per GPU, connected by bounded
queues (capacity 2 by default — the paper finds that sufficient).
Workers of *different* mini-batches overlap: while the trainer computes
batch ``t``, the loader fetches features for ``t + 1`` and the sampler
builds graph samples for ``t + 2``.

Collective kernels acquire one of the GPU's communication channels and
an SM-thread footprint, then rendezvous with their peers — the
conditions that can deadlock (Fig 8).  With ``ccc=True`` a
:class:`~repro.engine.coordination.LaunchGate` serializes the launch
order globally and the pipeline is deadlock-free; with ``ccc=False``
and few channels the Fig 8 interleaving really deadlocks (the ablation
benchmark shows it).

Chaos integration (``repro.chaos``): an ``injector`` perturbs the
replay — straggler slowdowns, link degradation/blackouts, worker
crashes, stalled queues, delayed/dropped collective participants —
while a :class:`~repro.engine.coordination.CollectiveGuard` watchdog
keeps collective rounds from hanging forever (abort/retry/abandon) and
an ``invariants`` checker audits the run.  Both hooks are duck-typed
and default to ``None``; the fault-free path executes the exact same
yield sequence as before they existed.  When the pipeline wedges on a
bounded queue whose other side has exited (e.g. a crashed trainer with
producers blocked on a full queue), the deadlock is diagnosed and
re-raised as :class:`~repro.utils.errors.PipelineStall` naming the dead
worker(s).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost import OpCost
from repro.engine import (
    ROUND_ABANDONED,
    BoundedQueue,
    CollectiveGuard,
    LaunchGate,
    Rendezvous,
    Resource,
    Simulator,
)
from repro.engine.simulator import Timeout
from repro.hw.devices import Cluster
from repro.utils.errors import ConfigError, DeadlockError, PipelineStall

#: pipeline stages in dependency order
STAGES = ("sample", "load", "train")


@dataclass
class PipelineResult:
    """Outcome of one simulated epoch (wall time + utilization)."""

    epoch_time: float
    utilization: float  # mean thread-weighted occupancy across GPUs
    busy_fraction: float  # mean any-kernel-resident fraction
    per_gpu_busy: tuple = ()  # per-GPU any-kernel-resident fractions
    # chaos accounting (all zero on fault-free runs)
    lost_batches: int = 0  # (gpu, stage, batch) triples lost to faults
    degraded_rounds: int = 0  # collective rounds abandoned by the watchdog
    aborted_rounds: int = 0  # watchdog aborts (incl. rounds that retried ok)
    invariants: dict | None = None  # InvariantChecker.summary() when audited


class PipelineRunner:
    """Simulate one epoch of the queue-based pipeline."""

    def __init__(
        self,
        cluster: Cluster,
        batches: list[dict],
        queue_capacity: int = 2,
        ccc: bool = True,
        comm_channels: int = 2,
        sequential: bool = False,
        sampler_workers: int = 1,
        loader_workers: int = 1,
        tracer=None,
        metrics=None,
        batch_info: list | None = None,
        injector=None,
        invariants=None,
        collective_timeout: float | None = None,
        max_retries: int = 3,
        backoff: float | None = None,
    ):
        """``batches[t]`` maps stage name -> list of OpCost for batch t.

        ``sequential=True`` runs the same workers with rendezvous and
        resources but forces each batch's three stages to complete
        before the next batch starts (DSP-Seq), so utilization numbers
        are measured identically in both modes.

        ``sampler_workers`` / ``loader_workers`` > 1 give each GPU
        multiple worker instances striped over mini-batches (the
        multi-instance alternative of §5; the trainer stays single to
        preserve BSP, consuming batches in order).

        ``tracer`` (a :class:`repro.obs.Tracer`) records the full
        timeline: one span per op tagged ``(gpu, stage, batch,
        collective)``, wait spans for every blocked primitive, SM and
        queue-depth counters, cumulative per-link byte counters and —
        when ``batch_info`` supplies per-batch annotations such as
        ``{"cache": {...}}`` — cumulative cache hit/miss counters at
        the simulated time each batch's load stage completes.  With
        ``tracer=None`` no event objects are allocated at all.

        ``metrics`` (a :class:`repro.metrics.MetricsRegistry`) streams
        the same signals into fixed sim-time windows instead of an
        event log: SM utilization and queue-depth gauges (via the
        engine primitives), per-link byte counters and feature-cache
        counters.  Same zero-cost-off contract as the tracer.

        ``injector`` (a :class:`repro.chaos.FaultInjector`) perturbs
        the replay; ``invariants`` (an
        :class:`repro.chaos.InvariantChecker`) audits it.  A
        :class:`~repro.engine.coordination.CollectiveGuard` watchdog is
        armed whenever an injector is present or
        ``collective_timeout`` is given explicitly;
        ``collective_timeout=None`` auto-scales the timeout to the
        costliest batch.  Both default to ``None`` — the fault-free
        path is bit-identical to a runner without these parameters.
        """
        for b in batches:
            if set(b) != set(STAGES):
                raise ConfigError(f"each batch needs stages {STAGES}")
        if sampler_workers < 1 or loader_workers < 1:
            raise ConfigError("need at least one worker per stage")
        if batch_info is not None and len(batch_info) != len(batches):
            raise ConfigError("batch_info must align with batches")
        self.cluster = cluster
        self.batches = batches
        self.queue_capacity = queue_capacity
        self.ccc = ccc
        self.comm_channels = comm_channels
        self.sequential = sequential
        self.sampler_workers = sampler_workers
        self.loader_workers = loader_workers
        self.tracer = tracer
        self.metrics = metrics
        self.batch_info = batch_info
        self.injector = injector
        self.invariants = invariants
        self.collective_timeout = collective_timeout
        self.max_retries = max_retries
        self.backoff = backoff

    # ------------------------------------------------------------------
    def _auto_timeout(self) -> float:
        """Watchdog timeout: twice the costliest batch's serial time.

        Generous enough that healthy-but-straggling peers rarely trip
        it (a false abort only costs a retry), small enough that a
        genuinely absent participant is detected within a batch or two.
        """
        worst = 0.0
        for b in self.batches:
            total = 0.0
            for stage in STAGES:
                for cost in b[stage]:
                    if cost.collective or cost.host:
                        total += float(cost.stage)
                    else:
                        total += float(np.max(cost.per_gpu))
            worst = max(worst, total)
        return 2.0 * worst + 1e-9

    # ------------------------------------------------------------------
    def run(self) -> PipelineResult:
        """Simulate the epoch; returns wall time and GPU utilization."""
        k = self.cluster.num_gpus
        tracer = self.tracer
        met = self.metrics
        inj = self.injector
        inv = self.invariants
        sim = Simulator(tracer=tracer, metrics=met)
        if inv is not None:
            sim.invariants = inv
        if inj is not None:
            inj.install(sim)
        threads = [
            Resource(sim, self.cluster.gpu.total_threads, name=f"gpu{g}-sm")
            for g in range(k)
        ]
        channels = [
            Resource(sim, self.comm_channels, name=f"gpu{g}-comm")
            for g in range(k)
        ]
        barrier = Rendezvous(sim, name="collective")
        gate = LaunchGate(sim, k) if (self.ccc and k > 1) else None
        guard = None
        if inj is not None or self.collective_timeout is not None:
            timeout = (self.collective_timeout
                       if self.collective_timeout is not None
                       else self._auto_timeout())
            guard = CollectiveGuard(sim, timeout,
                                    max_retries=self.max_retries,
                                    backoff=self.backoff)

        # cumulative cluster-wide wire bytes per link class; each GPU's
        # replay of an op adds a 1/k share because OpCost byte fields
        # are already cluster totals for the op
        link_totals = {"nvlink": 0.0, "pcie": 0.0, "network": 0.0}
        cache_totals: dict = {}
        # chaos accounting: bytes skipped by degraded (abandoned)
        # collective rounds, and (gpu, stage, batch) triples lost to
        # crashed workers — mirrors what the invariant checker records
        skipped_bytes: dict = {}
        lost_triples: set = set()

        def note_lost(g: int, stage: str, t: int, reason: str) -> None:
            lost_triples.add((g, stage, t))
            if inv is not None:
                inv.note_lost(g, stage, t, reason)
            if tracer is not None:
                tracer.instant("chaos", f"lost:{stage}", sim.now,
                               cat="chaos", gpu=g, batch=t, reason=reason)

        def stage_done(g: int, stage: str, t: int) -> None:
            if inv is not None:
                inv.on_stage_done(g, stage, t)

        def trace_op(g: int, cost: OpCost, tag, track: str, t0: float,
                     degraded: bool = False):
            stage, batch = tag[0], tag[1]
            extra = {"degraded": True} if degraded else {}
            tracer.span(
                track, cost.label, cat=stage, start=t0, end=sim.now,
                gpu=g, stage=stage, batch=batch,
                collective=cost.collective, host=cost.host, **extra,
            )
            if degraded:
                return
            share = 1.0 / k
            bumped = False
            for link, nbytes in cost.link_bytes().items():
                if nbytes:
                    link_totals[link] += nbytes * share
                    bumped = True
            if bumped:
                tracer.counter("link-bytes", "cumulative", sim.now,
                               **link_totals)

        def finish_op(g: int, cost: OpCost, tag, track: str, t0: float,
                      degraded: bool) -> None:
            if degraded:
                for link, nbytes in cost.link_bytes().items():
                    if nbytes:
                        skipped_bytes[link] = (
                            skipped_bytes.get(link, 0.0) + nbytes / k
                        )
            else:
                if inv is not None:
                    for link, nbytes in cost.link_bytes().items():
                        if nbytes:
                            inv.on_bytes(link, nbytes / k)
                if met is not None:
                    for link, nbytes in cost.link_bytes().items():
                        if nbytes:
                            met.counter("link_bytes", link=link).inc(
                                sim.now, nbytes / k
                            )
            if tracer is not None:
                trace_op(g, cost, tag, track, t0, degraded)

        def emit_batch_info(t: int) -> None:
            """Cumulative cache hit/miss counters when batch t's load
            stage completes (emitted once per batch, by GPU 0)."""
            info = self.batch_info[t] if self.batch_info else None
            if not info:
                return
            for key, value in info.get("cache", {}).items():
                cache_totals[key] = cache_totals.get(key, 0) + value
                if met is not None and value:
                    met.counter("feature_cache", key=key).inc(sim.now, value)
            if cache_totals and tracer is not None:
                tracer.counter("cache", "cumulative", sim.now,
                               **cache_totals)

        def run_op(g: int, cost: OpCost, tag, track: str = ""):
            t0 = sim.now
            if cost.host:
                # host-side work: the GPU just waits
                if inj is not None:
                    bw = inj.blackout_wait(cost)
                    if bw > 0.0:
                        yield Timeout(bw)
                yield Timeout(float(cost.stage))
                finish_op(g, cost, tag, track, t0, False)
                return
            footprint = min(cost.threads, threads[g].capacity)
            if cost.collective:
                if gate is not None:
                    yield gate.wait_turn(g, tag)
                yield channels[g].acquire(1)
                yield threads[g].acquire(footprint)
                if gate is not None:
                    gate.launched(g, tag)
                if inj is not None:
                    d = inj.collective_delay(g)
                    if d > 0.0:
                        yield Timeout(d)
                    # a dropped participant goes dark for the window
                    d = inj.drop_wait(g)
                    if d > 0.0:
                        yield Timeout(d)
                degraded = False
                if guard is not None:
                    outcome = yield from guard.join(tag, k)
                    degraded = outcome == ROUND_ABANDONED
                else:
                    yield barrier.arrive(tag, k)
                dur = float(cost.stage)
                if inj is not None:
                    bw = inj.blackout_wait(cost)
                    if bw > 0.0:
                        yield Timeout(bw)
                    dur *= inj.comm_scale(g, cost)
                yield Timeout(dur)
                threads[g].release(footprint)
                channels[g].release(1)
                finish_op(g, cost, tag, track, t0, degraded)
            else:
                yield threads[g].acquire(footprint)
                dur = float(cost.per_gpu[g])
                if inj is not None:
                    if any(cost.link_bytes().values()):
                        bw = inj.blackout_wait(cost)
                        if bw > 0.0:
                            yield Timeout(bw)
                        dur *= inj.comm_scale(g, cost)
                    else:
                        dur *= inj.compute_scale(g)
                yield Timeout(dur)
                threads[g].release(footprint)
                finish_op(g, cost, tag, track, t0, False)

        def skip_ops(g: int, stage: str, t: int):
            """Walk a lost batch's collective tags through the CCC gate.

            The gate requires *every* GPU to launch *every* tag in the
            global order, so a worker that silently drops a batch would
            wedge its own GPU's later launches (and, on the leader,
            stop the order from growing at all).  Skipped launches are
            free — no resources, no rendezvous, no bytes — the dead
            participant's peers still time out and degrade through the
            watchdog.
            """
            if gate is None:
                return
            for i, cost in enumerate(self.batches[t][stage]):
                if cost.collective:
                    tag = (stage, t, i)
                    yield gate.wait_turn(g, tag)
                    gate.launched(g, tag)

        B = len(self.batches)
        procs: dict = {}
        queue_producers: dict = {}
        queue_consumers: dict = {}
        op_worker = None  # (gpu, tag) -> worker name that launches it
        if self.sequential:
            # one worker per GPU runs sample -> load -> train per batch,
            # with a cross-GPU barrier between batches (BSP steps)
            def worker(g: int):
                track = f"seq-gpu{g}"
                for t in range(B):
                    for stage in STAGES:
                        if inj is not None and inj.crashed(g, stage):
                            # degraded participation: skip the ops but
                            # keep the launch order legal and keep
                            # arriving at the batch-end barrier
                            note_lost(g, stage, t, "worker-crash")
                            yield from skip_ops(g, stage, t)
                            continue
                        if inj is not None:
                            st = inj.queue_stall(g, stage)
                            if st > 0.0:
                                yield Timeout(st)
                        for i, cost in enumerate(self.batches[t][stage]):
                            yield from run_op(g, cost, (stage, t, i), track)
                        stage_done(g, stage, t)
                        if (stage == "load" and g == 0
                                and (tracer is not None or met is not None)):
                            emit_batch_info(t)
                    if k > 1:
                        yield barrier.arrive(("batch-end", t), k)

            def op_worker(g: int, tag) -> str:
                return f"seq-gpu{g}"

            for g in range(k):
                if tracer is not None:
                    tracer.declare_track(f"seq-gpu{g}", group=f"gpu{g}")
                procs[f"seq-gpu{g}"] = sim.spawn(worker(g), name=f"seq-gpu{g}")
        else:
            S, L = self.sampler_workers, self.loader_workers
            # one loader input queue per loader instance: batch t is
            # handled by sampler t % S and loader t % L on every GPU
            queues_sl = [
                [BoundedQueue(sim, self.queue_capacity, name=f"gpu{g}-loadq{w}")
                 for w in range(L)]
                for g in range(k)
            ]
            queues_lt = [
                BoundedQueue(sim, self.queue_capacity, name=f"gpu{g}-trainq")
                for g in range(k)
            ]
            for g in range(k):
                for w in range(L):
                    queue_producers[f"gpu{g}-loadq{w}"] = [
                        f"sampler{s}-gpu{g}" for s in range(S)
                    ]
                    queue_consumers[f"gpu{g}-loadq{w}"] = [f"loader{w}-gpu{g}"]
                queue_producers[f"gpu{g}-trainq"] = [
                    f"loader{w}-gpu{g}" for w in range(L)
                ]
                queue_consumers[f"gpu{g}-trainq"] = [f"trainer-gpu{g}"]

            def sampler(g: int, w: int):
                track = f"sampler{w}-gpu{g}"
                for t in range(w, B, S):
                    if inj is not None and inj.crashed(g, "sample"):
                        # flush loss markers for the rest of the stripe
                        # so downstream stages account them and exit
                        for tt in range(t, B, S):
                            note_lost(g, "sample", tt, "worker-crash")
                            yield from skip_ops(g, "sample", tt)
                            yield queues_sl[g][tt % L].put(("lost", tt))
                        return
                    if inj is not None:
                        st = inj.queue_stall(g, "sample")
                        if st > 0.0:
                            yield Timeout(st)
                    for i, cost in enumerate(self.batches[t]["sample"]):
                        yield from run_op(g, cost, ("sample", t, i), track)
                    stage_done(g, "sample", t)
                    yield queues_sl[g][t % L].put(t)

            def loader(g: int, w: int):
                track = f"loader{w}-gpu{g}"
                for _ in range(w, B, L):
                    if inj is not None:
                        st = inj.queue_stall(g, "load")
                        if st > 0.0:
                            yield Timeout(st)
                    item = yield queues_sl[g][w].get()
                    if type(item) is tuple:
                        # upstream loss marker: forward it downstream
                        t = item[1]
                        note_lost(g, "load", t, "upstream-lost")
                        yield from skip_ops(g, "load", t)
                        yield queues_lt[g].put(("lost", t))
                        continue
                    t = item
                    if inj is not None and inj.crashed(g, "load"):
                        # a crashed loader keeps draining its input so
                        # the pipeline degrades instead of wedging
                        note_lost(g, "load", t, "worker-crash")
                        yield from skip_ops(g, "load", t)
                        yield queues_lt[g].put(("lost", t))
                        continue
                    for i, cost in enumerate(self.batches[t]["load"]):
                        yield from run_op(g, cost, ("load", t, i), track)
                    stage_done(g, "load", t)
                    if g == 0 and (tracer is not None or met is not None):
                        emit_batch_info(t)
                    yield queues_lt[g].put(t)

            def trainer(g: int):
                # BSP: consume strictly in batch order, stashing early
                # arrivals from out-of-order loader instances
                track = f"trainer-gpu{g}"
                stash: dict = {}
                next_t = 0
                while next_t < B:
                    if inj is not None and inj.crashed(g, "train"):
                        # the BSP sink has no degraded mode: it stops
                        # consuming, which upstream sees as a stall
                        for tt in range(next_t, B):
                            note_lost(g, "train", tt, "worker-crash")
                        return
                    if next_t in stash:
                        status = stash.pop(next_t)
                        if status == "ok":
                            for i, cost in enumerate(
                                    self.batches[next_t]["train"]):
                                yield from run_op(
                                    g, cost, ("train", next_t, i), track)
                            stage_done(g, "train", next_t)
                        else:
                            note_lost(g, "train", next_t, "upstream-lost")
                            yield from skip_ops(g, "train", next_t)
                        next_t += 1
                        continue
                    if inj is not None:
                        st = inj.queue_stall(g, "train")
                        if st > 0.0:
                            yield Timeout(st)
                    item = yield queues_lt[g].get()
                    if type(item) is tuple:
                        stash[item[1]] = "lost"
                    else:
                        stash[item] = "ok"

            def op_worker(g: int, tag) -> str:
                stage, t = tag[0], tag[1]
                if stage == "sample":
                    return f"sampler{t % S}-gpu{g}"
                if stage == "load":
                    return f"loader{t % L}-gpu{g}"
                return f"trainer-gpu{g}"

            for g in range(k):
                if tracer is not None:
                    for w in range(S):
                        tracer.declare_track(f"sampler{w}-gpu{g}",
                                             group=f"gpu{g}", sort=w)
                    for w in range(L):
                        tracer.declare_track(f"loader{w}-gpu{g}",
                                             group=f"gpu{g}", sort=S + w)
                    tracer.declare_track(f"trainer-gpu{g}", group=f"gpu{g}",
                                         sort=S + L)
                for w in range(S):
                    name = f"sampler{w}-gpu{g}"
                    procs[name] = sim.spawn(sampler(g, w), name=name)
                for w in range(L):
                    name = f"loader{w}-gpu{g}"
                    procs[name] = sim.spawn(loader(g, w), name=name)
                name = f"trainer-gpu{g}"
                procs[name] = sim.spawn(trainer(g), name=name)

        try:
            total = sim.run()
            if met is not None:
                met.finalize(total)
        except DeadlockError as e:
            stall = _diagnose_stall(e, procs, queue_producers,
                                    queue_consumers, gate=gate,
                                    op_worker=op_worker)
            if stall is not None:
                raise stall from None
            raise

        if inv is not None:
            share = 1.0 / k
            expected_bytes: dict = {}
            for (g, stage, t) in inv.completed:
                for cost in self.batches[t][stage]:
                    for link, nbytes in cost.link_bytes().items():
                        if nbytes:
                            expected_bytes[link] = (
                                expected_bytes.get(link, 0.0)
                                + nbytes * share
                            )
            for link, nbytes in skipped_bytes.items():
                expected_bytes[link] = (
                    expected_bytes.get(link, 0.0) - nbytes
                )
            inv.finalize(
                expected_bytes=expected_bytes,
                expected_batches=[
                    (g, stage, t)
                    for g in range(k) for stage in STAGES for t in range(B)
                ],
            )

        occ = float(np.mean([r.occupancy(total) for r in threads]))
        per_busy = tuple(r.busy_fraction(total) for r in threads)
        busy = float(np.mean(per_busy))
        return PipelineResult(
            epoch_time=total, utilization=occ,
            busy_fraction=busy, per_gpu_busy=per_busy,
            lost_batches=len(lost_triples),
            degraded_rounds=0 if guard is None else guard.abandoned_rounds,
            aborted_rounds=0 if guard is None else guard.aborts,
            invariants=None if inv is None else inv.summary(),
        )


def _diagnose_stall(err: DeadlockError, procs: dict,
                    queue_producers: dict, queue_consumers: dict,
                    gate=None, op_worker=None):
    """Classify a deadlock as a pipeline stall when provable.

    A stall is a wedge that can never clear because the counterparty
    has already exited:

    - a process blocked putting to (getting from) a bounded queue
      whose every consumer (producer) is done;
    - a process waiting at the CCC gate for a tag that can never come:
      either the tag is unregistered and the *leader* worker that
      would submit it is done, or the gate's next launch on that GPU
      belongs to a worker that exited without launching it.

    Returns a :class:`PipelineStall` naming the dead workers, or
    ``None`` when the deadlock is not of that shape (e.g. the Fig 8
    collective interleaving, which must keep raising plain
    :class:`DeadlockError`).
    """
    stalled = []
    dead: set = set()
    for name, waiting in err.waiting.items():
        if waiting.startswith("put("):
            counterparts = queue_consumers.get(waiting[4:-1], ())
        elif waiting.startswith("get("):
            counterparts = queue_producers.get(waiting[4:-1], ())
        else:
            continue
        exited = [c for c in counterparts if c in procs and procs[c].done]
        if counterparts and len(exited) == len(counterparts):
            stalled.append(f"{name} blocked on {waiting}")
            dead.update(exited)
    if gate is not None and op_worker is not None:
        for g, waiters in enumerate(gate._waiters):
            for proc, tag in waiters:
                if gate._position.get(tag) is None:
                    # unregistered: only the leader's worker for this
                    # op could submit it to the order
                    owner = op_worker(gate.leader, tag)
                elif gate._next[g] < len(gate.order):
                    # registered but this GPU's launch cursor is stuck
                    # on an earlier tag someone exited without firing
                    owner = op_worker(g, gate.order[gate._next[g]])
                else:  # pragma: no cover - waiter implies pending tags
                    continue
                p = procs.get(owner)
                if p is not None and p.done:
                    stalled.append(f"{proc.name} blocked on ccc {tag}")
                    dead.add(owner)
    if not stalled:
        return None
    return PipelineStall(
        "pipeline stalled: " + "; ".join(sorted(stalled))
        + " — exited worker(s): " + ", ".join(sorted(dead)),
        waiting=err.waiting,
        dead=tuple(sorted(dead)),
    )
