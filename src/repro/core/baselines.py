"""The four baseline system architectures of the paper (§7.1).

Each baseline is the same training loop as DSP but with that system's
data placement, sampler, loader and allocator:

=========  ==========  ==================  ===================  =========
system     sampling    topology location   features             allocator
=========  ==========  ==================  ===================  =========
PyG        CPU (slow)  host                host + bulk PCIe     pooled
DGL-CPU    CPU         host                host + bulk PCIe     pooled
DGL-UVA    GPU + UVA   host (UVA)          host (UVA, no cache) pooled
Quiver     GPU + UVA   host (UVA)          replicated GPU cache raw CUDA
=========  ==========  ==================  ===================  =========

PyG's sampler is a constant factor slower than DGL's (both are
host-side, but DGL's C++ sampler is better optimized — visible in
Table 6's PyG vs DGL-CPU rows).  Quiver pays raw cudaMalloc/cudaFree
per batch, which is why it trails DGL-UVA despite caching (§7.2).
"""

from __future__ import annotations

from repro.cache.loader import FeatureLoader, HostGatherLoader
from repro.cache.policies import rank_by_degree
from repro.cache.store import NoCache, ReplicatedCache
from repro.core.system import DSP, TrainingSystem
from repro.hw.memory import AllocatorKind
from repro.sampling.cpu import CPUSampler
from repro.sampling.ops import HostWork, OpTrace, Overhead
from repro.sampling.pulldata import PullDataSampler
from repro.sampling.uva import UVASampler


class _CPUSystem(TrainingSystem):
    """Shared skeleton of PyG and DGL-CPU."""

    #: relative sampling throughput vs the DGL C++ sampler
    sampler_efficiency = 1.0

    def _prepare(self) -> None:
        self.data = self.base_dataset
        self.sampler = CPUSampler(self.data.graph, self.k, seed=self.config.seed)
        self.loader = HostGatherLoader(self.data.features, self.k)

    def _sample(self, seeds_per_gpu):
        samples, trace, _ = self.sampler.sample(seeds_per_gpu, self.csp_config)
        if self.sampler_efficiency != 1.0:
            scaled = OpTrace()
            for op in trace:
                if isinstance(op, HostWork) and op.kind == "sample":
                    scaled.add(
                        HostWork(
                            op.tasks / self.sampler_efficiency,
                            kind=op.kind,
                            label=op.label,
                        )
                    )
                else:
                    scaled.add(op)
            trace = scaled
        return samples, trace


class PyG(_CPUSystem):
    """PyTorch Geometric 2.0 architecture: CPU sampling, host features."""

    name = "PyG"
    sampler_efficiency = 0.4


class DGLCPU(_CPUSystem):
    """DGL 0.8 with its default CPU sampler (the paper's DGL-CPU)."""

    name = "DGL-CPU"


class DGLUVA(TrainingSystem):
    """DGL with UVA sampling: everything in host memory, no cache."""

    name = "DGL-UVA"

    def _prepare(self) -> None:
        self.data = self.base_dataset
        self.sampler = UVASampler(self.data.graph, self.k, seed=self.config.seed)
        self.loader = FeatureLoader(
            self.data.features, NoCache(self.data.num_nodes, self.k)
        )


class Quiver(TrainingSystem):
    """UVA sampling + replicated feature cache + raw CUDA allocation.

    cudaMalloc/cudaFree synchronize the device and serialize in the
    driver, so the per-batch penalty grows with the number of GPUs —
    which is why Quiver's sampling scales worse than DGL-UVA's in
    Table 6 even though both use the same UVA kernels.
    """

    name = "Quiver"
    allocator = AllocatorKind.RAW_CUDA
    #: raw (re)allocations per batch in the sampler / loader paths
    SAMPLE_ALLOCS = 8
    LOAD_ALLOCS = 3

    def _batch_overhead(self) -> float:
        return 0.0  # accounted inside the sample/load stages below

    def _alloc_stall(self, allocs: int) -> float:
        from repro.hw.memory import RAW_ALLOC_S

        # driver-serialized across GPUs: cost scales with the GPU count
        return allocs * RAW_ALLOC_S * self.k * self.batch_shrink

    def _sample(self, seeds_per_gpu):
        samples, trace = super()._sample(seeds_per_gpu)
        trace.add(Overhead(self._alloc_stall(self.SAMPLE_ALLOCS),
                           label="cudaMalloc-sample"))
        return samples, trace

    def _load(self, requests):
        feats, trace, stats = super()._load(requests)
        trace.add(Overhead(self._alloc_stall(self.LOAD_ALLOCS),
                           label="cudaMalloc-load"))
        return feats, trace, stats

    def _prepare(self) -> None:
        cfg = self.config
        self.data = self.base_dataset
        self.sampler = UVASampler(self.data.graph, self.k, seed=cfg.seed)
        row_bytes = self.data.feature_dim * self.data.features.dtype.itemsize
        budget_bytes = cfg.feature_cache_bytes
        if budget_bytes is None:
            # raw cudaMalloc management fragments memory and needs big
            # safety headroom, so Quiver can devote less of the GPU to
            # its cache than DSP's planned layout can
            budget_bytes = self.cluster.gpu.memory_bytes * 0.5
        budget_nodes = int(budget_bytes // row_bytes)
        store = ReplicatedCache(
            self.data.num_nodes,
            self.k,
            rank_by_degree(self.data.graph),
            budget_nodes=budget_nodes,
        )
        self.store = store
        self.loader = FeatureLoader(self.data.features, store)


class PullDSP(DSP):
    """DSP's layout and cache, with Pull-Data sampling swapped in.

    The alternative CSP design of Fig 11: remote frontier nodes pull
    whole adjacency lists instead of pushing sampling tasks.  Training
    and serving comparisons use it to isolate the sampling-primitive
    choice — everything else (partition, cache, pipeline) is DSP's.
    """

    name = "DSP-Pull"

    def _prepare(self) -> None:
        super()._prepare()
        self.sampler = PullDataSampler(
            self.sampler.patches,
            self.sampler.part_offsets,
            seed=self.config.seed,
        )
