"""Cost engine: op traces -> simulated hardware time.

Converts the hardware-level operations emitted by samplers, loaders and
trainers (:mod:`repro.sampling.ops`) into durations and byte counters
using the :mod:`repro.hw` models.  Two consumers:

- sequential (DSP-Seq and all baselines): stage time is the max across
  GPUs, epoch time is the sum of stages (a synchronization barrier
  after every op, which is what the real systems do);
- pipelined (DSP): :class:`repro.core.pipeline.PipelineRunner` replays
  :class:`OpCost` objects inside the discrete-event engine, so stages
  of *different* mini-batches overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.comm import CostModel
from repro.hw.devices import Cluster
from repro.hw.kernels import (
    compute_kernel,
    gather_kernel,
    kernel_duration,
    sampling_kernel,
)
from repro.sampling.ops import (
    AllReduce,
    AllToAll,
    HostWork,
    LocalKernel,
    NetworkTransfer,
    OpTrace,
    Overhead,
    ParallelGroup,
    PCIeCopy,
    UVAGather,
)
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class OpCost:
    """Cost of one op, ready for analytic or event-driven replay.

    ``per_gpu[g]`` is how long GPU ``g``'s kernel runs; ``stage`` is
    the wall time of the whole op under a barrier.  ``collective`` ops
    must rendezvous across GPUs before time passes; ``threads`` is the
    SM footprint the kernel occupies while running.
    """

    label: str
    per_gpu: np.ndarray
    stage: float
    threads: int
    collective: bool = False
    host: bool = False
    nvlink_bytes: float = 0.0
    pcie_bytes: float = 0.0
    uva_payload: float = 0.0
    network_bytes: float = 0.0

    def link_bytes(self) -> dict:
        """Wire bytes per link class (cluster-wide totals for this op),
        keyed by :data:`repro.hw.comm.LINK_CLASSES`."""
        return {"nvlink": self.nvlink_bytes, "pcie": self.pcie_bytes,
                "network": self.network_bytes}


#: SM threads an NCCL-style communication kernel occupies (paper §5:
#: "only need a small number of threads to fully utilize NVLink")
COMM_KERNEL_THREADS = 128
#: SM threads a UVA gather occupies (memory-latency bound)
UVA_KERNEL_THREADS = 512


class CostEngine:
    """Stateless op -> OpCost conversion for one cluster.

    ``launch_scale`` shrinks fixed per-op overheads (kernel launch,
    collective launch, PCIe latency).  Runs that use a mini-batch f
    times smaller than the paper's 1024 pass ``launch_scale=f`` so that
    constant overheads keep the same share of batch time.
    """

    def __init__(self, cluster: Cluster, launch_scale: float = 1.0,
                 network=None, backend: str = "nccl"):
        from repro.hw.devices import NetworkSpec

        self.cluster = cluster
        self.model = CostModel(cluster.topology, launch_scale=launch_scale,
                               backend=backend)
        self.network = network if network is not None else NetworkSpec()
        self.k = cluster.num_gpus
        from dataclasses import replace

        self.gpu = replace(
            cluster.gpu,
            kernel_launch_s=cluster.gpu.kernel_launch_s * launch_scale,
        )
        self.launch_scale = launch_scale

    # ------------------------------------------------------------------
    def op_cost(self, op) -> OpCost:
        if isinstance(op, AllToAll):
            return self._alltoall(op)
        if isinstance(op, AllReduce):
            return self._allreduce(op)
        if isinstance(op, LocalKernel):
            return self._kernel(op)
        if isinstance(op, UVAGather):
            return self._uva(op)
        if isinstance(op, HostWork):
            return self._host(op)
        if isinstance(op, PCIeCopy):
            return self._copy(op)
        if isinstance(op, ParallelGroup):
            return self._parallel(op)
        if isinstance(op, Overhead):
            return OpCost(
                label=op.label,
                per_gpu=np.zeros(self.k),
                stage=float(op.seconds),
                threads=1,
                host=True,
            )
        if isinstance(op, NetworkTransfer):
            return self._network(op)
        raise ConfigError(f"unknown op type {type(op).__name__}")

    def _network(self, op: NetworkTransfer) -> OpCost:
        m = np.asarray(op.matrix, dtype=np.float64)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ConfigError("network matrix must be square")
        # each machine's NIC is the bottleneck: max of its in/out totals
        out_load = m.sum(axis=1) - np.diag(m)
        in_load = m.sum(axis=0) - np.diag(m)
        worst = float(np.maximum(out_load, in_load).max())
        dur = self.network.latency + worst / self.network.bandwidth if worst \
            else 0.0
        return OpCost(
            label=op.label,
            per_gpu=np.zeros(self.k),
            stage=dur,
            threads=1,
            host=True,  # NIC DMA: GPUs wait but do not execute
            network_bytes=float(m.sum() - np.trace(m)),
        )

    def trace_cost(self, trace: OpTrace) -> list[OpCost]:
        return [self.op_cost(op) for op in trace]

    def stage_time(self, trace: OpTrace) -> float:
        """Sequential wall time of a trace (barrier after each op)."""
        return sum(c.stage for c in self.trace_cost(trace))

    # ------------------------------------------------------------------
    def _alltoall(self, op: AllToAll) -> OpCost:
        c = self.model.alltoall(op.matrix)
        return OpCost(
            label=op.label,
            per_gpu=np.full(self.k, c.time),
            stage=c.time,
            threads=COMM_KERNEL_THREADS,
            collective=self.k > 1,
            nvlink_bytes=c.nvlink_bytes,
        )

    def _allreduce(self, op: AllReduce) -> OpCost:
        c = self.model.allreduce(op.nbytes)
        return OpCost(
            label=op.label,
            per_gpu=np.full(self.k, c.time),
            stage=c.time,
            threads=COMM_KERNEL_THREADS,
            collective=self.k > 1,
            nvlink_bytes=c.nvlink_bytes,
        )

    def _kernel(self, op: LocalKernel) -> OpCost:
        gpu = self.gpu
        per = np.zeros(self.k)
        threads = COMM_KERNEL_THREADS
        for g in range(self.k):
            work = float(op.work[g])
            if op.kind == "sample":
                spec = sampling_kernel(gpu, num_tasks=work, fanout=1)
            elif op.kind in ("gather", "decode"):
                # decode: expanding compressed feature rows is a
                # bandwidth-bound pass over the decoded bytes, the same
                # roofline as a gather of that volume
                spec = gather_kernel(gpu, nbytes=work)
            elif op.kind == "compute":
                spec = compute_kernel(
                    gpu, flops=work, footprint_scale=self.launch_scale
                )
            else:
                raise ConfigError(f"unknown kernel kind {op.kind!r}")
            per[g] = kernel_duration(spec)
            threads = spec.threads
        return OpCost(
            label=op.label or op.kind,
            per_gpu=per,
            stage=float(per.max()),
            threads=threads,
        )

    def _uva(self, op: UVAGather) -> OpCost:
        active = list(range(self.k))
        per = np.zeros(self.k)
        wire = payload = 0.0
        for g in range(self.k):
            c = self.model.uva_gather(g, int(op.items[g]), op.item_bytes, active)
            per[g] = c.time
            wire += c.pcie_bytes
            payload += c.payload_bytes
        return OpCost(
            label=op.label,
            per_gpu=per,
            stage=float(per.max()),
            threads=UVA_KERNEL_THREADS,
            pcie_bytes=wire,
            uva_payload=payload,
        )

    def _host(self, op: HostWork) -> OpCost:
        cpu = self.cluster.cpu
        total = float(np.sum(op.tasks))
        if op.kind == "sample":
            rate = cpu.num_threads * cpu.sample_rate_per_thread
        elif op.kind == "gather":
            rate = cpu.gather_rate
        else:
            raise ConfigError(f"unknown host work kind {op.kind!r}")
        dur = total / rate if total else 0.0
        # GPUs are idle while the host works: per_gpu = 0
        return OpCost(
            label=op.label,
            per_gpu=np.zeros(self.k),
            stage=dur,
            threads=1,
            host=True,
        )

    def _copy(self, op: PCIeCopy) -> OpCost:
        active = list(range(self.k))
        per = np.zeros(self.k)
        bytes_total = 0.0
        for g in range(self.k):
            c = self.model.pcie_copy(g, float(op.nbytes[g]), active)
            per[g] = c.time
            bytes_total += c.pcie_bytes
        return OpCost(
            label=op.label,
            per_gpu=per,
            stage=float(per.max()),
            threads=UVA_KERNEL_THREADS,
            pcie_bytes=bytes_total,
        )

    def _parallel(self, op: ParallelGroup) -> OpCost:
        branch_costs = [[self.op_cost(o) for o in branch] for branch in op.branches]
        per = np.zeros(self.k)
        stage = 0.0
        nvl = pcie = uva = net = 0.0
        for costs in branch_costs:
            b_per = np.sum([c.per_gpu for c in costs], axis=0) if costs else np.zeros(self.k)
            per = np.maximum(per, b_per)
            stage = max(stage, sum(c.stage for c in costs))
            nvl += sum(c.nvlink_bytes for c in costs)
            pcie += sum(c.pcie_bytes for c in costs)
            uva += sum(c.uva_payload for c in costs)
            net += sum(c.network_bytes for c in costs)
        return OpCost(
            label=op.label,
            per_gpu=per,
            stage=stage,
            threads=UVA_KERNEL_THREADS,
            collective=self.k > 1 and any(
                c.collective for costs in branch_costs for c in costs
            ),
            nvlink_bytes=nvl,
            pcie_bytes=pcie,
            uva_payload=uva,
            network_bytes=net,
        )

    # ------------------------------------------------------------------
    def occupancy_of(self, costs: list[OpCost], wall: float) -> float:
        """Thread-weighted GPU occupancy of a sequential cost list."""
        if wall <= 0:
            return 0.0
        total_threads = self.cluster.gpu.total_threads
        area = 0.0
        for c in costs:
            area += float(c.per_gpu.sum()) * min(c.threads, total_threads)
        return area / (total_threads * wall * self.k)
