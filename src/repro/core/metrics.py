"""Result containers: per-batch costs, per-epoch metrics, run results."""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np


def scrub_nan(value):
    """JSON-safe copy of ``value``: NaN floats become None, recursively
    through dicts and lists/tuples (JSON has no NaN literal)."""
    if isinstance(value, float) and value != value:
        return None
    if isinstance(value, dict):
        return {k: scrub_nan(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [scrub_nan(v) for v in value]
    return value


@dataclass
class BatchCost:
    """Simulated cost of one mini-batch, split by stage."""

    sample_time: float = 0.0
    load_time: float = 0.0
    train_time: float = 0.0
    nvlink_bytes: float = 0.0
    pcie_bytes: float = 0.0
    uva_payload_bytes: float = 0.0

    @property
    def total_time(self) -> float:
        return self.sample_time + self.load_time + self.train_time

    def __add__(self, other: "BatchCost") -> "BatchCost":
        return BatchCost(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)
        })


@dataclass
class EpochMetrics:
    """One epoch of one system."""

    epoch_time: float  # simulated seconds (pipelined if enabled)
    sample_time: float  # sampler-only time (Table 6 definition)
    load_time: float
    train_time: float
    nvlink_bytes: float
    pcie_bytes: float
    network_bytes: float
    loss: float
    train_accuracy: float
    val_accuracy: float
    num_batches: int
    utilization: float = 0.0  # mean GPU busy fraction (Fig 6)
    cache_stats: dict = field(default_factory=dict)


#: columns exported per epoch, in order
EPOCH_FIELDS = (
    "epoch_time", "sample_time", "load_time", "train_time",
    "nvlink_bytes", "pcie_bytes", "network_bytes",
    "loss", "train_accuracy", "val_accuracy",
    "num_batches", "utilization",
)


def _epoch_row(e: EpochMetrics) -> dict:
    return {name: getattr(e, name) for name in EPOCH_FIELDS}


#: the metric subset the CLI exports as JSON (``repro train/compare``)
CLI_METRIC_KEYS = (
    "epoch_time", "sample_time", "load_time", "train_time",
    "nvlink_bytes", "pcie_bytes", "network_bytes",
    "loss", "val_accuracy", "utilization", "num_batches",
)


def metrics_dict(m: EpochMetrics) -> dict:
    """JSON-safe dict of one epoch's CLI-exported metrics."""
    return {key: scrub_nan(getattr(m, key)) for key in CLI_METRIC_KEYS}


@dataclass
class RunResult:
    """A full run: system + config identification and per-epoch metrics."""

    system: str
    dataset: str
    num_gpus: int
    epochs: list[EpochMetrics] = field(default_factory=list)

    @property
    def mean_epoch_time(self) -> float:
        return float(np.mean([e.epoch_time for e in self.epochs]))

    @property
    def mean_sample_time(self) -> float:
        return float(np.mean([e.sample_time for e in self.epochs]))

    @property
    def final_val_accuracy(self) -> float:
        return self.epochs[-1].val_accuracy if self.epochs else 0.0

    # -- export ----------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "dataset": self.dataset,
            "num_gpus": self.num_gpus,
            "epochs": [_epoch_row(e) for e in self.epochs],
        }

    def to_json(self, path=None) -> str:
        """JSON string; also written to ``path`` when given."""
        import json

        payload = self.to_dict()
        payload["epochs"] = [scrub_nan(row) for row in payload["epochs"]]
        text = json.dumps(payload, indent=2)
        if path is not None:
            with open(path, "w") as f:
                f.write(text)
        return text

    def to_csv(self, path=None) -> str:
        """CSV with one row per epoch; also written to ``path`` if given."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(("system", "dataset", "num_gpus", "epoch")
                        + EPOCH_FIELDS)
        for i, e in enumerate(self.epochs):
            row = _epoch_row(e)
            writer.writerow(
                [self.system, self.dataset, self.num_gpus, i]
                + [row[f] for f in EPOCH_FIELDS]
            )
        text = buf.getvalue()
        if path is not None:
            with open(path, "w") as f:
                f.write(text)
        return text
