"""Multi-machine DSP (paper §3.2, last paragraph).

"To utilize GPUs on multiple machines, DSP replicates the graph
topology and hot features across the machines and partitions the cold
features among the machines.  Thus, the machines only communicate for
cold features and model synchronization."

:class:`MultiMachineDSP` implements exactly that on top of the
single-machine :class:`~repro.core.system.DSP`:

- every machine holds the same partitioned topology and the same
  partitioned hot-feature cache (replication), so sampling and hot
  loading are intra-machine and identical to single-machine DSP;
- the *cold* feature vectors are sharded across machines by node id;
  a cold read whose shard lives on another machine crosses the network
  (one request + one row back) instead of local UVA;
- after the backward pass, gradients are allreduced hierarchically:
  the NVLink ring inside each machine, then a ring over the network.

The global mini-batch grows with the machine count (data parallelism);
training is functionally exact — ``num_machines * num_gpus`` model
replicas take identical BSP steps.
"""

from __future__ import annotations

import numpy as np

from repro.cache.store import Placement
from repro.core.config import RunConfig
from repro.core.system import DSP
from repro.hw.devices import NetworkSpec
from repro.nn import Adam, clone_model
from repro.sampling.ops import (
    NetworkTransfer,
    OpTrace,
    ParallelGroup,
    UVAGather,
)
from repro.utils.errors import ConfigError

ID_BYTES = 8


class MultiMachineDSP(DSP):
    """DSP across ``num_machines`` identical NVLink machines.

    The cost trace describes one (representative) machine plus the
    inter-machine transfers; machines execute symmetric work in
    parallel, which is what the replicated layout guarantees.
    """

    name = "DSP-multi"

    def __init__(self, config: RunConfig, num_machines: int = 2,
                 network: NetworkSpec | None = None):
        if num_machines < 1:
            raise ConfigError("need at least one machine")
        self.num_machines = num_machines
        super().__init__(config)
        self.engine.network = network or NetworkSpec()
        # cold features are sharded across machines by node id
        self._shard = np.arange(self.data.num_nodes) % num_machines
        # one replica per GPU per machine, all starting identical
        extra = clone_model(self.models[0], self.k * (num_machines - 1))
        self.models = self.models + extra
        self.opts = [Adam(m.parameters(), lr=config.lr) for m in self.models]

    # ------------------------------------------------------------------
    def _global_batches(self) -> list[np.ndarray]:
        """Global batches grow with the machine count (data parallel)."""
        seeds = self.data.train_nodes.copy()
        self._rng.shuffle(seeds)
        global_batch = self.config.batch_size * self.k * self.num_machines
        n = len(seeds) // global_batch
        if n == 0:
            raise ConfigError(
                "too few train seeds for the multi-machine global batch"
            )
        return [seeds[i * global_batch : (i + 1) * global_batch]
                for i in range(n)]

    def _machine_slices(self, seeds: np.ndarray) -> list[np.ndarray]:
        return [seeds[m :: self.num_machines] for m in range(self.num_machines)]

    # ------------------------------------------------------------------
    def _sample(self, seeds_per_gpu):
        """Machine 0's sample defines the trace; the other machines run
        symmetric CSP on their own slices (functional part only)."""
        samples, trace = super()._sample(seeds_per_gpu)
        return samples, trace

    def _load(self, requests):
        """Hot path as in DSP; cold path split local-shard (UVA) vs
        remote-shard (network round trip to the shard's machine)."""
        feats, trace, stats = super()._load(requests)
        if self.num_machines == 1:
            return feats, trace, stats
        M = self.num_machines
        row = self.loader.row_bytes
        req = np.zeros((M, M))
        local_items = np.zeros(self.k)
        remote_rows = 0
        for g, nodes in enumerate(requests):
            nodes = np.unique(np.asarray(nodes, dtype=np.int64))
            loc = self.loader.store.locate(nodes, g)
            cold = nodes[loc.placement == Placement.COLD]
            mine = self._shard[cold] == 0  # this trace follows machine 0
            local_items[g] = int(mine.sum())
            for m in range(1, M):
                n = int((self._shard[cold] == m).sum())
                req[0, m] += n * ID_BYTES
                req[m, 0] += n * row
                remote_rows += n
        # rebuild the load op: hot branch unchanged, cold split in two
        group = trace.ops[0]
        hot_branch = group.branches[0]
        cold_branch = (
            UVAGather(local_items, item_bytes=row, label="feat-cold-local"),
        )
        net_branch = (NetworkTransfer(req, label="feat-cold-remote"),)
        new = OpTrace()
        new.add(ParallelGroup(branches=(hot_branch, cold_branch, net_branch),
                              label="feature-load-mm"))
        stats = dict(stats)
        stats["cold_remote"] = remote_rows
        return feats, new, stats

    def _train_batch(self, samples, feats, functional):
        """Machine-0 replicas train on machine-0 slices functionally;
        the trace adds the inter-machine gradient ring."""
        trace, loss, acc = super()._train_batch(samples, feats, functional)
        if self.num_machines > 1:
            M = self.num_machines
            per = 2.0 * (M - 1) / M * self.grad_nbytes
            ring = np.zeros((M, M))
            for m in range(M):
                ring[m, (m + 1) % M] = per
            trace.add(NetworkTransfer(ring, label="grad-network-ring"))
        return trace, loss, acc

    def run_epoch(self, max_batches=None, functional=True, tracer=None):
        """Functionally, the other machines' replicas mirror machine 0.

        Machine 0 trains on its slice of each global batch; because the
        layout is replicated and slices are iid, the other machines'
        functional contribution is statistically identical, so their
        replicas are synchronized to machine 0's parameters after the
        global allreduce (exact BSP over machine-0's gradient stream).
        The cost side fully accounts for every machine's communication.
        """
        metrics = super().run_epoch(max_batches=max_batches,
                                    functional=functional, tracer=tracer)
        if functional:
            # keep remote replicas identical to machine 0 (BSP)
            state = self.models[0].state()
            for m in self.models[self.k :]:
                m.load_state(state)
        return metrics

    def _assign_seeds(self, seeds: np.ndarray) -> list[np.ndarray]:
        """Machine 0 takes its slice, then co-partitions per GPU."""
        mine = self._machine_slices(seeds)[0]
        return super()._assign_seeds(mine)
