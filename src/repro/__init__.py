"""repro — a reproduction of "DSP: Efficient GNN Training with Multiple
GPUs" (PPoPP 2023) on a simulated multi-GPU substrate.

The package trains real GNN models (numpy autograd) over really-sampled
graphs, while a hardware model (DGX-1 NVLink/PCIe topology, kernel and
allocator costs) and a discrete-event engine reproduce the paper's
performance behaviour: the collective sampling primitive, the
partitioned feature cache, and the producer-consumer pipeline with
centralized communication coordination.

Quick start::

    from repro import RunConfig, build_system

    system = build_system("DSP", RunConfig(dataset="products", num_gpus=8))
    metrics = system.run_epoch()
    print(metrics.epoch_time, metrics.val_accuracy)

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    DSP,
    RunConfig,
    SYSTEMS,
    build_system,
)
from repro.graph import load_dataset, DATASET_SPECS

__version__ = "1.0.0"

__all__ = [
    "DSP",
    "RunConfig",
    "SYSTEMS",
    "build_system",
    "load_dataset",
    "DATASET_SPECS",
    "__version__",
]
