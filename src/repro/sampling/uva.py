"""UVA-based sampling baseline (DGL-UVA, Quiver; paper §1, §4.1).

The graph topology lives in host memory.  Each GPU samples its own
seeds *independently* — no cooperation — and every adjacency access
goes through UVA over PCIe, paying read amplification: fetching an
8-byte neighbour id moves a full 50-byte minimum PCIe request.

For unbiased sampling a GPU reads the two ``indptr`` bounds of each
frontier node plus the ``fanout`` sampled entries.  For *biased*
sampling it must read the node's **entire** adjacency and weight lists
to compute the distribution — the case where UVA loses worst (§4.2).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.csp import CSPConfig, CSPStats, ID_BYTES
from repro.sampling.frontier import Block, MiniBatchSample, next_frontier
from repro.sampling.local import GraphPatch, sample_neighbors
from repro.sampling.ops import LocalKernel, OpTrace, UVAGather
from repro.utils.errors import ConfigError
from repro.utils.rng import make_rng, spawn_rngs


class UVASampler:
    """Independent per-GPU sampling over UVA (topology in CPU memory)."""

    def __init__(self, graph: CSRGraph, num_gpus: int, seed: int = 0):
        if num_gpus <= 0:
            raise ConfigError("need at least one GPU")
        self.patch = GraphPatch.full(graph)
        self.num_gpus = num_gpus
        self.rngs = spawn_rngs(make_rng(seed), num_gpus)

    def sample(
        self,
        seeds_per_gpu: list[np.ndarray],
        config: CSPConfig,
    ) -> tuple[list[MiniBatchSample], OpTrace, CSPStats]:
        """Sample one mini-batch; every adjacency access goes over UVA."""
        if len(seeds_per_gpu) != self.num_gpus:
            raise ConfigError("need one seed array per GPU")
        if config.scheme != "node":
            raise ConfigError("the UVA baseline implements node-wise sampling")
        trace = OpTrace()
        k = self.num_gpus
        seeds = [np.asarray(s, dtype=np.int64) for s in seeds_per_gpu]

        frontiers = list(seeds)
        blocks_per_gpu: list[list[Block]] = [[] for _ in range(k)]
        tasks_total = sampled_total = 0
        for layer, fanout in enumerate(config.fanout):
            items = np.zeros(k, dtype=np.float64)
            work = np.zeros(k, dtype=np.float64)
            for g in range(k):
                frontier = frontiers[g]
                src, counts = sample_neighbors(
                    self.patch,
                    frontier,
                    fanout,
                    rng=self.rngs[g],
                    replace=config.replace,
                    biased=config.biased,
                )
                offsets = np.concatenate([[0], np.cumsum(counts)])
                block = Block(frontier, src, offsets)
                blocks_per_gpu[g].append(block)
                tasks_total += len(frontier)
                sampled_total += len(src)
                work[g] = float(len(src))
                if config.biased:
                    # must read full adjacency + weight lists to bias
                    deg_total = float(
                        (self.patch.indptr[frontier + 1]
                         - self.patch.indptr[frontier]).sum()
                    )
                    items[g] = 2 * deg_total + 2 * len(frontier)
                else:
                    # indptr bounds + the sampled entries only
                    items[g] = float(len(src)) + 2 * len(frontier)
            trace.add(UVAGather(items, item_bytes=ID_BYTES, label=f"uva-L{layer}"))
            trace.add(LocalKernel("sample", work, label=f"sample-L{layer}"))
            frontiers = [next_frontier(blocks_per_gpu[g][-1]) for g in range(k)]

        samples = [
            MiniBatchSample(seeds=seeds[g], blocks=tuple(blocks_per_gpu[g]))
            for g in range(k)
        ]
        # every adjacency access is remote for UVA: zero locality
        return samples, trace, CSPStats(tasks_total, sampled_total, 0)
