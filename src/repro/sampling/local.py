"""Per-GPU local sampling kernels.

In CSP's *sample* stage each GPU executes all the sampling tasks it
received for one layer as a single fused kernel (paper §4.1).  This
module is that kernel: given a graph patch and a batch of (frontier
node, fan-out) tasks, draw neighbours.  Everything is vectorized —
no per-task Python loops — mirroring how the CUDA kernel treats tasks
as a flat work list.

Four sampling modes are supported (paper Table 2):

- unbiased / biased (per-edge weights, drawn with probability
  ``w_u / sum of w over N(v)``, §4.2),
- with / without replacement (without replacement keeps
  ``min(fanout, degree)`` distinct neighbours, Efraimidis–Spirakis
  keys for the biased case).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.errors import ReproError
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class GraphPatch:
    """A consecutive global-id slice of the (renumbered) graph.

    ``indptr`` is local (row ``i`` is global node ``base + i``);
    ``indices`` stores *global* neighbour ids, exactly like the paper's
    per-GPU CSR (§6).
    """

    base: int
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray | None = None

    @property
    def num_local(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def nbytes(self) -> int:
        n = self.indptr.nbytes + self.indices.nbytes
        if self.weights is not None:
            n += self.weights.nbytes
        return n

    @cached_property
    def cum_weights(self) -> np.ndarray:
        """Prefix sums of edge weights with a leading 0 (biased sampling)."""
        if self.weights is None:
            raise ReproError("patch has no edge weights")
        out = np.zeros(len(self.weights) + 1, dtype=np.float64)
        np.cumsum(self.weights, out=out[1:])
        return out

    @classmethod
    def from_graph(cls, graph: CSRGraph, lo: int, hi: int) -> "GraphPatch":
        """Rows ``[lo, hi)`` of a renumbered whole-graph CSR."""
        if not 0 <= lo <= hi <= graph.num_nodes:
            raise ReproError(f"bad patch range [{lo}, {hi})")
        e_lo, e_hi = graph.indptr[lo], graph.indptr[hi]
        w = None if graph.edge_weights is None else graph.edge_weights[e_lo:e_hi]
        return cls(
            base=lo,
            indptr=graph.indptr[lo : hi + 1] - e_lo,
            indices=graph.indices[e_lo:e_hi],
            weights=w,
        )

    @classmethod
    def full(cls, graph: CSRGraph) -> "GraphPatch":
        """The whole graph as one patch (single GPU / UVA / CPU samplers)."""
        return cls.from_graph(graph, 0, graph.num_nodes)


def sample_neighbors(
    patch: GraphPatch,
    local_ids: np.ndarray,
    fanout: "int | np.ndarray",
    rng: np.random.Generator | int | None = None,
    replace: bool = True,
    biased: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample neighbours for a batch of tasks on one patch.

    Parameters
    ----------
    local_ids:
        Patch-local frontier node ids (``global - base``).
    fanout:
        Scalar, or one entry per task (layer-wise sampling assigns each
        frontier node its own quota, §4.2).

    Returns ``(src, counts)``: sampled global neighbour ids concatenated
    per task, and the per-task sample counts.  Zero-degree tasks yield
    zero samples.
    """
    rng = make_rng(rng)
    local_ids = np.asarray(local_ids, dtype=np.int64)
    T = len(local_ids)
    if T and (local_ids.min() < 0 or local_ids.max() >= patch.num_local):
        raise ReproError("local id out of range for patch")
    f = np.broadcast_to(np.asarray(fanout, dtype=np.int64), (T,))
    if T and f.min() < 0:
        raise ReproError("fanout must be non-negative")
    if biased and patch.weights is None:
        raise ReproError("biased sampling needs edge weights")
    if T == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    starts = patch.indptr[local_ids]
    deg = patch.indptr[local_ids + 1] - starts

    if replace:
        if biased:
            return _biased_with_replacement(patch, starts, deg, f, rng)
        return _uniform_with_replacement(patch, starts, deg, f, rng)
    return _without_replacement(patch, starts, deg, f, rng, biased)


# ----------------------------------------------------------------------
# with replacement
# ----------------------------------------------------------------------
def _uniform_with_replacement(patch, starts, deg, f, rng):
    counts = np.where(deg > 0, f, 0)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    deg_rep = np.repeat(deg, counts)
    start_rep = np.repeat(starts, counts)
    offs = (rng.random(total) * deg_rep).astype(np.int64)
    return patch.indices[start_rep + offs], counts


def _biased_with_replacement(patch, starts, deg, f, rng):
    cum = patch.cum_weights
    w_total = cum[starts + deg] - cum[starts]
    counts = np.where((deg > 0) & (w_total > 0), f, 0)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    base_rep = np.repeat(cum[starts], counts)
    w_rep = np.repeat(w_total, counts)
    # draw in (0, W]: inverse-CDF via searchsorted on the prefix sums
    targets = base_rep + (1.0 - rng.random(total)) * w_rep
    pos = np.searchsorted(cum[1:], targets, side="left")
    return patch.indices[pos], counts


# ----------------------------------------------------------------------
# without replacement
# ----------------------------------------------------------------------
def _without_replacement(patch, starts, deg, f, rng, biased):
    """Keep min(fanout, degree) distinct neighbours per task.

    One fused pass over all candidate edges: each candidate gets a
    random key (exponential(1)/weight for the biased case — the
    Efraimidis–Spirakis scheme), keys are sorted within each task's
    segment, and the smallest ``fanout`` per segment win.
    """
    counts = np.minimum(f, deg)
    n_cand = int(deg.sum())
    if n_cand == 0:
        return np.empty(0, dtype=np.int64), counts

    T = len(starts)
    seg = np.repeat(np.arange(T, dtype=np.int64), deg)
    within = _ranges(deg)  # position inside each task's segment
    pos = np.repeat(starts, deg) + within
    if biased:
        w = patch.weights[pos].astype(np.float64)
        keys = np.full(n_cand, np.inf)
        nz = w > 0
        keys[nz] = rng.exponential(size=int(nz.sum())) / w[nz]
    else:
        keys = rng.random(n_cand)

    order = np.lexsort((keys, seg))  # by task, then ascending key
    rank = within  # rank within each sorted segment (same layout as pos)
    selected = order[rank < np.repeat(f, deg)]
    selected.sort()  # restore per-task grouping (stable within task)
    return patch.indices[pos[selected]], counts


def _ranges(sizes: np.ndarray) -> np.ndarray:
    """Concatenated aranges: [0..s0), [0..s1), ... fully vectorized."""
    total = int(sizes.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = 0
    ends = np.cumsum(sizes)[:-1]
    nonzero = sizes > 0
    # at each segment start, jump back to 0
    starts_in_flat = np.concatenate([[0], ends])[nonzero]
    seg_sizes = sizes[nonzero]
    out[starts_in_flat[1:]] = 1 - seg_sizes[:-1]
    return np.cumsum(out)