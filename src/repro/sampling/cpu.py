"""CPU sampling baseline (PyG, DGL-CPU; paper §1).

Graph topology and sampling both live on the host: every GPU's
mini-batch is sampled by CPU threads (all GPUs contend for the same
cores — the scalability wall of Table 4/6), and the finished graph
samples are shipped to the GPUs over PCIe as bulk copies.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.csp import CSPConfig, CSPStats
from repro.sampling.frontier import Block, MiniBatchSample, next_frontier
from repro.sampling.local import GraphPatch, sample_neighbors
from repro.sampling.ops import HostWork, OpTrace, PCIeCopy
from repro.utils.errors import ConfigError
from repro.utils.rng import make_rng, spawn_rngs


class CPUSampler:
    """Host-side sampling; samples are DMA-copied to each GPU."""

    def __init__(self, graph: CSRGraph, num_gpus: int, seed: int = 0):
        if num_gpus <= 0:
            raise ConfigError("need at least one GPU")
        self.patch = GraphPatch.full(graph)
        self.num_gpus = num_gpus
        self.rngs = spawn_rngs(make_rng(seed), num_gpus)

    def sample(
        self,
        seeds_per_gpu: list[np.ndarray],
        config: CSPConfig,
    ) -> tuple[list[MiniBatchSample], OpTrace, CSPStats]:
        """Sample one mini-batch on the host and DMA it to the GPUs."""
        if len(seeds_per_gpu) != self.num_gpus:
            raise ConfigError("need one seed array per GPU")
        if config.scheme != "node":
            raise ConfigError("the CPU baseline implements node-wise sampling")
        trace = OpTrace()
        k = self.num_gpus
        seeds = [np.asarray(s, dtype=np.int64) for s in seeds_per_gpu]

        frontiers = list(seeds)
        blocks_per_gpu: list[list[Block]] = [[] for _ in range(k)]
        tasks_total = sampled_total = 0
        for layer in range(config.num_layers):
            fanout = config.fanout[layer]
            host_tasks = np.zeros(k, dtype=np.float64)
            for g in range(k):
                frontier = frontiers[g]
                src, counts = sample_neighbors(
                    self.patch,
                    frontier,
                    fanout,
                    rng=self.rngs[g],
                    replace=config.replace,
                    biased=config.biased,
                )
                offsets = np.concatenate([[0], np.cumsum(counts)])
                blocks_per_gpu[g].append(Block(frontier, src, offsets))
                tasks_total += len(frontier)
                sampled_total += len(src)
                host_tasks[g] = float(len(src))
            trace.add(HostWork(host_tasks, label=f"cpu-sample-L{layer}"))
            frontiers = [next_frontier(blocks_per_gpu[g][-1]) for g in range(k)]

        # one bulk H2D copy of the finished graph sample per GPU
        copy_bytes = np.zeros(k, dtype=np.float64)
        samples = []
        for g in range(k):
            sample = MiniBatchSample(seeds=seeds[g], blocks=tuple(blocks_per_gpu[g]))
            samples.append(sample)
            copy_bytes[g] = float(sample.nbytes)
        trace.add(PCIeCopy(copy_bytes, to_device=True, label="sample-h2d"))
        return samples, trace, CSPStats(tasks_total, sampled_total, 0)
