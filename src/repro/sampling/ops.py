"""Operation traces: what a sampler/loader did, for the cost engine.

Every sampler and loader in this library is *functional* — it really
draws neighbours and really gathers features — and additionally emits a
trace of hardware-level operations describing what a real multi-GPU
execution would have done: collective all-to-alls with exact byte
matrices, fused local kernels with exact work counts, UVA gathers with
exact item counts, host-side work, and bulk PCIe copies.

The system models (:mod:`repro.core`) replay these traces against the
hardware cost model (:mod:`repro.hw`) — either analytically (for a
single number) or inside the discrete-event engine (for pipeline
interleaving).  Keeping the trace explicit is what lets one functional
sampling implementation support every system architecture the paper
compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class AllToAll:
    """NVLink all-to-all: ``matrix[i, j]`` payload bytes from GPU i to j."""

    matrix: np.ndarray
    label: str = "alltoall"


@dataclass(frozen=True)
class LocalKernel:
    """A fused per-GPU kernel; ``work[g]`` work units on GPU ``g``.

    ``kind`` selects the kernel family (rates/saturation differ):
    ``"sample"`` (work = neighbours drawn), ``"gather"`` (work = bytes
    moved within device memory).
    """

    kind: str
    work: np.ndarray
    label: str = ""


@dataclass(frozen=True)
class UVAGather:
    """Random reads from host memory via UVA; per-GPU item counts.

    Each item is ``item_bytes`` long and is subject to PCIe read
    amplification (see :mod:`repro.hw.comm`).
    """

    items: np.ndarray
    item_bytes: float
    label: str = "uva"


@dataclass(frozen=True)
class HostWork:
    """CPU-side work; ``tasks[g]`` work units issued on behalf of GPU
    ``g``, all contending for the same host cores.

    ``kind`` is ``"sample"`` (units = sampling tasks) or ``"gather"``
    (units = bytes gathered from host memory).
    """

    tasks: np.ndarray
    kind: str = "sample"
    label: str = "host"


@dataclass(frozen=True)
class PCIeCopy:
    """Bulk DMA transfer of ``nbytes[g]`` between host and GPU ``g``."""

    nbytes: np.ndarray
    to_device: bool = True
    label: str = "pcie"


@dataclass(frozen=True)
class NetworkTransfer:
    """Inter-machine traffic: ``matrix[a, b]`` bytes from machine a to b.

    Used by the multi-machine extension (paper §3.2): machines
    communicate only for cold features and model synchronization.  The
    GPUs do not execute these transfers (NIC DMA), so the op behaves
    like a host stall of the transfer duration.
    """

    matrix: np.ndarray
    label: str = "network"


@dataclass(frozen=True)
class Overhead:
    """Fixed software overhead during which the GPUs sit idle.

    Used for the raw cudaMalloc/cudaFree cost Quiver pays per batch
    (§7.2): the calls synchronize the device and serialize in the
    driver, so they stall the stage without occupying SMs.
    """

    seconds: float
    label: str = "overhead"


@dataclass(frozen=True)
class AllReduce:
    """NCCL ring allreduce of ``nbytes`` per GPU (gradient averaging)."""

    nbytes: float
    label: str = "allreduce"


@dataclass(frozen=True)
class ParallelGroup:
    """Branches that run concurrently (they use disjoint links).

    The loader overlaps its NVLink hot path with its PCIe cold path
    (paper §3.2): duration is the max over branches, bytes are the sum.
    Each branch is an ordered op list with barriers between its ops.
    """

    branches: tuple
    label: str = "parallel"


Op = "AllToAll | LocalKernel | UVAGather | HostWork | PCIeCopy | ParallelGroup"


@dataclass
class OpTrace:
    """Ordered list of stage ops for one mini-batch task (with barriers
    between consecutive ops, as CSP stages are synchronous)."""

    ops: list = field(default_factory=list)

    def add(self, op) -> None:
        self.ops.append(op)

    def extend(self, other: "OpTrace") -> None:
        self.ops.extend(other.ops)

    def __iter__(self):
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def flat_ops(self):
        """All ops, with ParallelGroup branches flattened in."""
        for op in self.ops:
            if isinstance(op, ParallelGroup):
                for branch in op.branches:
                    yield from branch
            else:
                yield op

    # ------------------------------------------------------------------
    # byte accounting (Fig 1 uses these)
    # ------------------------------------------------------------------
    def nvlink_payload_bytes(self) -> float:
        """Payload bytes sent over NVLink (excluding local/diagonal)."""
        total = 0.0
        for op in self.flat_ops():
            if isinstance(op, AllToAll):
                m = np.asarray(op.matrix, dtype=np.float64)
                total += float(m.sum() - np.trace(m))
        return total

    def uva_payload_bytes(self) -> float:
        return sum(
            float(op.items.sum()) * op.item_bytes
            for op in self.flat_ops()
            if isinstance(op, UVAGather)
        )

    def uva_wire_bytes(self) -> float:
        from repro.hw.comm import UVA_REQUEST_PAYLOAD, UVA_REQUEST_TOTAL

        total = 0.0
        for op in self.flat_ops():
            if isinstance(op, UVAGather):
                packets = int(np.ceil(op.item_bytes / UVA_REQUEST_PAYLOAD))
                total += float(op.items.sum()) * packets * UVA_REQUEST_TOTAL
        return total

    def pcie_bulk_bytes(self) -> float:
        return sum(
            float(op.nbytes.sum()) for op in self.flat_ops()
            if isinstance(op, PCIeCopy)
        )
