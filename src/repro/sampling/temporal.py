"""Temporal graph sampling.

The paper names temporal sampling (with biased sampling) as a case
where a pull-based design *must* transfer whole adjacency lists, while
CSP keeps the constraint evaluation local (§7.3, Fig 11 discussion):
given per-edge timestamps, a frontier node ``v`` observed at time
``t_v`` may only sample neighbours over edges with ``timestamp < t_v``.

:func:`temporal_sample_neighbors` is the fused local kernel —
vectorized masking of each task's adjacency segment by its cut-off,
then uniform (or recency-biased) sampling among the survivors.
:class:`TemporalCollectiveSampler` runs it inside the CSP
shuffle/sample/reshuffle stages; the shuffle additionally carries each
frontier node's 8-byte cut-off time.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.csp import CSPStats, CollectiveSampler, ID_BYTES
from repro.sampling.frontier import Block, MiniBatchSample
from repro.sampling.local import GraphPatch, _ranges
from repro.sampling.ops import AllToAll, LocalKernel, OpTrace
from repro.utils.errors import ConfigError, ReproError
from repro.utils.rng import make_rng


def temporal_sample_neighbors(
    patch: GraphPatch,
    timestamps: np.ndarray,
    local_ids: np.ndarray,
    cutoffs: np.ndarray,
    fanout: int,
    rng: np.random.Generator | int | None = None,
    recency_bias: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample up to ``fanout`` neighbours over edges older than each
    task's cut-off.

    ``timestamps`` has one entry per patch edge.  Returns
    ``(src, src_times, counts)`` — the sampled neighbour ids, the
    timestamps of the traversed edges (they become the cut-offs of the
    next layer), and per-task counts.  ``recency_bias`` weights
    eligible edges by how close they are to the cut-off.
    """
    rng = make_rng(rng)
    local_ids = np.asarray(local_ids, dtype=np.int64)
    cutoffs = np.asarray(cutoffs, dtype=np.float64)
    timestamps = np.asarray(timestamps, dtype=np.float64)
    if timestamps.shape != (patch.num_edges,):
        raise ReproError("need one timestamp per patch edge")
    if cutoffs.shape != local_ids.shape:
        raise ReproError("need one cut-off per task")
    if fanout < 0:
        raise ReproError("fanout must be non-negative")
    T = len(local_ids)
    if T == 0:
        z = np.empty(0, dtype=np.int64)
        return z, np.empty(0, dtype=np.float64), z.copy()
    if local_ids.min() < 0 or local_ids.max() >= patch.num_local:
        raise ReproError("local id out of range for patch")

    starts = patch.indptr[local_ids]
    deg = patch.indptr[local_ids + 1] - starts
    seg = np.repeat(np.arange(T, dtype=np.int64), deg)
    pos = np.repeat(starts, deg) + _ranges(deg)
    eligible = timestamps[pos] < np.repeat(cutoffs, deg)

    # without-replacement selection among eligible edges via random keys
    keys = np.full(len(pos), np.inf)
    n_el = int(eligible.sum())
    if n_el:
        if recency_bias:
            age = np.repeat(cutoffs, deg)[eligible] - timestamps[pos[eligible]]
            w = 1.0 / (1.0 + age)
            keys[eligible] = rng.exponential(size=n_el) / w
        else:
            keys[eligible] = rng.random(n_el)
    order = np.lexsort((keys, seg))
    rank = _ranges(deg)
    eligible_count = (
        np.bincount(seg[eligible], minlength=T)
        if len(seg)
        else np.zeros(T, dtype=np.int64)
    )
    counts = np.minimum(fanout, eligible_count)
    take = order[rank < np.repeat(counts, deg)]
    take.sort()
    src = patch.indices[pos[take]]
    src_times = timestamps[pos[take]]
    return src, src_times, counts


class TemporalCollectiveSampler(CollectiveSampler):
    """CSP over a timestamped graph.

    Construction takes per-edge timestamps aligned with the renumbered
    whole-graph CSR; they are sliced per patch like the adjacency data.
    """

    def __init__(
        self,
        patches: list[GraphPatch],
        part_offsets: np.ndarray,
        edge_times: list[np.ndarray],
        seed: int = 0,
        recency_bias: bool = False,
    ):
        super().__init__(patches, part_offsets, seed=seed)
        if len(edge_times) != len(patches):
            raise ConfigError("need one timestamp array per patch")
        for patch, t in zip(patches, edge_times):
            if len(t) != patch.num_edges:
                raise ConfigError("timestamp array does not match patch")
        self.edge_times = [np.asarray(t, dtype=np.float64) for t in edge_times]
        self.recency_bias = recency_bias

    @classmethod
    def from_partitioned_times(
        cls, graph, part_offsets, timestamps, seed=0, recency_bias=False
    ) -> "TemporalCollectiveSampler":
        part_offsets = np.asarray(part_offsets, dtype=np.int64)
        timestamps = np.asarray(timestamps, dtype=np.float64)
        patches, times = [], []
        for g in range(len(part_offsets) - 1):
            lo, hi = int(part_offsets[g]), int(part_offsets[g + 1])
            patches.append(GraphPatch.from_graph(graph, lo, hi))
            times.append(timestamps[graph.indptr[lo] : graph.indptr[hi]])
        return cls(patches, part_offsets, times, seed=seed,
                   recency_bias=recency_bias)

    def sample_temporal(
        self,
        seeds_per_gpu: list[np.ndarray],
        seed_times_per_gpu: list[np.ndarray],
        fanout: tuple[int, ...],
    ) -> tuple[list[MiniBatchSample], OpTrace, CSPStats]:
        """Temporal node-wise CSP: each hop respects the running cut-off."""
        if len(seeds_per_gpu) != self.num_gpus:
            raise ConfigError("need one seed array per GPU")
        k = self.num_gpus
        trace = OpTrace()
        seeds = [np.asarray(s, dtype=np.int64) for s in seeds_per_gpu]
        cutoffs = [np.asarray(t, dtype=np.float64) for t in seed_times_per_gpu]
        for s, c in zip(seeds, cutoffs):
            if s.shape != c.shape:
                raise ConfigError("need one timestamp per seed")

        blocks_per_gpu: list[list[Block]] = [[] for _ in range(k)]
        tasks_total = sampled_total = local_tasks = 0
        frontiers = seeds
        for layer, f in enumerate(fanout):
            shuffle = np.zeros((k, k))
            reshuffle = np.zeros((k, k))
            work = np.zeros(k)
            new_frontiers, new_cutoffs = [], []
            for g in range(k):
                frontier, cut = frontiers[g], cutoffs[g]
                owners = self.owner_of(frontier)
                tasks_total += len(frontier)
                local_tasks += int((owners == g).sum())
                counts = np.zeros(len(frontier), dtype=np.int64)
                src_parts, time_parts, idx_parts = [], [], []
                for o in np.unique(owners):
                    mask = owners == o
                    patch = self.patches[o]
                    src_o, t_o, c_o = temporal_sample_neighbors(
                        patch,
                        self.edge_times[o],
                        frontier[mask] - patch.base,
                        cut[mask],
                        f,
                        rng=self.rngs[o],
                        recency_bias=self.recency_bias,
                    )
                    counts[mask] = c_o
                    src_parts.append(src_o)
                    time_parts.append(t_o)
                    idx_parts.append(np.flatnonzero(mask))
                    work[o] += len(src_o)
                    if o != g:
                        # id + cut-off out; sampled ids + edge times back
                        shuffle[g, o] += mask.sum() * 2 * ID_BYTES
                        reshuffle[o, g] += len(src_o) * 2 * ID_BYTES
                # stitch back into task order
                src = np.empty(int(counts.sum()), dtype=np.int64)
                stime = np.empty(len(src), dtype=np.float64)
                offsets = np.concatenate([[0], np.cumsum(counts)])
                for idx, s_o, t_o in zip(idx_parts, src_parts, time_parts):
                    c = counts[idx]
                    where = np.repeat(offsets[idx], c) + _ranges(c)
                    src[where] = s_o
                    stime[where] = t_o
                block = Block(frontier, src, offsets)
                blocks_per_gpu[g].append(block)
                sampled_total += len(src)
                # next frontier: sampled nodes with the traversed edge's
                # timestamp as their cut-off (plus the current frontier,
                # keeping its cut-offs, so self-information flows)
                nf = np.concatenate([frontier, src])
                nc = np.concatenate([cut, stime])
                uniq, first = np.unique(nf, return_index=True)
                new_frontiers.append(uniq)
                new_cutoffs.append(nc[first])
            trace.add(AllToAll(shuffle, label=f"t-shuffle-L{layer}"))
            trace.add(LocalKernel("sample", work, label=f"t-sample-L{layer}"))
            trace.add(AllToAll(reshuffle, label=f"t-reshuffle-L{layer}"))
            frontiers, cutoffs = new_frontiers, new_cutoffs

        samples = [
            MiniBatchSample(seeds=seeds[g], blocks=tuple(blocks_per_gpu[g]))
            for g in range(k)
        ]
        return samples, trace, CSPStats(tasks_total, sampled_total, local_tasks)
