"""Layer-wise sampling support (paper §4.2, Table 7).

Two entry points:

- :func:`layerwise_quotas` — the Eq. (2) budget split used by
  ``CSPConfig(scheme="layer")``: draw the layer's ``n`` slots over the
  frontier with replacement, with probability proportional to each
  frontier node's total neighbour weight; a node's hit count becomes
  its per-node fan-out for the ordinary CSP round.

- :func:`layerwise_sample_noreplace` — layer-wise sampling *without*
  replacement, the Table 7 configuration.  Implemented distributively
  with Efraimidis–Spirakis exponential keys: every owner GPU keys all
  candidate edges of the frontier tasks it holds, keeps its local
  top-n, and ships just those ``n`` (node, key) pairs back; the
  requesting GPU merges and keeps the global top-n.  The result is an
  exact weighted sample without replacement of the candidate edges
  while communicating O(n) per GPU pair instead of whole adjacency
  lists.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.csp import CollectiveSampler, ID_BYTES
from repro.sampling.frontier import Block
from repro.sampling.local import _ranges
from repro.sampling.ops import AllToAll, LocalKernel, OpTrace
from repro.utils.errors import ConfigError
from repro.utils.rng import make_rng


def layerwise_quotas(
    weights: np.ndarray, budget: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Eq. (2): multinomial split of ``budget`` over the frontier."""
    rng = make_rng(rng)
    w = np.asarray(weights, dtype=np.float64)
    if budget < 0:
        raise ConfigError("budget must be non-negative")
    total = w.sum()
    if len(w) == 0 or total <= 0:
        return np.zeros(len(w), dtype=np.int64)
    return rng.multinomial(budget, w / total).astype(np.int64)


def layerwise_sample_noreplace(
    sampler: CollectiveSampler,
    frontiers: list[np.ndarray],
    budget: int,
    biased: bool = False,
    trace: OpTrace | None = None,
) -> tuple[list[Block], OpTrace]:
    """One layer of layer-wise sampling without replacement for each GPU.

    Returns one :class:`Block` per GPU whose edges are the globally
    top-``budget`` candidate edges of that GPU's frontier (weighted by
    edge weight when ``biased``), plus the op trace of the exchange.
    """
    if budget < 0:
        raise ConfigError("budget must be non-negative")
    k = sampler.num_gpus
    if len(frontiers) != k:
        raise ConfigError("need one frontier per GPU")
    trace = trace if trace is not None else OpTrace()

    request = np.zeros((k, k), dtype=np.float64)
    response = np.zeros((k, k), dtype=np.float64)
    kernel_work = np.zeros(k, dtype=np.float64)
    blocks: list[Block] = []

    for g in range(k):
        frontier = np.asarray(frontiers[g], dtype=np.int64)
        owners = sampler.owner_of(frontier)
        cand_task: list[np.ndarray] = []
        cand_src: list[np.ndarray] = []
        cand_key: list[np.ndarray] = []
        for o in np.unique(owners):
            patch = sampler.patches[o]
            mask = owners == o
            task_idx = np.flatnonzero(mask)
            local = frontier[mask] - patch.base
            starts = patch.indptr[local]
            deg = patch.indptr[local + 1] - starts
            n_cand = int(deg.sum())
            if n_cand == 0:
                continue
            pos = np.repeat(starts, deg) + _ranges(deg)
            src = patch.indices[pos]
            if biased:
                if patch.weights is None:
                    raise ConfigError("biased layer-wise sampling needs weights")
                w = patch.weights[pos].astype(np.float64)
                keys = np.full(n_cand, np.inf)
                nz = w > 0
                keys[nz] = sampler.rngs[o].exponential(size=int(nz.sum())) / w[nz]
            else:
                keys = sampler.rngs[o].random(n_cand)
            kernel_work[o] += n_cand
            # owner keeps only its local top-`budget` candidates
            if n_cand > budget:
                keep = np.argpartition(keys, budget)[:budget]
            else:
                keep = np.arange(n_cand)
            cand_task.append(np.repeat(task_idx, deg)[keep])
            cand_src.append(src[keep])
            cand_key.append(keys[keep])
            if o != g:
                request[g, o] += mask.sum() * ID_BYTES
                response[o, g] += len(keep) * 2 * ID_BYTES  # (node, key) pairs

        if cand_key:
            task = np.concatenate(cand_task)
            src = np.concatenate(cand_src)
            key = np.concatenate(cand_key)
            if len(key) > budget:
                keep = np.argpartition(key, budget)[:budget]
                task, src = task[keep], src[keep]
        else:
            task = src = np.empty(0, dtype=np.int64)
        counts = np.bincount(task, minlength=len(frontier))
        order = np.argsort(task, kind="stable")
        offsets = np.concatenate([[0], np.cumsum(counts)])
        blocks.append(Block(frontier, src[order], offsets))

    trace.add(AllToAll(request, label="lw-req"))
    trace.add(LocalKernel("sample", kernel_work, label="lw-keys"))
    trace.add(AllToAll(response, label="lw-resp"))
    return blocks, trace
