"""Mini-batch sample structures.

A graph sample for a K-layer GNN (paper §2, Fig 3) is a sequence of
*blocks*, one per layer.  A block is the bipartite graph between the
layer's frontier nodes (``dst``) and their sampled neighbours
(``src``): block 0 has the seed nodes as ``dst``; block ``k + 1``'s
``dst`` is everything that appeared in block ``k``.

All node ids are global ids — the paper stores global ids in adjacency
lists precisely so sampled output can be reused directly as the next
frontier and for feature fetching (§6).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.utils.errors import ReproError


@dataclass(frozen=True)
class Block:
    """One sampled layer: ``dst_nodes[i]`` drew ``src_of(i)`` as neighbours."""

    dst_nodes: np.ndarray  # int64[n_dst], global ids, unique
    src_nodes: np.ndarray  # int64[total_sampled], concatenated per dst
    offsets: np.ndarray  # int64[n_dst + 1] into src_nodes

    def __post_init__(self) -> None:
        if len(self.offsets) != len(self.dst_nodes) + 1:
            raise ReproError("offsets must have n_dst + 1 entries")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.src_nodes):
            raise ReproError("offsets must span src_nodes exactly")
        if np.any(np.diff(self.offsets) < 0):
            raise ReproError("offsets must be non-decreasing")

    @property
    def num_dst(self) -> int:
        return len(self.dst_nodes)

    @property
    def num_edges(self) -> int:
        return len(self.src_nodes)

    def src_of(self, i: int) -> np.ndarray:
        """Sampled neighbours of the i-th dst node."""
        return self.src_nodes[self.offsets[i] : self.offsets[i + 1]]

    @cached_property
    def all_nodes(self) -> np.ndarray:
        """Unique global ids appearing anywhere in the block."""
        return np.unique(np.concatenate([self.dst_nodes, self.src_nodes]))

    @property
    def nbytes(self) -> int:
        """Wire size of the block structure (ids + offsets)."""
        return self.dst_nodes.nbytes + self.src_nodes.nbytes + self.offsets.nbytes


@dataclass(frozen=True)
class MiniBatchSample:
    """A complete graph sample: seeds plus one block per GNN layer.

    ``blocks[0]`` is the first sampling hop (seeds as dst);
    ``blocks[-1]`` is the deepest.  The GNN consumes them deepest-first.
    """

    seeds: np.ndarray
    blocks: tuple[Block, ...]

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ReproError("a sample needs at least one block")
        if not np.array_equal(self.blocks[0].dst_nodes, np.asarray(self.seeds)):
            raise ReproError("block 0 dst must be the seed nodes")

    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    @cached_property
    def all_nodes(self) -> np.ndarray:
        """Every node whose feature vector the loader must fetch.

        For the example of Fig 3(b) this is {A, B, C, E, G, H, K}: the
        union of all blocks' nodes (paper §3.2, Loader).
        """
        return np.unique(np.concatenate([b.all_nodes for b in self.blocks]))

    @property
    def total_sampled_edges(self) -> int:
        return sum(b.num_edges for b in self.blocks)

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self.blocks) + np.asarray(self.seeds).nbytes


def next_frontier(block: Block) -> np.ndarray:
    """Frontier for the next layer: every node seen in this block.

    Including the dst nodes keeps self-information flowing through
    deeper layers (the GNN aggregates over N(v) *and* v, Eq. (1)).
    """
    return block.all_nodes
