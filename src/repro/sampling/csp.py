"""The Collective Sampling Primitive (CSP), paper §4.

CSP constructs graph samples on a topology partitioned over GPUs,
layer by layer, each layer in three synchronous stages:

1. **shuffle** — every frontier node is sent to the GPU owning its
   adjacency list (a task *push*: 8 bytes per node instead of the whole
   adjacency list);
2. **sample** — each GPU runs ONE fused kernel over all tasks it
   received for the layer;
3. **reshuffle** — sampled neighbour ids travel back to the GPU that
   requested them.

Nodes whose adjacency list is local skip both transfers (the diagonal
of the all-to-all matrices), which is why co-partitioning seeds with
graph patches matters (§3.1).  The returned
:class:`~repro.sampling.ops.OpTrace` records the exact all-to-all byte
matrices and kernel work counts for the cost engine, while the returned
:class:`~repro.sampling.frontier.MiniBatchSample` objects carry the
functional result used for feature loading and training.

The shuffle/sample/reshuffle round has two implementations:

- :meth:`CollectiveSampler._one_layer` — the **flat-batch fast path**:
  all GPUs' frontiers are concatenated once, owners are computed with a
  single range check, one global (owner, origin)-stable permutation
  groups the tasks, both k x k byte matrices fall out of 2-D bincounts,
  and exactly k ``sample_neighbors`` calls run on contiguous slices.
  This mirrors the paper's "one fused kernel over a flat task list per
  GPU" (§4.1) and is what every system uses.
- :meth:`CollectiveSampler._reference_one_layer` — the original
  per-(owner, origin) chunked implementation, kept as the executable
  specification.  Both paths draw from the per-owner RNG streams in the
  same order, so they are bit-identical (``tests/sampling/
  test_csp_equivalence.py`` proves it; ``docs/performance.md`` states
  the compatibility contract).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sampling.frontier import Block, MiniBatchSample, next_frontier
from repro.sampling.local import GraphPatch, _ranges, sample_neighbors
from repro.sampling.ops import AllToAll, LocalKernel, OpTrace
from repro.utils.errors import ConfigError
from repro.utils.rng import make_rng, spawn_rngs

#: wire bytes per node id / per count / per weight entry
ID_BYTES = 8


@dataclass(frozen=True)
class CSPConfig:
    """Configurable parameters of CSP (paper Table 2).

    ``fanout[k]`` is the per-node neighbour count for node-wise
    sampling, or the layer's total budget for layer-wise sampling.
    """

    fanout: tuple[int, ...]
    scheme: str = "node"  # "node" or "layer"
    biased: bool = False
    replace: bool = True

    def __post_init__(self) -> None:
        if self.scheme not in ("node", "layer"):
            raise ConfigError(f"unknown scheme {self.scheme!r}")
        if not self.fanout or any(f < 0 for f in self.fanout):
            raise ConfigError("fanout must be non-empty and non-negative")

    @property
    def num_layers(self) -> int:
        return len(self.fanout)


@dataclass(frozen=True)
class CSPStats:
    """Aggregate counters of one CSP invocation."""

    tasks_total: int
    sampled_total: int
    local_tasks: int  # tasks whose adjacency list was already local

    @property
    def locality(self) -> float:
        return self.local_tasks / self.tasks_total if self.tasks_total else 1.0


class CollectiveSampler:
    """CSP over a set of graph patches (one per GPU)."""

    def __init__(
        self,
        patches: list[GraphPatch],
        part_offsets: np.ndarray,
        seed: int = 0,
    ):
        if not patches:
            raise ConfigError("need at least one patch")
        part_offsets = np.asarray(part_offsets, dtype=np.int64)
        if len(part_offsets) != len(patches) + 1:
            raise ConfigError("part_offsets must have num_gpus + 1 entries")
        for g, patch in enumerate(patches):
            if patch.base != part_offsets[g]:
                raise ConfigError(f"patch {g} base does not match offsets")
            if patch.num_local != part_offsets[g + 1] - part_offsets[g]:
                raise ConfigError(f"patch {g} size does not match offsets")
        self.patches = list(patches)
        self.part_offsets = part_offsets
        self.num_gpus = len(patches)
        self.rngs = spawn_rngs(make_rng(seed), self.num_gpus)
        #: flip to False to run the chunked reference implementation of
        #: the shuffle/sample/reshuffle round (same RNG stream, same
        #: results, slower — used by the equivalence tests and the
        #: before/after perf benchmarks)
        self.use_fast_path: bool = True
        # scratch flag array for bounded-domain dedup (fast path): node
        # ids are < part_offsets[-1], so "unique" is a scatter + scan
        self._seen = np.zeros(int(part_offsets[-1]), dtype=bool)
        # GNS-style cached-node bias (opt-in via set_cache_bias); when
        # None — the default — every sampling call below is exactly the
        # unbiased/original code path, bit for bit
        self._bias_store = None
        self._bias = 0.0
        self._bias_patches: list[GraphPatch] | None = None

    # ------------------------------------------------------------------
    # cached-node biased sampling (Global Neighbor Sampling, opt-in)
    # ------------------------------------------------------------------
    def set_cache_bias(self, store, bias: float) -> None:
        """Skew neighbour draws toward cache-resident nodes.

        Each edge's weight is multiplied by ``1 + bias * cached[dst]``
        (on top of the graph's own edge weights when present), so a
        neighbour already resident in the feature cache is ``1 + bias``
        times more likely to be drawn — Global Neighbor Sampling's
        importance-sampling trick, which raises the loader's hit rate
        without changing which nodes *can* be sampled.  ``bias = 0``
        disables the hook entirely: the sampler then runs the exact
        same code (and RNG stream) as one that never saw this call.

        ``store`` must expose a boolean ``cached`` array over global
        node ids (both partitioned and replicated stores do).  Call
        :meth:`refresh_cache_bias` after the store's resident set
        changes (the dynamic cache policy does this via ``on_change``).
        """
        if bias < 0:
            raise ConfigError("cache bias must be non-negative")
        if bias > 0 and getattr(store, "cached", None) is None:
            raise ConfigError(
                "cache bias needs a store with a 'cached' node mask"
            )
        self._bias = float(bias)
        self._bias_store = store if bias > 0 else None
        self.refresh_cache_bias()

    def refresh_cache_bias(self) -> None:
        """Rebuild the biased edge weights from the store's current
        resident set (cheap: one multiply per patch's edge array)."""
        if self._bias_store is None:
            self._bias_patches = None
            return
        cached = self._bias_store.cached
        patches = []
        for patch in self.patches:
            boost = 1.0 + self._bias * cached[patch.indices]
            w = (
                boost if patch.weights is None
                else patch.weights.astype(np.float64) * boost
            )
            patches.append(
                GraphPatch(patch.base, patch.indptr, patch.indices,
                           weights=w)
            )
        self._bias_patches = patches

    def _sampling_patches(
        self, config: CSPConfig
    ) -> tuple[list[GraphPatch], bool]:
        """The patch list and biased flag the sample kernels should use
        (identity unless cache bias is active)."""
        if self._bias_patches is None:
            return self.patches, config.biased
        return self._bias_patches, True

    @classmethod
    def from_partitioned(
        cls,
        graph,
        part_offsets: np.ndarray,
        seed: int = 0,
    ) -> "CollectiveSampler":
        """Build patches by slicing a partition-renumbered whole-graph CSR.

        ``graph`` must already be renumbered so each GPU's nodes form the
        consecutive range ``[part_offsets[g], part_offsets[g + 1])`` (see
        :func:`repro.graph.reorder.renumber_by_partition`).
        """
        part_offsets = np.asarray(part_offsets, dtype=np.int64)
        patches = [
            GraphPatch.from_graph(graph, int(part_offsets[g]), int(part_offsets[g + 1]))
            for g in range(len(part_offsets) - 1)
        ]
        return cls(patches, part_offsets, seed=seed)

    # ------------------------------------------------------------------
    def owner_of(self, ids: np.ndarray) -> np.ndarray:
        """GPU owning each global id — the §6 range check."""
        return np.searchsorted(self.part_offsets, ids, side="right") - 1

    # ------------------------------------------------------------------
    def _unique_ids(self, *arrays: np.ndarray) -> np.ndarray:
        """Sorted unique of bounded global ids via one flag scatter.

        Bit-identical to ``np.unique(np.concatenate(arrays))`` for valid
        ids (sorted int64) but O(n) with a tiny constant; the scratch
        flags are reset by index so cost never scales with graph size.
        """
        seen = self._seen
        for a in arrays:
            seen[a] = True
        ids = np.flatnonzero(seen).astype(np.int64, copy=False)
        seen[ids] = False
        return ids

    # ------------------------------------------------------------------
    def sample(
        self,
        seeds_per_gpu: list[np.ndarray],
        config: CSPConfig,
    ) -> tuple[list[MiniBatchSample], OpTrace, CSPStats]:
        """Run CSP for one mini-batch (one seed array per GPU)."""
        if len(seeds_per_gpu) != self.num_gpus:
            raise ConfigError("need one seed array per GPU")
        seeds = [np.asarray(s, dtype=np.int64) for s in seeds_per_gpu]
        trace = OpTrace()
        tasks_total = sampled_total = local_tasks = 0

        frontiers = seeds
        blocks_per_gpu: list[list[Block]] = [[] for _ in range(self.num_gpus)]
        for layer, budget in enumerate(config.fanout):
            # each frontier is ranged-checked exactly once per layer;
            # the quota-weight fetch and the shuffle both reuse this
            owners = [self.owner_of(f) for f in frontiers]
            if config.scheme == "layer" and not config.replace:
                # exact weighted sampling without replacement via
                # distributed Efraimidis-Spirakis keys (Table 7 path)
                from repro.sampling.layerwise import layerwise_sample_noreplace

                layer_blocks, _ = layerwise_sample_noreplace(
                    self, frontiers, budget, biased=config.biased, trace=trace
                )
                t = sum(len(f) for f in frontiers)
                s = sum(b.num_edges for b in layer_blocks)
                loc = sum(
                    int((ow == g).sum()) for g, ow in enumerate(owners)
                )
                tasks_total += t
                sampled_total += s
                local_tasks += loc
                for g, block in enumerate(layer_blocks):
                    blocks_per_gpu[g].append(block)
                frontiers = [next_frontier(b) for b in layer_blocks]
                continue
            if config.scheme == "layer":
                quotas = self._layerwise_quotas(
                    frontiers, budget, config, trace, owners
                )
            else:
                quotas = [np.full(len(f), budget, dtype=np.int64) for f in frontiers]

            impl = (
                self._one_layer if self.use_fast_path
                else self._reference_one_layer
            )
            layer_blocks, t, s, loc = impl(
                frontiers, quotas, config, trace, layer, owners
            )
            tasks_total += t
            sampled_total += s
            local_tasks += loc
            for g, block in enumerate(layer_blocks):
                blocks_per_gpu[g].append(block)
            if self.use_fast_path:
                # bounded-domain dedup, seeding each block's all_nodes
                # cache (bit-identical to the lazy np.unique)
                frontiers = []
                for block in layer_blocks:
                    ids = self._unique_ids(block.dst_nodes, block.src_nodes)
                    block.__dict__["all_nodes"] = ids
                    frontiers.append(ids)
            else:
                frontiers = [next_frontier(b) for b in layer_blocks]

        samples = []
        for g in range(self.num_gpus):
            sample = MiniBatchSample(
                seeds=seeds[g], blocks=tuple(blocks_per_gpu[g])
            )
            if self.use_fast_path:
                sample.__dict__["all_nodes"] = self._unique_ids(
                    *(b.all_nodes for b in sample.blocks)
                )
            samples.append(sample)
        stats = CSPStats(tasks_total, sampled_total, local_tasks)
        return samples, trace, stats

    # ------------------------------------------------------------------
    # one shuffle / sample / reshuffle round — flat-batch fast path
    # ------------------------------------------------------------------
    def _one_layer(
        self,
        frontiers: list[np.ndarray],
        quotas: list[np.ndarray],
        config: CSPConfig,
        trace: OpTrace,
        layer: int,
        owners: list[np.ndarray] | None = None,
    ) -> tuple[list[Block], int, int, int]:
        """Flat-batch shuffle / sample / reshuffle (paper §4.1).

        All k frontiers are treated as ONE flat task list: a single
        stable permutation groups tasks by (owner, origin, original
        position) — the exact concatenation order the chunked reference
        builds per owner — so each owner GPU's fused kernel sees the
        same tasks in the same order and consumes its RNG stream
        identically.  Byte matrices come from 2-D bincounts and results
        scatter back with one vectorized inverse-permutation gather.
        """
        k = self.num_gpus
        per_task_bytes = ID_BYTES * (2 if config.scheme == "layer" else 1)

        sizes = np.array([len(f) for f in frontiers], dtype=np.int64)
        origin_bounds = np.concatenate([[0], np.cumsum(sizes)])
        n = int(origin_bounds[-1])
        flat_tasks = (
            np.concatenate(frontiers) if n else np.empty(0, np.int64)
        )
        flat_quota = (
            np.concatenate(quotas) if n else np.empty(0, np.int64)
        )
        flat_owner = (
            np.concatenate(owners) if owners is not None
            else self.owner_of(flat_tasks)
        )
        origin = np.repeat(np.arange(k, dtype=np.int64), sizes)

        # ---- shuffle: one 2-D bincount gives the full k x k matrix ------
        owner_counts = np.bincount(
            origin * k + flat_owner, minlength=k * k
        ).reshape(k, k)
        shuffle = owner_counts.astype(np.float64) * per_task_bytes
        trace.add(AllToAll(np.where(np.eye(k, dtype=bool), 0.0, shuffle),
                           label=f"shuffle-L{layer}"))

        # ---- sample: exactly k fused-kernel calls on contiguous slices --
        # the frontiers are concatenated in origin order, so a stable
        # sort by owner alone IS the (owner, origin)-stable grouping
        order = np.argsort(flat_owner, kind="stable")
        tasks_sorted = flat_tasks[order]
        quota_sorted = flat_quota[order]
        owner_bounds = np.concatenate(
            [[0], np.cumsum(owner_counts.sum(axis=0))]
        )
        counts_sorted = np.empty(n, dtype=np.int64)
        src_parts: list[np.ndarray] = []
        kernel_work = np.zeros(k, dtype=np.float64)
        patches, biased = self._sampling_patches(config)
        for o, patch in enumerate(patches):
            lo, hi = owner_bounds[o], owner_bounds[o + 1]
            src_o, cnt_o = sample_neighbors(
                patch,
                tasks_sorted[lo:hi] - patch.base,
                quota_sorted[lo:hi],
                rng=self.rngs[o],
                replace=config.replace,
                biased=biased,
            )
            counts_sorted[lo:hi] = cnt_o
            src_parts.append(src_o)
            kernel_work[o] = float(cnt_o.sum())
        src_sorted = (
            np.concatenate(src_parts) if src_parts else np.empty(0, np.int64)
        )
        trace.add(LocalKernel("sample", kernel_work, label=f"sample-L{layer}"))

        # ---- reshuffle matrix: one weighted 2-D bincount ----------------
        # bytes from owner o back to origin g: sampled ids + counts
        sampled_og = np.bincount(
            flat_owner[order] * k + origin[order],
            weights=counts_sorted.astype(np.float64),
            minlength=k * k,
        ).reshape(k, k)
        reshuffle = ID_BYTES * (sampled_og + owner_counts.T)
        trace.add(AllToAll(np.where(np.eye(k, dtype=bool), 0.0, reshuffle),
                           label=f"reshuffle-L{layer}"))

        # ---- scatter results back to original task order ----------------
        inv = np.empty_like(order)
        inv[order] = np.arange(n, dtype=np.int64)
        counts_flat = counts_sorted[inv]
        starts_sorted = np.concatenate([[0], np.cumsum(counts_sorted)])[:-1]
        gather = np.repeat(starts_sorted[inv], counts_flat) + _ranges(counts_flat)
        src_flat = src_sorted[gather]

        # ---- reassemble blocks on the origin GPUs (contiguous slices) ---
        src_bounds = np.concatenate([[0], np.cumsum(counts_flat)])
        blocks = []
        for g in range(k):
            lo, hi = origin_bounds[g], origin_bounds[g + 1]
            e_lo = src_bounds[lo]
            blocks.append(Block(
                frontiers[g],
                src_flat[src_bounds[lo]:src_bounds[hi]],
                src_bounds[lo:hi + 1] - e_lo,
            ))
        tasks_total = n
        sampled_total = int(len(src_flat))
        local_tasks = int(np.trace(owner_counts))
        return blocks, tasks_total, sampled_total, local_tasks

    # ------------------------------------------------------------------
    # chunked reference implementation (executable specification)
    # ------------------------------------------------------------------
    def _reference_one_layer(
        self,
        frontiers: list[np.ndarray],
        quotas: list[np.ndarray],
        config: CSPConfig,
        trace: OpTrace,
        layer: int,
        owners: list[np.ndarray] | None = None,
    ) -> tuple[list[Block], int, int, int]:
        """The original per-(owner, origin) chunked round.

        Kept verbatim as the executable specification of the fast path:
        ``tests/sampling/test_csp_equivalence.py`` asserts both paths
        return byte-identical blocks, traces and stats from identical
        RNG streams.  ``owners`` is accepted (and ignored) so the two
        implementations are signature-compatible.
        """
        del owners  # the reference recomputes them, as the seed did
        k = self.num_gpus
        per_task_bytes = ID_BYTES * (2 if config.scheme == "layer" else 1)

        # ---- shuffle: group each GPU's tasks by owner -------------------
        perms, owner_counts = [], np.zeros((k, k), dtype=np.int64)
        for g, frontier in enumerate(frontiers):
            owners_g = self.owner_of(frontier)
            perm = np.argsort(owners_g, kind="stable")
            perms.append(perm)
            owner_counts[g] = np.bincount(owners_g, minlength=k)
        shuffle = owner_counts.astype(np.float64) * per_task_bytes
        trace.add(AllToAll(np.where(np.eye(k, dtype=bool), 0.0, shuffle),
                           label=f"shuffle-L{layer}"))

        # ---- sample: one fused kernel per owner GPU ---------------------
        # owner o receives, for each origin g, a contiguous slice of g's
        # owner-sorted frontier
        src_by_owner_origin: list[list[np.ndarray]] = [[] for _ in range(k)]
        cnt_by_owner_origin: list[list[np.ndarray]] = [[] for _ in range(k)]
        kernel_work = np.zeros(k, dtype=np.float64)
        reshuffle = np.zeros((k, k), dtype=np.float64)

        slice_bounds = [np.concatenate([[0], np.cumsum(owner_counts[g])])
                        for g in range(k)]
        patches, biased = self._sampling_patches(config)
        for o, patch in enumerate(patches):
            task_chunks, quota_chunks, origin_sizes = [], [], []
            for g in range(k):
                lo, hi = slice_bounds[g][o], slice_bounds[g][o + 1]
                sel = perms[g][lo:hi]
                task_chunks.append(frontiers[g][sel])
                quota_chunks.append(quotas[g][sel])
                origin_sizes.append(hi - lo)
            tasks = np.concatenate(task_chunks) if task_chunks else np.empty(0, np.int64)
            quota = np.concatenate(quota_chunks) if quota_chunks else np.empty(0, np.int64)
            src, counts = sample_neighbors(
                patch,
                tasks - patch.base,
                quota,
                rng=self.rngs[o],
                replace=config.replace,
                biased=biased,
            )
            kernel_work[o] = float(counts.sum())
            # split the results back per origin
            cuts = np.cumsum(origin_sizes)[:-1]
            counts_split = np.split(counts, cuts)
            src_cuts = np.cumsum([c.sum() for c in counts_split])[:-1]
            src_split = np.split(src, src_cuts)
            for g in range(k):
                cnt_by_owner_origin[o].append(counts_split[g])
                src_by_owner_origin[o].append(src_split[g])
                reshuffle[o, g] = (
                    src_split[g].nbytes + counts_split[g].nbytes
                )

        trace.add(LocalKernel("sample", kernel_work, label=f"sample-L{layer}"))
        trace.add(AllToAll(np.where(np.eye(k, dtype=bool), 0.0, reshuffle),
                           label=f"reshuffle-L{layer}"))

        # ---- reassemble blocks on the origin GPUs -----------------------
        blocks = []
        tasks_total = sampled_total = local_tasks = 0
        for g in range(k):
            counts_perm = np.concatenate(
                [cnt_by_owner_origin[o][g] for o in range(k)]
            )
            src_perm = np.concatenate([src_by_owner_origin[o][g] for o in range(k)])
            # counts_perm aligns with frontiers[g][perms[g]]; un-permute
            inv = np.empty_like(perms[g])
            inv[perms[g]] = np.arange(len(perms[g]))
            starts_perm = np.concatenate([[0], np.cumsum(counts_perm)])[:-1]
            counts = counts_perm[inv]
            gather = np.repeat(starts_perm[inv], counts) + _ranges(counts)
            src = src_perm[gather]
            offsets = np.concatenate([[0], np.cumsum(counts)])
            blocks.append(Block(frontiers[g], src, offsets))
            tasks_total += len(frontiers[g])
            sampled_total += len(src)
            local_tasks += int(owner_counts[g, g])
        return blocks, tasks_total, sampled_total, local_tasks

    # ------------------------------------------------------------------
    # layer-wise quota assignment (paper Eq. (2))
    # ------------------------------------------------------------------
    def _layerwise_quotas(
        self,
        frontiers: list[np.ndarray],
        budget: int,
        config: CSPConfig,
        trace: OpTrace,
        owners: list[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Split a layer budget over frontier nodes, Eq. (2).

        Frontier node ``u`` is drawn (with replacement, ``budget``
        times) with probability ``W_u / sum W``, where ``W_u`` is the
        total weight of ``u``'s neighbours (the degree when unbiased).
        The number of times ``u`` was drawn becomes its fan-out for the
        shuffle/sample/reshuffle round — equivalent to pulling the
        adjacency lists but with far less communication (§4.2).

        ``W_u`` lives with the owner of ``u``'s adjacency list, so this
        does one lightweight id -> weight exchange, which the trace
        records.
        """
        k = self.num_gpus
        weights = self._fetch_frontier_weights(frontiers, config, trace, owners)
        quotas = []
        for g, frontier in enumerate(frontiers):
            w = weights[g]
            total = w.sum()
            if len(frontier) == 0 or total <= 0:
                quotas.append(np.zeros(len(frontier), dtype=np.int64))
                continue
            quotas.append(
                self.rngs[g].multinomial(budget, w / total).astype(np.int64)
            )
        return quotas

    def _fetch_frontier_weights(
        self,
        frontiers: list[np.ndarray],
        config: CSPConfig,
        trace: OpTrace,
        owners: list[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """W_u for every frontier node, fetched from the owning GPUs.

        ``owners`` may carry precomputed ``owner_of`` results (one array
        per frontier) so each frontier is ranged-checked once per layer.
        """
        k = self.num_gpus
        request = np.zeros((k, k), dtype=np.float64)
        weights = []
        for g, frontier in enumerate(frontiers):
            owners_g = (
                owners[g] if owners is not None else self.owner_of(frontier)
            )
            request[g] = np.bincount(owners_g, minlength=k) * ID_BYTES
            w = np.empty(len(frontier), dtype=np.float64)
            for o in np.unique(owners_g):
                patch = self.patches[o]
                mask = owners_g == o
                local = frontier[mask] - patch.base
                if config.biased:
                    cum = patch.cum_weights
                    starts = patch.indptr[local]
                    ends = patch.indptr[local + 1]
                    w[mask] = cum[ends] - cum[starts]
                else:
                    w[mask] = (patch.indptr[local + 1] - patch.indptr[local])
            weights.append(w)
        off = np.where(np.eye(k, dtype=bool), 0.0, request)
        trace.add(AllToAll(off, label="weights-req"))
        trace.add(AllToAll(off.T, label="weights-resp"))
        return weights
