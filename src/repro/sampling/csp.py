"""The Collective Sampling Primitive (CSP), paper §4.

CSP constructs graph samples on a topology partitioned over GPUs,
layer by layer, each layer in three synchronous stages:

1. **shuffle** — every frontier node is sent to the GPU owning its
   adjacency list (a task *push*: 8 bytes per node instead of the whole
   adjacency list);
2. **sample** — each GPU runs ONE fused kernel over all tasks it
   received for the layer;
3. **reshuffle** — sampled neighbour ids travel back to the GPU that
   requested them.

Nodes whose adjacency list is local skip both transfers (the diagonal
of the all-to-all matrices), which is why co-partitioning seeds with
graph patches matters (§3.1).  The returned
:class:`~repro.sampling.ops.OpTrace` records the exact all-to-all byte
matrices and kernel work counts for the cost engine, while the returned
:class:`~repro.sampling.frontier.MiniBatchSample` objects carry the
functional result used for feature loading and training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sampling.frontier import Block, MiniBatchSample, next_frontier
from repro.sampling.local import GraphPatch, _ranges, sample_neighbors
from repro.sampling.ops import AllToAll, LocalKernel, OpTrace
from repro.utils.errors import ConfigError
from repro.utils.rng import make_rng, spawn_rngs

#: wire bytes per node id / per count / per weight entry
ID_BYTES = 8


@dataclass(frozen=True)
class CSPConfig:
    """Configurable parameters of CSP (paper Table 2).

    ``fanout[k]`` is the per-node neighbour count for node-wise
    sampling, or the layer's total budget for layer-wise sampling.
    """

    fanout: tuple[int, ...]
    scheme: str = "node"  # "node" or "layer"
    biased: bool = False
    replace: bool = True

    def __post_init__(self) -> None:
        if self.scheme not in ("node", "layer"):
            raise ConfigError(f"unknown scheme {self.scheme!r}")
        if not self.fanout or any(f < 0 for f in self.fanout):
            raise ConfigError("fanout must be non-empty and non-negative")

    @property
    def num_layers(self) -> int:
        return len(self.fanout)


@dataclass(frozen=True)
class CSPStats:
    """Aggregate counters of one CSP invocation."""

    tasks_total: int
    sampled_total: int
    local_tasks: int  # tasks whose adjacency list was already local

    @property
    def locality(self) -> float:
        return self.local_tasks / self.tasks_total if self.tasks_total else 1.0


class CollectiveSampler:
    """CSP over a set of graph patches (one per GPU)."""

    def __init__(
        self,
        patches: list[GraphPatch],
        part_offsets: np.ndarray,
        seed: int = 0,
    ):
        if not patches:
            raise ConfigError("need at least one patch")
        part_offsets = np.asarray(part_offsets, dtype=np.int64)
        if len(part_offsets) != len(patches) + 1:
            raise ConfigError("part_offsets must have num_gpus + 1 entries")
        for g, patch in enumerate(patches):
            if patch.base != part_offsets[g]:
                raise ConfigError(f"patch {g} base does not match offsets")
            if patch.num_local != part_offsets[g + 1] - part_offsets[g]:
                raise ConfigError(f"patch {g} size does not match offsets")
        self.patches = list(patches)
        self.part_offsets = part_offsets
        self.num_gpus = len(patches)
        self.rngs = spawn_rngs(make_rng(seed), self.num_gpus)

    @classmethod
    def from_partitioned(
        cls,
        graph,
        part_offsets: np.ndarray,
        seed: int = 0,
    ) -> "CollectiveSampler":
        """Build patches by slicing a partition-renumbered whole-graph CSR.

        ``graph`` must already be renumbered so each GPU's nodes form the
        consecutive range ``[part_offsets[g], part_offsets[g + 1])`` (see
        :func:`repro.graph.reorder.renumber_by_partition`).
        """
        part_offsets = np.asarray(part_offsets, dtype=np.int64)
        patches = [
            GraphPatch.from_graph(graph, int(part_offsets[g]), int(part_offsets[g + 1]))
            for g in range(len(part_offsets) - 1)
        ]
        return cls(patches, part_offsets, seed=seed)

    # ------------------------------------------------------------------
    def owner_of(self, ids: np.ndarray) -> np.ndarray:
        """GPU owning each global id — the §6 range check."""
        return np.searchsorted(self.part_offsets, ids, side="right") - 1

    # ------------------------------------------------------------------
    def sample(
        self,
        seeds_per_gpu: list[np.ndarray],
        config: CSPConfig,
    ) -> tuple[list[MiniBatchSample], OpTrace, CSPStats]:
        """Run CSP for one mini-batch (one seed array per GPU)."""
        if len(seeds_per_gpu) != self.num_gpus:
            raise ConfigError("need one seed array per GPU")
        seeds = [np.asarray(s, dtype=np.int64) for s in seeds_per_gpu]
        trace = OpTrace()
        tasks_total = sampled_total = local_tasks = 0

        frontiers = seeds
        blocks_per_gpu: list[list[Block]] = [[] for _ in range(self.num_gpus)]
        for layer, budget in enumerate(config.fanout):
            if config.scheme == "layer" and not config.replace:
                # exact weighted sampling without replacement via
                # distributed Efraimidis-Spirakis keys (Table 7 path)
                from repro.sampling.layerwise import layerwise_sample_noreplace

                layer_blocks, _ = layerwise_sample_noreplace(
                    self, frontiers, budget, biased=config.biased, trace=trace
                )
                t = sum(len(f) for f in frontiers)
                s = sum(b.num_edges for b in layer_blocks)
                loc = sum(
                    int((self.owner_of(f) == g).sum())
                    for g, f in enumerate(frontiers)
                )
                tasks_total += t
                sampled_total += s
                local_tasks += loc
                for g, block in enumerate(layer_blocks):
                    blocks_per_gpu[g].append(block)
                frontiers = [next_frontier(b) for b in layer_blocks]
                continue
            if config.scheme == "layer":
                quotas = self._layerwise_quotas(frontiers, budget, config, trace)
            else:
                quotas = [np.full(len(f), budget, dtype=np.int64) for f in frontiers]

            layer_blocks, t, s, loc = self._one_layer(
                frontiers, quotas, config, trace, layer
            )
            tasks_total += t
            sampled_total += s
            local_tasks += loc
            for g, block in enumerate(layer_blocks):
                blocks_per_gpu[g].append(block)
            frontiers = [next_frontier(b) for b in layer_blocks]

        samples = [
            MiniBatchSample(seeds=seeds[g], blocks=tuple(blocks_per_gpu[g]))
            for g in range(self.num_gpus)
        ]
        stats = CSPStats(tasks_total, sampled_total, local_tasks)
        return samples, trace, stats

    # ------------------------------------------------------------------
    # one shuffle / sample / reshuffle round
    # ------------------------------------------------------------------
    def _one_layer(
        self,
        frontiers: list[np.ndarray],
        quotas: list[np.ndarray],
        config: CSPConfig,
        trace: OpTrace,
        layer: int,
    ) -> tuple[list[Block], int, int, int]:
        k = self.num_gpus
        per_task_bytes = ID_BYTES * (2 if config.scheme == "layer" else 1)

        # ---- shuffle: group each GPU's tasks by owner -------------------
        perms, owner_counts = [], np.zeros((k, k), dtype=np.int64)
        for g, frontier in enumerate(frontiers):
            owners = self.owner_of(frontier)
            perm = np.argsort(owners, kind="stable")
            perms.append(perm)
            owner_counts[g] = np.bincount(owners, minlength=k)
        shuffle = owner_counts.astype(np.float64) * per_task_bytes
        trace.add(AllToAll(np.where(np.eye(k, dtype=bool), 0.0, shuffle),
                           label=f"shuffle-L{layer}"))

        # ---- sample: one fused kernel per owner GPU ---------------------
        # owner o receives, for each origin g, a contiguous slice of g's
        # owner-sorted frontier
        src_by_owner_origin: list[list[np.ndarray]] = [[] for _ in range(k)]
        cnt_by_owner_origin: list[list[np.ndarray]] = [[] for _ in range(k)]
        kernel_work = np.zeros(k, dtype=np.float64)
        reshuffle = np.zeros((k, k), dtype=np.float64)

        slice_bounds = [np.concatenate([[0], np.cumsum(owner_counts[g])])
                        for g in range(k)]
        for o, patch in enumerate(self.patches):
            task_chunks, quota_chunks, origin_sizes = [], [], []
            for g in range(k):
                lo, hi = slice_bounds[g][o], slice_bounds[g][o + 1]
                sel = perms[g][lo:hi]
                task_chunks.append(frontiers[g][sel])
                quota_chunks.append(quotas[g][sel])
                origin_sizes.append(hi - lo)
            tasks = np.concatenate(task_chunks) if task_chunks else np.empty(0, np.int64)
            quota = np.concatenate(quota_chunks) if quota_chunks else np.empty(0, np.int64)
            src, counts = sample_neighbors(
                patch,
                tasks - patch.base,
                quota,
                rng=self.rngs[o],
                replace=config.replace,
                biased=config.biased,
            )
            kernel_work[o] = float(counts.sum())
            # split the results back per origin
            cuts = np.cumsum(origin_sizes)[:-1]
            counts_split = np.split(counts, cuts)
            src_cuts = np.cumsum([c.sum() for c in counts_split])[:-1]
            src_split = np.split(src, src_cuts)
            for g in range(k):
                cnt_by_owner_origin[o].append(counts_split[g])
                src_by_owner_origin[o].append(src_split[g])
                reshuffle[o, g] = (
                    src_split[g].nbytes + counts_split[g].nbytes
                )

        trace.add(LocalKernel("sample", kernel_work, label=f"sample-L{layer}"))
        trace.add(AllToAll(np.where(np.eye(k, dtype=bool), 0.0, reshuffle),
                           label=f"reshuffle-L{layer}"))

        # ---- reassemble blocks on the origin GPUs -----------------------
        blocks = []
        tasks_total = sampled_total = local_tasks = 0
        for g in range(k):
            counts_perm = np.concatenate(
                [cnt_by_owner_origin[o][g] for o in range(k)]
            )
            src_perm = np.concatenate([src_by_owner_origin[o][g] for o in range(k)])
            # counts_perm aligns with frontiers[g][perms[g]]; un-permute
            inv = np.empty_like(perms[g])
            inv[perms[g]] = np.arange(len(perms[g]))
            starts_perm = np.concatenate([[0], np.cumsum(counts_perm)])[:-1]
            counts = counts_perm[inv]
            gather = np.repeat(starts_perm[inv], counts) + _ranges(counts)
            src = src_perm[gather]
            offsets = np.concatenate([[0], np.cumsum(counts)])
            blocks.append(Block(frontiers[g], src, offsets))
            tasks_total += len(frontiers[g])
            sampled_total += len(src)
            local_tasks += int(owner_counts[g, g])
        return blocks, tasks_total, sampled_total, local_tasks

    # ------------------------------------------------------------------
    # layer-wise quota assignment (paper Eq. (2))
    # ------------------------------------------------------------------
    def _layerwise_quotas(
        self,
        frontiers: list[np.ndarray],
        budget: int,
        config: CSPConfig,
        trace: OpTrace,
    ) -> list[np.ndarray]:
        """Split a layer budget over frontier nodes, Eq. (2).

        Frontier node ``u`` is drawn (with replacement, ``budget``
        times) with probability ``W_u / sum W``, where ``W_u`` is the
        total weight of ``u``'s neighbours (the degree when unbiased).
        The number of times ``u`` was drawn becomes its fan-out for the
        shuffle/sample/reshuffle round — equivalent to pulling the
        adjacency lists but with far less communication (§4.2).

        ``W_u`` lives with the owner of ``u``'s adjacency list, so this
        does one lightweight id -> weight exchange, which the trace
        records.
        """
        k = self.num_gpus
        weights = self._fetch_frontier_weights(frontiers, config, trace)
        quotas = []
        for g, frontier in enumerate(frontiers):
            w = weights[g]
            total = w.sum()
            if len(frontier) == 0 or total <= 0:
                quotas.append(np.zeros(len(frontier), dtype=np.int64))
                continue
            quotas.append(
                self.rngs[g].multinomial(budget, w / total).astype(np.int64)
            )
        return quotas

    def _fetch_frontier_weights(
        self,
        frontiers: list[np.ndarray],
        config: CSPConfig,
        trace: OpTrace,
    ) -> list[np.ndarray]:
        """W_u for every frontier node, fetched from the owning GPUs."""
        k = self.num_gpus
        request = np.zeros((k, k), dtype=np.float64)
        weights = []
        for g, frontier in enumerate(frontiers):
            owners = self.owner_of(frontier)
            request[g] = np.bincount(owners, minlength=k) * ID_BYTES
            w = np.empty(len(frontier), dtype=np.float64)
            for o in np.unique(owners):
                patch = self.patches[o]
                mask = owners == o
                local = frontier[mask] - patch.base
                if config.biased:
                    cum = patch.cum_weights
                    starts = patch.indptr[local]
                    ends = patch.indptr[local + 1]
                    w[mask] = cum[ends] - cum[starts]
                else:
                    w[mask] = (patch.indptr[local + 1] - patch.indptr[local])
            weights.append(w)
        off = np.where(np.eye(k, dtype=bool), 0.0, request)
        trace.add(AllToAll(off, label="weights-req"))
        trace.add(AllToAll(off.T, label="weights-resp"))
        return weights
