"""Pull-Data baseline: fetch adjacency lists instead of pushing tasks.

The alternative CSP design the paper measures in Fig 11: the topology
is partitioned exactly as for CSP, but when a GPU needs a remote
frontier node it *pulls the whole adjacency list* (plus the weight list
for biased sampling) over NVLink and samples locally.  Communication is
``degree * 8`` bytes per remote node versus CSP's
``(1 + fanout) * 8`` — a big loss whenever degree >> fanout (§4.1,
"task push vs data pull").
"""

from __future__ import annotations

import numpy as np

from repro.sampling.csp import CSPConfig, CSPStats, CollectiveSampler, ID_BYTES
from repro.sampling.frontier import Block, MiniBatchSample, next_frontier
from repro.sampling.local import sample_neighbors
from repro.sampling.ops import AllToAll, LocalKernel, OpTrace
from repro.utils.errors import ConfigError


class PullDataSampler(CollectiveSampler):
    """Same partitioned layout as CSP, opposite movement of data."""

    def sample(
        self,
        seeds_per_gpu: list[np.ndarray],
        config: CSPConfig,
    ) -> tuple[list[MiniBatchSample], OpTrace, CSPStats]:
        """Sample one mini-batch, pulling remote adjacency lists."""
        if len(seeds_per_gpu) != self.num_gpus:
            raise ConfigError("need one seed array per GPU")
        if config.scheme != "node":
            raise ConfigError("PullData implements node-wise sampling")
        k = self.num_gpus
        trace = OpTrace()
        seeds = [np.asarray(s, dtype=np.int64) for s in seeds_per_gpu]

        frontiers = list(seeds)
        blocks_per_gpu: list[list[Block]] = [[] for _ in range(k)]
        tasks_total = sampled_total = local_tasks = 0
        weight_factor = 2 if config.biased else 1  # weights ride along

        for layer, fanout in enumerate(config.fanout):
            request = np.zeros((k, k), dtype=np.float64)
            response = np.zeros((k, k), dtype=np.float64)
            work = np.zeros(k, dtype=np.float64)
            for g in range(k):
                frontier = frontiers[g]
                owners = self.owner_of(frontier)
                local_tasks += int(np.count_nonzero(owners == g))
                tasks_total += len(frontier)
                # pull traffic: id out, full adjacency (+weights) back
                for o in range(k):
                    if o == g:
                        continue
                    remote = frontier[owners == o]
                    if len(remote) == 0:
                        continue
                    patch = self.patches[o]
                    local = remote - patch.base
                    deg = (patch.indptr[local + 1] - patch.indptr[local]).sum()
                    request[g, o] += len(remote) * ID_BYTES
                    response[o, g] += float(deg) * ID_BYTES * weight_factor

                # functionally: sample per owner patch (the distribution is
                # identical whether the list was pulled or already local)
                src_parts, cnt_parts, order_parts = [], [], []
                for o in np.unique(owners):
                    mask = owners == o
                    patch = self.patches[o]
                    src_o, counts_o = sample_neighbors(
                        patch,
                        frontier[mask] - patch.base,
                        fanout,
                        rng=self.rngs[g],
                        replace=config.replace,
                        biased=config.biased,
                    )
                    src_parts.append(src_o)
                    cnt_parts.append(counts_o)
                    order_parts.append(np.flatnonzero(mask))
                counts = np.zeros(len(frontier), dtype=np.int64)
                if order_parts:
                    for idx, cnt in zip(order_parts, cnt_parts):
                        counts[idx] = cnt
                # stitch sources back into original task order
                src = np.empty(int(counts.sum()), dtype=np.int64)
                offsets = np.concatenate([[0], np.cumsum(counts)])
                for idx, cnt, src_o in zip(order_parts, cnt_parts, src_parts):
                    pos = np.repeat(offsets[idx], cnt) + _concat_ranges(cnt)
                    src[pos] = src_o
                blocks_per_gpu[g].append(Block(frontier, src, offsets))
                sampled_total += len(src)
                work[g] = float(len(src))

            trace.add(AllToAll(request, label=f"pull-req-L{layer}"))
            trace.add(AllToAll(response, label=f"pull-resp-L{layer}"))
            trace.add(LocalKernel("sample", work, label=f"sample-L{layer}"))
            frontiers = [next_frontier(blocks_per_gpu[g][-1]) for g in range(k)]

        samples = [
            MiniBatchSample(seeds=seeds[g], blocks=tuple(blocks_per_gpu[g]))
            for g in range(k)
        ]
        return samples, trace, CSPStats(tasks_total, sampled_total, local_tasks)


def _concat_ranges(sizes: np.ndarray) -> np.ndarray:
    from repro.sampling.local import _ranges

    return _ranges(np.asarray(sizes, dtype=np.int64))
