"""Graph sampling: the collective sampling primitive (CSP) and baselines.

The centrepiece is :class:`~repro.sampling.csp.CollectiveSampler`
implementing the paper's CSP (§4): layer-by-layer sampling on a graph
partitioned across GPUs, in three stages per layer — *shuffle* frontier
nodes to the GPU owning their adjacency lists, *sample* locally with a
fused kernel, and *reshuffle* the sampled neighbours back.  CSP
expresses node-wise and layer-wise schemes, biased and unbiased
sampling, with and without replacement, and random walks (Table 2).

Baselines implement the alternatives the paper measures against:

- :class:`~repro.sampling.uva.UVASampler` — topology in host memory,
  sampled through UVA over PCIe with read amplification (DGL-UVA,
  Quiver).
- :class:`~repro.sampling.cpu.CPUSampler` — host-side sampling with
  graph samples shipped to GPU (PyG, DGL-CPU).
- :class:`~repro.sampling.pulldata.PullDataSampler` — partitioned
  topology, but *pulling* whole adjacency lists from remote GPUs
  instead of pushing tasks (the Fig 11 comparison).

All samplers produce identical functional output distributions; they
differ in where the data lives and what the movement costs, which is
captured in the per-mini-batch statistics each sampler returns.
"""

from repro.sampling.frontier import Block, MiniBatchSample
from repro.sampling.local import sample_neighbors, GraphPatch
from repro.sampling.csp import CollectiveSampler, CSPConfig, CSPStats
from repro.sampling.uva import UVASampler
from repro.sampling.cpu import CPUSampler
from repro.sampling.pulldata import PullDataSampler
from repro.sampling.layerwise import layerwise_quotas, layerwise_sample_noreplace
from repro.sampling.randomwalk import node2vec_walk, random_walk
from repro.sampling.temporal import (
    TemporalCollectiveSampler,
    temporal_sample_neighbors,
)

__all__ = [
    "Block",
    "MiniBatchSample",
    "sample_neighbors",
    "GraphPatch",
    "CollectiveSampler",
    "CSPConfig",
    "CSPStats",
    "UVASampler",
    "CPUSampler",
    "PullDataSampler",
    "layerwise_quotas",
    "layerwise_sample_noreplace",
    "random_walk",
    "node2vec_walk",
    "TemporalCollectiveSampler",
    "temporal_sample_neighbors",
]
