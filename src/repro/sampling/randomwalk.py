"""Graph random walks as a special case of CSP (paper §4.2).

A random walk is node-wise sampling with fan-out 1 at every layer: the
walk's current node is shuffled to its owner GPU, the owner samples one
neighbour, and the walk state (walk id + position, 16 bytes) moves on
to the next node's owner — the reshuffle stage disappears because the
task keeps travelling with the data.  Walks terminate early at
dead-end nodes or, optionally, with a restart/stop probability checked
in the shuffle stage.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.csp import CollectiveSampler, ID_BYTES
from repro.sampling.local import sample_neighbors
from repro.sampling.ops import AllToAll, LocalKernel, OpTrace
from repro.utils.errors import ConfigError
from repro.utils.rng import make_rng


def random_walk(
    sampler: CollectiveSampler,
    starts_per_gpu: list[np.ndarray],
    length: int,
    stop_prob: float = 0.0,
    biased: bool = False,
    seed: int = 0,
) -> tuple[list[np.ndarray], OpTrace]:
    """Walk ``length`` steps from each start node.

    Returns one ``int64[num_walks, length + 1]`` matrix per GPU (column
    0 is the start; -1 marks a terminated walk) and the op trace.  The
    per-step all-to-all records walk-state movement between the owner
    of the current node and the owner of the next node; a final
    collection all-to-all returns finished paths to their origin GPU.
    """
    if length < 0:
        raise ConfigError("length must be non-negative")
    if not 0.0 <= stop_prob < 1.0:
        raise ConfigError("stop_prob must be in [0, 1)")
    k = sampler.num_gpus
    if len(starts_per_gpu) != k:
        raise ConfigError("need one start array per GPU")
    rng = make_rng(seed)
    trace = OpTrace()

    paths = [
        np.full((len(s), length + 1), -1, dtype=np.int64) for s in starts_per_gpu
    ]
    for g, starts in enumerate(starts_per_gpu):
        paths[g][:, 0] = np.asarray(starts, dtype=np.int64)

    # flat walk state: (origin gpu, walk row, current node)
    origin = np.concatenate(
        [np.full(len(s), g, dtype=np.int64) for g, s in enumerate(starts_per_gpu)]
    )
    row = np.concatenate(
        [np.arange(len(s), dtype=np.int64) for s in starts_per_gpu]
    )
    current = np.concatenate(
        [np.asarray(s, dtype=np.int64) for s in starts_per_gpu]
    )
    alive = np.ones(len(current), dtype=bool)

    for step in range(1, length + 1):
        if stop_prob > 0 and alive.any():
            alive &= rng.random(len(alive)) >= stop_prob
        idx = np.flatnonzero(alive)
        if len(idx) == 0:
            break
        owners = sampler.owner_of(current[idx])
        move = np.zeros((k, k), dtype=np.float64)
        work = np.zeros(k, dtype=np.float64)
        nxt = np.full(len(idx), -1, dtype=np.int64)
        for o in np.unique(owners):
            patch = sampler.patches[o]
            mask = owners == o
            local = current[idx[mask]] - patch.base
            src, counts = sample_neighbors(
                patch, local, 1, rng=sampler.rngs[o], biased=biased
            )
            work[o] = float(counts.sum())
            stepped = np.full(int(mask.sum()), -1, dtype=np.int64)
            stepped[counts > 0] = src
            nxt[mask] = stepped
            # walk state travels from this owner to the next node's owner
            moved = stepped[stepped >= 0]
            if len(moved):
                dest = sampler.owner_of(moved)
                for d, cnt in zip(*np.unique(dest, return_counts=True)):
                    if d != o:
                        move[o, d] += cnt * 2 * ID_BYTES
        trace.add(LocalKernel("sample", work, label=f"walk-step{step}"))
        trace.add(AllToAll(move, label=f"walk-move{step}"))

        dead_end = nxt < 0
        for g in range(k):
            mask = (origin[idx] == g) & ~dead_end
            paths[g][row[idx[mask]], step] = nxt[mask]
        current[idx] = np.where(dead_end, current[idx], nxt)
        alive[idx[dead_end]] = False

    # collect finished paths to their origin GPU
    collect = np.zeros((k, k), dtype=np.float64)
    final_owner = sampler.owner_of(np.maximum(current, 0))
    for g in range(k):
        mine = origin == g
        for o in range(k):
            n = int(np.count_nonzero(mine & (final_owner == o)))
            if n and o != g:
                collect[o, g] += n * (length + 1) * ID_BYTES
    trace.add(AllToAll(collect, label="walk-collect"))
    return paths, trace


def node2vec_walk(
    sampler: CollectiveSampler,
    starts_per_gpu: list[np.ndarray],
    length: int,
    p: float = 1.0,
    q: float = 1.0,
    seed: int = 0,
) -> tuple[list[np.ndarray], OpTrace]:
    """Second-order (node2vec) random walks over the partitioned graph.

    The transition out of ``v`` with predecessor ``t`` weights each
    neighbour ``u`` by ``1/p`` if ``u == t``, ``1`` if ``u`` is also a
    neighbour of ``t``, and ``1/q`` otherwise [Grover & Leskovec 2016].
    Evaluating the weights needs membership tests against the
    *predecessor's* adjacency list, which lives on another GPU in
    general; the trace charges one query message per candidate edge to
    the predecessor's owner, on top of the walk-state movement.

    Returns per-GPU path matrices like :func:`random_walk`.
    """
    if length < 0:
        raise ConfigError("length must be non-negative")
    if p <= 0 or q <= 0:
        raise ConfigError("p and q must be positive")
    k = sampler.num_gpus
    if len(starts_per_gpu) != k:
        raise ConfigError("need one start array per GPU")
    rng = make_rng(seed)
    trace = OpTrace()

    def nbrs(v: int) -> np.ndarray:
        o = int(sampler.owner_of(np.array([v]))[0])
        patch = sampler.patches[o]
        local = v - patch.base
        return patch.indices[patch.indptr[local] : patch.indptr[local + 1]]

    paths = [
        np.full((len(s), length + 1), -1, dtype=np.int64) for s in starts_per_gpu
    ]
    origin, rows, current, prev = [], [], [], []
    for g, starts in enumerate(starts_per_gpu):
        for r, v in enumerate(np.asarray(starts, dtype=np.int64)):
            paths[g][r, 0] = v
            origin.append(g)
            rows.append(r)
            current.append(int(v))
            prev.append(-1)

    alive = [True] * len(current)
    for step in range(1, length + 1):
        move = np.zeros((k, k), dtype=np.float64)
        query = np.zeros((k, k), dtype=np.float64)
        work = np.zeros(k, dtype=np.float64)
        for i in range(len(current)):
            if not alive[i]:
                continue
            v, t = current[i], prev[i]
            o = int(sampler.owner_of(np.array([v]))[0])
            cand = nbrs(v)
            if len(cand) == 0:
                alive[i] = False
                continue
            if t < 0:
                w = np.ones(len(cand))
            else:
                t_nbrs = nbrs(t)
                w = np.full(len(cand), 1.0 / q)
                w[np.isin(cand, t_nbrs)] = 1.0
                w[cand == t] = 1.0 / p
                t_owner = int(sampler.owner_of(np.array([t]))[0])
                if t_owner != o:
                    query[o, t_owner] += len(cand) * ID_BYTES
                    query[t_owner, o] += len(cand)  # 1-byte answers
            u = int(rng.choice(cand, p=w / w.sum()))
            work[o] += 1
            d = int(sampler.owner_of(np.array([u]))[0])
            if d != o:
                move[o, d] += 3 * ID_BYTES  # (walk id, current, prev)
            paths[origin[i]][rows[i], step] = u
            prev[i], current[i] = v, u
        trace.add(LocalKernel("sample", work, label=f"n2v-step{step}"))
        trace.add(AllToAll(query, label=f"n2v-query{step}"))
        trace.add(AllToAll(move, label=f"n2v-move{step}"))
        if not any(alive):
            break
    return paths, trace
