"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operation that
produced it; :meth:`Tensor.backward` topologically sorts the recorded
graph and accumulates gradients.  Only the operations the GNN models
need are implemented, each with an exact vector-Jacobian product —
verified against numeric differentiation in the test suite.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.errors import ReproError


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # remove leading added axes
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum over axes that were broadcast from size 1
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """An autograd-tracked numpy array (float32 by default)."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._parents = _parents
        self._backward = _backward

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(
            data,
            requires_grad=requires,
            _parents=parents if requires else (),
            _backward=backward if requires else None,
        )

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        if grad is None:
            if self.data.size != 1:
                raise ReproError("backward() without grad needs a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()

        def visit(t: "Tensor") -> None:
            stack = [(t, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    topo.append(node)
                    continue
                if id(node) in seen:
                    continue
                seen.add(id(node))
                stack.append((node, True))
                for p in node._parents:
                    if p.requires_grad:
                        stack.append((p, False))

        visit(self)
        self._accumulate(np.asarray(grad, dtype=np.float32))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor") -> "Tensor":
        other = _ensure(other)
        out_data = self.data + other.data

        def backward(g):
            self._accumulate(_unbroadcast(g, self.shape))
            other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __sub__(self, other: "Tensor") -> "Tensor":
        other = _ensure(other)
        out_data = self.data - other.data

        def backward(g):
            self._accumulate(_unbroadcast(g, self.shape))
            other._accumulate(-_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        if isinstance(other, (int, float)):
            scalar = float(other)

            def backward_s(g):
                self._accumulate(g * scalar)

            return Tensor._make(self.data * scalar, (self,), backward_s)
        other = _ensure(other)
        out_data = self.data * other.data

        def backward(g):
            self._accumulate(_unbroadcast(g * other.data, self.shape))
            other._accumulate(_unbroadcast(g * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        def backward(g):
            self._accumulate(-g)

        return Tensor._make(-self.data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = _ensure(other)
        out_data = self.data @ other.data

        def backward(g):
            self._accumulate(g @ other.data.T)
            other._accumulate(self.data.T @ g)

        return Tensor._make(out_data, (self, other), backward)

    def sum(self) -> "Tensor":
        def backward(g):
            self._accumulate(np.broadcast_to(g, self.shape))

        return Tensor._make(self.data.sum(), (self,), backward)

    def mean(self) -> "Tensor":
        n = self.data.size

        def backward(g):
            self._accumulate(np.broadcast_to(g / n, self.shape))

        return Tensor._make(self.data.mean(), (self,), backward)


def _ensure(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)
