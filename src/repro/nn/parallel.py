"""Data-parallel training support (paper §3.2, "Trainer").

Every GPU holds a model replica; after the backward pass the trainers
allreduce (average) gradients so each replica takes an identical
optimizer step — the BSP semantics that make DSP's accuracy-per-batch
curve coincide with the baselines' (Fig 9a).
"""

from __future__ import annotations

import copy

import numpy as np

from repro.nn.modules import Module
from repro.utils.errors import ReproError


def clone_model(model: Module, n: int) -> list[Module]:
    """``n`` independent replicas with identical initial parameters
    (``n == 0`` yields an empty list)."""
    if n < 0:
        raise ReproError("replica count must be non-negative")
    return [copy.deepcopy(model) for _ in range(n)]


def gradient_nbytes(model: Module) -> int:
    """Bytes a full gradient occupies (the allreduce payload per GPU)."""
    return model.state_nbytes()


def allreduce_gradients(models: list[Module]) -> None:
    """Average gradients in place across replicas.

    Replicas whose parameter ``grad`` is ``None`` contribute zero (they
    had no work this step), matching NCCL allreduce semantics where
    every rank must participate.
    """
    if not models:
        raise ReproError("no replicas")
    param_lists = [m.parameters() for m in models]
    n_params = len(param_lists[0])
    if any(len(pl) != n_params for pl in param_lists):
        raise ReproError("replicas have different parameter counts")
    k = len(models)
    for i in range(n_params):
        grads = [
            pl[i].grad for pl in param_lists if pl[i].grad is not None
        ]
        if not grads:
            continue
        mean = np.sum(grads, axis=0) / k
        for pl in param_lists:
            pl[i].grad = mean.copy()
