"""Differentiable operations beyond Tensor's operators.

Includes the segment (scatter/gather) primitives that graph neural
network layers are made of: a block's edges are flattened into parallel
``src index`` / ``dst segment`` arrays, and aggregation becomes a
segment reduction — the same structure the CUDA kernels use.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.errors import ReproError
from repro.utils.rng import make_rng


def relu(x: Tensor) -> Tensor:
    mask = x.data > 0

    def backward(g):
        x._accumulate(g * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def leaky_relu(x: Tensor, slope: float = 0.2) -> Tensor:
    factor = np.where(x.data > 0, 1.0, slope).astype(np.float32)

    def backward(g):
        x._accumulate(g * factor)

    return Tensor._make(x.data * factor, (x,), backward)


def dropout(
    x: Tensor, p: float, rng: np.random.Generator | int | None = None,
    training: bool = True,
) -> Tensor:
    if not 0.0 <= p < 1.0:
        raise ReproError("dropout p must be in [0, 1)")
    if not training or p == 0.0:
        return x
    keep = (make_rng(rng).random(x.shape) >= p) / (1.0 - p)
    keep = keep.astype(np.float32)

    def backward(g):
        x._accumulate(g * keep)

    return Tensor._make(x.data * keep, (x,), backward)


def concat(tensors: list[Tensor], axis: int = 1) -> Tensor:
    datas = [t.data for t in tensors]
    out = np.concatenate(datas, axis=axis)
    splits = np.cumsum([d.shape[axis] for d in datas])[:-1]

    def backward(g):
        for t, piece in zip(tensors, np.split(g, splits, axis=axis)):
            t._accumulate(piece)

    return Tensor._make(out, tuple(tensors), backward)


def gather_rows(x: Tensor, idx: np.ndarray) -> Tensor:
    """Row gather ``x[idx]``; backward scatters with accumulation."""
    idx = np.asarray(idx, dtype=np.int64)

    def backward(g):
        grad = np.zeros_like(x.data)
        np.add.at(grad, idx, g)
        x._accumulate(grad)

    return Tensor._make(x.data[idx], (x,), backward)


def segment_sum(x: Tensor, seg: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets by ``seg`` id."""
    seg = np.asarray(seg, dtype=np.int64)
    if len(seg) != x.shape[0]:
        raise ReproError("need one segment id per row")
    out = np.zeros((num_segments,) + x.shape[1:], dtype=np.float32)
    np.add.at(out, seg, x.data)

    def backward(g):
        x._accumulate(g[seg])

    return Tensor._make(out, (x,), backward)


def segment_mean(x: Tensor, seg: np.ndarray, num_segments: int) -> Tensor:
    """Mean rows per segment; empty segments yield zero rows."""
    seg = np.asarray(seg, dtype=np.int64)
    if len(seg) != x.shape[0]:
        raise ReproError("need one segment id per row")
    counts = np.bincount(seg, minlength=num_segments).astype(np.float32)
    denom = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (x.ndim - 1))
    out = np.zeros((num_segments,) + x.shape[1:], dtype=np.float32)
    np.add.at(out, seg, x.data)
    out /= denom

    def backward(g):
        x._accumulate((g / denom)[seg])

    return Tensor._make(out, (x,), backward)


def segment_max(x: Tensor, seg: np.ndarray, num_segments: int) -> Tensor:
    """Per-segment element-wise max; empty segments yield zero rows.

    Backward routes each output gradient to one argmax row per
    (segment, column) — the max-pool aggregator of GraphSAGE.
    """
    seg = np.asarray(seg, dtype=np.int64)
    if len(seg) != x.shape[0]:
        raise ReproError("need one segment id per row")
    out = np.full((num_segments,) + x.shape[1:], -np.inf, dtype=np.float32)
    np.maximum.at(out, seg, x.data)
    empty = np.isneginf(out)
    out[empty] = 0.0

    # one winning row per (segment, column): the first row attaining the
    # max — fully vectorized via a stable sort over the candidate hits
    ncols = int(np.prod(x.shape[1:])) if x.ndim > 1 else 1
    hit_rows, hit_cols = np.nonzero(
        x.data.reshape(len(seg), -1) == out.reshape(num_segments, -1)[seg]
    )
    key = seg[hit_rows] * np.int64(ncols) + hit_cols
    order = np.argsort(key, kind="stable")  # row-major nonzero keeps rows sorted
    uniq_key, first = np.unique(key[order], return_index=True)
    win_rows = hit_rows[order][first]
    win_seg = uniq_key // ncols
    win_cols = uniq_key % ncols

    def backward(g):
        grad = np.zeros_like(x.data).reshape(len(seg), -1)
        grad[win_rows, win_cols] += g.reshape(num_segments, -1)[win_seg, win_cols]
        x._accumulate(grad.reshape(x.shape))

    return Tensor._make(out, (x,), backward)


def segment_softmax(scores: Tensor, seg: np.ndarray, num_segments: int) -> Tensor:
    """Softmax within each segment (GAT attention normalization)."""
    seg = np.asarray(seg, dtype=np.int64)
    if scores.ndim != 1:
        raise ReproError("segment_softmax expects a 1-D score vector")
    if len(seg) != scores.shape[0]:
        raise ReproError("need one segment id per score")
    # numerically stable: subtract per-segment max
    seg_max = np.full(num_segments, -np.inf, dtype=np.float32)
    np.maximum.at(seg_max, seg, scores.data)
    shifted = scores.data - seg_max[seg]
    e = np.exp(shifted)
    denom = np.zeros(num_segments, dtype=np.float32)
    np.add.at(denom, seg, e)
    out = e / denom[seg]

    def backward(g):
        # d softmax: out * (g - sum_seg(g * out))
        dot = np.zeros(num_segments, dtype=np.float32)
        np.add.at(dot, seg, g * out)
        scores._accumulate(out * (g - dot[seg]))

    return Tensor._make(out, (scores,), backward)


def log_softmax(x: Tensor) -> Tensor:
    """Row-wise log-softmax (classification head)."""
    m = x.data.max(axis=1, keepdims=True)
    shifted = x.data - m
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    out = shifted - lse

    def backward(g):
        soft = np.exp(out)
        x._accumulate(g - soft * g.sum(axis=1, keepdims=True))

    return Tensor._make(out, (x,), backward)
