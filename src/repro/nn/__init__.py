"""Minimal neural-network stack: autograd, GNN layers, optimizers.

The paper trains GraphSAGE and GCN with PyTorch + DGL; neither is
available here, so this package provides the pieces those frameworks
contribute: a reverse-mode autograd engine over numpy
(:mod:`~repro.nn.tensor`), graph convolution layers that consume the
sampled :class:`~repro.sampling.frontier.Block` structures
(:mod:`~repro.nn.gnn`), losses, optimizers, and data-parallel gradient
averaging with the byte accounting the trainer's allreduce needs
(:mod:`~repro.nn.parallel`).

Everything is small but real: models actually converge on the synthetic
datasets, which is what the Fig 9 correctness experiment requires.
"""

from repro.nn.tensor import Tensor
from repro.nn import functional
from repro.nn.modules import Linear, Module, Parameter
from repro.nn.gnn import GCN, GAT, GraphSAGE, GATConv, GCNConv, SAGEConv
from repro.nn.loss import accuracy, cross_entropy
from repro.nn.optim import SGD, Adam
from repro.nn.parallel import allreduce_gradients, gradient_nbytes, clone_model

__all__ = [
    "Tensor",
    "functional",
    "Linear",
    "Module",
    "Parameter",
    "GraphSAGE",
    "GCN",
    "GAT",
    "SAGEConv",
    "GCNConv",
    "GATConv",
    "accuracy",
    "cross_entropy",
    "SGD",
    "Adam",
    "allreduce_gradients",
    "gradient_nbytes",
    "clone_model",
]
