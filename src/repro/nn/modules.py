"""Module/parameter plumbing (a micro version of torch.nn)."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.errors import ReproError
from repro.utils.rng import make_rng


class Parameter(Tensor):
    """A Tensor registered as trainable model state."""

    __slots__ = ("_order",)
    _counter = 0

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        self._order = Parameter._counter
        Parameter._counter += 1


class Module:
    """Base class: parameter discovery via attribute walking."""

    def parameters(self) -> list[Parameter]:
        out: list[Parameter] = []
        seen: set[int] = set()
        stack: list[object] = [self]
        while stack:
            obj = stack.pop()
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            if isinstance(obj, Parameter):
                out.append(obj)
            elif isinstance(obj, Module):
                stack.extend(obj.__dict__.values())
            elif isinstance(obj, (list, tuple)):
                stack.extend(obj)
        # deterministic order regardless of dict/stack order
        out.sort(key=lambda p: p._order)
        return out

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def state_nbytes(self) -> int:
        return sum(p.nbytes for p in self.parameters())

    def load_state(self, arrays: list[np.ndarray]) -> None:
        params = self.parameters()
        if len(arrays) != len(params):
            raise ReproError("state size mismatch")
        for p, a in zip(params, arrays):
            if p.data.shape != a.shape:
                raise ReproError("parameter shape mismatch")
            p.data = a.astype(np.float32, copy=True)

    def state(self) -> list[np.ndarray]:
        return [p.data.copy() for p in self.parameters()]


class Linear(Module):
    """Dense layer with Glorot-uniform init."""

    def __init__(self, in_dim: int, out_dim: int, bias: bool = True,
                 rng: np.random.Generator | int | None = None):
        if in_dim <= 0 or out_dim <= 0:
            raise ReproError("dimensions must be positive")
        rng = make_rng(rng)
        bound = np.sqrt(6.0 / (in_dim + out_dim))
        self.weight = Parameter(rng.uniform(-bound, bound, size=(in_dim, out_dim)))
        self.bias = Parameter(np.zeros(out_dim)) if bias else None
        self.in_dim, self.out_dim = in_dim, out_dim

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    @property
    def flops_per_row(self) -> float:
        """Dense FLOPs to push one row through this layer."""
        return 2.0 * self.in_dim * self.out_dim
