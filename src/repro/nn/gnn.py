"""GNN layers and models over sampled blocks.

A convolution consumes one :class:`~repro.sampling.frontier.Block` and
an embedding matrix whose rows correspond to ``block.all_nodes``
(sorted unique ids), and produces embeddings for ``block.dst_nodes`` —
Eq. (1) restricted to the sampled neighbourhood.  A model chains its
layers deepest-block-first, exactly like DGL's block-based mini-batch
training.

Models:

- :class:`GraphSAGE` — self/neighbour concatenation with a mean or
  max-pool aggregator (the paper's default model, 3 layers x hidden 256);
- :class:`GCN` — mean over neighbours *and* self (normalized
  aggregation), lighter compute than SAGE (the Table 5 model);
- :class:`GAT` — multi-head additive attention with segment softmax.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.modules import Linear, Module, Parameter
from repro.nn.tensor import Tensor
from repro.sampling.frontier import Block, MiniBatchSample
from repro.utils.errors import ReproError
from repro.utils.rng import make_rng, spawn_rngs


def _block_indices(block: Block) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(dst row idx, edge src row idx, edge dst segment) w.r.t. all_nodes."""
    nodes = block.all_nodes
    dst_idx = np.searchsorted(nodes, block.dst_nodes)
    src_idx = np.searchsorted(nodes, block.src_nodes)
    seg = np.repeat(np.arange(block.num_dst, dtype=np.int64),
                    np.diff(block.offsets))
    return dst_idx, src_idx, seg


class SAGEConv(Module):
    """GraphSAGE: ``W [h_v || AGG(h_u)]`` with a mean or max-pool
    aggregator [Hamilton et al. 2017]."""

    def __init__(self, in_dim: int, out_dim: int,
                 aggregator: str = "mean",
                 rng: np.random.Generator | int | None = None):
        if aggregator not in ("mean", "pool"):
            raise ReproError(f"unknown aggregator {aggregator!r}")
        rng = make_rng(rng)
        self.aggregator = aggregator
        self.fc = Linear(2 * in_dim, out_dim, rng=rng)
        # the pool aggregator transforms neighbours before the max
        self.fc_pool = (
            Linear(in_dim, in_dim, rng=rng) if aggregator == "pool" else None
        )

    def __call__(self, block: Block, h: Tensor) -> Tensor:
        dst_idx, src_idx, seg = _block_indices(block)
        h_dst = F.gather_rows(h, dst_idx)
        h_src = F.gather_rows(h, src_idx)
        if self.aggregator == "pool":
            h_src = F.relu(self.fc_pool(h_src))
            h_agg = F.segment_max(h_src, seg, block.num_dst)
        else:
            h_agg = F.segment_mean(h_src, seg, block.num_dst)
        return self.fc(F.concat([h_dst, h_agg]))

    @property
    def flops_per_dst(self) -> float:
        flops = self.fc.flops_per_row
        if self.fc_pool is not None:
            flops += self.fc_pool.flops_per_row
        return flops


class GCNConv(Module):
    """GCN-style: ``W mean(h_u for u in N(v) + v)``."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator | int | None = None):
        self.fc = Linear(in_dim, out_dim, rng=make_rng(rng))

    def __call__(self, block: Block, h: Tensor) -> Tensor:
        dst_idx, src_idx, seg = _block_indices(block)
        # append one self edge per dst: mean over N(v) union {v}
        all_idx = np.concatenate([src_idx, dst_idx])
        all_seg = np.concatenate([seg, np.arange(block.num_dst)])
        h_agg = F.segment_mean(F.gather_rows(h, all_idx), all_seg, block.num_dst)
        return self.fc(h_agg)

    @property
    def flops_per_dst(self) -> float:
        return self.fc.flops_per_row


class GATConv(Module):
    """Multi-head graph attention with additive scoring.

    ``out_dim`` must be divisible by ``num_heads``; per-head outputs of
    width ``out_dim / num_heads`` are concatenated (the standard GAT
    hidden-layer configuration).
    """

    def __init__(self, in_dim: int, out_dim: int, num_heads: int = 1,
                 rng: np.random.Generator | int | None = None):
        if num_heads < 1:
            raise ReproError("num_heads must be positive")
        if out_dim % num_heads != 0:
            raise ReproError("out_dim must be divisible by num_heads")
        rng = make_rng(rng)
        self.num_heads = num_heads
        head_dim = out_dim // num_heads
        self.heads = [
            _GATHead(in_dim, head_dim, rng=rng) for _ in range(num_heads)
        ]

    def __call__(self, block: Block, h: Tensor) -> Tensor:
        idx = _block_indices(block)
        outs = [head(block, h, idx) for head in self.heads]
        return outs[0] if len(outs) == 1 else F.concat(outs)

    @property
    def flops_per_dst(self) -> float:
        return sum(head.fc.flops_per_row for head in self.heads)


class _GATHead(Module):
    """One attention head (a single-head GATConv body)."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator | int | None = None):
        rng = make_rng(rng)
        self.fc = Linear(in_dim, out_dim, bias=False, rng=rng)
        bound = np.sqrt(3.0 / out_dim)
        self.attn_src = Parameter(rng.uniform(-bound, bound, size=(out_dim, 1)))
        self.attn_dst = Parameter(rng.uniform(-bound, bound, size=(out_dim, 1)))

    def __call__(self, block: Block, h: Tensor, idx=None) -> Tensor:
        dst_idx, src_idx, seg = idx if idx is not None else _block_indices(block)
        z = self.fc(h)
        z_src = F.gather_rows(z, src_idx)
        z_dst = F.gather_rows(z, dst_idx)
        score_src = z_src @ self.attn_src  # [E, 1]
        score_dst = F.gather_rows(z_dst @ self.attn_dst, seg)
        scores = F.leaky_relu(_squeeze(score_src + score_dst))
        alpha = F.segment_softmax(scores, seg, block.num_dst)
        weighted = z_src * _unsqueeze(alpha)
        return F.segment_sum(weighted, seg, block.num_dst)


def _squeeze(t: Tensor) -> Tensor:
    def backward(g):
        t._accumulate(g.reshape(t.shape))

    return Tensor._make(t.data.reshape(-1), (t,), backward)


def _unsqueeze(t: Tensor) -> Tensor:
    def backward(g):
        t._accumulate(g.reshape(t.shape))

    return Tensor._make(t.data.reshape(-1, 1), (t,), backward)


class _BlockModel(Module):
    """Shared forward: chain convs deepest-block-first, ReLU between."""

    conv_cls: type = None  # set by subclasses

    #: extra keyword arguments forwarded to every conv (subclass hook)
    conv_kwargs: dict = {}

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int,
                 num_layers: int = 3, dropout: float = 0.0, seed: int = 0,
                 **conv_kwargs):
        if num_layers < 1:
            raise ReproError("need at least one layer")
        rngs = spawn_rngs(make_rng(seed), num_layers)
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
        kwargs = {**self.conv_kwargs, **conv_kwargs}
        self.convs = [
            self.conv_cls(dims[i], dims[i + 1], rng=rngs[i], **kwargs)
            for i in range(num_layers)
        ]
        self.dropout = dropout
        self.num_layers = num_layers
        self._drop_rng = make_rng(seed + 1)

    def __call__(self, sample: MiniBatchSample, features: Tensor,
                 training: bool = True) -> Tensor:
        """Forward pass.

        ``features`` rows must correspond to ``sample.all_nodes``
        (sorted unique) — what the loader fetched for this mini-batch.
        """
        if sample.num_layers != self.num_layers:
            raise ReproError(
                f"sample has {sample.num_layers} blocks, model has "
                f"{self.num_layers} layers"
            )
        nodes = sample.all_nodes
        if features.shape[0] != len(nodes):
            raise ReproError("features must cover sample.all_nodes")

        # deepest block first (convs[0] is the input layer); chaining
        # works because block j+1's dst set equals block j's all_nodes
        block = sample.blocks[-1]
        h = F.gather_rows(features, np.searchsorted(nodes, block.all_nodes))
        for layer, conv in enumerate(self.convs):
            block = sample.blocks[self.num_layers - 1 - layer]
            h = conv(block, h)
            if layer < self.num_layers - 1:
                h = F.relu(h)
                if self.dropout > 0:
                    h = F.dropout(h, self.dropout, rng=self._drop_rng,
                                  training=training)
        return h  # rows correspond to sample.seeds

    def forward_flops(self, sample: MiniBatchSample) -> float:
        """Dense FLOPs of one forward pass (cost-model input)."""
        total = 0.0
        for layer, conv in enumerate(self.convs):
            block = sample.blocks[self.num_layers - 1 - layer]
            total += block.num_dst * conv.flops_per_dst
        return total


class GraphSAGE(_BlockModel):
    """GraphSAGE [14]: the paper's default model (3 layers, hidden 256)."""

    conv_cls = SAGEConv


class GCN(_BlockModel):
    """GCN [19]: lighter compute than SAGE (the Table 5 model)."""

    conv_cls = GCNConv


class GAT(_BlockModel):
    """Graph attention network [37]; pass ``num_heads`` for multi-head."""

    conv_cls = GATConv
