"""Optimizers: SGD with momentum, and Adam."""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Parameter
from repro.utils.errors import ReproError


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        if lr <= 0:
            raise ReproError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ReproError("momentum must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam with bias correction."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        if lr <= 0:
            raise ReproError("lr must be positive")
        b1, b2 = betas
        if not (0 <= b1 < 1 and 0 <= b2 < 1):
            raise ReproError("betas must be in [0, 1)")
        self.params = list(params)
        self.lr, self.b1, self.b2, self.eps = lr, b1, b2, eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.b1**self._t
        bc2 = 1.0 - self.b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.b1
            m += (1 - self.b1) * g
            v *= self.b2
            v += (1 - self.b2) * g * g
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
