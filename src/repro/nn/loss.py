"""Classification loss and metrics."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.utils.errors import ReproError


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of ``labels`` under row softmax."""
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2 or len(labels) != logits.shape[0]:
        raise ReproError("need one label per logit row")
    if len(labels) == 0:
        raise ReproError("empty batch")
    logp = F.log_softmax(logits)
    n = len(labels)
    rows = np.arange(n)

    picked_data = logp.data[rows, labels]

    def backward(g):
        grad = np.zeros_like(logp.data)
        grad[rows, labels] = -g / n
        logp._accumulate(grad)

    picked = Tensor._make(-picked_data.mean(), (logp,), backward)
    return picked


def accuracy(logits: Tensor | np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    labels = np.asarray(labels)
    if len(labels) == 0:
        return 0.0
    return float(np.mean(np.argmax(data, axis=1) == labels))
