"""Benchmark harness: sweep runners and paper-style table printers.

``benchmarks/`` (the pytest-benchmark suite) uses this package to run
each experiment of the paper's evaluation section and print the same
rows/series the paper reports.  The heavy lifting — building systems,
running costed epochs, formatting — lives here so it is importable
from examples and tests as well.
"""

from repro.bench.harness import (
    DATASETS,
    GPU_COUNTS,
    fmt_table,
    measured_epoch,
    quick_mode,
)

__all__ = [
    "DATASETS",
    "GPU_COUNTS",
    "fmt_table",
    "measured_epoch",
    "quick_mode",
]
