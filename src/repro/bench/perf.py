"""Perf-regression microbenchmarks (``repro perf``).

Real wall-clock measurements of the repository's hot paths — unlike
the ``benchmarks/test_*`` suite, which reports *simulated* hardware
time, these benchmarks time the Python implementation itself, so a
perf PR lands with a measured before/after trajectory instead of a
claim (see ``docs/performance.md``).

Four microbenchmarks:

- ``csp_layer``   — the CSP shuffle/sample/reshuffle rounds for one
  mini-batch (8 GPUs, 3 layers, node-wise by default), fast path vs
  the chunked reference implementation;
- ``feature_load``— ``FeatureLoader.load`` over one batch's requests,
  vs the seed's per-holder Python loop (kept here as the *before*
  measurement);
- ``epoch``       — a costed (non-functional) training epoch of the
  DSP system, fast vs reference sampling path;
- ``serve_batch`` — one ``serve_once`` sweep point of the online
  serving pipeline, fast vs reference sampling path.

plus ``sweep`` — a QPS-sweep ladder driven by the multi-core run
executor (:mod:`repro.parallel`) against the pre-PR serial driver —
and two cluster-era benchmarks:

- ``chaos_scenario``  — a systems x scenarios resilience matrix through
  the parallel executor vs cell-after-cell in one process;
- ``multinode_epoch`` — a costed 2-server DSP epoch (hierarchical
  partition + lowered CSP), fast vs reference sampling path;

and one engine-core benchmark:

- ``engine_core``     — raw event-dispatch throughput (events/s) of the
  simulator: the bucketed batch-dispatch scheduler vs the retained
  ``use_heap_scheduler=True`` heap core, same workload, identical
  event counts and final clock asserted.

``run_perf`` executes them and returns the ``BENCH_perf.json`` payload:
per-benchmark wall-clock, batches/s, sampled-edges/s where meaningful,
and before/after deltas.  ``--quick`` shrinks datasets and iteration
counts for CI smoke runs (the numbers move; the schema does not).
With ``workers > 1`` the selected benchmarks fan out one-per-core;
each benchmark still times its own code single-threaded, so the
numbers are comparable with a serial run (modulo shared-core noise).

``clock`` selects the timer: ``"wall"`` (``time.perf_counter``) or
``"fake"`` — a deterministic virtual clock that makes the whole
payload, timings included, a pure function of the inputs.  The fake
clock exists for the parallel-vs-serial equivalence suite: with it,
``run_perf(workers=1)`` and ``run_perf(workers=4)`` must produce
bit-identical JSON.

``diff_against_baseline`` compares a fresh payload against a committed
one and flags speedup regressions — the CI perf-smoke gate.
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from repro.cache.loader import ID_BYTES, FeatureLoader
from repro.cache.store import Placement, PartitionedCache
from repro.sampling.csp import CollectiveSampler, CSPConfig
from repro.sampling.ops import (
    AllToAll,
    LocalKernel,
    OpTrace,
    ParallelGroup,
    UVAGather,
)

#: bump when the payload schema changes
SCHEMA_VERSION = 2

BENCH_NAMES = ("csp_layer", "feature_load", "epoch", "serve_batch", "sweep",
               "chaos_scenario", "multinode_epoch", "engine_core",
               "cache_dynamic", "control_loop")


# ----------------------------------------------------------------------
# plumbing
# ----------------------------------------------------------------------
def _make_clock(clock):
    """Resolve a clock spec: ``"wall"`` -> ``time.perf_counter``;
    ``"fake"`` -> a deterministic counter advancing 1ms per reading
    (for the bit-equivalence tests); callables pass through."""
    if callable(clock):
        return clock
    if clock == "wall":
        return time.perf_counter
    if clock == "fake":
        ticks = itertools.count()
        return lambda: next(ticks) * 1e-3
    from repro.utils.errors import ConfigError

    raise ConfigError(f"unknown perf clock {clock!r} (wall|fake)")


def _time_per_call(fn, iters: int, warmup: int = 1,
                   clock=time.perf_counter) -> float:
    """Mean seconds per ``fn()`` call over ``iters`` calls."""
    for _ in range(warmup):
        fn()
    t0 = clock()
    for _ in range(iters):
        fn()
    return (clock() - t0) / iters


def _on_legacy_engine(fn):
    """Call ``fn`` with the pre-PR heap scheduler selected.

    The *before* side of the simulation-driven benchmarks replays the
    full seed stack — reference sampling path, plan cache off, **and**
    the legacy heap event core (simulators are constructed per run, so
    the ``REPRO_HEAP_SCHEDULER`` switch takes effect inside ``fn``).
    """
    import os

    os.environ["REPRO_HEAP_SCHEDULER"] = "1"
    try:
        return fn()
    finally:
        os.environ.pop("REPRO_HEAP_SCHEDULER", None)


def _build_sampler(dataset: str, num_gpus: int, seed: int = 0):
    """A partitioned CollectiveSampler over a cached dataset."""
    from repro.graph.datasets import load_dataset, load_partition
    from repro.graph.reorder import renumber_by_partition

    ds = load_dataset(dataset)
    part = load_partition(dataset, num_gpus, seed=seed)
    rgraph, _, nb = renumber_by_partition(ds.graph, part)
    sampler = CollectiveSampler.from_partitioned(
        rgraph, nb.part_offsets, seed=seed
    )
    return sampler, ds, nb


def _seed_batch(sampler, per_gpu: int, seed: int = 3):
    """One mini-batch of co-partitioned seeds (``per_gpu`` per GPU)."""
    rng = np.random.default_rng(seed)
    return [
        rng.choice(
            np.arange(sampler.part_offsets[g], sampler.part_offsets[g + 1]),
            size=per_gpu,
            replace=False,
        )
        for g in range(sampler.num_gpus)
    ]


# ----------------------------------------------------------------------
# 1. CSP layer round — the tentpole measurement
# ----------------------------------------------------------------------
def bench_csp_layer(quick: bool = False, clock="wall") -> dict:
    """Fast-path vs reference CSP rounds: 8 GPUs, 3 node-wise layers."""
    tick = _make_clock(clock)
    dataset = "tiny" if quick else "products"
    per_gpu = 32 if quick else 256
    iters = 2 if quick else 5
    num_gpus, fanout = 8, (15, 10, 5)
    config = CSPConfig(fanout=fanout, scheme="node")

    fast, _, _ = _build_sampler(dataset, num_gpus)
    ref, _, _ = _build_sampler(dataset, num_gpus)
    ref.use_fast_path = False
    seeds = _seed_batch(fast, per_gpu)

    sampled_edges = 0

    def run_fast():
        nonlocal sampled_edges
        _, _, stats = fast.sample(seeds, config)
        sampled_edges = stats.sampled_total

    wall_after = _time_per_call(run_fast, iters, clock=tick)
    wall_before = _time_per_call(
        lambda: ref.sample(seeds, config), iters, clock=tick
    )
    return {
        "params": {
            "dataset": dataset,
            "num_gpus": num_gpus,
            "fanout": list(fanout),
            "scheme": "node",
            "seeds_per_gpu": per_gpu,
            "iters": iters,
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": wall_before / wall_after,
        "batches_per_s": 1.0 / wall_after,
        "sampled_edges_per_s": sampled_edges / wall_after,
    }


# ----------------------------------------------------------------------
# 2. feature load — vs the seed's per-holder Python loop
# ----------------------------------------------------------------------
def _reference_load(
    loader: FeatureLoader, requests_per_gpu: list[np.ndarray]
) -> tuple[list[np.ndarray], OpTrace, dict]:
    """The seed implementation of :meth:`FeatureLoader.load`, verbatim.

    Kept here as the *before* measurement (and an equivalence oracle)
    for the vectorized loader: duplicated ``loc.count`` calls and a
    per-holder Python loop.
    """
    k = loader.store.num_gpus
    out: list[np.ndarray] = []
    pos_req = np.zeros((k, k), dtype=np.float64)
    feat_resp = np.zeros((k, k), dtype=np.float64)
    local_bytes = np.zeros(k, dtype=np.float64)
    cold_items = np.zeros(k, dtype=np.float64)
    stats = {"local": 0, "remote": 0, "cold": 0}

    for g, req in enumerate(requests_per_gpu):
        nodes = np.unique(np.asarray(req, dtype=np.int64))
        out.append(loader.features[nodes])
        loc = loader.store.locate(nodes, g)
        stats["local"] += loc.count(Placement.LOCAL)
        stats["remote"] += loc.count(Placement.REMOTE)
        stats["cold"] += loc.count(Placement.COLD)

        local_bytes[g] = loc.count(Placement.LOCAL) * loader.row_bytes
        cold_items[g] = loc.count(Placement.COLD)
        remote = loc.placement == Placement.REMOTE
        if remote.any():
            holders, counts = np.unique(loc.holder[remote], return_counts=True)
            for o, c in zip(holders, counts):
                pos_req[g, o] += c * ID_BYTES
                feat_resp[o, g] += c * loader.row_bytes

    hot_branch = [
        AllToAll(pos_req, label="feat-pos-req"),
        AllToAll(feat_resp, label="feat-hot"),
        LocalKernel("gather", local_bytes, label="feat-local"),
    ]
    cold_branch = [
        UVAGather(cold_items, item_bytes=loader.row_bytes, label="feat-cold")
    ]
    trace = OpTrace()
    trace.add(
        ParallelGroup(branches=(tuple(hot_branch), tuple(cold_branch)),
                      label="feature-load")
    )
    stats["local_bytes"] = stats["local"] * loader.row_bytes
    stats["remote_bytes"] = stats["remote"] * loader.row_bytes
    stats["cold_bytes"] = stats["cold"] * loader.row_bytes
    return out, trace, stats


def bench_feature_load(quick: bool = False, clock="wall") -> dict:
    """Plan-cached vectorized loader vs the seed loop, same requests.

    The *after* path is the shipped loader: vectorized byte-matrix
    assembly plus the :class:`~repro.cache.plan.PlanCache`, whose warm
    hits are exactly what repeated serving batches see.  The warmup
    call populates the cache, so the measured iterations run the hit
    path — the cold (miss) cost is the *before* measurement's shape.
    """
    tick = _make_clock(clock)
    dataset = "tiny" if quick else "products"
    per_gpu = 32 if quick else 256
    iters = 3 if quick else 10
    num_gpus = 8

    sampler, ds, nb = _build_sampler(dataset, num_gpus)
    seeds = _seed_batch(sampler, per_gpu)
    samples, _, _ = sampler.sample(
        seeds, CSPConfig(fanout=(15, 10, 5), scheme="node")
    )
    requests = [s.all_nodes for s in samples]

    # cache half of each patch so all three paths (local/remote/cold)
    # are exercised
    budget = max(1, ds.num_nodes // (2 * num_gpus))
    store = PartitionedCache(
        nb.part_offsets, np.arange(ds.num_nodes), budget
    )
    features = np.zeros((ds.num_nodes, ds.feature_dim), dtype=np.float32)
    loader = FeatureLoader(features, store)

    wall_after = _time_per_call(lambda: loader.load(requests), iters,
                                clock=tick)
    wall_before = _time_per_call(
        lambda: _reference_load(loader, requests), iters, clock=tick
    )
    rows = int(sum(len(np.unique(r)) for r in requests))
    plan_stats = loader.plan_cache.stats()
    return {
        "params": {
            "dataset": dataset,
            "num_gpus": num_gpus,
            "requested_rows": rows,
            "iters": iters,
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": wall_before / wall_after,
        "batches_per_s": 1.0 / wall_after,
        "rows_per_s": rows / wall_after,
        "plan_cache": plan_stats,
    }


# ----------------------------------------------------------------------
# 3. full epoch — costed DSP epoch, fast vs reference sampling path
# ----------------------------------------------------------------------
def bench_epoch(quick: bool = False, clock="wall") -> dict:
    """A costed (non-functional) DSP epoch end to end.

    *Before* replays the seed stack: the chunked reference sampling
    path on the legacy heap event core; *after* is the shipped path
    (flat-batch CSP on the bucketed batch-dispatch core).
    """
    from repro.core import RunConfig, build_system

    tick = _make_clock(clock)
    dataset = "tiny" if quick else "products"
    batches = 2 if quick else 4
    cfg = RunConfig(
        dataset=dataset,
        num_gpus=4 if quick else 8,
        batch_size=8 if quick else 32,
        hidden_dim=16 if quick else 256,
    )
    after = build_system("DSP", cfg)
    before = build_system("DSP", cfg)
    before.sampler.use_fast_path = False

    wall_after = _time_per_call(
        lambda: after.run_epoch(max_batches=batches, functional=False),
        iters=1, clock=tick,
    )
    wall_before = _time_per_call(
        lambda: _on_legacy_engine(
            lambda: before.run_epoch(max_batches=batches, functional=False)
        ),
        iters=1, clock=tick,
    )
    return {
        "params": {
            "dataset": dataset,
            "num_gpus": cfg.num_gpus,
            "batch_size": cfg.batch_size,
            "measured_batches": batches,
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": wall_before / wall_after,
        "batches_per_s": batches / wall_after,
    }


# ----------------------------------------------------------------------
# 4. serving batch — one sweep point of the online pipeline
# ----------------------------------------------------------------------
def bench_serve_batch(quick: bool = False, clock="wall") -> dict:
    """One ``serve_once`` point: event loop + batcher + CSP + loader.

    *Before* is the seed implementation of the serving hot path — the
    chunked reference sampler, a plan-cache-free loader, and the
    legacy heap event core; *after* is the shipped path (flat-batch
    CSP + plan-cached feature loading on the bucketed batch-dispatch
    core).  The warmup run populates the plan cache, so the measured
    run sees the hit rate a steady-state serving process sees.
    """
    from repro.core import RunConfig, build_system
    from repro.serve import ServeConfig, WorkloadConfig, make_workload, serve_once

    tick = _make_clock(clock)
    dataset = "tiny" if quick else "products"
    requests = 64 if quick else 256
    cfg = RunConfig(
        dataset=dataset,
        num_gpus=4,
        batch_size=8,
        hidden_dim=16,
        fanout=(5, 3),
    )
    system = build_system("DSP", cfg)
    workload = make_workload(
        WorkloadConfig(num_requests=requests, seed=0),
        np.arange(system.base_dataset.num_nodes),
    )
    serve_cfg = ServeConfig(functional=False)
    qps = 2000.0

    wall_after = _time_per_call(
        lambda: serve_once(system, workload, qps, serve_cfg), iters=1,
        clock=tick,
    )
    plan_stats = (system.loader.plan_cache.stats()
                  if system.loader.plan_cache is not None else None)
    system.sampler.use_fast_path = False
    system.loader.plan_cache = None
    wall_before = _time_per_call(
        lambda: _on_legacy_engine(
            lambda: serve_once(system, workload, qps, serve_cfg)
        ),
        iters=1, clock=tick,
    )
    system.sampler.use_fast_path = True
    report = serve_once(system, workload, qps, serve_cfg)
    return {
        "params": {
            "dataset": dataset,
            "num_gpus": cfg.num_gpus,
            "requests": requests,
            "qps": qps,
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": wall_before / wall_after,
        "requests_per_wall_s": requests / wall_after,
        "batches_per_s": (
            report.num_batches / wall_after if report.num_batches else 0.0
        ),
        "plan_cache": plan_stats,
    }


# ----------------------------------------------------------------------
# 5. sweep — the multi-core run executor vs the pre-PR serial driver
# ----------------------------------------------------------------------
def bench_sweep(quick: bool = False, clock="wall") -> dict:
    """A QPS ladder through ``qps_sweep``: parallel executor + plan
    cache vs the seed's serial point-after-point driver.

    *Before* replays the pre-PR driver: one system, plan cache off,
    the legacy heap event core, one ``serve_once`` per point in
    sequence.  *After* is the shipped
    ``qps_sweep(workers=N)`` where N is capped by this machine's CPU
    count — on a multi-core host the points overlap across cores; the
    recorded ``params.workers``/``params.cpu_count`` say what actually
    ran.
    """
    from repro.core import RunConfig, build_system
    from repro.parallel import default_workers
    from repro.serve import (
        ServeConfig,
        WorkloadConfig,
        make_workload,
        qps_sweep,
        serve_once,
    )

    tick = _make_clock(clock)
    dataset = "tiny" if quick else "products"
    requests = 64 if quick else 256
    ladder = (500.0, 2000.0) if quick else (1e3, 4e3, 16e3, 64e3)
    workers = default_workers(cap=2 if quick else 4)
    cfg = RunConfig(
        dataset=dataset,
        num_gpus=4,
        batch_size=8,
        hidden_dim=16,
        fanout=(5, 3),
    )
    serve_cfg = ServeConfig(functional=False)
    before_sys = build_system("DSP", cfg)
    before_sys.loader.plan_cache = None
    workload = make_workload(
        WorkloadConfig(num_requests=requests, seed=0),
        np.arange(before_sys.base_dataset.num_nodes),
    )

    def run_before():
        _on_legacy_engine(lambda: [
            serve_once(before_sys, workload, q, serve_cfg) for q in ladder
        ])

    after_sys = build_system("DSP", cfg)

    def run_after():
        qps_sweep(after_sys, workload, ladder, serve_cfg, workers=workers)

    wall_before = _time_per_call(run_before, iters=1, clock=tick)
    wall_after = _time_per_call(run_after, iters=1, clock=tick)
    import os

    return {
        "params": {
            "dataset": dataset,
            "num_gpus": cfg.num_gpus,
            "requests": requests,
            "qps_points": list(ladder),
            "workers": workers,
            "cpu_count": os.cpu_count(),
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": wall_before / wall_after,
        "batches_per_s": len(ladder) / wall_after,
        "points_per_s": len(ladder) / wall_after,
    }


# ----------------------------------------------------------------------
# 6. chaos matrix — parallel executor vs cell-after-cell
# ----------------------------------------------------------------------
def bench_chaos_scenario(quick: bool = False, clock="wall") -> dict:
    """A small resilience matrix: fan-out executor vs the serial loop.

    *Before* runs each ``(system, scenario)`` cell in sequence in this
    process on the legacy heap event core — the pre-``repro chaos``
    driver shape; *after* is the shipped
    :func:`~repro.chaos.scenarios.resilience_report` with the
    multi-core executor underneath.  Cells are pure functions of their
    spec, so both paths produce the same outcomes.
    """
    from repro.chaos.scenarios import resilience_report, run_scenario
    from repro.core import RunConfig
    from repro.parallel import default_workers

    tick = _make_clock(clock)
    dataset = "tiny" if quick else "products"
    max_batches = 2 if quick else 4
    requests = 32 if quick else 64
    scenarios = ["straggler", "net-degrade"]
    systems = ["DSP"] if quick else ["DSP", "DGL-UVA"]
    workers = default_workers(cap=2 if quick else 4)
    cfg = RunConfig(
        dataset=dataset,
        num_gpus=2 if quick else 4,
        batch_size=8,
        hidden_dim=16,
        fanout=(5, 3),
    )

    def run_before():
        def cells():
            for system in systems:
                for scenario in scenarios:
                    run_scenario(system, scenario, cfg,
                                 max_batches=max_batches,
                                 requests=requests)
        _on_legacy_engine(cells)

    def run_after():
        resilience_report(systems, scenarios, cfg, max_batches=max_batches,
                          requests=requests, workers=workers)

    wall_before = _time_per_call(run_before, iters=1, clock=tick)
    wall_after = _time_per_call(run_after, iters=1, clock=tick)
    cells = len(systems) * len(scenarios)
    return {
        "params": {
            "dataset": dataset,
            "systems": systems,
            "scenarios": scenarios,
            "cells": cells,
            "workers": workers,
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": wall_before / wall_after,
        "batches_per_s": cells / wall_after,
        "cells_per_s": cells / wall_after,
    }


# ----------------------------------------------------------------------
# 7. multi-node epoch — costed 2-server DSP epoch, fast vs reference
# ----------------------------------------------------------------------
def bench_multinode_epoch(quick: bool = False, clock="wall") -> dict:
    """A costed 2-server DSP epoch through the cluster lowering path.

    Same before/after contract as ``epoch`` — the chunked reference
    sampler on the heap event core vs the flat fast path on the
    bucketed core — but on a ``num_nodes=2`` system, so
    every mini-batch additionally pays hierarchical-partition routing
    and the intra/inter trace lowering (:mod:`repro.cluster.csp`).
    """
    from repro.core import RunConfig, build_system

    tick = _make_clock(clock)
    dataset = "tiny" if quick else "products"
    batches = 2 if quick else 4
    cfg = RunConfig(
        dataset=dataset,
        num_gpus=2 if quick else 4,
        num_nodes=2,
        batch_size=8 if quick else 32,
        hidden_dim=16 if quick else 256,
        fanout=(5, 3),
        partitioner="ldg",
    )
    after = build_system("DSP", cfg)
    before = build_system("DSP", cfg)
    before.sampler.use_fast_path = False

    wall_after = _time_per_call(
        lambda: after.run_epoch(max_batches=batches, functional=False),
        iters=1, clock=tick,
    )
    wall_before = _time_per_call(
        lambda: _on_legacy_engine(
            lambda: before.run_epoch(max_batches=batches, functional=False)
        ),
        iters=1, clock=tick,
    )
    return {
        "params": {
            "dataset": dataset,
            "num_nodes": cfg.num_nodes,
            "num_gpus": cfg.num_gpus,
            "batch_size": cfg.batch_size,
            "measured_batches": batches,
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": wall_before / wall_after,
        "batches_per_s": batches / wall_after,
    }


# ----------------------------------------------------------------------
# 8. engine core — bucketed batch dispatch vs the retained heap core
# ----------------------------------------------------------------------
def _drive_engine(use_heap: bool, pairs: int, rounds: int,
                  barrier_every: int = 16):
    """A representative event mix on a bare simulator: producer/consumer
    pairs over bounded queues, a contended SM pool, periodic rendezvous
    rounds, and a timer storm whose deadlines are *quantized* (many
    timers share one timestamp — the admission batcher's max-wait shape,
    and exactly what batch dispatch accelerates).  Service times reuse
    immutable ``Timeout`` constants, as the quantized-cost model does,
    so the measurement is scheduler dispatch, not dataclass churn."""
    from repro.engine.resources import BoundedQueue, Rendezvous, Resource
    from repro.engine.simulator import Simulator, Timeout

    sim = Simulator(use_heap_scheduler=use_heap)
    sm = Resource(sim, capacity=max(2, pairs // 2), name="sm")
    rdv = Rendezvous(sim, name="rdv")
    queues = [BoundedQueue(sim, 4, name=f"q{i}") for i in range(pairs)]

    fired = [0]

    def tick():
        fired[0] += 1

    def timers():
        for _ in range(rounds):
            for j in range(4):
                sim.schedule((1 + (j % 2)) * 1e-4, tick)
            yield Timeout(1e-4)

    ticks = [Timeout(r * 1e-4) for r in range(7)]
    tick1 = ticks[1]

    def producer(q, i):
        for r in range(rounds):
            yield ticks[r % 7]
            yield q.put((i, r))

    def consumer(q, i):
        for r in range(rounds):
            yield q.get()
            yield sm.acquire(1)
            yield tick1
            sm.release(1)
            if r % barrier_every == 0:
                yield rdv.arrive(("b", r), pairs)

    sim.spawn(timers(), name="timers")
    for i, q in enumerate(queues):
        sim.spawn(producer(q, i), name=f"p{i}")
        sim.spawn(consumer(q, i), name=f"c{i}")
    sim.run()
    return sim


def bench_engine_core(quick: bool = False, clock="wall") -> dict:
    """Event-dispatch throughput: bucketed core vs the heap core.

    Both sides run the *same* simulator class over the same workload;
    only the scheduler core differs (``use_heap_scheduler=True`` is the
    retained pre-PR heap-of-(t, seq) path).  The two runs must agree on
    the final clock and total event count — asserted here, so a perf
    run doubles as an equivalence check.
    """
    from repro.utils.errors import ReproError

    tick = _make_clock(clock)
    pairs = 8 if quick else 32
    rounds = 60 if quick else 400
    iters = 2 if quick else 3

    # one checked pass per core before timing (also warms allocators)
    heap_sim = _drive_engine(True, pairs, rounds)
    bucket_sim = _drive_engine(False, pairs, rounds)
    if (heap_sim.now != bucket_sim.now
            or heap_sim.events_processed != bucket_sim.events_processed):
        raise ReproError(
            "engine cores diverged: "
            f"heap now={heap_sim.now} ev={heap_sim.events_processed}, "
            f"bucket now={bucket_sim.now} ev={bucket_sim.events_processed}"
        )
    events = bucket_sim.events_processed

    wall_before = _time_per_call(
        lambda: _drive_engine(True, pairs, rounds), iters, clock=tick
    )
    wall_after = _time_per_call(
        lambda: _drive_engine(False, pairs, rounds), iters, clock=tick
    )
    return {
        "params": {
            "pairs": pairs,
            "rounds": rounds,
            "events": events,
            "iters": iters,
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": wall_before / wall_after,
        "batches_per_s": 1.0 / wall_after,
        "events_per_s": events / wall_after,
    }


# ----------------------------------------------------------------------
# 9. dynamic cache — static placement vs the dynamic policy under drift
# ----------------------------------------------------------------------
def bench_cache_dynamic(quick: bool = False, clock="wall") -> dict:
    """Serving under popularity drift: static cache vs dynamic policy.

    Unlike the other benchmarks this one compares *policies*, not
    implementations: *before* is the paper's static layout-time
    placement, *after* is the same system with
    :class:`~repro.cache.dynamic.DynamicCachePolicy` (plus fp16
    cold-path compression) enabled.  The workload's Zipf hot set
    permutes ``drift_phases`` times across the stream, which the static
    cache cannot follow.

    The config deliberately puts serving in the regime where the
    feature path is the pipeline bottleneck — wide rows, single-layer
    fanout large enough that per-batch sampling cost (launch-latency
    bound, ~flat in fanout) stops dominating the cold UVA gather.  The
    gated ``speedup`` is the simulated-throughput ratio (dynamic /
    static) at a drain-mode probe load — a pure function of the
    simulation, so it transfers across machines exactly; the hit-rate
    and UVA-bytes columns say *why* throughput moved, and the knee
    columns locate each policy against an SLO placed in the latency
    gap the dynamic policy opens.
    """
    from repro.core import RunConfig, build_system
    from repro.graph import DATASET_SPECS
    from repro.serve import (
        ServeConfig,
        WorkloadConfig,
        make_workload,
        max_sustainable_qps,
        qps_sweep,
        serve_once,
    )

    tick = _make_clock(clock)
    if quick:
        dataset, requests, fanout, batch_max = "products", 1024, (16,), 128
        slo_s = 175e-6
        ladder = (2e6, 4e6, 8e6)
    else:
        dataset, requests, fanout, batch_max = "friendster", 4096, (32,), 256
        slo_s = 310e-6
        ladder = (4e6, 8e6, 12e6, 16e6)
    drift_phases = 2
    # workload-history warmup: the first half of phase one
    warmup = requests // (2 * drift_phases)
    probe_qps = 8e6
    spec = DATASET_SPECS[dataset]
    # cache ~2% of the features per GPU: small enough that the Zipf
    # tail misses and placement decides the cold-path volume
    cache_bytes = 0.02 * spec.num_nodes * spec.feature_dim * 4
    base = dict(
        dataset=dataset,
        num_gpus=4,
        batch_size=8,
        hidden_dim=16,
        fanout=fanout,
        feature_cache_bytes=cache_bytes,
    )
    static_sys = build_system("DSP", RunConfig(**base))
    dyn_sys = build_system(
        "DSP",
        RunConfig(**base, dynamic_cache=True, cache_window=2,
                  cache_ewma=0.3, cache_prefetch=16, compress="fp16"),
    )
    workload = make_workload(
        WorkloadConfig(num_requests=requests, skew=1.5,
                       drift_phases=drift_phases, seed=0),
        np.arange(static_sys.base_dataset.num_nodes),
    )
    # seed the dynamic scores from request history (mapped into the
    # system's renumbered id space)
    dyn_sys.loader.dynamic.warm(
        dyn_sys.numbering.old_to_new[workload.nodes[:warmup]]
    )
    # deep queue: drain mode measures pipeline throughput, not the
    # admission controller
    serve_cfg = ServeConfig(functional=False, batch_max=batch_max,
                            queue_capacity=requests)

    def probed(system):
        totals = system.loader.totals
        t0 = dict(totals)
        w0 = tick()
        report = serve_once(system, workload, probe_qps, serve_cfg)
        wall = tick() - w0
        hits = (totals["local"] - t0["local"]) + (totals["remote"]
                                                  - t0["remote"])
        cold = totals["cold"] - t0["cold"]
        cold_bytes = totals["cold_bytes"] - t0["cold_bytes"]
        rate = hits / (hits + cold) if hits + cold else 0.0
        return wall, report, rate, cold_bytes / requests

    wall_before, rep_static, hit_static, uva_static = probed(static_sys)
    wall_after, rep_dynamic, hit_dynamic, uva_dynamic = probed(dyn_sys)
    knee_static = max_sustainable_qps(
        qps_sweep(static_sys, workload, ladder, serve_cfg), slo_s=slo_s
    )
    knee_dynamic = max_sustainable_qps(
        qps_sweep(dyn_sys, workload, ladder, serve_cfg), slo_s=slo_s
    )
    return {
        "params": {
            "dataset": dataset,
            "num_gpus": base["num_gpus"],
            "requests": requests,
            "fanout": list(fanout),
            "batch_max": batch_max,
            "drift_phases": drift_phases,
            "warmup_requests": warmup,
            "feature_cache_bytes": cache_bytes,
            "probe_qps": probe_qps,
            "slo_s": slo_s,
            "qps_points": list(ladder),
            "compress": "fp16",
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": (rep_dynamic.throughput_qps / rep_static.throughput_qps
                    if rep_static.throughput_qps else 1.0),
        "batches_per_s": requests / wall_after,
        "p99_static_us": rep_static.p99 * 1e6,
        "p99_dynamic_us": rep_dynamic.p99 * 1e6,
        "throughput_qps_static": rep_static.throughput_qps,
        "throughput_qps_dynamic": rep_dynamic.throughput_qps,
        "hit_rate_static": hit_static,
        "hit_rate_dynamic": hit_dynamic,
        "uva_bytes_per_request_static": uva_static,
        "uva_bytes_per_request_dynamic": uva_dynamic,
        "knee_qps_static": knee_static,
        "knee_qps_dynamic": knee_dynamic,
        "dynamic": dyn_sys.loader.dynamic.stats(),
    }


def bench_control_loop(quick: bool = False, clock="wall") -> dict:
    """Serving under a tight SLO: static knobs vs the online controller.

    Like ``cache_dynamic`` this compares *policies*: *before* is the
    static batcher configuration, *after* is the same serve with the
    :class:`~repro.control.ServeController` closing the loop on the
    streaming SLO burn rate.  The workload is the diurnal stream whose
    peak pushes p99 past a deliberately tight SLO (the latency floor of
    this pipeline is the batch max-wait itself, so the SLO sits at that
    floor and the controller's max-wait cuts are the only way out).

    The gated ``speedup`` is the simulated SLO-minutes ratio
    ``(static + w) / (controlled + w)`` with ``w`` one SLO window in
    minutes — a pure function of the simulation, so it transfers
    across machines exactly; the wall columns additionally price the
    controller's bookkeeping overhead on the same run.
    """
    from repro.control import ControllerConfig
    from repro.core import RunConfig, build_system
    from repro.serve import (
        ServeConfig,
        WorkloadConfig,
        make_workload,
        serve_once,
    )

    tick = _make_clock(clock)
    requests = 384 if quick else 1536
    qps = 3000.0
    slo_s = 2e-3
    system = build_system(
        "DSP",
        RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16, batch_size=8,
                  fanout=(5, 3), seed=3),
    )
    workload = make_workload(
        WorkloadConfig(num_requests=requests, arrival="diurnal", seed=5),
        np.arange(system.base_dataset.num_nodes),
    )
    static_cfg = ServeConfig(slo_s=slo_s)
    ctl_cfg = ServeConfig(slo_s=slo_s, controller=ControllerConfig())

    def pass_(cfg):
        w0 = tick()
        report = serve_once(system, workload, qps, cfg, metrics=True)
        wall = tick() - w0
        return wall, report

    wall_before, rep_static = pass_(static_cfg)
    wall_after, rep_ctl = pass_(ctl_cfg)
    slo_static = rep_static.metrics["slo"]["slo_minutes_violated"]
    slo_ctl = rep_ctl.metrics["slo"]["slo_minutes_violated"]
    window_min = slo_s / 60.0
    control = rep_ctl.control or {}
    return {
        "params": {
            "dataset": "tiny",
            "num_gpus": 2,
            "requests": requests,
            "qps": qps,
            "slo_s": slo_s,
            "arrival": "diurnal",
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": (slo_static + window_min) / (slo_ctl + window_min),
        "batches_per_s": requests / wall_after if wall_after else 0.0,
        "slo_minutes_static": slo_static,
        "slo_minutes_controller": slo_ctl,
        "p99_static_us": rep_static.p99 * 1e6,
        "p99_controller_us": rep_ctl.p99 * 1e6,
        "goodput_qps_static": rep_static.goodput_qps,
        "goodput_qps_controller": rep_ctl.goodput_qps,
        "controller_actions": sum(
            control.get("action_counts", {}).values()
        ),
        "controller_final": control.get("final", {}),
    }


_BENCHES = {
    "csp_layer": bench_csp_layer,
    "feature_load": bench_feature_load,
    "epoch": bench_epoch,
    "serve_batch": bench_serve_batch,
    "sweep": bench_sweep,
    "chaos_scenario": bench_chaos_scenario,
    "multinode_epoch": bench_multinode_epoch,
    "engine_core": bench_engine_core,
    "cache_dynamic": bench_cache_dynamic,
    "control_loop": bench_control_loop,
}


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_single_bench(name: str, quick: bool = False, clock="wall") -> dict:
    """Run one named microbenchmark; returns its payload entry."""
    from repro.utils.errors import ConfigError

    try:
        bench = _BENCHES[name]
    except KeyError:
        raise ConfigError(
            f"unknown perf benchmark {name!r}; available: {BENCH_NAMES}"
        ) from None
    return bench(quick=quick, clock=clock)


def run_perf(
    quick: bool = False,
    benches: list[str] | None = None,
    workers: int = 1,
    clock="wall",
) -> dict:
    """Run the selected microbenchmarks; returns the JSON payload.

    ``workers > 1`` fans the selected benchmarks out one-per-core via
    :mod:`repro.parallel` (results merge back in benchmark order).
    """
    import os

    from repro.parallel import RunSpec, run_tasks
    from repro.utils.errors import ConfigError

    names = list(benches) if benches else list(BENCH_NAMES)
    unknown = [n for n in names if n not in _BENCHES]
    if unknown:
        raise ConfigError(
            f"unknown perf benchmark(s) {unknown}; available: {BENCH_NAMES}"
        )
    specs = [
        RunSpec(
            kind="perf_bench",
            label=name,
            payload={"bench": name, "quick": quick, "clock": clock},
        )
        for name in names
    ]
    results = run_tasks(specs, workers=workers)
    # NB: the driving worker count is deliberately NOT recorded — the
    # payload must be bit-identical for --workers 1 and --workers 4
    # (each benchmark times its own code regardless of which process
    # runs it); cpu_count is a property of the machine, not the run.
    return {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "benchmarks": dict(zip(names, results)),
    }


# ----------------------------------------------------------------------
# baseline regression gate
# ----------------------------------------------------------------------
def diff_against_baseline(
    fresh: dict, baseline: dict, tolerance: float = 0.2
) -> tuple[str, list[str]]:
    """Compare a fresh payload against a committed baseline.

    The gated metric is each benchmark's *speedup* (before/after of the
    same code on the same machine in the same process), which transfers
    across machines far better than absolute wall-clock.  A benchmark
    regresses when its fresh speedup falls more than ``tolerance``
    (default 20%) below the baseline's.  Returns the report text and
    the list of regressed benchmark names (empty = gate passes);
    benchmarks present on only one side are reported but never gate.
    """
    fresh_b = fresh.get("benchmarks", {})
    base_b = baseline.get("benchmarks", {})
    lines = [
        f"{'benchmark':<14} {'baseline':>9} {'fresh':>9} {'delta':>8}  verdict",
        "-" * 56,
    ]
    if fresh.get("quick") != baseline.get("quick"):
        lines.insert(0, "note: quick flags differ between fresh run and "
                        "baseline; speedups still compared")
    regressions: list[str] = []
    for name in sorted(set(fresh_b) | set(base_b)):
        if name not in fresh_b or name not in base_b:
            side = "baseline" if name not in fresh_b else "fresh run"
            lines.append(f"{name:<14} {'-':>9} {'-':>9} {'-':>8}  "
                         f"only in {side}; skipped")
            continue
        base_s = base_b[name].get("speedup", float("nan"))
        fresh_s = fresh_b[name].get("speedup", float("nan"))
        delta = (fresh_s - base_s) / base_s if base_s else float("nan")
        regressed = fresh_s < base_s * (1.0 - tolerance)
        verdict = f"REGRESSED (> {tolerance:.0%} below baseline)" \
            if regressed else "ok"
        if regressed:
            regressions.append(name)
        lines.append(
            f"{name:<14} {base_s:>8.2f}x {fresh_s:>8.2f}x {delta:>+7.1%}  "
            f"{verdict}"
        )
    return "\n".join(lines), regressions


def format_perf(payload: dict) -> str:
    """Human-readable table of a ``run_perf`` payload."""
    lines = [
        f"{'benchmark':<14} {'before':>12} {'after':>12} {'speedup':>9} "
        f"{'batches/s':>11}",
        "-" * 62,
    ]
    for name, r in payload["benchmarks"].items():
        lines.append(
            f"{name:<14} {r['wall_s_before'] * 1e3:>10.2f}ms "
            f"{r['wall_s_after'] * 1e3:>10.2f}ms {r['speedup']:>8.2f}x "
            f"{r['batches_per_s']:>11.1f}"
        )
    return "\n".join(lines)


__all__ = [
    "BENCH_NAMES",
    "bench_cache_dynamic",
    "bench_chaos_scenario",
    "bench_csp_layer",
    "bench_engine_core",
    "bench_epoch",
    "bench_feature_load",
    "bench_multinode_epoch",
    "bench_serve_batch",
    "bench_sweep",
    "diff_against_baseline",
    "format_perf",
    "run_perf",
    "run_single_bench",
]
