"""Perf-regression microbenchmarks (``repro perf``).

Real wall-clock measurements of the repository's hot paths — unlike
the ``benchmarks/test_*`` suite, which reports *simulated* hardware
time, these benchmarks time the Python implementation itself, so a
perf PR lands with a measured before/after trajectory instead of a
claim (see ``docs/performance.md``).

Four microbenchmarks:

- ``csp_layer``   — the CSP shuffle/sample/reshuffle rounds for one
  mini-batch (8 GPUs, 3 layers, node-wise by default), fast path vs
  the chunked reference implementation;
- ``feature_load``— ``FeatureLoader.load`` over one batch's requests,
  vs the seed's per-holder Python loop (kept here as the *before*
  measurement);
- ``epoch``       — a costed (non-functional) training epoch of the
  DSP system, fast vs reference sampling path;
- ``serve_batch`` — one ``serve_once`` sweep point of the online
  serving pipeline, fast vs reference sampling path.

``run_perf`` executes them and returns the ``BENCH_perf.json`` payload:
per-benchmark wall-clock, batches/s, sampled-edges/s where meaningful,
and before/after deltas.  ``--quick`` shrinks datasets and iteration
counts for CI smoke runs (the numbers move; the schema does not).
"""

from __future__ import annotations

import time

import numpy as np

from repro.cache.loader import ID_BYTES, FeatureLoader
from repro.cache.store import Placement, PartitionedCache
from repro.sampling.csp import CollectiveSampler, CSPConfig
from repro.sampling.ops import (
    AllToAll,
    LocalKernel,
    OpTrace,
    ParallelGroup,
    UVAGather,
)

#: bump when the payload schema changes
SCHEMA_VERSION = 1

BENCH_NAMES = ("csp_layer", "feature_load", "epoch", "serve_batch")


# ----------------------------------------------------------------------
# plumbing
# ----------------------------------------------------------------------
def _time_per_call(fn, iters: int, warmup: int = 1) -> float:
    """Mean wall-clock seconds per ``fn()`` call over ``iters`` calls."""
    for _ in range(warmup):
        fn()
    t0 = time.perf_counter()
    for _ in range(iters):
        fn()
    return (time.perf_counter() - t0) / iters


def _build_sampler(dataset: str, num_gpus: int, seed: int = 0):
    """A partitioned CollectiveSampler over a cached dataset."""
    from repro.graph.datasets import load_dataset, load_partition
    from repro.graph.reorder import renumber_by_partition

    ds = load_dataset(dataset)
    part = load_partition(dataset, num_gpus, seed=seed)
    rgraph, _, nb = renumber_by_partition(ds.graph, part)
    sampler = CollectiveSampler.from_partitioned(
        rgraph, nb.part_offsets, seed=seed
    )
    return sampler, ds, nb


def _seed_batch(sampler, per_gpu: int, seed: int = 3):
    """One mini-batch of co-partitioned seeds (``per_gpu`` per GPU)."""
    rng = np.random.default_rng(seed)
    return [
        rng.choice(
            np.arange(sampler.part_offsets[g], sampler.part_offsets[g + 1]),
            size=per_gpu,
            replace=False,
        )
        for g in range(sampler.num_gpus)
    ]


# ----------------------------------------------------------------------
# 1. CSP layer round — the tentpole measurement
# ----------------------------------------------------------------------
def bench_csp_layer(quick: bool = False) -> dict:
    """Fast-path vs reference CSP rounds: 8 GPUs, 3 node-wise layers."""
    dataset = "tiny" if quick else "products"
    per_gpu = 32 if quick else 256
    iters = 2 if quick else 5
    num_gpus, fanout = 8, (15, 10, 5)
    config = CSPConfig(fanout=fanout, scheme="node")

    fast, _, _ = _build_sampler(dataset, num_gpus)
    ref, _, _ = _build_sampler(dataset, num_gpus)
    ref.use_fast_path = False
    seeds = _seed_batch(fast, per_gpu)

    sampled_edges = 0

    def run_fast():
        nonlocal sampled_edges
        _, _, stats = fast.sample(seeds, config)
        sampled_edges = stats.sampled_total

    wall_after = _time_per_call(run_fast, iters)
    wall_before = _time_per_call(
        lambda: ref.sample(seeds, config), iters
    )
    return {
        "params": {
            "dataset": dataset,
            "num_gpus": num_gpus,
            "fanout": list(fanout),
            "scheme": "node",
            "seeds_per_gpu": per_gpu,
            "iters": iters,
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": wall_before / wall_after,
        "batches_per_s": 1.0 / wall_after,
        "sampled_edges_per_s": sampled_edges / wall_after,
    }


# ----------------------------------------------------------------------
# 2. feature load — vs the seed's per-holder Python loop
# ----------------------------------------------------------------------
def _reference_load(
    loader: FeatureLoader, requests_per_gpu: list[np.ndarray]
) -> tuple[list[np.ndarray], OpTrace, dict]:
    """The seed implementation of :meth:`FeatureLoader.load`, verbatim.

    Kept here as the *before* measurement (and an equivalence oracle)
    for the vectorized loader: duplicated ``loc.count`` calls and a
    per-holder Python loop.
    """
    k = loader.store.num_gpus
    out: list[np.ndarray] = []
    pos_req = np.zeros((k, k), dtype=np.float64)
    feat_resp = np.zeros((k, k), dtype=np.float64)
    local_bytes = np.zeros(k, dtype=np.float64)
    cold_items = np.zeros(k, dtype=np.float64)
    stats = {"local": 0, "remote": 0, "cold": 0}

    for g, req in enumerate(requests_per_gpu):
        nodes = np.unique(np.asarray(req, dtype=np.int64))
        out.append(loader.features[nodes])
        loc = loader.store.locate(nodes, g)
        stats["local"] += loc.count(Placement.LOCAL)
        stats["remote"] += loc.count(Placement.REMOTE)
        stats["cold"] += loc.count(Placement.COLD)

        local_bytes[g] = loc.count(Placement.LOCAL) * loader.row_bytes
        cold_items[g] = loc.count(Placement.COLD)
        remote = loc.placement == Placement.REMOTE
        if remote.any():
            holders, counts = np.unique(loc.holder[remote], return_counts=True)
            for o, c in zip(holders, counts):
                pos_req[g, o] += c * ID_BYTES
                feat_resp[o, g] += c * loader.row_bytes

    hot_branch = [
        AllToAll(pos_req, label="feat-pos-req"),
        AllToAll(feat_resp, label="feat-hot"),
        LocalKernel("gather", local_bytes, label="feat-local"),
    ]
    cold_branch = [
        UVAGather(cold_items, item_bytes=loader.row_bytes, label="feat-cold")
    ]
    trace = OpTrace()
    trace.add(
        ParallelGroup(branches=(tuple(hot_branch), tuple(cold_branch)),
                      label="feature-load")
    )
    stats["local_bytes"] = stats["local"] * loader.row_bytes
    stats["remote_bytes"] = stats["remote"] * loader.row_bytes
    stats["cold_bytes"] = stats["cold"] * loader.row_bytes
    return out, trace, stats


def bench_feature_load(quick: bool = False) -> dict:
    """Vectorized loader vs the seed loop over one batch's requests."""
    dataset = "tiny" if quick else "products"
    per_gpu = 32 if quick else 256
    iters = 3 if quick else 10
    num_gpus = 8

    sampler, ds, nb = _build_sampler(dataset, num_gpus)
    seeds = _seed_batch(sampler, per_gpu)
    samples, _, _ = sampler.sample(
        seeds, CSPConfig(fanout=(15, 10, 5), scheme="node")
    )
    requests = [s.all_nodes for s in samples]

    # cache half of each patch so all three paths (local/remote/cold)
    # are exercised
    budget = max(1, ds.num_nodes // (2 * num_gpus))
    store = PartitionedCache(
        nb.part_offsets, np.arange(ds.num_nodes), budget
    )
    features = np.zeros((ds.num_nodes, ds.feature_dim), dtype=np.float32)
    loader = FeatureLoader(features, store)

    wall_after = _time_per_call(lambda: loader.load(requests), iters)
    wall_before = _time_per_call(
        lambda: _reference_load(loader, requests), iters
    )
    rows = int(sum(len(np.unique(r)) for r in requests))
    return {
        "params": {
            "dataset": dataset,
            "num_gpus": num_gpus,
            "requested_rows": rows,
            "iters": iters,
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": wall_before / wall_after,
        "batches_per_s": 1.0 / wall_after,
        "rows_per_s": rows / wall_after,
    }


# ----------------------------------------------------------------------
# 3. full epoch — costed DSP epoch, fast vs reference sampling path
# ----------------------------------------------------------------------
def bench_epoch(quick: bool = False) -> dict:
    """A costed (non-functional) DSP epoch end to end."""
    from repro.core import RunConfig, build_system

    dataset = "tiny" if quick else "products"
    batches = 2 if quick else 4
    cfg = RunConfig(
        dataset=dataset,
        num_gpus=4 if quick else 8,
        batch_size=8 if quick else 32,
        hidden_dim=16 if quick else 256,
    )
    after = build_system("DSP", cfg)
    before = build_system("DSP", cfg)
    before.sampler.use_fast_path = False

    wall_after = _time_per_call(
        lambda: after.run_epoch(max_batches=batches, functional=False),
        iters=1,
    )
    wall_before = _time_per_call(
        lambda: before.run_epoch(max_batches=batches, functional=False),
        iters=1,
    )
    return {
        "params": {
            "dataset": dataset,
            "num_gpus": cfg.num_gpus,
            "batch_size": cfg.batch_size,
            "measured_batches": batches,
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": wall_before / wall_after,
        "batches_per_s": batches / wall_after,
    }


# ----------------------------------------------------------------------
# 4. serving batch — one sweep point of the online pipeline
# ----------------------------------------------------------------------
def bench_serve_batch(quick: bool = False) -> dict:
    """One ``serve_once`` point: event loop + batcher + CSP + loader."""
    from repro.core import RunConfig, build_system
    from repro.serve import ServeConfig, WorkloadConfig, make_workload, serve_once

    dataset = "tiny" if quick else "products"
    requests = 64 if quick else 256
    cfg = RunConfig(
        dataset=dataset,
        num_gpus=4,
        batch_size=8,
        hidden_dim=16,
        fanout=(5, 3),
    )
    system = build_system("DSP", cfg)
    workload = make_workload(
        WorkloadConfig(num_requests=requests, seed=0),
        np.arange(system.base_dataset.num_nodes),
    )
    serve_cfg = ServeConfig(functional=False)
    qps = 2000.0

    wall_after = _time_per_call(
        lambda: serve_once(system, workload, qps, serve_cfg), iters=1
    )
    system.sampler.use_fast_path = False
    wall_before = _time_per_call(
        lambda: serve_once(system, workload, qps, serve_cfg), iters=1
    )
    system.sampler.use_fast_path = True
    report = serve_once(system, workload, qps, serve_cfg)
    return {
        "params": {
            "dataset": dataset,
            "num_gpus": cfg.num_gpus,
            "requests": requests,
            "qps": qps,
        },
        "wall_s_before": wall_before,
        "wall_s_after": wall_after,
        "speedup": wall_before / wall_after,
        "requests_per_wall_s": requests / wall_after,
        "batches_per_s": (
            report.num_batches / wall_after if report.num_batches else 0.0
        ),
    }


_BENCHES = {
    "csp_layer": bench_csp_layer,
    "feature_load": bench_feature_load,
    "epoch": bench_epoch,
    "serve_batch": bench_serve_batch,
}


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_perf(quick: bool = False, benches: list[str] | None = None) -> dict:
    """Run the selected microbenchmarks; returns the JSON payload."""
    from repro.utils.errors import ConfigError

    names = list(benches) if benches else list(BENCH_NAMES)
    unknown = [n for n in names if n not in _BENCHES]
    if unknown:
        raise ConfigError(
            f"unknown perf benchmark(s) {unknown}; available: {BENCH_NAMES}"
        )
    results = {name: _BENCHES[name](quick=quick) for name in names}
    return {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "benchmarks": results,
    }


def format_perf(payload: dict) -> str:
    """Human-readable table of a ``run_perf`` payload."""
    lines = [
        f"{'benchmark':<14} {'before':>12} {'after':>12} {'speedup':>9} "
        f"{'batches/s':>11}",
        "-" * 62,
    ]
    for name, r in payload["benchmarks"].items():
        lines.append(
            f"{name:<14} {r['wall_s_before'] * 1e3:>10.2f}ms "
            f"{r['wall_s_after'] * 1e3:>10.2f}ms {r['speedup']:>8.2f}x "
            f"{r['batches_per_s']:>11.1f}"
        )
    return "\n".join(lines)


__all__ = [
    "BENCH_NAMES",
    "bench_csp_layer",
    "bench_epoch",
    "bench_feature_load",
    "bench_serve_batch",
    "format_perf",
    "run_perf",
]
