"""Shared benchmark plumbing."""

from __future__ import annotations

import os
from functools import lru_cache

from repro.core import RunConfig, build_system
from repro.core.metrics import EpochMetrics

#: the paper's evaluation datasets (Table 3) and GPU counts (§7.1)
DATASETS = ("products", "papers", "friendster")
GPU_COUNTS = (1, 2, 4, 8)

#: systems in the order Table 4 lists them
TABLE_SYSTEMS = ("PyG", "DGL-CPU", "Quiver", "DGL-UVA", "DSP")


def quick_mode() -> bool:
    """Set REPRO_BENCH_QUICK=1 to shrink sweeps for smoke runs."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def bench_batches() -> int:
    """Mini-batches measured per configuration (extrapolated to epochs)."""
    return 3 if quick_mode() else 6


@lru_cache(maxsize=256)
def _measured_epoch_cached(system: str, cfg: RunConfig, max_batches: int):
    sys = build_system(system, cfg)
    return sys.run_epoch(max_batches=max_batches, functional=False)


def measured_epoch(
    system: str, cfg: RunConfig, max_batches: int | None = None
) -> EpochMetrics:
    """Costed (non-functional) epoch metrics, memoized per process."""
    if max_batches is None:
        max_batches = bench_batches()
    return _measured_epoch_cached(system, cfg, max_batches)


def compare_epochs(
    systems,
    cfg: RunConfig,
    max_batches: int | None = None,
    workers: int = 1,
    functional: bool = False,
) -> dict[str, EpochMetrics]:
    """One measured epoch per system (``repro compare``), optionally
    fanned out one-task-per-system across CPU cores.

    Each task builds its system fresh from ``cfg`` inside the worker
    (an epoch mutates sampler/shuffle state, so systems are never
    shared), which is also exactly what the serial path does — results
    are bit-identical for any worker count.
    """
    from repro.parallel import RunSpec, run_tasks

    if max_batches is None:
        max_batches = bench_batches()
    names = list(systems)
    specs = [
        RunSpec(
            kind="epoch",
            label=name,
            seed=cfg.seed,
            payload={
                "system": name,
                "config": cfg,
                "max_batches": max_batches,
                "functional": functional,
            },
        )
        for name in names
    ]
    metrics = run_tasks(specs, workers=workers)
    return dict(zip(names, metrics))


def fmt_table(
    title: str,
    col_names: list[str],
    rows: list[tuple[str, list]],
    unit: str = "",
    width: int = 11,
) -> str:
    """Render a paper-style table; floats get 3 significant figures."""

    def cell(v) -> str:
        if isinstance(v, str):
            return v
        if v is None:
            return "-"
        if isinstance(v, float):
            return f"{v:.3g}"
        return str(v)

    head = " | ".join([f"{'':<10}"] + [f"{c:>{width}}" for c in col_names])
    sep = "-" * len(head)
    lines = [f"\n== {title}" + (f" ({unit})" if unit else ""), head, sep]
    for name, values in rows:
        lines.append(
            " | ".join([f"{name:<10}"] + [f"{cell(v):>{width}}" for v in values])
        )
    return "\n".join(lines) + "\n"
