"""Multi-core fan-out of independent simulation runs.

DSP's whole point is extracting parallel throughput *inside* one run
(per-GPU sampler/loader/trainer workers overlapping mini-batches, §5).
The driver layer sitting above the simulator is just as parallel but
was serial: every QPS-sweep point, every system of a ``repro compare``
table and every perf-bench measurement is an independent simulation.
This module fans those runs out across CPU cores.

Design
------
- A run is described by a picklable :class:`RunSpec` (a task kind, a
  human-readable label, a derived seed and a payload of plain values —
  ``RunConfig`` instances, workloads, QPS points).  Specs carry
  everything a worker needs; workers never read global state.
- :func:`run_tasks` executes a list of specs and returns their results
  *in spec order*.  With ``workers <= 1`` the specs run inline through
  the exact same handler code path, which is what makes the
  parallel-vs-serial bit-equivalence contract testable: the only
  difference between ``workers=1`` and ``workers=4`` is which process
  executes a handler.
- Seeds are derived in the parent with :func:`derive_seed`, a pure
  function of ``(root_seed, run_index)``.  Results therefore do not
  depend on the worker count or on scheduling order.
- A failing task raises :class:`~repro.utils.errors.WorkerError` in
  the parent with the child's formatted traceback embedded, so a
  fan-out failure reads the same as a serial one.

Serving tasks reuse one built system per worker process (a serving
point re-seeds the sampler and leaves the system untouched, see
:func:`repro.serve.sweep.serve_once`); epoch tasks always build fresh
because an epoch mutates sampler RNGs and shuffling state.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.utils.errors import ConfigError, WorkerError

__all__ = [
    "RunSpec",
    "adopt_system",
    "default_workers",
    "derive_seed",
    "register_handler",
    "run_tasks",
]


def default_workers(cap: int = 8) -> int:
    """Worker count for this machine: CPU affinity, capped at ``cap``."""
    try:
        n = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        n = os.cpu_count() or 1
    return max(1, min(cap, n))


def derive_seed(root_seed: int, index: int) -> int:
    """Deterministic per-run seed for run ``index`` of a fan-out.

    A pure function of ``(root_seed, index)`` — independent of worker
    count, scheduling order and process boundaries — built on
    :class:`numpy.random.SeedSequence` spawn keys so sibling runs get
    statistically independent streams.
    """
    if index < 0:
        raise ConfigError("run index must be non-negative")
    seq = np.random.SeedSequence(entropy=root_seed, spawn_key=(index,))
    return int(seq.generate_state(1, dtype=np.uint64)[0])


@dataclass(frozen=True)
class RunSpec:
    """One independent run: everything a worker needs, picklable.

    ``kind`` selects the handler (see :func:`register_handler`);
    ``payload`` holds the run's inputs as plain picklable values.
    ``trace_path``, when set, asks the handler to record the run with a
    :class:`~repro.obs.Tracer` and write a Chrome trace there (see
    :func:`repro.obs.export.run_trace_path` for fan-out naming).
    """

    kind: str
    label: str
    seed: int = 0
    payload: dict = field(default_factory=dict)
    trace_path: str | None = None


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------
_HANDLERS: dict[str, Callable[[RunSpec], Any]] = {}

#: per-process memo of built systems, used only by tasks that leave the
#: system in its just-built state (serving points re-seed the sampler)
_SYSTEM_CACHE: dict[tuple, Any] = {}


def register_handler(kind: str, fn: Callable[[RunSpec], Any]) -> None:
    """Register (or replace) the handler executed for ``kind`` specs."""
    _HANDLERS[kind] = fn


def adopt_system(system) -> None:
    """Seed the per-process system memo with an already-built system.

    The inline (``workers <= 1``) path uses this so a sweep reuses the
    caller's system instead of rebuilding it, exactly like the serial
    driver did.
    """
    _SYSTEM_CACHE[(system.name, system.config)] = system


def _shared_system(name: str, config):
    """Build-once-per-process system lookup for stateless run kinds."""
    key = (name, config)
    system = _SYSTEM_CACHE.get(key)
    if system is None:
        from repro.core import build_system

        system = build_system(name, config)
        _SYSTEM_CACHE[key] = system
    return system


def _serve_point(spec: RunSpec):
    """One QPS point of a serving sweep -> :class:`ServeReport`."""
    from repro.serve.sweep import serve_once

    p = spec.payload
    system = _shared_system(p["system"], p["config"])
    warm_nodes = p.get("warm_nodes")
    if warm_nodes is not None:
        # seed the dynamic cache policy from workload history, once per
        # process: the warmed placement becomes the baseline every
        # serve_once resets to, so points are byte-identical whichever
        # worker executes them
        dyn = getattr(getattr(system, "loader", None), "dynamic", None)
        if dyn is not None and not getattr(dyn, "_warm_applied", False):
            dyn.warm(warm_nodes)
            dyn._warm_applied = True
    tracer = None
    if spec.trace_path:
        from repro.obs import Tracer

        tracer = Tracer()
    report = serve_once(
        system, p["workload"], p["qps"], p.get("serve_config"), tracer=tracer,
        metrics=p.get("metrics", False),
        metrics_window_s=p.get("metrics_window_s"),
    )
    if tracer is not None:
        from repro.obs import write_chrome_trace

        write_chrome_trace(tracer, spec.trace_path)
    return report


def _epoch(spec: RunSpec):
    """One (or a few) measured epochs of one system -> metrics.

    Always builds fresh: ``run_epoch`` advances the shuffling RNG and,
    functionally, the model parameters, so sharing a system across
    epoch tasks would make results depend on task placement.
    """
    from repro.core import build_system

    p = spec.payload
    system = build_system(p["system"], p["config"])
    epochs = p.get("epochs", 1)
    out = [
        system.run_epoch(
            max_batches=p.get("max_batches"),
            functional=p.get("functional", True),
        )
        for _ in range(epochs)
    ]
    return out if epochs > 1 else out[0]


def _perf_bench(spec: RunSpec):
    """One named perf microbenchmark -> its payload dict."""
    from repro.bench.perf import run_single_bench

    p = spec.payload
    return run_single_bench(
        p["bench"], quick=p.get("quick", False), clock=p.get("clock", "wall")
    )


def _chaos_scenario(spec: RunSpec):
    """One (system, scenario) resilience cell -> its result dict.

    Always builds fresh systems inside :func:`run_scenario` (both the
    baseline and the chaos pass mutate RNG state), so the cell is a
    pure function of its spec — bit-identical across worker counts.
    """
    from repro.chaos.scenarios import run_scenario

    p = spec.payload
    return run_scenario(
        p["system"], p["scenario"], p["config"], **p.get("options", {})
    )


def _cluster_point(spec: RunSpec):
    """One QPS point served through the cluster router -> ServeReport.

    Pure function of the spec: the router is deterministic and every
    replica pass re-seeds the sampler, so the merged report is
    bit-identical whichever worker executes the point.  A payload with
    an ``autoscale`` key serves under the replica autoscaler instead of
    a fixed router (same purity argument — the scaler runs on arrival
    time, before any replica simulates).
    """
    p = spec.payload
    system = _shared_system(p["system"], p["config"])
    scale = p.get("autoscale")
    if scale is not None:
        from repro.control.autoscale import autoscaled_serve

        return autoscaled_serve(
            system, p["workload"], p["qps"], scale=scale,
            config=p.get("serve_config"),
            metrics=p.get("metrics", False),
            metrics_window_s=p.get("metrics_window_s"),
        )
    from repro.cluster.serve import serve_replicated

    return serve_replicated(
        system, p["workload"], p["qps"], router=p.get("router"),
        config=p.get("serve_config"),
        metrics=p.get("metrics", False),
        metrics_window_s=p.get("metrics_window_s"),
    )


def _control_cell(spec: RunSpec):
    """One cell of the controller-vs-static evaluation matrix.

    Builds fresh systems for every pass inside
    :func:`repro.control.evaluate.control_cell` (serving under faults
    must not share mutated state), so the cell is a pure function of
    its spec — bit-identical across worker counts.
    """
    from repro.control.evaluate import control_cell

    p = spec.payload
    return control_cell(
        p["system"], p["config"], p["scenario"], p["controller"],
        workload_config=p.get("workload_config"),
        requests=p.get("requests", 64),
        qps=p.get("qps", 2000.0),
        chaos_config=p.get("chaos_config"),
        serve_config=p.get("serve_config"),
    )


register_handler("serve_point", _serve_point)
register_handler("cluster_point", _cluster_point)
register_handler("epoch", _epoch)
register_handler("perf_bench", _perf_bench)
register_handler("chaos_scenario", _chaos_scenario)
register_handler("control_cell", _control_cell)


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
def _execute(spec: RunSpec):
    try:
        handler = _HANDLERS[spec.kind]
    except KeyError:
        raise ConfigError(
            f"unknown run kind {spec.kind!r}; registered: "
            f"{sorted(_HANDLERS)}"
        ) from None
    return handler(spec)


def _execute_safe(spec: RunSpec) -> tuple[bool, Any]:
    """Run one spec; never raises.  Returns ``(ok, result-or-traceback)``
    so a child failure crosses the process boundary as a string."""
    try:
        return True, _execute(spec)
    except BaseException:  # noqa: BLE001 - resurfaced via WorkerError
        return False, traceback.format_exc()


def _mp_context():
    """Fork when the platform offers it (children inherit the parent's
    warm dataset/partition caches); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _reset_worker_state() -> None:
    """Pool initializer: drop systems adopted in (and, under fork,
    inherited from) the parent so workers always build fresh from the
    run spec's config — the determinism contract is
    ``result = f(spec)``, never ``f(spec, parent state)``."""
    _SYSTEM_CACHE.clear()


def run_tasks(specs, workers: int = 1) -> list:
    """Execute independent run specs; results come back in spec order.

    ``workers <= 1`` runs inline (same handlers, same process);
    ``workers > 1`` fans out over a process pool of at most
    ``min(workers, len(specs))`` workers.  The first failing task
    raises :class:`WorkerError` carrying the child traceback; remaining
    futures are cancelled by pool shutdown.
    """
    specs = list(specs)
    if not specs:
        return []
    if workers is None or workers <= 1 or len(specs) == 1:
        outcomes = [_execute_safe(s) for s in specs]
    else:
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(specs)),
                mp_context=_mp_context(),
                initializer=_reset_worker_state,
            ) as pool:
                outcomes = list(pool.map(_execute_safe, specs))
        except BrokenProcessPool as err:
            raise WorkerError(
                f"a worker process died abruptly while running "
                f"{len(specs)} task(s): {err}"
            ) from err
    results = []
    for spec, (ok, value) in zip(specs, outcomes):
        if not ok:
            raise WorkerError(
                f"run {spec.label!r} ({spec.kind}) failed in a worker:\n"
                f"{value}",
                label=spec.label,
                child_traceback=value,
            )
        results.append(value)
    return results
