"""Span/instant/counter tracing for the simulated training timeline.

The paper's key evaluation claims are *timeline* claims — Fig 6 (GPU
utilization over an epoch), Fig 8 (the deadlocking interleaving of
collective kernels), Table 6 (where sampling time goes) — but scalar
end-of-epoch aggregates cannot show *where* simulated time went.  A
:class:`Tracer` collects three kinds of events while the discrete-event
engine runs:

- **span** — a named interval on a *track* (one track per worker
  process, e.g. ``sampler0-gpu2``): pipeline ops, blocking waits;
- **instant** — a point event (rendezvous release, CCC order append);
- **counter** — a sampled value series (SM threads in use, queue
  depth, cumulative per-link bytes).

The tracer is deliberately passive: callers pass explicit timestamps
(the simulator's ``now``), so it never touches the clock and works for
both live simulation and post-hoc annotation.  Attach one to a
:class:`~repro.engine.simulator.Simulator` (or pass it down through
:meth:`repro.core.system.TrainingSystem.run_epoch`) and every engine
primitive reports into it.  When no tracer is attached the engine
allocates **zero** event objects — every hook site is guarded by a
single ``is not None`` check — so benchmarks are unaffected.

Export with :mod:`repro.obs.export` (Chrome trace-event JSON for
Perfetto / ``chrome://tracing``, or a plain-text timeline) and analyse
with :mod:`repro.obs.analysis` (per-GPU busy/stall breakdown, epoch
critical path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

#: stall categories a blocked process can be attributed to, in the
#: order the breakdown report prints them
WAIT_CATEGORIES = (
    "queue-wait",       # bounded queue put/get (pipeline back-pressure)
    "sm-wait",          # SM-thread resource acquisition
    "channel-wait",     # communication-channel acquisition
    "rendezvous-wait",  # collective barrier (peers not all launched)
    "gate-wait",        # CCC launch gate (waiting for global order turn)
)


def wait_category(label: str) -> str:
    """Map a ``Process.waiting_on`` label to a stall category.

    The engine primitives encode what a process is blocked on in the
    label (``acquire(gpu0-comm, 1)``, ``put(gpu0-trainq)``, ...); this
    is the single place that taxonomy is interpreted.
    """
    if label.startswith(("put(", "get(")):
        return "queue-wait"
    if label.startswith("acquire("):
        return "channel-wait" if "-comm" in label else "sm-wait"
    if label.startswith("barrier("):
        return "rendezvous-wait"
    if label.startswith("ccc("):
        return "gate-wait"
    return "wait"


@dataclass(frozen=True)
class SpanEvent:
    """A named interval ``[start, end]`` on one track."""

    track: str
    name: str
    cat: str
    start: float
    end: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class InstantEvent:
    """A point event on one track."""

    track: str
    name: str
    cat: str
    ts: float
    args: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CounterEvent:
    """A sampled value series point (one or more named values)."""

    track: str
    name: str
    ts: float
    values: dict = field(default_factory=dict)


class Tracer:
    """Collects trace events; passive (callers supply timestamps)."""

    def __init__(self) -> None:
        self.events: list[Any] = []
        #: track name -> metadata (``group`` clusters tracks per GPU in
        #: the Chrome export; ``sort`` orders tracks within a group)
        self.tracks: dict[str, dict] = {}

    # -- track declaration ---------------------------------------------
    def declare_track(self, track: str, group: str | None = None,
                      sort: int = 0) -> None:
        """Register display metadata for ``track`` (optional: unknown
        tracks are grouped by the ``gpu<N>`` substring of their name)."""
        self.tracks[track] = {"group": group, "sort": sort}

    # -- event emission ------------------------------------------------
    def span(self, track: str, name: str, cat: str = "",
             start: float = 0.0, end: float = 0.0, **args: Any) -> SpanEvent:
        ev = SpanEvent(track, name, cat, start, end, args)
        self.events.append(ev)
        return ev

    def instant(self, track: str, name: str, ts: float, cat: str = "",
                **args: Any) -> InstantEvent:
        ev = InstantEvent(track, name, cat, ts, args)
        self.events.append(ev)
        return ev

    def counter(self, track: str, name: str, ts: float,
                **values: float) -> CounterEvent:
        ev = CounterEvent(track, name, ts, values)
        self.events.append(ev)
        return ev

    # -- queries ---------------------------------------------------------
    def spans(self, cat: str | None = None,
              track: str | None = None) -> Iterator[SpanEvent]:
        for ev in self.events:
            if not isinstance(ev, SpanEvent):
                continue
            if cat is not None and ev.cat != cat:
                continue
            if track is not None and ev.track != track:
                continue
            yield ev

    def counters(self, track: str | None = None,
                 name: str | None = None) -> Iterator[CounterEvent]:
        for ev in self.events:
            if not isinstance(ev, CounterEvent):
                continue
            if track is not None and ev.track != track:
                continue
            if name is not None and ev.name != name:
                continue
            yield ev

    def end_time(self) -> float:
        """Latest timestamp of any event (0.0 when empty)."""
        t = 0.0
        for ev in self.events:
            t = max(t, ev.end if isinstance(ev, SpanEvent) else ev.ts)
        return t

    def __len__(self) -> int:
        return len(self.events)
