"""Trace exporters: Chrome trace-event JSON and a plain-text timeline.

The Chrome format (the ``traceEvents`` JSON consumed by Perfetto and
``chrome://tracing``) maps naturally onto the simulator's structure:

- one *process* (pid) per GPU, so each GPU gets its own track group;
- one *thread* (tid) per worker (sampler/loader/trainer instance), so
  spans on a track nest properly — a worker is a single sequential
  generator, so its op spans strictly contain its wait spans;
- counters (SM threads in use, queue depth, cumulative link bytes)
  attach to the pid of the GPU their name mentions.

Simulated seconds are exported as microseconds (the unit the viewers
expect); events are sorted so timestamps are monotonically ordered.
"""

from __future__ import annotations

import json
import os
import re

from repro.obs.tracer import CounterEvent, InstantEvent, SpanEvent, Tracer

#: simulated seconds -> trace microseconds
_US = 1e6

_GPU_RE = re.compile(r"gpu(\d+)")


def _group_of(tracer: Tracer, track: str) -> str:
    meta = tracer.tracks.get(track)
    if meta is not None and meta["group"]:
        return meta["group"]
    m = _GPU_RE.search(track)
    return f"gpu{m.group(1)}" if m else "global"


def _group_sort_key(group: str):
    m = _GPU_RE.fullmatch(group)
    return (0, int(m.group(1))) if m else (1, group)


def to_chrome_trace(tracer: Tracer) -> dict:
    """Convert collected events to a Chrome trace-event JSON object."""
    groups: dict[str, int] = {}
    tids: dict[str, int] = {}
    events: list[dict] = []

    # first pass: collect groups and tracks in a stable order
    all_tracks = dict(tracer.tracks)
    for ev in tracer.events:
        all_tracks.setdefault(ev.track, {"group": None, "sort": 0})
    by_group: dict[str, list[str]] = {}
    for track in all_tracks:
        by_group.setdefault(_group_of(tracer, track), []).append(track)
    for i, group in enumerate(sorted(by_group, key=_group_sort_key)):
        groups[group] = i
        events.append({"name": "process_name", "ph": "M", "pid": i, "tid": 0,
                       "args": {"name": group}})
        tracks = sorted(
            by_group[group],
            key=lambda t: (all_tracks[t].get("sort", 0), t),
        )
        for j, track in enumerate(tracks):
            tids[track] = j
            events.append({"name": "thread_name", "ph": "M", "pid": i,
                           "tid": j, "args": {"name": track}})

    def loc(track: str) -> tuple[int, int]:
        return groups[_group_of(tracer, track)], tids[track]

    body: list[dict] = []
    for ev in tracer.events:
        pid, tid = loc(ev.track)
        if isinstance(ev, SpanEvent):
            body.append({
                "name": ev.name, "cat": ev.cat or "span", "ph": "X",
                "ts": ev.start * _US, "dur": ev.duration * _US,
                "pid": pid, "tid": tid, "args": dict(ev.args),
            })
        elif isinstance(ev, InstantEvent):
            body.append({
                "name": ev.name, "cat": ev.cat or "instant", "ph": "i",
                "ts": ev.ts * _US, "s": "t",
                "pid": pid, "tid": tid, "args": dict(ev.args),
            })
        elif isinstance(ev, CounterEvent):
            body.append({
                "name": ev.name if ev.track == ev.name
                else f"{ev.track} {ev.name}",
                "ph": "C", "ts": ev.ts * _US, "pid": pid, "tid": tid,
                "args": dict(ev.values),
            })
    body.sort(key=lambda e: e["ts"])
    return {"traceEvents": events + body, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path) -> None:
    """Write the Chrome trace JSON to ``path``."""
    with open(path, "w") as f:
        json.dump(to_chrome_trace(tracer), f)


def read_chrome_trace(path) -> Tracer:
    """Load a Chrome trace-event JSON back into a :class:`Tracer`.

    The inverse of :func:`to_chrome_trace` for the event kinds the
    analyses consume: ``X`` spans, ``i`` instants and ``C`` counters
    come back with their original tracks (recovered from the
    ``thread_name`` metadata), timestamps converted back to simulated
    seconds.  Raises :class:`~repro.utils.errors.ConfigError` when the
    file is not valid JSON or not a Chrome trace; missing files raise
    the usual :class:`FileNotFoundError`.
    """
    from repro.utils.errors import ConfigError

    with open(path) as f:
        try:
            payload = json.load(f)
        except json.JSONDecodeError as err:
            raise ConfigError(f"{path}: not valid JSON ({err})") from err
    if (not isinstance(payload, dict)
            or not isinstance(payload.get("traceEvents"), list)):
        raise ConfigError(
            f"{path}: not a Chrome trace (no 'traceEvents' list)"
        )
    events = payload["traceEvents"]
    tracks: dict[tuple, str] = {}
    groups: dict = {}
    for ev in events:
        if not isinstance(ev, dict) or ev.get("ph") != "M":
            continue
        name = (ev.get("args") or {}).get("name")
        if ev.get("name") == "process_name":
            groups[ev.get("pid")] = name
        elif ev.get("name") == "thread_name":
            tracks[(ev.get("pid"), ev.get("tid"))] = name
    tracer = Tracer()
    for (pid, tid), track in tracks.items():
        tracer.declare_track(track, group=groups.get(pid), sort=tid or 0)
    for ev in events:
        if not isinstance(ev, dict):
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "C"):
            continue
        track = tracks.get(
            (ev.get("pid"), ev.get("tid")), f"pid{ev.get('pid')}"
        )
        ts = float(ev.get("ts", 0.0)) / _US
        args = ev.get("args") or {}
        name = str(ev.get("name", ""))
        if ph == "X":
            tracer.span(track, name, ev.get("cat", ""), start=ts,
                        end=ts + float(ev.get("dur", 0.0)) / _US, **args)
        elif ph == "i":
            tracer.instant(track, name, ts, cat=ev.get("cat", ""), **args)
        else:
            # the exporter prefixes counter names with their track when
            # the two differ — undo that so queries by name still match
            if name.startswith(track + " "):
                name = name[len(track) + 1:]
            tracer.counter(track, name, ts, **args)
    return tracer


def run_trace_path(base, label: str) -> str:
    """Per-run trace filename of a parallel fan-out.

    Each run of a fan-out (a sweep point, a compared system) writes its
    own Chrome trace next to the requested base path, tagged with the
    run's label: ``run_trace_path("sweep.json", "qps2000")`` ->
    ``"sweep-qps2000.json"``.  Label characters outside
    ``[A-Za-z0-9._-]`` are collapsed to ``_`` so labels are always
    filesystem-safe.
    """
    base = os.fspath(base)
    root, ext = os.path.splitext(base)
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", str(label)).strip("_")
    return f"{root}-{safe}{ext or '.json'}"


def to_text(tracer: Tracer) -> str:
    """Plain-text timeline: one line per span/instant, grouped by track."""
    lines: list[str] = []
    tracks = sorted({ev.track for ev in tracer.events
                     if not isinstance(ev, CounterEvent)})
    for track in tracks:
        lines.append(f"== {track} ==")
        evs = [ev for ev in tracer.events if ev.track == track
               and not isinstance(ev, CounterEvent)]
        evs.sort(key=lambda e: e.start if isinstance(e, SpanEvent) else e.ts)
        for ev in evs:
            if isinstance(ev, SpanEvent):
                extra = " ".join(f"{k}={v}" for k, v in sorted(ev.args.items()))
                lines.append(
                    f"  [{ev.start * 1e3:12.3f} .. {ev.end * 1e3:12.3f} ms] "
                    f"{ev.cat or 'span':<16} {ev.name}"
                    + (f"  ({extra})" if extra else "")
                )
            else:
                lines.append(
                    f"  [{ev.ts * 1e3:12.3f} ms]                    "
                    f"{ev.cat or 'instant':<16} {ev.name}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
