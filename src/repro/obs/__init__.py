"""Observability: tracing, trace export, and timeline analysis.

Attach a :class:`Tracer` to the discrete-event engine (or pass one to
``TrainingSystem.run_epoch``) to record span/instant/counter events
while a simulated epoch runs; export the result as Chrome trace-event
JSON (Perfetto / ``chrome://tracing``) or plain text; and compute the
per-GPU busy/stall breakdown and the epoch's critical path.  See
``docs/observability.md`` for the event schema and the CLI entry point
(``python -m repro trace``).
"""

from repro.obs.tracer import (
    CounterEvent,
    InstantEvent,
    SpanEvent,
    Tracer,
    WAIT_CATEGORIES,
    wait_category,
)
from repro.obs.export import (
    read_chrome_trace,
    run_trace_path,
    to_chrome_trace,
    to_text,
    write_chrome_trace,
)
from repro.obs.analysis import (
    GpuBreakdown,
    PathSegment,
    critical_path,
    format_breakdown,
    format_critical_path,
    format_plan_cache,
    plan_cache_stats,
    sm_busy_times,
    stall_breakdown,
)

__all__ = [
    "Tracer",
    "SpanEvent",
    "InstantEvent",
    "CounterEvent",
    "WAIT_CATEGORIES",
    "wait_category",
    "read_chrome_trace",
    "run_trace_path",
    "to_chrome_trace",
    "to_text",
    "write_chrome_trace",
    "format_plan_cache",
    "plan_cache_stats",
    "GpuBreakdown",
    "PathSegment",
    "critical_path",
    "format_breakdown",
    "format_critical_path",
    "sm_busy_times",
    "stall_breakdown",
]
