"""Trace analysis: per-GPU busy/stall breakdown and epoch critical path.

Two questions a timeline answers that scalar metrics cannot:

- **Where does each GPU's time go?**  :func:`stall_breakdown`
  reconstructs per-GPU busy time from the SM-resource counter series
  (the same integral :meth:`repro.engine.resources.Resource.busy_fraction`
  computes, so the two agree to float precision) and attributes each
  worker's blocked intervals to a stall category (queue back-pressure,
  SM contention, channel contention, rendezvous, CCC gate).
- **What sequence of ops bounded the epoch?**  :func:`critical_path`
  walks the timeline backwards from the last-finishing op, at each step
  jumping to the op that finished last at-or-before the current op
  started.  The result is the chain of work (plus any idle gaps) whose
  durations sum to the epoch time — the place a perf PR must attack.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.obs.tracer import SpanEvent, Tracer, WAIT_CATEGORIES

_TRACK_GPU_RE = re.compile(r"-gpu(\d+)$")
_STALL_CATS = set(WAIT_CATEGORIES) | {"wait"}


@dataclass
class GpuBreakdown:
    """One GPU's time accounting over an epoch.

    ``busy`` is wall-clock with >= 1 kernel resident (matches
    ``PipelineResult.busy_fraction`` x total).  ``stalls`` are summed
    over the GPU's workers, so with multiple workers per GPU they are
    *worker-seconds* and may exceed the wall clock.
    """

    gpu: int
    busy: float = 0.0
    stalls: dict = field(default_factory=dict)

    def stall(self, cat: str) -> float:
        return self.stalls.get(cat, 0.0)


def track_gpu(track: str) -> int | None:
    """GPU index a worker track belongs to (``...-gpu3`` -> 3)."""
    m = _TRACK_GPU_RE.search(track)
    return int(m.group(1)) if m else None


def sm_busy_times(tracer: Tracer, total_time: float,
                  num_gpus: int) -> list[float]:
    """Per-GPU wall time with at least one kernel resident.

    Integrates the step function recorded by the ``gpu<g>-sm`` "used"
    counters — the same quantity the :class:`Resource` accumulates —
    so the result matches ``Resource.busy_fraction(total) * total``.
    """
    busy = [0.0] * num_gpus
    for g in range(num_gpus):
        points = sorted(
            ((ev.ts, ev.values.get("used", 0))
             for ev in tracer.counters(track=f"gpu{g}-sm", name="used")),
            key=lambda p: p[0],
        )
        last_t, used = 0.0, 0
        for ts, value in points:
            if used > 0:
                busy[g] += ts - last_t
            last_t, used = ts, value
        if used > 0 and total_time > last_t:
            busy[g] += total_time - last_t
    return busy


def stall_breakdown(tracer: Tracer, total_time: float,
                    num_gpus: int) -> list[GpuBreakdown]:
    """Per-GPU busy time and per-category stall (worker-)seconds."""
    out = [GpuBreakdown(gpu=g) for g in range(num_gpus)]
    for g, busy in enumerate(sm_busy_times(tracer, total_time, num_gpus)):
        out[g].busy = busy
    for ev in tracer.spans():
        if ev.cat not in _STALL_CATS:
            continue
        g = track_gpu(ev.track)
        if g is None or g >= num_gpus:
            continue
        stalls = out[g].stalls
        stalls[ev.cat] = stalls.get(ev.cat, 0.0) + ev.duration
    return out


@dataclass(frozen=True)
class PathSegment:
    """One link of the critical path (``track`` empty for idle gaps)."""

    track: str
    name: str
    cat: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def critical_path(tracer: Tracer, eps: float = 1e-12) -> list[PathSegment]:
    """Backward last-finisher chain over the work (non-stall) spans.

    Starting from the span that ends last, repeatedly pick the span
    with the latest end at-or-before the current span's start; a jump
    across simulated time with no candidate span becomes an explicit
    ``idle`` segment.  Returns segments in chronological order.
    """
    # zero-length spans (free ops, e.g. single-GPU collectives) cannot
    # carry path time and would stall the backward walk — drop them
    work = sorted(
        (ev for ev in tracer.spans()
         if ev.cat not in _STALL_CATS and ev.end - ev.start > eps),
        key=lambda ev: ev.end,
    )
    if not work:
        return []
    path: list[PathSegment] = []
    cur: SpanEvent = work[-1]
    path.append(PathSegment(cur.track, cur.name, cur.cat, cur.start, cur.end))
    cursor = cur.start
    i = len(work) - 2  # each span joins the path at most once
    while cursor > eps:
        # latest-ending span with end <= cursor (+eps slack for float ties)
        while i >= 0 and work[i].end > cursor + eps:
            i -= 1
        if i < 0:
            path.append(PathSegment("", "idle", "idle", 0.0, cursor))
            break
        nxt = work[i]
        i -= 1
        if nxt.end < cursor - eps:
            path.append(PathSegment("", "idle", "idle", nxt.end, cursor))
        path.append(
            PathSegment(nxt.track, nxt.name, nxt.cat, nxt.start, nxt.end)
        )
        cursor = min(cursor, nxt.start)
    path.reverse()
    return path


# ----------------------------------------------------------------------
# report formatting
# ----------------------------------------------------------------------
def format_breakdown(breakdowns: list[GpuBreakdown],
                     total_time: float) -> str:
    """Fixed-width stall-breakdown table (one row per GPU + mean)."""
    cats = list(WAIT_CATEGORIES)
    header = f"{'gpu':>4} {'busy':>8}" + "".join(
        f" {c.replace('-wait', ''):>11}" for c in cats
    )
    lines = [header]

    def row(label: str, busy: float, stalls: dict) -> str:
        frac = busy / total_time if total_time > 0 else 0.0
        return (f"{label:>4} {frac:>8.2%}"
                + "".join(f" {stalls.get(c, 0.0):>11.6f}" for c in cats))

    n = len(breakdowns)
    for b in breakdowns:
        lines.append(row(str(b.gpu), b.busy, b.stalls))
    if n > 1:
        mean_busy = sum(b.busy for b in breakdowns) / n
        mean_stalls = {
            c: sum(b.stall(c) for b in breakdowns) / n for c in cats
        }
        lines.append(row("mean", mean_busy, mean_stalls))
    lines.append(
        f"(busy = wall fraction with a kernel resident; stall columns are "
        f"blocked worker-seconds over {total_time:.6f}s simulated)"
    )
    return "\n".join(lines)


def format_critical_path(path: list[PathSegment], top: int = 12) -> str:
    """Summarize the critical path: top links + per-category totals."""
    if not path:
        return "critical path: (no work spans)"
    total = path[-1].end - path[0].start
    by_cat: dict[str, float] = {}
    for seg in path:
        by_cat[seg.cat] = by_cat.get(seg.cat, 0.0) + seg.duration
    lines = [f"critical path: {len(path)} links covering {total:.6f}s"]
    for cat, dur in sorted(by_cat.items(), key=lambda kv: -kv[1]):
        share = dur / total if total > 0 else 0.0
        lines.append(f"  {cat:<10} {dur:>12.6f}s  {share:>6.1%}")
    longest = sorted(path, key=lambda s: -s.duration)[:top]
    lines.append(f"  longest links (top {len(longest)}):")
    for seg in longest:
        where = seg.track or "-"
        lines.append(
            f"    {seg.duration:>12.6f}s  {seg.name:<20} {seg.cat:<8} {where}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# plan-cache effectiveness
# ----------------------------------------------------------------------
def plan_cache_stats(tracer: Tracer) -> dict | None:
    """Final plan-cache counters recorded in a trace, or None.

    The serving pipeline emits cumulative ``plan-cache`` counter events
    (hits/misses of :class:`repro.cache.plan.PlanCache`) after every
    feature load; this reads the last one and derives the hit rate, so
    ``repro trace`` and post-hoc analyses can report cache
    effectiveness per run.
    """
    last = None
    for ev in tracer.counters(name="plan-cache"):
        last = ev
    if last is None:
        return None
    hits = int(last.values.get("hits", 0))
    misses = int(last.values.get("misses", 0))
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / total if total else 0.0,
    }


def format_plan_cache(stats: dict) -> str:
    """One-line summary of :func:`plan_cache_stats` output."""
    return (f"plan cache: {stats['hits']} hits / {stats['misses']} misses "
            f"({stats['hit_rate']:.1%} hit rate)")
