"""The serving control plane: online tuning, autoscaling, tenancy.

ROADMAP item 2: DSP's serving tier found its batcher knobs and its
saturation knee by *offline* QPS sweeps; this package closes the loop
online.  Three controllers, all deterministic pure functions of
``(workload, qps, config)`` and therefore byte-identical across
``--workers`` (the conformance suite in ``tests/control/`` pins this):

- :class:`ServeController` (:mod:`repro.control.controller`) — a
  hysteresis-banded AIMD tuner that retunes per-GPU batcher
  ``batch_max`` / ``max-wait`` against the streaming SLO burn rate;
- :func:`autoscaled_serve` (:mod:`repro.control.autoscale`) — replica
  scaling with warm-up cost on scale-up and drain-don't-drop
  scale-down;
- :class:`TenancyConfig` (:mod:`repro.control.tenancy`) — priority
  classes and per-tenant admission quotas, with SLO-pressure shedding.

Everything is **off by default**: with no controller, tenancy or
autoscaler configured, serving output is bit-identical to the
pre-control code path.  See ``docs/control.md``.
"""

from repro.control.actions import (
    ACTION_KINDS,
    ControlAction,
    action_from_dict,
    actions_to_dicts,
)
from repro.control.autoscale import (
    AutoscaleConfig,
    assign_replicas,
    autoscaled_qps_sweep,
    autoscaled_serve,
)
from repro.control.controller import ControllerConfig, ServeController
from repro.control.evaluate import (
    CORE_SCENARIOS,
    control_cell,
    control_matrix,
    format_control_matrix,
)
from repro.control.tenancy import (
    TenancyConfig,
    TenantSpec,
    TenantState,
    tenant_summary,
)

__all__ = [
    "ACTION_KINDS",
    "AutoscaleConfig",
    "CORE_SCENARIOS",
    "ControlAction",
    "ControllerConfig",
    "ServeController",
    "TenancyConfig",
    "TenantSpec",
    "TenantState",
    "action_from_dict",
    "actions_to_dicts",
    "assign_replicas",
    "autoscaled_qps_sweep",
    "control_cell",
    "autoscaled_serve",
    "control_matrix",
    "format_control_matrix",
    "tenant_summary",
]
