"""Replica autoscaling: serving capacity as a live control variable.

:func:`autoscaled_serve` serves one open-loop request stream while
scaling the replica count between ``min_replicas`` and ``max_replicas``
— GSplit's framing of parallelism as something the system *chooses*
per load, rather than a sweep axis fixed up front.

The control loop runs on arrival time, before any replica simulates:
the stream is cut into fixed intervals, each boundary folds the
interval's arrival count into an EWMA rate estimate, and the desired
replica count is ``ceil(rate / target_qps_per_replica)`` clamped to the
configured range, with threshold hysteresis and a cooldown so the
scaler doesn't chatter.

- **Scale-up is not free**: a new replica *warms* for ``warmup_s``
  before it joins the routable set — requests landing during warm-up
  still crowd onto the old replicas, which is exactly the cost a real
  autoscaler pays for reacting late.
- **Scale-down never drops work**: a retired replica leaves the
  routable set but keeps (and fully serves) every request already
  assigned to it — it drains.  The
  :class:`~repro.chaos.InvariantChecker` audits this as the
  ``scale-safety`` invariant: no request is ever routed to a replica
  after its retirement instant.

Routing over the live replica set is ``node % len(active)`` — a pure
function of the request and the scaler state, so the whole run
(assignment, per-replica simulations, merged report, action log) is a
pure function of ``(workload, qps, configs)`` and byte-identical
across ``--workers``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.control.actions import ControlAction, actions_to_dicts
from repro.serve.service import GNNServer, ServeConfig
from repro.serve.stats import ServeReport, build_report
from repro.serve.sweep import (
    _reseed_sampler,
    _reset_dynamic,
    _reset_plan_cache,
)
from repro.serve.workload import Workload
from repro.utils.errors import ConfigError

#: default control interval: the stream span cut into this many slices
DEFAULT_INTERVALS = 24


@dataclass(frozen=True)
class AutoscaleConfig:
    """Replica-scaling policy knobs."""

    min_replicas: int = 1
    max_replicas: int = 4
    #: per-replica capacity the scaler sizes against (None = offered
    #: QPS / max_replicas, so the stream's peak engages the full range)
    target_qps_per_replica: float | None = None
    #: control interval in seconds (None = stream span / 24)
    interval_s: float | None = None
    #: scale up only when the rate exceeds this fraction of current
    #: capacity; scale down only below this fraction of the shrunken
    #: capacity — the hysteresis gap between them prevents chatter
    up_threshold: float = 0.9
    down_threshold: float = 0.6
    #: EWMA weight of the newest interval's rate
    ewma: float = 0.5
    #: warm-up delay before a started replica becomes routable
    #: (None = one control interval)
    warmup_s: float | None = None
    #: intervals to hold after any scale action
    cooldown_intervals: int = 1

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ConfigError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ConfigError("max_replicas must be >= min_replicas")
        if (self.target_qps_per_replica is not None
                and self.target_qps_per_replica <= 0):
            raise ConfigError("target_qps_per_replica must be positive")
        if self.interval_s is not None and self.interval_s <= 0:
            raise ConfigError("interval_s must be positive")
        if not 0.0 < self.down_threshold < self.up_threshold <= 1.0:
            raise ConfigError("need 0 < down_threshold < up_threshold <= 1")
        if not 0.0 < self.ewma <= 1.0:
            raise ConfigError("ewma must be in (0, 1]")
        if self.warmup_s is not None and self.warmup_s < 0:
            raise ConfigError("warmup_s must be non-negative")
        if self.cooldown_intervals < 0:
            raise ConfigError("cooldown_intervals must be non-negative")


class _ScalerState:
    """The arrival-time control loop (pure, no simulator involved)."""

    def __init__(self, scale: AutoscaleConfig, interval_s: float,
                 warmup_s: float, target: float, invariants=None):
        self.scale = scale
        self.interval_s = interval_s
        self.warmup_s = warmup_s
        self.target = target
        self.invariants = invariants
        self.active = list(range(scale.min_replicas))
        self.warming: dict[int, float] = {}  # replica -> routable at
        self.retired: dict[int, float] = {}  # replica -> retired at
        self.next_id = scale.min_replicas
        self.rate = None  # EWMA arrival rate
        self.cooldown_until = 0  # interval index
        self.count = 0  # arrivals in the open interval
        self.interval = 0
        self.actions: list[ControlAction] = []
        self.timeline: list[dict] = [
            {"t_ms": 0.0, "active": len(self.active), "warming": 0}
        ]

    def _capacity(self, n: int) -> float:
        return n * self.target

    def close_interval(self) -> None:
        """One boundary: fold the rate, promote warm replicas, decide."""
        sc = self.scale
        boundary = (self.interval + 1) * self.interval_s
        for r in sorted(self.warming):
            if self.warming[r] <= boundary:
                self.active.append(r)
                del self.warming[r]
        self.active.sort()
        rate = self.count / self.interval_s
        self.count = 0
        self.rate = (rate if self.rate is None
                     else sc.ewma * rate + (1.0 - sc.ewma) * self.rate)
        total = len(self.active) + len(self.warming)
        if self.interval >= self.cooldown_until:
            if (total < sc.max_replicas
                    and self.rate > sc.up_threshold * self._capacity(total)):
                want = min(
                    sc.max_replicas,
                    max(total + 1,
                        int(math.ceil(self.rate / self.target))),
                )
                for _ in range(want - total):
                    rid = self.next_id
                    self.next_id += 1
                    self.warming[rid] = boundary + self.warmup_s
                self.actions.append(ControlAction(
                    t=boundary, kind="scale-up", knob="replicas",
                    before=total, after=want, signal=self.rate,
                ))
                self.cooldown_until = (
                    self.interval + 1 + sc.cooldown_intervals
                )
            elif (total > sc.min_replicas
                  and self.rate < sc.down_threshold
                  * self._capacity(total - 1)):
                want = max(
                    sc.min_replicas,
                    int(math.ceil(self.rate / self.target)),
                )
                # cancel warming replicas first (they never served a
                # request), then retire the newest active ones — those
                # drain: work already assigned to them still completes
                for r in sorted(self.warming, reverse=True):
                    if len(self.active) + len(self.warming) <= want:
                        break
                    del self.warming[r]
                for r in sorted(self.active, reverse=True):
                    if (len(self.active) + len(self.warming) <= want
                            or len(self.active) <= sc.min_replicas):
                        break
                    self.active.remove(r)
                    self.retired[r] = boundary
                    if self.invariants is not None:
                        self.invariants.on_retire(r, boundary)
                self.actions.append(ControlAction(
                    t=boundary, kind="scale-down", knob="replicas",
                    before=total,
                    after=len(self.active) + len(self.warming),
                    signal=self.rate,
                ))
                self.cooldown_until = (
                    self.interval + 1 + sc.cooldown_intervals
                )
        self.interval += 1
        self.timeline.append({
            "t_ms": boundary * 1e3,
            "active": len(self.active),
            "warming": len(self.warming),
        })

    def route(self, req) -> int:
        """Replica for ``req`` — hash over the live active set."""
        rep = self.active[req.node % len(self.active)]
        if self.invariants is not None:
            self.invariants.on_assign(rep, req.arrival)
        return rep

    def summary(self) -> dict:
        return {
            "interval_ms": self.interval_s * 1e3,
            "warmup_ms": self.warmup_s * 1e3,
            "target_qps_per_replica": self.target,
            "actions": actions_to_dicts(self.actions),
            "timeline": self.timeline,
            "final_replicas": len(self.active) + len(self.warming),
            "max_replicas_used": self.next_id,
        }


def assign_replicas(requests, scale: AutoscaleConfig, qps: float,
                    invariants=None):
    """Run the arrival-time scaling loop over a request stream.

    Returns ``(assignment list, scaler state)``; the assignment maps
    each request (by position) to the replica that serves it.
    """
    if not requests:
        raise ConfigError("need at least one request")
    span = max(r.arrival for r in requests)
    interval_s = (scale.interval_s if scale.interval_s is not None
                  else max(span / DEFAULT_INTERVALS, 1e-9))
    warmup_s = (scale.warmup_s if scale.warmup_s is not None
                else interval_s)
    target = (scale.target_qps_per_replica
              if scale.target_qps_per_replica is not None
              else qps / scale.max_replicas)
    state = _ScalerState(scale, interval_s, warmup_s, target,
                         invariants=invariants)
    assign = []
    for req in requests:
        idx = int(req.arrival // interval_s)
        while state.interval < idx:
            state.close_interval()
        state.count += 1
        assign.append(state.route(req))
    return assign, state


def autoscaled_serve(
    system,
    workload: Workload,
    qps: float,
    scale: AutoscaleConfig | None = None,
    config: ServeConfig | None = None,
    metrics: bool = False,
    metrics_window_s: float | None = None,
) -> ServeReport:
    """Serve one offered load with the replica count under control.

    Structured like :func:`repro.cluster.serve.serve_replicated`: the
    scaler splits the stream, each replica's sub-stream runs through a
    fresh :class:`GNNServer` (sampler RNGs, dynamic cache and plan
    cache reset per replica), and records merge back in arrival order.
    ``report.control["autoscale"]`` carries the action log, replica
    timeline and warm-up accounting.
    """
    scale = scale if scale is not None else AutoscaleConfig()
    cfg = config if config is not None else ServeConfig()
    requests = workload.requests(qps)

    invariants = None
    if cfg.check_invariants:
        from repro.chaos.invariants import InvariantChecker

        invariants = InvariantChecker()
    assign, state = assign_replicas(requests, scale, qps,
                                    invariants=invariants)

    replica_ids = sorted(set(assign))
    merged = {}
    num_batches = 0
    hits = done = 0
    summaries = []
    controls = []
    for rep in replica_ids:
        sub = [r for r, a in zip(requests, assign) if a == rep]
        _reseed_sampler(system)
        _reset_dynamic(system)
        _reset_plan_cache(system)
        rep_invariants = None
        if cfg.check_invariants:
            from repro.chaos.invariants import InvariantChecker

            rep_invariants = InvariantChecker()
        registry = None
        if metrics:
            from repro.metrics import MetricsRegistry

            registry = MetricsRegistry(
                window_s=(metrics_window_s if metrics_window_s is not None
                          else cfg.slo_s)
            )
        server = GNNServer(system, cfg, metrics=registry,
                           invariants=rep_invariants)
        rep_report = server.run(sub, offered_qps=qps)
        controls.append(rep_report.control)
        if rep_invariants is not None:
            rep_invariants.finalize()
        for rec in server.last_records:
            merged[rec.rid] = rec
        num_batches += server.last_num_batches
        acc = server.last_accuracy
        n_done = sum(1 for r in server.last_records
                     if not r.shed and r.prediction is not None)
        if n_done and not np.isnan(acc):
            hits += acc * n_done
            done += n_done
        if registry is not None:
            from repro.metrics import serve_summary

            summaries.append(serve_summary(registry, cfg.slo_s))
        else:
            summaries.append(None)

    ordered = [merged[r.rid] for r in requests]
    accuracy = hits / done if done else float("nan")
    report = build_report(system.name, qps, cfg.slo_s, ordered, num_batches,
                          accuracy=accuracy)
    if metrics:
        present = [s for s in summaries if s is not None]
        report.metrics = {
            "window_ms": present[0]["window_ms"] if present else None,
            "slo": {
                "slo_minutes_violated": sum(
                    s["slo"]["slo_minutes_violated"] for s in present
                ),
                "windows": [],
            },
            "replicas": summaries,
        }
    control: dict = {"autoscale": state.summary()}
    if cfg.controller is not None:
        control["replicas"] = controls
    report.control = control
    if cfg.tenancy is not None:
        from repro.control.tenancy import tenant_summary

        report.tenants = tenant_summary(ordered, cfg.slo_s)
    return report


def autoscaled_qps_sweep(
    system,
    workload: Workload,
    qps_values,
    scale: AutoscaleConfig | None = None,
    config: ServeConfig | None = None,
    workers: int = 1,
    metrics: bool = False,
    metrics_window_s: float | None = None,
):
    """A QPS sweep where every point serves under the autoscaler.

    Mirrors :func:`repro.cluster.serve.replicated_qps_sweep`: points
    fan out as ``cluster_point`` runs (the handler dispatches on the
    ``autoscale`` payload key) and are byte-identical across
    ``--workers``.
    """
    from repro.parallel import RunSpec, adopt_system, run_tasks
    from repro.serve.sweep import SweepPoint

    values = sorted(float(q) for q in qps_values)
    if not values:
        raise ConfigError("need at least one QPS value")
    scale = scale if scale is not None else AutoscaleConfig()
    specs = [
        RunSpec(
            kind="cluster_point",
            label=f"qps{q:g}-auto{scale.max_replicas}",
            seed=system.config.seed,
            payload={
                "system": system.name,
                "config": system.config,
                "workload": workload,
                "qps": q,
                "autoscale": scale,
                "serve_config": config,
                "metrics": metrics,
                "metrics_window_s": metrics_window_s,
            },
        )
        for q in values
    ]
    if workers <= 1:
        adopt_system(system)
    reports = run_tasks(specs, workers=workers)
    return [SweepPoint(qps=q, report=r) for q, r in zip(values, reports)]


__all__ = ["AutoscaleConfig", "DEFAULT_INTERVALS", "assign_replicas",
           "autoscaled_serve", "autoscaled_qps_sweep"]
