"""The online batcher tuner: hysteresis-banded AIMD against the SLO.

:class:`ServeController` runs *inside* the simulated serving run as a
periodic simulator callback.  Every ``interval_s`` of simulated time it
reads the windows the streaming :class:`~repro.metrics.MetricsRegistry`
closed since its last tick, computes the interval's SLO **burn rate**
(violation fraction over the error budget, the
:class:`~repro.metrics.SLOMonitor` definition) and steps the per-GPU
batcher knobs:

- **burn above the band** (out of SLO): if batches are closing near
  full, admission is throughput-bound — double ``batch_max`` (more
  amortisation per batch) up to ``max_batch_factor`` times the
  baseline; otherwise the tail is batching delay — halve the max-wait
  ``timeout_s`` down to ``min_timeout_frac`` of baseline.  Sustained
  burn additionally raises the **pressure** level, shedding
  low-priority work at admission (multi-tenant runs only).
- **burn below the band** for ``recover_after`` consecutive intervals:
  step knobs back *toward the baseline* — pressure first, then
  max-wait, then batch size — reaching it exactly in finitely many
  steps.
- **inside the band**: do nothing (the hysteresis gap is what prevents
  limit-cycle oscillation around the threshold).

Determinism: the controller reads only window-bucketed metric state at
tick instants that are pure functions of simulated time, and its knob
steps are pure functions of that state — the action log is a pure
function of ``(workload, qps, config)`` and is byte-identical across
``--workers`` (pinned by ``tests/control/``).

Stability: under stationary load the burn rate settles on one side of
the band, so the knobs converge (to the baseline from below, to the
caps/floors from above) and the action log **quiesces** — a property
test fuzzes this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.control.actions import ACTION_KINDS, ControlAction, actions_to_dicts
from repro.utils.errors import ConfigError

#: default tick interval, in registry windows
DEFAULT_INTERVAL_WINDOWS = 4


@dataclass(frozen=True)
class ControllerConfig:
    """Tuner policy knobs.  All defaults are deliberately gentle: a
    controller that thrashes is worse than none."""

    #: tick period in simulated seconds (None = 4 registry windows)
    interval_s: float | None = None
    #: SLO attainment target defining the error budget (matches
    #: :class:`~repro.metrics.SLOMonitor`)
    target: float = 0.99
    #: hysteresis band on the burn rate: act only outside [low, high]
    low_burn: float = 0.5
    high_burn: float = 1.0
    #: knob bounds, as multiples of the baseline ServeConfig values
    min_timeout_frac: float = 0.125
    max_batch_factor: int = 8
    #: multiplicative steps (the "MD"/"MI" halves of AIMD)
    timeout_decrease: float = 0.5
    batch_increase: float = 2.0
    #: additive recovery steps toward baseline, as a fraction of it
    recover_frac: float = 0.25
    #: healthy intervals required before a recovery step
    recover_after: int = 2
    #: batches closing at >= this fraction of batch_max mark the
    #: interval throughput-bound (grow batches, don't cut the wait)
    full_batch_frac: float = 0.8
    #: ceiling on the priority-shedding pressure level (0 = never shed
    #: by priority; raised by the CLI when tenancy is on)
    max_pressure: int = 0
    #: violated intervals required before raising pressure
    pressure_after: int = 2

    def __post_init__(self) -> None:
        if self.interval_s is not None and self.interval_s <= 0:
            raise ConfigError("interval_s must be positive")
        if not 0.0 < self.target < 1.0:
            raise ConfigError("target must be in (0, 1)")
        if not 0.0 <= self.low_burn < self.high_burn:
            raise ConfigError("need 0 <= low_burn < high_burn")
        if not 0.0 < self.min_timeout_frac <= 1.0:
            raise ConfigError("min_timeout_frac must be in (0, 1]")
        if self.max_batch_factor < 1:
            raise ConfigError("max_batch_factor must be >= 1")
        if not 0.0 < self.timeout_decrease < 1.0:
            raise ConfigError("timeout_decrease must be in (0, 1)")
        if self.batch_increase <= 1.0:
            raise ConfigError("batch_increase must be > 1")
        if not 0.0 < self.recover_frac <= 1.0:
            raise ConfigError("recover_frac must be in (0, 1]")
        if self.recover_after < 1:
            raise ConfigError("recover_after must be >= 1")
        if not 0.0 < self.full_batch_frac <= 1.0:
            raise ConfigError("full_batch_frac must be in (0, 1]")
        if self.max_pressure < 0:
            raise ConfigError("max_pressure must be non-negative")
        if self.pressure_after < 1:
            raise ConfigError("pressure_after must be >= 1")


class ServeController:
    """Periodic in-simulation tuner over a serving run's batchers."""

    def __init__(self, config: ControllerConfig, serve_config, registry,
                 tracer=None):
        self.config = config
        self.registry = registry
        self.tracer = tracer
        # frozen baselines the controller recovers toward
        self.base_batch_max = serve_config.batch_max
        self.base_timeout_s = serve_config.batch_timeout_s
        self.slo_s = serve_config.slo_s
        self.interval_s = (
            config.interval_s if config.interval_s is not None
            else DEFAULT_INTERVAL_WINDOWS * registry.window_s
        )
        # live knob state (applied uniformly to every per-GPU batcher)
        self.batch_max = serve_config.batch_max
        self.timeout_s = serve_config.batch_timeout_s
        self.pressure = 0
        # streaks driving hysteresis + pressure escalation
        self.healthy_streak = 0
        self.violated_streak = 0
        # consumed-window cursor: windows with index < this are read
        self._cursor = 0
        self.ticks = 0
        self.actions: list[ControlAction] = []
        self._sim = None
        self._batchers = ()
        self._remaining = None

    # -- wiring ----------------------------------------------------------
    def install(self, sim, batchers, remaining) -> None:
        """Attach to a run: tick every ``interval_s`` until ``remaining``
        (a one-element outstanding-request cell) hits zero."""
        self._sim = sim
        self._batchers = list(batchers)
        self._remaining = remaining
        sim.schedule(self.interval_s, self._tick)

    def _tick(self) -> None:
        self._step(self._sim.now)
        if self._remaining[0] > 0:
            self._sim.schedule(self.interval_s, self._tick)

    # -- the policy -------------------------------------------------------
    def _read_interval(self, t: float) -> tuple[int, int, float]:
        """Fold the registry windows closed since the last tick into
        ``(completed, violations, mean_batch_size)``."""
        reg = self.registry
        ws = reg.window_s
        end = int(math.floor(t / ws + 1e-9))
        done = reg.find("counter", "requests_completed")
        viol = reg.find("counter", "slo_violations")
        batch = reg.find("histogram", "batch_size")
        completed = violations = 0
        bsum = bcount = 0.0
        for w in range(self._cursor, end):
            if done is not None:
                completed += int(done.windows.get(w, 0))
            if viol is not None:
                violations += int(viol.windows.get(w, 0))
            if batch is not None:
                h = batch.windows.get(w)
                if h is not None and h.count:
                    bsum += h.mean * h.count
                    bcount += h.count
        self._cursor = max(self._cursor, end)
        mean_batch = bsum / bcount if bcount else 0.0
        return completed, violations, mean_batch

    def _step(self, t: float) -> None:
        """One control decision at simulated instant ``t``."""
        self.ticks += 1
        cfg = self.config
        completed, violations, mean_batch = self._read_interval(t)
        if completed == 0:
            return  # idle interval: burns nothing, proves nothing
        burn = (violations / completed) / (1.0 - cfg.target)
        if burn > cfg.high_burn:
            self.violated_streak += 1
            self.healthy_streak = 0
            self._tighten(t, burn, mean_batch)
        elif burn < cfg.low_burn:
            self.healthy_streak += 1
            self.violated_streak = 0
            if self.healthy_streak >= cfg.recover_after:
                self._recover(t, burn)
        else:
            # inside the hysteresis band: hold position
            self.violated_streak = 0

    def _tighten(self, t: float, burn: float, mean_batch: float) -> None:
        cfg = self.config
        batch_cap = self.base_batch_max * cfg.max_batch_factor
        timeout_floor = self.base_timeout_s * cfg.min_timeout_frac
        if (mean_batch >= cfg.full_batch_frac * self.batch_max
                and self.batch_max < batch_cap):
            # throughput-bound: batches close full — amortise more
            new = min(batch_cap,
                      int(math.ceil(self.batch_max * cfg.batch_increase)))
            self._act(t, "batch-max-up", "batch_max",
                      self.batch_max, new, burn)
            self.batch_max = new
        elif self.timeout_s > timeout_floor:
            # latency-bound: the tail is batching delay — cut the wait
            new = max(timeout_floor, self.timeout_s * cfg.timeout_decrease)
            self._act(t, "max-wait-down", "timeout_s",
                      self.timeout_s, new, burn)
            self.timeout_s = new
        if (cfg.max_pressure and self.violated_streak >= cfg.pressure_after
                and self.pressure < cfg.max_pressure):
            self._act(t, "pressure-up", "pressure",
                      self.pressure, self.pressure + 1, burn)
            self.pressure += 1
        self._apply()

    def _recover(self, t: float, burn: float) -> None:
        """One step back toward the baseline: pressure, then max-wait,
        then batch size.  At the baseline this is a no-op, so under
        sustained healthy load the action log quiesces."""
        cfg = self.config
        if self.pressure > 0:
            self._act(t, "pressure-down", "pressure",
                      self.pressure, self.pressure - 1, burn)
            self.pressure -= 1
        elif self.timeout_s < self.base_timeout_s:
            step = cfg.recover_frac * self.base_timeout_s
            new = min(self.base_timeout_s, self.timeout_s + step)
            self._act(t, "max-wait-recover", "timeout_s",
                      self.timeout_s, new, burn)
            self.timeout_s = new
        elif self.batch_max > self.base_batch_max:
            step = max(1, int(round(cfg.recover_frac * self.base_batch_max)))
            new = max(self.base_batch_max, self.batch_max - step)
            self._act(t, "batch-max-recover", "batch_max",
                      self.batch_max, new, burn)
            self.batch_max = new
        else:
            return  # quiesced: at baseline, nothing to recover
        self._apply()

    def _apply(self) -> None:
        for b in self._batchers:
            b.apply(batch_max=self.batch_max, timeout_s=self.timeout_s,
                    pressure=self.pressure)

    def _act(self, t: float, kind: str, knob: str, before, after,
             signal: float) -> None:
        self.actions.append(ControlAction(
            t=t, kind=kind, knob=knob, before=float(before),
            after=float(after), signal=float(signal),
        ))
        if self.tracer is not None:
            self.tracer.instant("controller", kind, t, cat="control",
                                knob=knob, before=before, after=after)
        self.registry.event(t, f"control:{kind}", knob=knob,
                            before=float(before), after=float(after))

    # -- reporting --------------------------------------------------------
    def summary(self) -> dict:
        """JSON-safe controller record for ``report.control``."""
        counts = {k: 0 for k in ACTION_KINDS}
        for a in self.actions:
            counts[a.kind] += 1
        return {
            "interval_ms": self.interval_s * 1e3,
            "ticks": self.ticks,
            "actions": actions_to_dicts(self.actions),
            "action_counts": {k: v for k, v in counts.items() if v},
            "final": {
                "batch_max": self.batch_max,
                "timeout_ms": self.timeout_s * 1e3,
                "pressure": self.pressure,
            },
            "baseline": {
                "batch_max": self.base_batch_max,
                "timeout_ms": self.base_timeout_s * 1e3,
            },
        }


__all__ = ["ControllerConfig", "ServeController",
           "DEFAULT_INTERVAL_WINDOWS"]
