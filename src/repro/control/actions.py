"""Typed controller actions and the deterministic action log.

Every decision the serving control plane takes — a batcher knob move,
a pressure (shedding) level change, a replica scale event — is recorded
as a :class:`ControlAction`: *when* (simulated seconds), *what* (the
action kind), *which knob moved from what to what*, and *why* (the
observed signal that triggered it).  The log is the controller's
audit trail and its determinism contract in one object: a controlled
run's action log is a pure function of ``(seed, workload, config)``,
so replaying the run — on any worker process — must reproduce it
byte for byte (``tests/control/test_conformance.py`` pins this).

Actions are JSON-safe and round-trip losslessly through
:meth:`ControlAction.to_dict` / :func:`action_from_dict`, which is what
lets the chaos matrix and the HTML report carry action timelines
without referencing controller objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.errors import ConfigError

#: every action kind the control plane can emit, in display order
ACTION_KINDS = (
    "batch-max-up",
    "batch-max-recover",
    "max-wait-down",
    "max-wait-recover",
    "pressure-up",
    "pressure-down",
    "scale-up",
    "scale-down",
)


@dataclass(frozen=True)
class ControlAction:
    """One control decision at one simulated instant."""

    t: float
    kind: str
    #: the knob that moved ("batch_max", "timeout_s", "pressure",
    #: "replicas")
    knob: str
    before: float
    after: float
    #: the signal that triggered the move (burn rate for the tuner,
    #: EWMA arrival rate for the autoscaler)
    signal: float

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ConfigError(
                f"unknown control action kind {self.kind!r}; "
                f"known: {list(ACTION_KINDS)}"
            )

    def to_dict(self) -> dict:
        return {
            "t_ms": self.t * 1e3,
            "kind": self.kind,
            "knob": self.knob,
            "before": self.before,
            "after": self.after,
            "signal": self.signal,
        }


def action_from_dict(row: dict) -> ControlAction:
    """Rebuild a :class:`ControlAction` from its ``to_dict`` payload."""
    return ControlAction(
        t=row["t_ms"] * 1e-3,
        kind=row["kind"],
        knob=row["knob"],
        before=row["before"],
        after=row["after"],
        signal=row["signal"],
    )


def actions_to_dicts(actions) -> list[dict]:
    """JSON-safe action list, preserving emission order."""
    return [a.to_dict() for a in actions]


__all__ = ["ACTION_KINDS", "ControlAction", "action_from_dict",
           "actions_to_dicts"]
