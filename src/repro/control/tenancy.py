"""Multi-tenant serving: priority classes, quotas, deterministic labels.

A tenant is a traffic class sharing the serving tier: it has a
``priority`` (kept longest under pressure), a ``quota`` (the fraction
of each per-GPU admission queue its pending requests may occupy) and a
``weight`` (its share of the request stream).  The admission batcher
enforces quotas at offer time — a tenant whose pending count has
reached its slots is shed with reason ``"quota"`` regardless of global
queue headroom — and, when the controller raises its pressure level,
sheds requests whose priority is below that level with reason
``"priority"``.  BGL's resource-isolation argument (see PAPERS.md)
motivates this: co-located workloads must not be able to starve each
other's admission path.

Determinism contract: tenant labels are a pure function of
``(tenancy seed, request id)`` via per-rid
:class:`numpy.random.SeedSequence` spawn keys.  A request keeps its
tenant whether the stream is served whole, split across replicas, or
re-served at a different QPS — labelling never depends on stream
length, order, or worker process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.utils.errors import ConfigError

_U64 = float(2**64)


@dataclass(frozen=True)
class TenantSpec:
    """One traffic class."""

    name: str
    #: higher priorities survive higher controller pressure levels
    priority: int = 0
    #: max fraction of each admission queue this tenant may occupy
    quota: float = 1.0
    #: relative share of the request stream
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.priority < 0:
            raise ConfigError("tenant priority must be >= 0")
        if not 0.0 < self.quota <= 1.0:
            raise ConfigError("tenant quota must be in (0, 1]")
        if self.weight <= 0.0:
            raise ConfigError("tenant weight must be positive")


@dataclass(frozen=True)
class TenancyConfig:
    """The tenant set plus the labelling seed."""

    tenants: tuple[TenantSpec, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigError("tenancy needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names: {names}")

    @classmethod
    def uniform(cls, n: int, seed: int = 0) -> "TenancyConfig":
        """``n`` equal-weight tenants with staggered priorities.

        Tenant ``ti`` gets priority ``i % 3`` (so a third of the
        classes sit at each level) and a quota of ``min(1, 2/n)`` —
        generous enough not to bind at balanced load, tight enough
        that a hot tenant cannot monopolise an admission queue.  This
        is what ``repro serve --tenants N`` constructs.
        """
        if n < 1:
            raise ConfigError("need at least one tenant")
        quota = min(1.0, 2.0 / n)
        return cls(
            tenants=tuple(
                TenantSpec(name=f"t{i}", priority=i % 3, quota=quota)
                for i in range(n)
            ),
            seed=seed,
        )

    def max_priority(self) -> int:
        return max(t.priority for t in self.tenants)

    def _cumulative_weights(self) -> np.ndarray:
        w = np.array([t.weight for t in self.tenants], dtype=np.float64)
        c = np.cumsum(w / w.sum())
        c[-1] = 1.0
        return c

    def tenant_of(self, rid: int) -> TenantSpec:
        """The tenant of request ``rid`` — pure in ``(seed, rid)``."""
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(rid,))
        u = int(seq.generate_state(1, dtype=np.uint64)[0]) / _U64
        idx = int(np.searchsorted(self._cumulative_weights(), u,
                                  side="right"))
        return self.tenants[min(idx, len(self.tenants) - 1)]

    def assign(self, requests):
        """Label a request stream with tenants; order preserved.

        Vectorised over the stream but equivalent to calling
        :meth:`tenant_of` per request id — sub-streams of a split
        stream get the same labels as the whole.
        """
        cum = self._cumulative_weights()
        out = []
        for req in requests:
            seq = np.random.SeedSequence(entropy=self.seed,
                                         spawn_key=(req.rid,))
            u = int(seq.generate_state(1, dtype=np.uint64)[0]) / _U64
            idx = min(int(np.searchsorted(cum, u, side="right")),
                      len(self.tenants) - 1)
            spec = self.tenants[idx]
            out.append(replace(req, tenant=spec.name,
                               priority=spec.priority))
        return out


class TenantState:
    """Per-batcher live quota accounting.

    One instance per admission queue: ``pending[name]`` counts that
    tenant's requests currently waiting in this queue, and
    ``quota_slots[name]`` is the hard ceiling
    (``ceil(quota * queue_capacity)``, at least one slot so a tenant is
    never starved outright).  The batcher increments on admission and
    decrements when a batch departs; the invariant checker audits that
    ``pending`` never exceeds ``quota_slots`` (invariant
    ``tenant-quota``).
    """

    __slots__ = ("quota_slots", "pending")

    def __init__(self, tenancy: TenancyConfig, queue_capacity: int):
        self.quota_slots = {
            t.name: max(1, math.ceil(t.quota * queue_capacity))
            for t in tenancy.tenants
        }
        self.pending = {t.name: 0 for t in tenancy.tenants}


def tenant_summary(records, slo_s: float) -> dict:
    """Per-tenant accounting from the final request records.

    Pure function of the records: completed / shed (split by reason) /
    SLO violations / p99 per tenant, in tenant-name order.  Attached to
    a :class:`~repro.serve.stats.ServeReport` as ``report.tenants``
    only when tenancy is on, so default-path payloads are unchanged.
    """
    by_tenant: dict[str, list] = {}
    for rec in records:
        by_tenant.setdefault(rec.tenant or "-", []).append(rec)
    out = {}
    for name in sorted(by_tenant):
        recs = by_tenant[name]
        lat = sorted(r.latency for r in recs
                     if not r.shed and r.done is not None)
        sheds: dict[str, int] = {}
        for r in recs:
            if r.shed:
                reason = r.shed_reason or "capacity"
                sheds[reason] = sheds.get(reason, 0) + 1
        out[name] = {
            "priority": max((r.priority for r in recs), default=0),
            "offered": len(recs),
            "completed": len(lat),
            "shed": sum(sheds.values()),
            "shed_by_reason": dict(sorted(sheds.items())),
            "slo_violations": sum(1 for v in lat if v > slo_s),
            "p99_ms": (
                lat[min(len(lat) - 1, int(0.99 * len(lat)))] * 1e3
                if lat else None
            ),
        }
    return out


__all__ = ["TenantSpec", "TenancyConfig", "TenantState", "tenant_summary"]
