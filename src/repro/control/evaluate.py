"""Controller-on vs static: the per-scenario SLO-minutes matrix.

The controller's acceptance question is concrete: across fault
scenarios and drifting workloads, does closing the loop reduce "SLO
minutes violated" (the :class:`~repro.metrics.SLOMonitor` resilience
figure) relative to the static configuration it started from — and
does it ever make things *worse*?  :func:`control_matrix` answers it
cell by cell: every cell runs the same workload under the same
:class:`~repro.chaos.FaultPlan` twice, static knobs vs controller, on
fresh systems, and reports both figures plus the controller's action
accounting.

Scenario plans come from the chaos registry
(:data:`repro.chaos.scenarios.SCENARIOS`): a scenario's recipe is a
pure function of the fault-free horizon, so the *serving* stream is
perturbed by the same straggler/link/blackout timing faults the
training matrix uses (fault kinds serving never consults — worker
crashes — simply leave the cell fault-equivalent, and the assertion
``controller <= static`` still must hold).  The pseudo-scenario
``"none"`` covers fault-free drift/burst workloads.

Every cell is a pure function of its spec and fans out through
:mod:`repro.parallel` (run kind ``control_cell``), so the matrix is
byte-identical across ``--workers`` — the regression suite pins cells
of this matrix, including action counts.
"""

from __future__ import annotations

from dataclasses import replace

from repro.utils.errors import ConfigError

#: the named chaos scenarios every controller evaluation covers (the
#: seven core recipes, train- and serve-mode alike — their fault plans
#: all perturb a serving replay)
CORE_SCENARIOS = (
    "straggler",
    "link-degrade",
    "link-flap",
    "sampler-crash",
    "trainer-crash",
    "collective-drop",
    "cache-peer-loss",
)


def control_cell(
    system_name: str,
    config,
    scenario: str,
    controller,
    workload_config=None,
    requests: int = 64,
    qps: float = 2000.0,
    chaos_config=None,
    serve_config=None,
) -> dict:
    """One matrix cell: static vs controlled serving under one plan."""
    import numpy as np

    from repro.chaos.faults import FaultPlan
    from repro.chaos.runtime import ChaosConfig
    from repro.chaos.scenarios import SCENARIOS, _serve_pass
    from repro.core import build_system
    from repro.serve import ServeConfig, WorkloadConfig, make_workload

    if scenario != "none" and scenario not in SCENARIOS:
        raise ConfigError(
            f"unknown scenario {scenario!r}; known: "
            f"{['none', *sorted(SCENARIOS)]}"
        )
    cc = chaos_config if chaos_config is not None else ChaosConfig()
    serve_cfg = serve_config if serve_config is not None else ServeConfig()
    wl_cfg = (workload_config if workload_config is not None
              else WorkloadConfig(num_requests=requests, seed=config.seed))
    probe = build_system(system_name, config)
    workload = make_workload(wl_cfg, np.arange(probe.base_dataset.num_nodes))
    del probe

    base, _, base_slo, _ = _serve_pass(
        system_name, config, serve_cfg, workload, qps, cc, FaultPlan()
    )
    if scenario == "none":
        plan = FaultPlan()
        static_report, static_slo = base, base_slo
    else:
        plan = SCENARIOS[scenario].build(base.elapsed, config.total_gpus)
        static_report, _, static_slo, _ = _serve_pass(
            system_name, config, serve_cfg, workload, qps, cc, plan
        )
    ctl_cfg = replace(serve_cfg, controller=controller)
    ctl_report, _, ctl_slo, _ = _serve_pass(
        system_name, config, ctl_cfg, workload, qps, cc, plan
    )
    control = ctl_report.control or {}
    actions = sum(control.get("action_counts", {}).values())
    static_min = static_slo["slo_minutes_violated"]
    ctl_min = ctl_slo["slo_minutes_violated"]
    return {
        "system": system_name,
        "scenario": scenario,
        "arrival": wl_cfg.arrival,
        "drift_phases": wl_cfg.drift_phases,
        "qps": qps,
        "faults": plan.kind_counts(),
        "static_slo_minutes": static_min,
        "controller_slo_minutes": ctl_min,
        "improvement_minutes": static_min - ctl_min,
        "improved": ctl_min <= static_min,
        "static_p99_ms": static_report.p99 * 1e3,
        "controller_p99_ms": ctl_report.p99 * 1e3,
        "static_shed": static_report.shed,
        "controller_shed": ctl_report.shed,
        "actions": actions,
        "action_counts": control.get("action_counts", {}),
        "final_knobs": control.get("final", {}),
    }


def control_matrix(
    system_name: str,
    config,
    controller,
    scenarios=CORE_SCENARIOS,
    workload_configs=None,
    requests: int = 64,
    qps: float = 2000.0,
    chaos_config=None,
    serve_config=None,
    workers: int = 1,
) -> dict:
    """The full evaluation: scenarios × workloads, fanned out.

    ``workload_configs`` maps label -> :class:`WorkloadConfig`; None
    runs each scenario once under the default Poisson stream.  Returns
    a JSON-safe report with per-cell figures and an aggregate summary.
    """
    from repro.parallel import RunSpec, run_tasks
    from repro.serve import WorkloadConfig

    if workload_configs is None:
        workload_configs = {
            "poisson": WorkloadConfig(num_requests=requests,
                                      seed=config.seed)
        }
    specs = [
        RunSpec(
            kind="control_cell",
            label=f"{scenario}/{wl_label}",
            seed=config.seed,
            payload={
                "system": system_name,
                "config": config,
                "scenario": scenario,
                "controller": controller,
                "workload_config": wl_cfg,
                "requests": requests,
                "qps": qps,
                "chaos_config": chaos_config,
                "serve_config": serve_config,
            },
        )
        for scenario in scenarios
        for wl_label, wl_cfg in workload_configs.items()
    ]
    labels = [s.label for s in specs]
    results = run_tasks(specs, workers=workers)
    cells = dict(zip(labels, results))
    improved = sum(1 for c in results if c["improved"])
    return {
        "system": system_name,
        "qps": qps,
        "controller_interval_ms": (
            None if controller is None or controller.interval_s is None
            else controller.interval_s * 1e3
        ),
        "cells": cells,
        "summary": {
            "cells": len(results),
            "improved_or_equal": improved,
            "regressed": len(results) - improved,
            "total_static_minutes": sum(
                c["static_slo_minutes"] for c in results
            ),
            "total_controller_minutes": sum(
                c["controller_slo_minutes"] for c in results
            ),
            "total_actions": sum(c["actions"] for c in results),
        },
    }


def format_control_matrix(payload: dict) -> str:
    """Render a control matrix as a text table."""
    lines = [
        f"{'cell':<28} {'static SLOmin':>13} {'ctl SLOmin':>11} "
        f"{'delta':>9} {'actions':>7}  verdict"
    ]
    for label, c in payload["cells"].items():
        verdict = "ok" if c["improved"] else "REGRESSED"
        lines.append(
            f"{label:<28} {c['static_slo_minutes']:>13.4f} "
            f"{c['controller_slo_minutes']:>11.4f} "
            f"{c['improvement_minutes']:>9.4f} {c['actions']:>7}  {verdict}"
        )
    s = payload["summary"]
    lines.append(
        f"\n{s['cells']} cells: {s['improved_or_equal']} improved-or-equal, "
        f"{s['regressed']} regressed; "
        f"SLO minutes {s['total_static_minutes']:.4f} -> "
        f"{s['total_controller_minutes']:.4f} "
        f"({s['total_actions']} controller actions)"
    )
    return "\n".join(lines)


__all__ = ["CORE_SCENARIOS", "control_cell", "control_matrix",
           "format_control_matrix"]
