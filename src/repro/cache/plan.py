"""Feature-path plan caching: memoized placement plans per frontier block.

For a fixed cache store, everything :meth:`FeatureLoader.load` computes
besides the feature gather itself is a pure function of the pair
``(requesting gpu, request array)``: the deduplicated node list, the
local/remote/cold split and the per-holder remote-hit counts that seed
the all-to-all byte matrices.  Serving workloads repeat those inputs
constantly — Zipf-popular seeds produce the same frontier blocks batch
after batch, and every point of a QPS sweep replays the same workload
against a re-seeded sampler — so the plan can be cached and the
``unique``/``locate``/``bincount`` replanning skipped (the static-cache
planner idea of PaGraph/GNNLab, amortized across batches).

Keys are the *interned identity* of the frontier block: the raw little-
endian bytes of the int64 request array plus the requesting GPU.  Two
byte-identical requests share a plan; anything else misses.  The cache
is LRU-bounded both by entry count and by payload bytes so training
epochs (which rarely repeat a block) cannot grow it without bound.

The cached plan is exactly the data the un-cached path computes, so
loader outputs are bit-identical with the cache on or off — that
equivalence is part of the test suite (``tests/cache/test_plan_cache``).
Plans are only valid for the placement they were computed against: when
a loader's store is swapped (replica failover, topology change), the
loader calls :meth:`PlanCache.invalidate` so stale plans keyed to the
old layout can never be served (``tests/cache/test_plan_invalidation``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ConfigError

__all__ = ["FeaturePlan", "PlanCache"]


@dataclass(frozen=True)
class FeaturePlan:
    """Placement plan for one (gpu, frontier block) pair.

    Everything ``FeatureLoader.load`` needs except the feature rows:
    the deduplicated node ids, the hot/cold split counts and the
    remote-hit count per holder GPU (one row of the k x k byte-matrix
    skeleton).
    """

    nodes: np.ndarray  # deduplicated, sorted request ids
    n_local: int
    n_remote: int
    n_cold: int
    remote_row: np.ndarray  # remote hits per holder GPU [k], int64
    #: True where ``nodes`` is NOT local to the requesting GPU — the
    #: rows that travel a link and get the codec roundtrip.  Only
    #: computed (non-None) when the loader has a lossy codec attached.
    miss_mask: np.ndarray | None = None

    @property
    def nbytes(self) -> int:
        n = int(self.nodes.nbytes + self.remote_row.nbytes)
        if self.miss_mask is not None:
            n += int(self.miss_mask.nbytes)
        return n


class PlanCache:
    """LRU cache of :class:`FeaturePlan` keyed on frontier-block bytes."""

    def __init__(self, max_entries: int = 4096,
                 max_bytes: int = 64 * 1024 * 1024):
        if max_entries <= 0:
            raise ConfigError("max_entries must be positive")
        if max_bytes <= 0:
            raise ConfigError("max_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._plans: OrderedDict[tuple[int, bytes], FeaturePlan] = OrderedDict()
        self._costs: dict[tuple[int, bytes], int] = {}
        self._nbytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @staticmethod
    def key(gpu: int, request: np.ndarray) -> tuple[int, bytes]:
        """Interned identity of one frontier block: GPU + raw bytes."""
        return (gpu, request.tobytes())

    def lookup(self, key: tuple[int, bytes]) -> FeaturePlan | None:
        """The cached plan for ``key`` (touches LRU order), else None."""
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._plans.move_to_end(key)
        self.hits += 1
        return plan

    def store(self, key: tuple[int, bytes], plan: FeaturePlan) -> None:
        """Insert a freshly computed plan, evicting LRU entries to fit."""
        cost = plan.nbytes + len(key[1])
        if cost > self.max_bytes:
            return  # a single oversized block would evict everything
        if key in self._plans:  # duplicate insert: refresh in place
            del self._plans[key]
            self._nbytes -= self._costs.pop(key)
        self._plans[key] = plan
        self._costs[key] = cost
        self._nbytes += cost
        while (len(self._plans) > self.max_entries
               or self._nbytes > self.max_bytes):
            old_key, _ = self._plans.popitem(last=False)
            self._nbytes -= self._costs.pop(old_key)
            self.evictions += 1

    def clear(self) -> None:
        """Forget every plan (required after mutating the store)."""
        self._plans.clear()
        self._costs.clear()
        self._nbytes = 0

    def invalidate(self) -> None:
        """Placement changed: drop every plan and count the event.

        Called by :class:`~repro.cache.loader.FeatureLoader` whenever
        its store is rebound (replica failover, topology change) — a
        plan computed against the old layout would silently misroute
        the local/remote/cold split, so none may survive.  Counters
        other than ``invalidations`` are preserved: the cache keeps
        describing this run, it just starts cold again.
        """
        self.clear()
        self.invalidations += 1

    def reset(self) -> None:
        """Forget every plan AND zero the counters, returning the cache
        to its freshly-built state.  Used between serve runs so hit/miss
        accounting (and the metrics built on it) describes one run only,
        independent of which process previously used this cache."""
        self.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def stats(self) -> dict:
        """Counters for the obs layer: hits, misses, hit rate, size."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": len(self._plans),
            "nbytes": self._nbytes,
            "hit_rate": self.hits / total if total else 0.0,
        }

    def __len__(self) -> int:
        return len(self._plans)
