"""Access-frequency dynamic cache policy over a partitioned store.

The static :class:`~repro.cache.store.PartitionedCache` freezes its
resident set at layout time (degree-ordered by default).  Serving
traffic is Zipf *with drift*: the hot set being requested stops being
the hot set the cache holds, and the cold UVA path absorbs the
difference.  :class:`DynamicCachePolicy` closes that gap by observing
the loader's request stream and re-deciding residency online:

- **windowed EWMA scores** — each ``FeatureLoader.load`` call adds the
  (already deduplicated) requested node ids to a per-window request
  count with one vectorized indexed add; every ``window`` loads the
  window bincount folds into an exponential moving average and each
  GPU's patch re-selects its ``target`` highest-scoring nodes.  No
  per-request Python work anywhere.
- **partitioned semantics preserved** — promotion/demotion only moves
  nodes of a patch in and out of *that patch's* residency; ownership
  (``store.owner``) never changes and per-patch resident counts stay
  exactly at their planned budget, so memory accounting is unchanged.
- **workload-history warmup** — :meth:`warm` seeds the scores from a
  historical request trace and installs the resulting placement as the
  baseline that :meth:`reset` (used between sweep points) restores.
- **frontier prefetch** — ``load`` requests contain the sampled
  next-hop frontier, not just the seeds; requested-but-cold nodes
  whose score beats their patch's resident floor are staged into the
  cache *during the load* (bounded by ``prefetch_quota``), evicting an
  equal number of the patch's coldest residents.

Every promotion batch is reported back to the loader so it can charge
the cache-fill transfer (host -> GPU rows ride the cold path) and
invalidate its :class:`~repro.cache.plan.PlanCache` — plans encode the
local/remote/cold split of the *old* placement and must never be
served after a reshuffle.  Registered ``on_change`` callbacks (e.g.
the CSP's cached-node bias refresh) fire on the same batches.

Determinism: scores, tie-breaks (static hotness rank) and window
boundaries are pure functions of the observed request sequence, so a
serve run produces bit-identical placements whichever worker executes
it; :meth:`reset` returns the policy — and the shared store — to the
post-warmup state between runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.store import PartitionedCache
from repro.utils.errors import ConfigError

__all__ = ["DynamicCacheConfig", "DynamicCachePolicy"]


@dataclass(frozen=True)
class DynamicCacheConfig:
    """Knobs of the dynamic policy."""

    #: loader calls per promotion/demotion window
    window: int = 8
    #: EWMA weight of the newest window's request counts
    ewma: float = 0.5
    #: max promotions per patch per window rebalance (None = unbounded)
    max_moves: int | None = None
    #: max frontier-prefetch promotions per patch per load (0 = off)
    prefetch_quota: int = 32
    #: weight of the static-hotness prior the scores start from: node
    #: at rank r begins at ``prior * (n - r) / n``, so displacing a
    #: layout-time-hot resident takes observed evidence, not one touch.
    #: The prior decays with the EWMA — sustained traffic always wins.
    prior: float = 1.0
    #: rebalance hysteresis: a swap happens only when the challenger's
    #: score beats the evicted resident's by this margin.  Kills the
    #: boundary churn of near-equal scores trading places every window
    #: (each swap costs a real host->GPU fill transfer).
    hysteresis: float = 0.25

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigError("window must be >= 1")
        if not 0.0 < self.ewma <= 1.0:
            raise ConfigError("ewma must be in (0, 1]")
        if self.max_moves is not None and self.max_moves < 0:
            raise ConfigError("max_moves must be non-negative")
        if self.prefetch_quota < 0:
            raise ConfigError("prefetch_quota must be non-negative")
        if self.prior < 0:
            raise ConfigError("prior must be non-negative")
        if self.hysteresis < 0:
            raise ConfigError("hysteresis must be non-negative")


class DynamicCachePolicy:
    """Online promotion/demotion driver for one :class:`PartitionedCache`.

    The policy *mutates the store in place* (``store.cached``); every
    consumer of the store — loader plans, CSP cache bias — is notified
    through the loader's plan invalidation and the ``on_change``
    callback list.
    """

    def __init__(
        self,
        store: PartitionedCache,
        config: DynamicCacheConfig | None = None,
        on_change=(),
    ):
        if not isinstance(store, PartitionedCache):
            raise ConfigError(
                "dynamic caching needs a PartitionedCache (per-patch "
                f"residency); got {type(store).__name__}"
            )
        self.store = store
        self.config = config if config is not None else DynamicCacheConfig()
        #: callbacks fired after every placement-changing batch
        self.on_change = list(on_change)

        offsets = store.part_offsets
        num_nodes = int(offsets[-1])
        self.num_nodes = num_nodes
        self.num_gpus = store.num_gpus
        #: static hotness rank (tie-break: equal scores keep the
        #: layout-time order, so an idle policy never churns)
        self._rank = store.rank
        #: EWMA of per-window request counts, one score per node,
        #: seeded with the decaying static-hotness prior (its ordering
        #: equals the layout's, so an untouched policy never moves rows)
        self.score = (
            self.config.prior
            * (num_nodes - self._rank.astype(np.float64)) / max(num_nodes, 1)
        )
        #: current window's request counts
        self.counts = np.zeros(num_nodes, dtype=np.float64)
        #: doorkeeper for prefetch admission: a node must have been
        #: requested before (any earlier load or the warmup) to be
        #: staged, so one-off frontier nodes never churn the cache
        self._seen = np.zeros(num_nodes, dtype=bool)
        #: per-patch resident target = the planned residency, exactly
        self._targets = np.array(
            [len(store.cached_nodes(g)) for g in range(self.num_gpus)],
            dtype=np.int64,
        )
        #: per-patch score floor: min score among residents (prefetch
        #: admits only strictly-hotter cold nodes)
        self._floor = np.zeros(self.num_gpus, dtype=np.float64)
        self._loads = 0
        self.promotions = 0
        self.demotions = 0
        self.rebalances = 0
        self.prefetches = 0
        #: per-load deltas, read by the loader after each observe()
        self.last_promoted = 0
        self.last_demoted = 0
        self._recompute_floors()
        #: the state reset() restores (re-snapshotted by warm())
        self._baseline_cached = store.cached.copy()
        self._baseline_score = self.score.copy()
        self._baseline_floor = self._floor.copy()
        self._baseline_seen = self._seen.copy()

    def _recompute_floors(self) -> None:
        offsets = self.store.part_offsets
        for g in range(self.num_gpus):
            lo, hi = int(offsets[g]), int(offsets[g + 1])
            resident = self.store.cached[lo:hi]
            s = self.score[lo:hi]
            self._floor[g] = float(s[resident].min()) if resident.any() else 0.0

    # ------------------------------------------------------------------
    def warm(self, nodes: np.ndarray, weight: float = 1.0) -> int:
        """Seed scores from a historical request trace and rebalance.

        ``nodes`` is a node-id sequence (repeats count); the resulting
        placement becomes the baseline that :meth:`reset` restores, and
        the run counters start from zero — warmup is an offline staging
        step, not part of the serving run it precedes.  Returns the
        number of rows promoted into the cache.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(nodes) and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise ConfigError("warmup node id out of range")
        self.score += weight * np.bincount(nodes, minlength=self.num_nodes)
        self._seen[nodes] = True
        fill = np.zeros(self.num_gpus, dtype=np.float64)
        changed = self._rebalance(fill)
        self._baseline_cached = self.store.cached.copy()
        self._baseline_score = self.score.copy()
        self._baseline_floor = self._floor.copy()
        self._baseline_seen = self._seen.copy()
        promoted = int(fill.sum())
        self._zero_counters()
        if changed:
            self._notify()
        return promoted

    def reset(self) -> None:
        """Return policy + store to the post-warmup baseline (between
        sweep points, so each point is a pure function of its inputs)."""
        changed = bool(np.any(self.store.cached != self._baseline_cached))
        self.store.cached[:] = self._baseline_cached
        self.score[:] = self._baseline_score
        self._floor[:] = self._baseline_floor
        self._seen[:] = self._baseline_seen
        self.counts[:] = 0.0
        self._zero_counters()
        if changed:
            self._notify()

    def _zero_counters(self) -> None:
        self._loads = 0
        self.promotions = self.demotions = 0
        self.rebalances = self.prefetches = 0
        self.last_promoted = self.last_demoted = 0

    def _notify(self) -> None:
        for cb in self.on_change:
            cb()

    # ------------------------------------------------------------------
    def observe(self, nodes_per_gpu) -> np.ndarray:
        """Record one load's (deduplicated, per-GPU) request arrays.

        Returns the per-patch count of rows promoted *by this load*
        (frontier prefetch + any window rebalance) — the loader charges
        them as a host->GPU cache-fill transfer.  Fires ``on_change``
        callbacks when the placement changed; the caller is responsible
        for its own plan-cache invalidation (it knows its cache).
        """
        cfg = self.config
        counts = self.counts
        for nodes in nodes_per_gpu:
            counts[nodes] += 1.0
        fill = np.zeros(self.num_gpus, dtype=np.float64)
        p0, d0 = self.promotions, self.demotions
        changed = False
        if cfg.prefetch_quota > 0:
            changed |= self._prefetch(nodes_per_gpu, fill)
        for nodes in nodes_per_gpu:
            self._seen[nodes] = True
        self._loads += 1
        if self._loads % cfg.window == 0:
            changed |= self._rebalance(fill)
        self.last_promoted = self.promotions - p0
        self.last_demoted = self.demotions - d0
        if changed:
            self._notify()
        return fill

    @property
    def placement_changed(self) -> bool:
        """Whether the most recent observe()/warm()/reset() moved rows."""
        return self.last_promoted > 0 or self.last_demoted > 0

    # ------------------------------------------------------------------
    def _rebalance(self, fill: np.ndarray) -> bool:
        """Fold the window into the EWMA and re-select each patch's
        residents.  Vectorized per patch; returns True on any move."""
        cfg = self.config
        a = cfg.ewma
        np.multiply(self.score, 1.0 - a, out=self.score)
        self.score += a * self.counts
        self.counts[:] = 0.0
        self.rebalances += 1
        offsets = self.store.part_offsets
        cached = self.store.cached
        moved = 0
        demoted = 0
        for g in range(self.num_gpus):
            lo, hi = int(offsets[g]), int(offsets[g + 1])
            target = int(self._targets[g])
            if target <= 0 or hi <= lo:
                continue
            s = self.score[lo:hi]
            # primary key: score descending; secondary: static rank —
            # lexsort sorts by the LAST key first
            order = np.lexsort((self._rank[lo:hi], -s))
            want = order[:target]
            cur = cached[lo:hi]
            cand = want[~cur[want]]  # challengers, hottest first
            if cfg.max_moves is not None and len(cand) > cfg.max_moves:
                cand = cand[: cfg.max_moves]
            # free slots (underfull cache) are filled unconditionally;
            # swaps pair challenger i with the i-th coldest resident
            # and must clear the hysteresis margin
            free = max(target - int(cur.sum()), 0)
            take_free = min(free, len(cand))
            rest = order[target:]
            victims = rest[cur[rest]][::-1]  # coldest resident first
            swaps = cand[take_free:]
            n = min(len(swaps), len(victims))
            if n:
                viol = np.flatnonzero(
                    s[swaps[:n]] <= s[victims[:n]] + cfg.hysteresis
                )
                n = int(viol[0]) if len(viol) else n
            promote = cand[: take_free + n]
            demote = victims[:n]
            if len(promote):
                cur[promote] = True
                cur[demote] = False
                moved += len(promote)
                demoted += len(demote)
                fill[g] += len(promote)
            resident = cached[lo:hi]
            self._floor[g] = float(s[resident].min()) if resident.any() else 0.0
        if moved or demoted:
            self.promotions += moved
            self.demotions += demoted
            return True
        return False

    def _prefetch(self, nodes_per_gpu, fill: np.ndarray) -> bool:
        """Stage requested-but-cold nodes whose effective score already
        beats their patch's resident floor (bounded per patch)."""
        store = self.store
        cand = (
            np.concatenate(nodes_per_gpu)
            if len(nodes_per_gpu) > 1
            else np.asarray(nodes_per_gpu[0])
        )
        cand = cand[~store.cached[cand]]
        # doorkeeper: only nodes requested in an *earlier* load (or the
        # warmup) are admitted — a first touch never evicts anything
        cand = cand[self._seen[cand]]
        if len(cand) == 0:
            return False
        eff = self.score[cand] + self.counts[cand]
        owners = store.owner[cand]
        hot = eff > self._floor[owners]
        cand = cand[hot]
        if len(cand) == 0:
            return False
        cand = np.unique(cand)  # a node requested by several GPUs stages once
        eff = self.score[cand] + self.counts[cand]
        owners = store.owner[cand]
        offsets = store.part_offsets
        cached = store.cached
        quota = self.config.prefetch_quota
        moved = demoted = 0
        for g in np.unique(owners):
            sel = owners == g
            ids = cand[sel]
            e = eff[sel]
            order = np.lexsort((self._rank[ids], -e))
            ids, e = ids[order][:quota], e[order][:quota]
            lo, hi = int(offsets[g]), int(offsets[g + 1])
            resident = np.flatnonzero(cached[lo:hi])
            if len(resident) == 0:
                continue
            r_eff = self.score[lo:hi][resident] + self.counts[lo:hi][resident]
            # coldest residents first; static rank breaks ties (higher
            # rank value = colder at layout time, evicted first)
            r_order = np.lexsort((-self._rank[lo:hi][resident], r_eff))
            victims = resident[r_order]
            take = min(len(ids), len(victims))
            # admit only while the candidate beats its victim by the
            # hysteresis margin
            viol = np.flatnonzero(
                e[:take] <= r_eff[r_order[:take]] + self.config.hysteresis
            )
            if len(viol):
                take = int(viol[0])
            if take == 0:
                continue
            cached[ids[:take]] = True
            cached[lo + victims[:take]] = False
            floor_res = np.flatnonzero(cached[lo:hi])
            s = self.score[lo:hi]
            self._floor[g] = (
                float(s[floor_res].min()) if len(floor_res) else 0.0
            )
            moved += take
            demoted += take
            fill[g] += take
        if moved:
            self.promotions += moved
            self.demotions += demoted
            self.prefetches += moved
            return True
        return False

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters for the obs layer and the perf benchmarks."""
        return {
            "promotions": self.promotions,
            "demotions": self.demotions,
            "rebalances": self.rebalances,
            "prefetches": self.prefetches,
            "loads": self._loads,
        }
