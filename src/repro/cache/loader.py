"""Per-mini-batch feature loading (paper §3.2, "Loader"; §6).

For each GPU's graph sample the loader fetches the feature vectors of
every requested node, after deduplication.  Three service paths:

- **local** — cached on the requesting GPU: a device gather kernel;
- **remote hot** — cached on another GPU: a position request
  all-to-all (ids out) followed by a feature all-to-all back, all over
  NVLink, possibly multi-hop;
- **cold** — host memory via UVA, paying read amplification.

The hot (NVLink) and cold (PCIe) paths run concurrently since they use
different links (§3.2), expressed as a
:class:`~repro.sampling.ops.ParallelGroup` in the trace.

:class:`HostGatherLoader` is the CPU-system baseline (PyG/DGL-CPU):
the host gathers rows into a staging buffer and DMA-copies it to the
GPU.
"""

from __future__ import annotations

import numpy as np

from repro.cache.plan import FeaturePlan, PlanCache
from repro.cache.store import CacheStore, Placement
from repro.sampling.ops import (
    AllToAll,
    HostWork,
    LocalKernel,
    OpTrace,
    ParallelGroup,
    PCIeCopy,
    UVAGather,
)
from repro.utils.errors import ConfigError

ID_BYTES = 8


class FeatureLoader:
    """GPU-side loader over a cache store.

    ``plan_cache`` (on by default) memoizes the placement plan — dedup,
    local/remote/cold split and the per-holder byte-matrix rows — per
    ``(gpu, request-bytes)`` frontier block, so serving batches that
    repeat a block skip the ``unique``/``locate``/``bincount``
    replanning entirely (see :mod:`repro.cache.plan`).  Outputs are
    bit-identical with the cache on or off.  Pass ``plan_cache=None``
    to disable, or a pre-built :class:`PlanCache` to share/bound one.
    """

    def __init__(self, features: np.ndarray, store: CacheStore,
                 plan_cache: PlanCache | bool | None = True,
                 codec=None, dynamic=None):
        if features.ndim != 2:
            raise ConfigError("features must be [num_nodes, dim]")
        from repro.cache.codec import get_codec

        self.features = features
        self.store = store
        self.feature_dim = features.shape[1]
        self.row_bytes = self.feature_dim * features.dtype.itemsize
        #: optional :class:`~repro.cache.codec.FeatureCodec` — non-local
        #: rows travel compressed (fewer UVA / NVLink / NIC bytes) and
        #: pay a decode kernel + quantization roundtrip on arrival.
        #: ``None`` (and the fp32 codec) is the exact identity path.
        self.codec = get_codec(codec)
        self.wire_row_bytes = (
            self.codec.wire_row_bytes(self.feature_dim)
            if self.codec is not None else self.row_bytes
        )
        #: optional :class:`~repro.cache.dynamic.DynamicCachePolicy`;
        #: when attached, every load feeds the request stream to it and
        #: placement changes invalidate the plan cache below
        self.dynamic = dynamic
        #: running per-path totals across load() calls (monotonic; the
        #: perf benchmarks snapshot deltas around a serve run)
        self.totals = {"local": 0, "remote": 0, "cold": 0,
                       "cold_bytes": 0.0, "fill": 0}
        if plan_cache is True:
            plan_cache = PlanCache()
        elif plan_cache is False:
            plan_cache = None
        self.plan_cache: PlanCache | None = plan_cache
        #: the store the cached plans were computed against; plans are
        #: placement-specific, so swapping the store invalidates them
        self._planned_store = store

    def rebind_store(self, store: CacheStore) -> None:
        """Point the loader at a different store (replica failover /
        placement change), invalidating every cached plan."""
        self.store = store
        self._check_placement()

    def _check_placement(self) -> None:
        """Invalidate plans if the store was swapped out from under the
        cache — keyed plans encode the *old* layout's local/remote/cold
        split and must never be served against the new one."""
        if self.store is not self._planned_store:
            if self.plan_cache is not None:
                self.plan_cache.invalidate()
            self._planned_store = self.store

    def _plan(self, g: int, req: np.ndarray, k: int) -> FeaturePlan:
        """The placement plan for one request block, cached when the
        same block bytes were planned before."""
        cache = self.plan_cache
        key = None
        if cache is not None:
            key = PlanCache.key(g, req)
            plan = cache.lookup(key)
            if plan is not None:
                return plan
        nodes = np.unique(req)  # dedup (§3.2)
        loc = self.store.locate(nodes, g)
        n_local = loc.count(Placement.LOCAL)
        n_remote = loc.count(Placement.REMOTE)
        n_cold = loc.count(Placement.COLD)
        if n_remote:
            holders = loc.holder[loc.placement == Placement.REMOTE]
            remote_row = np.bincount(holders, minlength=k)
        else:
            remote_row = np.zeros(k, dtype=np.int64)
        miss_mask = (
            loc.placement != Placement.LOCAL if self.codec is not None
            else None
        )
        plan = FeaturePlan(nodes, n_local, n_remote, n_cold, remote_row,
                           miss_mask)
        if cache is not None:
            cache.store(key, plan)
        return plan

    def load(
        self, requests_per_gpu: list[np.ndarray]
    ) -> tuple[list[np.ndarray], OpTrace, dict]:
        """Fetch features for each GPU's request list.

        Returns per-GPU feature matrices (functionally exact), the op
        trace, and hit-statistics
        ``{"local": n, "remote": n, "cold": n}`` plus the payload bytes
        each path served (``*_bytes`` keys; the obs layer exports them
        as cache counters).
        """
        self._check_placement()
        k = self.store.num_gpus
        if len(requests_per_gpu) != k:
            raise ConfigError("need one request array per GPU")

        out: list[np.ndarray] = []
        local_bytes = np.zeros(k, dtype=np.float64)
        decode_bytes = np.zeros(k, dtype=np.float64)
        cold_items = np.zeros(k, dtype=np.float64)
        remote_rows = np.zeros((k, k), dtype=np.int64)
        stats = {"local": 0, "remote": 0, "cold": 0}
        codec = self.codec
        plans: list[FeaturePlan] = []

        for g, req in enumerate(requests_per_gpu):
            req = np.ascontiguousarray(np.asarray(req, dtype=np.int64))
            plan = self._plan(g, req, k)
            plans.append(plan)
            rows = self.features[plan.nodes]
            if codec is not None and plan.miss_mask is not None \
                    and plan.miss_mask.any():
                # fancy indexing above copied, so in-place is safe
                rows[plan.miss_mask] = codec.apply(rows[plan.miss_mask])
                decode_bytes[g] = (
                    (plan.n_remote + plan.n_cold) * self.row_bytes
                )
            out.append(rows)
            stats["local"] += plan.n_local
            stats["remote"] += plan.n_remote
            stats["cold"] += plan.n_cold
            local_bytes[g] = plan.n_local * self.row_bytes
            cold_items[g] = plan.n_cold
            remote_rows[g] = plan.remote_row

        remote_counts = remote_rows.astype(np.float64)
        pos_req = remote_counts * ID_BYTES
        feat_resp = remote_counts.T * self.wire_row_bytes

        hot_branch = [
            AllToAll(pos_req, label="feat-pos-req"),
            AllToAll(feat_resp, label="feat-hot"),
            LocalKernel("gather", local_bytes, label="feat-local"),
        ]
        cold_branch = [
            UVAGather(cold_items, item_bytes=self.wire_row_bytes,
                      label="feat-cold")
        ]
        if self.dynamic is not None:
            # feed the (deduplicated) request stream to the dynamic
            # policy; promoted rows are staged host -> GPU on the cold
            # path, and a placement change makes every cached plan stale
            fill = self.dynamic.observe([p.nodes for p in plans])
            if self.dynamic.placement_changed and self.plan_cache is not None:
                self.plan_cache.invalidate()
            if fill.any():
                # staged rows ride the same (possibly compressed) wire
                # format as any other host -> GPU feature transfer
                cold_branch.append(
                    UVAGather(fill, item_bytes=self.wire_row_bytes,
                              label="cache-fill")
                )
                self.totals["fill"] += int(fill.sum())
        trace = OpTrace()
        trace.add(
            ParallelGroup(branches=(tuple(hot_branch), tuple(cold_branch)),
                          label="feature-load")
        )
        if codec is not None and decode_bytes.any():
            trace.add(
                LocalKernel("decode", decode_bytes, label="feat-decode")
            )
        stats["local_bytes"] = stats["local"] * self.row_bytes
        stats["remote_bytes"] = stats["remote"] * self.wire_row_bytes
        stats["cold_bytes"] = stats["cold"] * self.wire_row_bytes
        if self.dynamic is not None:
            stats["dynamic"] = {
                "promoted": self.dynamic.last_promoted,
                "demoted": self.dynamic.last_demoted,
            }
        totals = self.totals
        totals["local"] += stats["local"]
        totals["remote"] += stats["remote"]
        totals["cold"] += stats["cold"]
        totals["cold_bytes"] += stats["cold_bytes"]
        return out, trace, stats


class HostGatherLoader:
    """CPU-resident features: host gather + bulk H2D copy (PyG/DGL-CPU)."""

    def __init__(self, features: np.ndarray, num_gpus: int):
        if features.ndim != 2:
            raise ConfigError("features must be [num_nodes, dim]")
        if num_gpus <= 0:
            raise ConfigError("need at least one GPU")
        self.features = features
        self.num_gpus = num_gpus
        self.row_bytes = features.shape[1] * features.dtype.itemsize

    def load(
        self, requests_per_gpu: list[np.ndarray]
    ) -> tuple[list[np.ndarray], OpTrace, dict]:
        """Host-gather + bulk-copy features for each GPU's request list."""
        if len(requests_per_gpu) != self.num_gpus:
            raise ConfigError("need one request array per GPU")
        out, nbytes = [], np.zeros(self.num_gpus, dtype=np.float64)
        total = 0
        for g, req in enumerate(requests_per_gpu):
            nodes = np.unique(np.asarray(req, dtype=np.int64))
            out.append(self.features[nodes])
            nbytes[g] = len(nodes) * self.row_bytes
            total += len(nodes)
        trace = OpTrace()
        trace.add(HostWork(nbytes.copy(), kind="gather", label="feat-host-gather"))
        trace.add(PCIeCopy(nbytes, to_device=True, label="feat-h2d"))
        return out, trace, {"local": 0, "remote": 0, "cold": total,
                            "local_bytes": 0, "remote_bytes": 0,
                            "cold_bytes": total * self.row_bytes}
