"""Per-mini-batch feature loading (paper §3.2, "Loader"; §6).

For each GPU's graph sample the loader fetches the feature vectors of
every requested node, after deduplication.  Three service paths:

- **local** — cached on the requesting GPU: a device gather kernel;
- **remote hot** — cached on another GPU: a position request
  all-to-all (ids out) followed by a feature all-to-all back, all over
  NVLink, possibly multi-hop;
- **cold** — host memory via UVA, paying read amplification.

The hot (NVLink) and cold (PCIe) paths run concurrently since they use
different links (§3.2), expressed as a
:class:`~repro.sampling.ops.ParallelGroup` in the trace.

:class:`HostGatherLoader` is the CPU-system baseline (PyG/DGL-CPU):
the host gathers rows into a staging buffer and DMA-copies it to the
GPU.
"""

from __future__ import annotations

import numpy as np

from repro.cache.store import CacheStore, Placement
from repro.sampling.ops import (
    AllToAll,
    HostWork,
    LocalKernel,
    OpTrace,
    ParallelGroup,
    PCIeCopy,
    UVAGather,
)
from repro.utils.errors import ConfigError

ID_BYTES = 8


class FeatureLoader:
    """GPU-side loader over a cache store."""

    def __init__(self, features: np.ndarray, store: CacheStore):
        if features.ndim != 2:
            raise ConfigError("features must be [num_nodes, dim]")
        self.features = features
        self.store = store
        self.feature_dim = features.shape[1]
        self.row_bytes = self.feature_dim * features.dtype.itemsize

    def load(
        self, requests_per_gpu: list[np.ndarray]
    ) -> tuple[list[np.ndarray], OpTrace, dict]:
        """Fetch features for each GPU's request list.

        Returns per-GPU feature matrices (functionally exact), the op
        trace, and hit-statistics
        ``{"local": n, "remote": n, "cold": n}`` plus the payload bytes
        each path served (``*_bytes`` keys; the obs layer exports them
        as cache counters).
        """
        k = self.store.num_gpus
        if len(requests_per_gpu) != k:
            raise ConfigError("need one request array per GPU")

        out: list[np.ndarray] = []
        local_bytes = np.zeros(k, dtype=np.float64)
        cold_items = np.zeros(k, dtype=np.float64)
        stats = {"local": 0, "remote": 0, "cold": 0}

        # (origin, holder) pair codes of every remote hit, across GPUs —
        # one bincount at the end replaces the per-holder Python loop
        remote_codes: list[np.ndarray] = []
        for g, req in enumerate(requests_per_gpu):
            nodes = np.unique(np.asarray(req, dtype=np.int64))  # dedup (§3.2)
            out.append(self.features[nodes])
            loc = self.store.locate(nodes, g)
            n_local = loc.count(Placement.LOCAL)
            n_remote = loc.count(Placement.REMOTE)
            n_cold = loc.count(Placement.COLD)
            stats["local"] += n_local
            stats["remote"] += n_remote
            stats["cold"] += n_cold

            local_bytes[g] = n_local * self.row_bytes
            cold_items[g] = n_cold
            if n_remote:
                holders = loc.holder[loc.placement == Placement.REMOTE]
                remote_codes.append(g * k + holders)

        remote_counts = np.bincount(
            np.concatenate(remote_codes) if remote_codes
            else np.empty(0, np.int64),
            minlength=k * k,
        ).reshape(k, k).astype(np.float64)
        pos_req = remote_counts * ID_BYTES
        feat_resp = remote_counts.T * self.row_bytes

        hot_branch = [
            AllToAll(pos_req, label="feat-pos-req"),
            AllToAll(feat_resp, label="feat-hot"),
            LocalKernel("gather", local_bytes, label="feat-local"),
        ]
        cold_branch = [
            UVAGather(cold_items, item_bytes=self.row_bytes, label="feat-cold")
        ]
        trace = OpTrace()
        trace.add(
            ParallelGroup(branches=(tuple(hot_branch), tuple(cold_branch)),
                          label="feature-load")
        )
        stats["local_bytes"] = stats["local"] * self.row_bytes
        stats["remote_bytes"] = stats["remote"] * self.row_bytes
        stats["cold_bytes"] = stats["cold"] * self.row_bytes
        return out, trace, stats


class HostGatherLoader:
    """CPU-resident features: host gather + bulk H2D copy (PyG/DGL-CPU)."""

    def __init__(self, features: np.ndarray, num_gpus: int):
        if features.ndim != 2:
            raise ConfigError("features must be [num_nodes, dim]")
        if num_gpus <= 0:
            raise ConfigError("need at least one GPU")
        self.features = features
        self.num_gpus = num_gpus
        self.row_bytes = features.shape[1] * features.dtype.itemsize

    def load(
        self, requests_per_gpu: list[np.ndarray]
    ) -> tuple[list[np.ndarray], OpTrace, dict]:
        """Host-gather + bulk-copy features for each GPU's request list."""
        if len(requests_per_gpu) != self.num_gpus:
            raise ConfigError("need one request array per GPU")
        out, nbytes = [], np.zeros(self.num_gpus, dtype=np.float64)
        total = 0
        for g, req in enumerate(requests_per_gpu):
            nodes = np.unique(np.asarray(req, dtype=np.int64))
            out.append(self.features[nodes])
            nbytes[g] = len(nodes) * self.row_bytes
            total += len(nodes)
        trace = OpTrace()
        trace.add(HostWork(nbytes.copy(), kind="gather", label="feat-host-gather"))
        trace.add(PCIeCopy(nbytes, to_device=True, label="feat-h2d"))
        return out, trace, {"local": 0, "remote": 0, "cold": total,
                            "local_bytes": 0, "remote_bytes": 0,
                            "cold_bytes": total * self.row_bytes}
