"""Feature caching and loading.

Node feature vectors dominate the data volume of GNN training (Table 3:
up to 67 GB), so where they live decides the epoch time.  This package
implements the placement policies the paper compares:

- :class:`~repro.cache.store.PartitionedCache` — DSP's design (§3.1):
  every GPU caches a *different* set of hot vectors (the hottest nodes
  of its own graph patch), so the aggregate NVLink-reachable cache is
  ``num_gpus`` times larger than any single GPU's budget.
- :class:`~repro.cache.store.ReplicatedCache` — Quiver's design: all
  GPUs cache the same globally hottest vectors; hits are local but the
  aggregate cache is only one GPU's budget.
- :class:`~repro.cache.store.NoCache` — DGL-UVA: everything in host
  memory, fetched via UVA.

Hot-node ranking criteria (§2, "Feature caching"): in-degree (DSP's
default), PageRank, reverse PageRank, plus a random control.

:class:`~repro.cache.loader.FeatureLoader` performs the per-mini-batch
fetch: deduplicate requests, serve cached vectors with an NVLink
all-to-all (or local gather), serve cold vectors via UVA, and run the
two paths in parallel since they use different links (§3.2).

Two opt-in layers ride on top (``docs/caching.md``):

- :class:`~repro.cache.dynamic.DynamicCachePolicy` — access-frequency
  promotion/demotion of the partitioned cache (EWMA over window
  request counts, workload-history warmup, frontier prefetch);
- :mod:`repro.cache.codec` — cold-path feature compression: non-local
  rows travel fp16/int8-compressed and decode on arrival.
"""

from repro.cache.codec import CODECS, FeatureCodec, get_codec
from repro.cache.dynamic import DynamicCacheConfig, DynamicCachePolicy
from repro.cache.policies import (
    HOT_POLICIES,
    rank_by_degree,
    rank_by_pagerank,
    rank_by_reverse_pagerank,
    rank_random,
)
from repro.cache.store import (
    CacheStore,
    NoCache,
    PartitionedCache,
    ReplicatedCache,
)
from repro.cache.loader import FeatureLoader, HostGatherLoader
from repro.cache.plan import FeaturePlan, PlanCache

__all__ = [
    "CODECS",
    "DynamicCacheConfig",
    "DynamicCachePolicy",
    "FeatureCodec",
    "get_codec",
    "FeaturePlan",
    "PlanCache",
    "HOT_POLICIES",
    "rank_by_degree",
    "rank_by_pagerank",
    "rank_by_reverse_pagerank",
    "rank_random",
    "CacheStore",
    "NoCache",
    "PartitionedCache",
    "ReplicatedCache",
    "FeatureLoader",
    "HostGatherLoader",
]
