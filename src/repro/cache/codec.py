"""Cold-path feature compression codecs (FastSample-style).

A codec changes how many bytes a feature row occupies **on the wire**
when it leaves its home — the UVA cold path (host -> GPU over PCIe)
and the remote hot path (peer GPU over NVLink, which the cluster
lowering further splits into NVLink + NIC legs).  Locally cached rows
are served at full precision and cost nothing extra, so the codec is a
pure transfer optimization: the loader prices non-local rows at
``wire_row_bytes`` instead of the raw ``dim * itemsize`` and charges a
decode kernel for expanding them back on the requesting GPU.

Codecs are *functional*, not just accounting: ``apply`` performs the
quantize -> dequantize roundtrip on the rows that travelled, so the
features a model trains/serves on reflect the precision actually paid
for.  ``fp32`` (the default, also spelled ``"none"``) is the exact
identity — with it the loader output is bit-identical to a loader
built before codecs existed.

Two lossy codecs are provided:

- ``fp16`` — IEEE half precision, 2 bytes/element;
- ``int8`` — per-row affine quantization: 1 byte/element plus an
  8-byte per-row header (float32 scale + offset), the usual GNN
  feature-compression scheme.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ConfigError

__all__ = ["FeatureCodec", "CODECS", "get_codec"]


class FeatureCodec:
    """Interface: wire-size model + functional quantization roundtrip."""

    #: codec name as accepted by :func:`get_codec` / ``--compress``
    name: str = "fp32"
    #: wire bytes per feature element
    bytes_per_elem: float = 4.0
    #: fixed per-row header bytes (quantization scale/offset)
    header_bytes: int = 0
    #: whether ``apply`` changes values
    lossy: bool = False

    def wire_row_bytes(self, feature_dim: int) -> float:
        """Bytes one compressed row occupies on a link."""
        return feature_dim * self.bytes_per_elem + self.header_bytes

    def apply(self, rows: np.ndarray) -> np.ndarray:
        """Quantize -> dequantize roundtrip (identity when lossless)."""
        return rows


class Fp32Codec(FeatureCodec):
    """The identity codec: full-precision rows, no transformation."""


class Fp16Codec(FeatureCodec):
    """IEEE half precision on the wire, decoded back to the input dtype."""

    name = "fp16"
    bytes_per_elem = 2.0
    lossy = True

    def apply(self, rows: np.ndarray) -> np.ndarray:
        return rows.astype(np.float16).astype(rows.dtype)


class Int8Codec(FeatureCodec):
    """Per-row affine int8 quantization (scale + offset header).

    Each row is mapped to ``round((x - min) / scale)`` with
    ``scale = (max - min) / 255``; constant rows quantize exactly.
    """

    name = "int8"
    bytes_per_elem = 1.0
    header_bytes = 8  # float32 scale + float32 offset per row

    lossy = True

    def apply(self, rows: np.ndarray) -> np.ndarray:
        if rows.size == 0:
            return rows
        x = rows.astype(np.float64, copy=False)
        lo = x.min(axis=1, keepdims=True)
        hi = x.max(axis=1, keepdims=True)
        scale = (hi - lo) / 255.0
        safe = np.where(scale > 0, scale, 1.0)
        q = np.rint((x - lo) / safe)
        return (lo + q * np.where(scale > 0, scale, 0.0)).astype(
            rows.dtype, copy=False
        )


CODECS = {
    "none": Fp32Codec,
    "fp32": Fp32Codec,
    "fp16": Fp16Codec,
    "int8": Int8Codec,
}


def get_codec(name: "str | FeatureCodec | None") -> FeatureCodec | None:
    """Resolve a codec spec: ``None``/``"none"``/``"fp32"`` -> ``None``
    (the exact identity path, no codec object in the loader at all);
    a codec instance passes through; otherwise look the name up."""
    if name is None:
        return None
    if isinstance(name, FeatureCodec):
        return name if name.lossy else None
    try:
        cls = CODECS[name]
    except KeyError:
        raise ConfigError(
            f"unknown feature codec {name!r}; available: {sorted(CODECS)}"
        ) from None
    codec = cls()
    return codec if codec.lossy else None
