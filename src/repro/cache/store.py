"""Cache stores: who holds which feature vector.

A store answers one vectorized query, :meth:`CacheStore.locate`: for a
batch of node ids and a requesting GPU, classify each id as

- ``LOCAL``  — cached on the requesting GPU itself,
- ``REMOTE`` — cached on another GPU (reachable over NVLink; the store
  also reports which GPU), or
- ``COLD``   — only in host memory (UVA over PCIe).

The classification is exactly the paper's per-GPU *feature position
list* (§6), just batched.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.utils.errors import ConfigError


class Placement(IntEnum):
    LOCAL = 0
    REMOTE = 1
    COLD = 2


@dataclass(frozen=True)
class Location:
    """Vectorized placement answer for one request batch."""

    placement: np.ndarray  # Placement[num_requested]
    holder: np.ndarray  # gpu id for LOCAL/REMOTE entries, -1 for COLD

    def count(self, p: Placement) -> int:
        return int(np.count_nonzero(self.placement == p))


class CacheStore:
    """Interface: subclasses decide placement of every node's feature."""

    num_gpus: int

    def locate(self, nodes: np.ndarray, gpu: int) -> Location:
        raise NotImplementedError

    def cached_nodes(self, gpu: int) -> np.ndarray:
        """Global ids cached on ``gpu`` (for memory accounting)."""
        raise NotImplementedError

    def cache_nbytes(
        self, gpu: int, feature_dim: int, bytes_per_elem: float = 4.0
    ) -> int:
        """Device bytes the cache occupies on ``gpu``.

        ``bytes_per_elem`` parameterizes the stored precision so
        quantized caches (fp16/int8 residency) account memory
        correctly; the default matches float32 storage.
        """
        if bytes_per_elem <= 0:
            raise ConfigError("bytes_per_elem must be positive")
        return int(
            round(len(self.cached_nodes(gpu)) * feature_dim * bytes_per_elem)
        )


class PartitionedCache(CacheStore):
    """DSP's partitioned cache (§3.1).

    Each GPU caches the hottest nodes *of its own graph patch*, up to
    ``budget_nodes`` per GPU.  Different GPUs therefore cache different
    vectors and the aggregate cache grows with the GPU count, all of it
    reachable over NVLink.
    """

    def __init__(
        self,
        part_offsets: np.ndarray,
        hot_order: np.ndarray,
        budget_nodes: int,
    ):
        part_offsets = np.asarray(part_offsets, dtype=np.int64)
        self.part_offsets = part_offsets
        self.num_gpus = len(part_offsets) - 1
        num_nodes = int(part_offsets[-1])
        if budget_nodes < 0:
            raise ConfigError("budget must be non-negative")
        if len(hot_order) != num_nodes:
            raise ConfigError("hot_order must rank every node")

        # per-part hotness rank: position of each node in the global
        # hot order, then per part keep the budget_nodes best
        rank = np.empty(num_nodes, dtype=np.int64)
        rank[hot_order] = np.arange(num_nodes)
        #: layout-time hotness rank (lower = hotter); the dynamic cache
        #: policy uses it as the deterministic tie-break
        self.rank = rank
        self.budget_nodes = int(budget_nodes)
        self.cached = np.zeros(num_nodes, dtype=bool)
        for g in range(self.num_gpus):
            lo, hi = part_offsets[g], part_offsets[g + 1]
            local = np.arange(lo, hi)
            take = min(budget_nodes, len(local))
            if take > 0:
                best = local[np.argsort(rank[lo:hi], kind="stable")[:take]]
                self.cached[best] = True
        self.owner = (
            np.searchsorted(part_offsets, np.arange(num_nodes), side="right") - 1
        )

    def locate(self, nodes: np.ndarray, gpu: int) -> Location:
        nodes = np.asarray(nodes, dtype=np.int64)
        cached = self.cached[nodes]
        holder = np.where(cached, self.owner[nodes], -1)
        placement = np.full(len(nodes), Placement.COLD, dtype=np.int64)
        placement[cached & (holder == gpu)] = Placement.LOCAL
        placement[cached & (holder != gpu)] = Placement.REMOTE
        return Location(placement, holder)

    def cached_nodes(self, gpu: int) -> np.ndarray:
        lo, hi = self.part_offsets[gpu], self.part_offsets[gpu + 1]
        return np.flatnonzero(self.cached[lo:hi]) + lo

    @property
    def total_cached(self) -> int:
        return int(self.cached.sum())


class ReplicatedCache(CacheStore):
    """Quiver-style replicated cache: same hot set on every GPU.

    Hits are always local; the aggregate distinct cache is one GPU's
    budget regardless of the GPU count.
    """

    def __init__(self, num_nodes: int, num_gpus: int, hot_order: np.ndarray,
                 budget_nodes: int):
        if budget_nodes < 0:
            raise ConfigError("budget must be non-negative")
        if len(hot_order) != num_nodes:
            raise ConfigError("hot_order must rank every node")
        self.num_gpus = num_gpus
        self.cached = np.zeros(num_nodes, dtype=bool)
        self.cached[hot_order[:budget_nodes]] = True

    def locate(self, nodes: np.ndarray, gpu: int) -> Location:
        nodes = np.asarray(nodes, dtype=np.int64)
        cached = self.cached[nodes]
        placement = np.where(cached, Placement.LOCAL, Placement.COLD).astype(np.int64)
        holder = np.where(cached, gpu, -1)
        return Location(placement, holder)

    def cached_nodes(self, gpu: int) -> np.ndarray:
        return np.flatnonzero(self.cached)

    @property
    def total_cached(self) -> int:
        return int(self.cached.sum())


class NoCache(CacheStore):
    """DGL-UVA: every feature vector is cold (host memory only)."""

    def __init__(self, num_nodes: int, num_gpus: int):
        self.num_nodes = num_nodes
        self.num_gpus = num_gpus

    def locate(self, nodes: np.ndarray, gpu: int) -> Location:
        nodes = np.asarray(nodes, dtype=np.int64)
        return Location(
            np.full(len(nodes), Placement.COLD, dtype=np.int64),
            np.full(len(nodes), -1, dtype=np.int64),
        )

    def cached_nodes(self, gpu: int) -> np.ndarray:
        return np.empty(0, dtype=np.int64)
