"""Hot-node ranking policies for feature caching.

Feature accesses during sampling-based GNN training are dominated by a
small set of popular nodes (paper §2, citing PaGraph and Data Tiering).
A ranking policy orders nodes hottest-first; the cache then keeps as
many of the hottest as fit the budget.  DSP defaults to in-degree and
is compatible with other criteria — PageRank and reverse PageRank are
the alternatives named in the paper.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.csr import CSRGraph
from repro.utils.errors import ConfigError
from repro.utils.rng import make_rng


def rank_by_degree(graph: CSRGraph) -> np.ndarray:
    """Node ids ordered by descending in-degree (DSP's default)."""
    return np.argsort(-graph.degrees, kind="stable")


def _adjacency(graph: CSRGraph) -> sp.csr_matrix:
    n = graph.num_nodes
    dst = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    return sp.coo_matrix(
        (np.ones(graph.num_edges), (dst, graph.indices)), shape=(n, n)
    ).tocsr()


def _pagerank(adj: sp.csr_matrix, damping: float, iters: int) -> np.ndarray:
    """Power iteration on a column-stochastic transition matrix."""
    n = adj.shape[0]
    out_deg = np.asarray(adj.sum(axis=0)).ravel()  # column sums
    inv = np.where(out_deg > 0, 1.0 / np.maximum(out_deg, 1e-12), 0.0)
    rank = np.full(n, 1.0 / n)
    for _ in range(iters):
        spread = adj @ (rank * inv)
        dangling = rank[out_deg == 0].sum() / n
        rank = (1 - damping) / n + damping * (spread + dangling)
    return rank


def rank_by_pagerank(
    graph: CSRGraph, damping: float = 0.85, iters: int = 30
) -> np.ndarray:
    """Node ids ordered by descending PageRank.

    The CSR stores in-neighbours, so ``adj[v, u] = 1`` means an edge
    u -> v: mass flows from u to v, the ordinary PageRank direction.
    """
    adj = _adjacency(graph)
    return np.argsort(-_pagerank(adj, damping, iters), kind="stable")


def rank_by_reverse_pagerank(
    graph: CSRGraph, damping: float = 0.85, iters: int = 30
) -> np.ndarray:
    """PageRank on the reversed graph — favours nodes that *reach* many
    others, a good proxy for how often sampling visits them."""
    adj = _adjacency(graph).T.tocsr()
    return np.argsort(-_pagerank(adj, damping, iters), kind="stable")


def rank_random(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Random order — the control policy for the caching ablation."""
    return make_rng(seed).permutation(graph.num_nodes)


def rank_by_profile(
    graph: CSRGraph,
    fanout: tuple[int, ...] = (15, 10, 5),
    num_batches: int = 8,
    batch_size: int = 512,
    seed: int = 0,
) -> np.ndarray:
    """Profile-guided ranking: run a few real sampling mini-batches and
    rank nodes by how often their features were requested.

    This is the PaGraph-style "computation-aware" criterion (§2 cites
    it): it measures the actual access distribution instead of a graph
    statistic.  Slightly costlier to build, usually the best hit rate.
    Unprofiled nodes are appended in degree order.
    """
    from repro.sampling.local import GraphPatch, sample_neighbors

    rng = make_rng(seed)
    patch = GraphPatch.full(graph)
    counts = np.zeros(graph.num_nodes, dtype=np.int64)
    for _ in range(num_batches):
        frontier = rng.integers(0, graph.num_nodes, size=batch_size)
        for f in fanout:
            src, c = sample_neighbors(patch, frontier, f, rng=rng)
            touched = np.unique(np.concatenate([frontier, src]))
            np.add.at(counts, touched, 1)
            frontier = touched
    # ties (especially count 0) broken by degree
    order = np.lexsort((-graph.degrees, -counts))
    return order.astype(np.int64)


HOT_POLICIES = {
    "degree": rank_by_degree,
    "pagerank": rank_by_pagerank,
    "reverse_pagerank": rank_by_reverse_pagerank,
    "random": rank_random,
    "profile": rank_by_profile,
}


def get_policy(name: str):
    """Look up a hot-node policy by name (ConfigError if unknown)."""
    try:
        return HOT_POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown hot-node policy {name!r}; available: {sorted(HOT_POLICIES)}"
        ) from None
