"""Log-bucketed streaming histograms: bounded-state quantiles.

FastSample-scale runs (PAPERS.md) rule out retaining every latency
sample just to report a p99: a serving run at the knee completes
millions of requests per simulated second.  A :class:`LogHistogram`
keeps **O(log(max/min))** state regardless of sample count — sparse
counts over geometrically spaced buckets — and answers nearest-rank
quantiles with a bounded relative error:

- bucket ``i`` covers ``(growth**i, growth**(i+1)]``;
- a quantile resolves to the geometric midpoint of the bucket holding
  the nearest-rank sample, clamped into ``[min, max]`` observed;
- the relative error is therefore at most ``sqrt(growth) - 1`` —
  ~4.4% at the default ``growth = 2**(1/8)`` — uniformly across
  magnitudes (microseconds and minutes bucket equally finely).

Bucketing is monotone in the value, so the bucket the cumulative walk
stops in is exactly the bucket containing the true nearest-rank sample
— the error bound is an algebraic fact, not a heuristic, and the test
suite asserts it across magnitudes.  Values at or below ``min_value``
(zeros: a request served entirely from cache in zero simulated time)
land in a dedicated underflow bucket represented as 0.0.

Histograms merge by bucket-wise addition (:meth:`merge`), which is how
per-window state folds into a run-cumulative view.
"""

from __future__ import annotations

import math

from repro.metrics.quantile import nearest_rank

__all__ = ["DEFAULT_GROWTH", "LogHistogram"]

#: default bucket growth factor: 8 buckets per octave, <= ~4.4% error
DEFAULT_GROWTH = 2.0 ** 0.125


class LogHistogram:
    """Sparse log-bucketed histogram with nearest-rank quantiles."""

    __slots__ = ("growth", "min_value", "_log_g", "counts", "zero",
                 "count", "total", "min", "max")

    def __init__(self, growth: float = DEFAULT_GROWTH,
                 min_value: float = 1e-12):
        if growth <= 1.0:
            raise ValueError("growth must exceed 1.0")
        if min_value <= 0.0:
            raise ValueError("min_value must be positive")
        self.growth = growth
        self.min_value = min_value
        self._log_g = math.log(growth)
        self.counts: dict[int, int] = {}
        self.zero = 0  # samples <= min_value (incl. exact zeros)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording -------------------------------------------------------
    def add(self, value: float, n: int = 1) -> None:
        """Record ``value`` ``n`` times (negatives clamp to the underflow
        bucket: simulated latencies are non-negative by construction)."""
        value = float(value)
        self.count += n
        self.total += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.min_value:
            self.zero += n
            return
        i = math.floor(math.log(value) / self._log_g)
        self.counts[i] = self.counts.get(i, 0) + n

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` into this histogram (same growth required)."""
        if other.growth != self.growth:
            raise ValueError("cannot merge histograms with different growth")
        self.count += other.count
        self.total += other.total
        self.zero += other.zero
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for i, n in other.counts.items():
            self.counts[i] = self.counts.get(i, 0) + n

    # -- queries ---------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Approximate ``q``-th percentile (nearest-rank over buckets).

        NaN when empty; otherwise within ``sqrt(growth) - 1`` relative
        error of the exact nearest-rank sample (see module doc).
        """
        if self.count == 0:
            return float("nan")
        rank = nearest_rank(self.count, q)
        acc = self.zero
        if rank <= acc:
            # underflow bucket: every sample here is <= min_value
            return max(0.0, self.min)
        for i in sorted(self.counts):
            acc += self.counts[i]
            if acc >= rank:
                rep = self.growth ** (i + 0.5)
                return min(max(rep, self.min), self.max)
        return self.max  # unreachable unless counts were mutated externally

    def quantiles(self, qs=(50, 95, 99)) -> tuple[float, ...]:
        return tuple(self.quantile(q) for q in qs)

    def to_dict(self) -> dict:
        """JSON-safe snapshot (bucket keys as strings, sorted)."""
        return {
            "count": self.count,
            "sum": self.total,
            "zero": self.zero,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "growth": self.growth,
            "buckets": {str(i): self.counts[i] for i in sorted(self.counts)},
        }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LogHistogram(count={self.count}, "
                f"buckets={len(self.counts)})")
