"""Metrics exporters: Prometheus text snapshot, JSONL and CSV series.

Three shapes for three consumers:

- :func:`to_prometheus` — the end-of-run *snapshot* in the Prometheus
  text exposition format (totals, last gauge values, cumulative
  histogram ``_bucket``/``_sum``/``_count`` rows with ``le`` upper
  bounds), for scraping-style integrations;
- :func:`to_jsonl` — the full windowed *time series*, one JSON object
  per line ordered by ``(time, kind, name, labels)``, the substrate
  ``repro report`` and downstream analysis read;
- :func:`to_csv` — the same series flattened to
  ``t,kind,name,labels,field,value`` rows for spreadsheets.

All three are pure functions of the registry contents, so the
byte-identical-across-``--workers`` contract of the sweep and chaos
drivers extends to every export format.
"""

from __future__ import annotations

import json

from repro.metrics.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["to_csv", "to_jsonl", "to_prometheus", "write_jsonl"]


def _prom_name(name: str) -> str:
    return "repro_" + name


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(
        f'{k}="{v}"' for k, v in sorted((k, str(v)) for k, v in items.items())
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """End-of-run snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def head(name: str, kind: str, help_text: str) -> None:
        if name in seen_types:
            return
        seen_types.add(name)
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    for kind, name, labels, inst in registry.instruments():
        pname = _prom_name(name)
        if kind == "counter":
            head(pname + "_total", "counter", f"{name} (run total)")
            lines.append(
                f"{pname}_total{_prom_labels(labels)} {_fmt(inst.total)}"
            )
        elif kind == "gauge":
            head(pname, "gauge", f"{name} (final value)")
            lines.append(f"{pname}{_prom_labels(labels)} {_fmt(inst.last)}")
        else:  # histogram
            h = inst.cumulative
            head(pname, "histogram", f"{name} (cumulative)")
            acc = h.zero
            if h.count:
                lines.append(
                    f"{pname}_bucket"
                    f"{_prom_labels(labels, {'le': _fmt(h.min_value)})} {acc}"
                )
                for i in sorted(h.counts):
                    acc += h.counts[i]
                    le = h.growth ** (i + 1)
                    lines.append(
                        f"{pname}_bucket"
                        f"{_prom_labels(labels, {'le': _fmt(le)})} {acc}"
                    )
            lines.append(
                f"{pname}_bucket{_prom_labels(labels, {'le': '+Inf'})} "
                f"{h.count}"
            )
            lines.append(f"{pname}_sum{_prom_labels(labels)} {_fmt(h.total)}")
            lines.append(f"{pname}_count{_prom_labels(labels)} {h.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _series_rows(registry: MetricsRegistry) -> list[dict]:
    """Every windowed sample of every instrument, plus events, ordered
    by ``(t, kind, name, labels)`` — the canonical series stream."""
    rows: list[dict] = []
    for kind, name, labels, inst in registry.instruments():
        if isinstance(inst, Counter):
            for row in inst.series():
                rows.append({"t": row["t"], "kind": kind, "name": name,
                             "labels": labels, "value": row["value"]})
        elif isinstance(inst, Gauge):
            for row in inst.series():
                rows.append({"t": row["t"], "kind": kind, "name": name,
                             "labels": labels, "mean": row["mean"],
                             "max": row["max"]})
        elif isinstance(inst, Histogram):
            for row in inst.series():
                out = {"t": row["t"], "kind": kind, "name": name,
                       "labels": labels, "count": row["count"],
                       "mean": row["mean"]}
                for k, v in row.items():
                    if k.startswith("p"):
                        out[k] = v
                rows.append(out)
    for t, name, attrs in registry.events:
        rows.append({"t": t, "kind": "event", "name": name,
                     "labels": {}, **attrs})
    rows.sort(key=lambda r: (r["t"], r["kind"], r["name"],
                             sorted(r["labels"].items())))
    return rows


def to_jsonl(registry: MetricsRegistry) -> str:
    """The windowed series as JSON Lines (one object per sample)."""
    return "".join(
        json.dumps(row, sort_keys=True) + "\n"
        for row in _series_rows(registry)
    )


def write_jsonl(registry: MetricsRegistry, path) -> None:
    with open(path, "w") as f:
        f.write(to_jsonl(registry))


def to_csv(registry: MetricsRegistry) -> str:
    """The windowed series flattened to long-form CSV."""
    lines = ["t,kind,name,labels,field,value"]
    for row in _series_rows(registry):
        labels = ";".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
        for field, value in row.items():
            if field in ("t", "kind", "name", "labels"):
                continue
            lines.append(
                f"{row['t']!r},{row['kind']},{row['name']},{labels},"
                f"{field},{value!r}"
            )
    return "\n".join(lines) + "\n"
