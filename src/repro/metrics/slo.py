"""SLO health monitoring over a metrics registry.

Definitions (all on simulated time, per fixed registry window):

- a window's **violation fraction** is ``violations / completed``,
  where a violation is a completion whose end-to-end latency exceeded
  the SLO (counted exactly by the serving pipeline at completion time
  — not re-derived from bucketed histograms, so the boundary is
  exact);
- the **error budget** is ``1 - target`` (default target 0.99: "p99
  within the SLO");
- a window's **burn rate** is ``violation fraction / error budget`` —
  1.0 means the budget burns exactly as fast as it accrues, >1 means
  the window is out of SLO (equivalently: its nearest-rank p99 exceeds
  the SLO);
- **"SLO minutes violated"** is the total simulated time (in minutes)
  spent inside windows with burn rate > 1 — the per-scenario
  resilience figure the chaos matrix reports, and the signal a future
  serving controller (ROADMAP item 2) will minimize.

Windowed p50/p95/p99 series come from the ``request_latency``
streaming histogram (<= ~4.4% relative error, see
:mod:`repro.metrics.histogram`); windows with no completions burn
nothing (an idle server is not out of SLO — shed requests are
accounted separately through the shed-rate series).
"""

from __future__ import annotations

from repro.metrics.registry import MetricsRegistry

__all__ = ["SLOMonitor", "serve_summary"]

#: latency quantiles exported per window
QUANTILES = (50, 95, 99)


class SLOMonitor:
    """Burn rate and "SLO minutes violated" from a serving run's
    registry (see module doc for the exact definitions)."""

    def __init__(self, registry: MetricsRegistry, slo_s: float,
                 target: float = 0.99):
        if slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if not 0.0 < target < 1.0:
            raise ValueError("target must be in (0, 1)")
        self.registry = registry
        self.slo_s = slo_s
        self.target = target

    def summary(self) -> dict:
        """JSON-safe SLO view: per-window series + run aggregates."""
        reg = self.registry
        ws = reg.window_s
        budget = 1.0 - self.target
        hist = reg.find("histogram", "request_latency")
        viol = reg.find("counter", "slo_violations")
        viol_windows = {} if viol is None else {
            int(round(row["t"] / ws)): row["value"] for row in viol.series()
        }

        windows: list[dict] = []
        total_done = 0
        total_viol = 0.0
        violated_s = 0.0
        if hist is not None:
            for t0, h in hist.window_items():
                n = h.count
                v = viol_windows.get(int(round(t0 / ws)), 0.0)
                frac = v / n if n else 0.0
                burn = frac / budget
                violated = n > 0 and burn > 1.0
                if violated:
                    violated_s += ws
                p50, p95, p99 = h.quantiles(QUANTILES)
                windows.append({
                    "t_ms": t0 * 1e3,
                    "completed": n,
                    "violations": int(v),
                    "p50_ms": p50 * 1e3,
                    "p95_ms": p95 * 1e3,
                    "p99_ms": p99 * 1e3,
                    "burn_rate": burn,
                    "violated": violated,
                })
                total_done += n
                total_viol += v
        frac = total_viol / total_done if total_done else 0.0
        return {
            "slo_ms": self.slo_s * 1e3,
            "target": self.target,
            "window_ms": ws * 1e3,
            "windows": windows,
            "completed": total_done,
            "violations": int(total_viol),
            "attainment": 1.0 - frac,
            "burn_rate": frac / budget,
            "slo_minutes_violated": violated_s / 60.0,
        }


def _counter_series(reg: MetricsRegistry, name: str):
    """Sum a counter across all its label sets into one window series."""
    total = 0.0
    windows: dict[float, float] = {}
    found = False
    for _, _, _, c in reg.instruments("counter", name):
        found = True
        total += c.total
        for row in c.series():
            windows[row["t"]] = windows.get(row["t"], 0.0) + row["value"]
    if not found:
        return None
    return {
        "total": total,
        "windows": [{"t": t, "value": windows[t]} for t in sorted(windows)],
    }


def serve_summary(registry: MetricsRegistry, slo_s: float,
                  target: float = 0.99) -> dict:
    """One serving run's metrics, shaped for reports and dashboards.

    Bundles the :class:`SLOMonitor` output with the per-stage latency
    quantile series, admission/shed/degraded accounting, the cache
    effectiveness series and any annotated chaos events.  Everything is
    JSON-safe and deterministically ordered, so the sweep/chaos fan-out
    contract (byte-identical across ``--workers``) extends to metrics.
    """
    reg = registry
    out: dict = {
        "window_ms": reg.window_s * 1e3,
        "slo": SLOMonitor(reg, slo_s, target=target).summary(),
    }

    stages: dict[str, list] = {}
    for _, _, labels, hist in reg.instruments("histogram", "stage_latency"):
        rows = []
        for row in hist.series(QUANTILES):
            rows.append({
                "t_ms": row["t"] * 1e3,
                "count": row["count"],
                **{f"p{q:g}_ms": row[f"p{q:g}"] * 1e3 for q in QUANTILES},
            })
        stages[labels["stage"]] = rows
    if stages:
        out["stages"] = stages

    queues: dict[str, list] = {}
    for _, _, labels, g in reg.instruments("gauge", "admission_depth"):
        queues[f"gpu{labels['gpu']}"] = g.series()
    if queues:
        out["admission_depth"] = queues

    batch = reg.find("histogram", "batch_size")
    if batch is not None:
        out["batch_size"] = batch.series((50, 95, 99))

    shed = _counter_series(reg, "requests_shed")
    if shed is not None:
        out["shed"] = shed
    degraded = _counter_series(reg, "requests_degraded")
    if degraded is not None:
        out["degraded"] = degraded

    links: dict[str, dict] = {}
    for _, _, labels, c in reg.instruments("counter", "link_bytes"):
        links[labels["link"]] = {"total": c.total, "windows": c.series()}
    if links:
        out["link_bytes"] = links

    cache: dict = {}
    paths: dict[str, dict] = {}
    for _, _, labels, c in reg.instruments("counter", "feature_requests"):
        paths[labels["path"]] = {"total": c.total, "windows": c.series()}
    if paths:
        cache["feature"] = paths
    for counter, key in (("cache_hit", "hits"),
                         ("cache_promote", "promotions"),
                         ("cache_demote", "demotions")):
        series = _counter_series(reg, counter)
        if series is not None:
            cache[key] = series
    hits = reg.find("gauge", "plan_cache_hits")
    misses = reg.find("gauge", "plan_cache_misses")
    if hits is not None and misses is not None:
        total = hits.last + misses.last
        cache["plan"] = {
            "hits": hits.last,
            "misses": misses.last,
            "hit_rate": hits.last / total if total else 0.0,
        }
    if cache:
        out["cache"] = cache

    if reg.events:
        out["events"] = [
            {"t_ms": t * 1e3, "name": name}
            for t, name, _ in sorted(reg.events, key=lambda e: (e[0], e[1]))
        ]
    return out
