"""The single shared latency-quantile helper.

Every latency percentile the repo reports flows through this module:
:func:`percentiles` is what :mod:`repro.serve.stats` uses for the
p50/p95/p99 of a :class:`~repro.serve.stats.ServeReport` (linear
interpolation, :func:`numpy.percentile` semantics, so reports stay
bit-identical to the historical hand-rolled computation), and
:func:`nearest_rank` is the discrete rank rule the windowed streaming
histograms (:mod:`repro.metrics.histogram`) resolve their bucket walks
with.  Keeping both rules in one file — with a regression test pinning
the small-``n`` edge cases (``n=0``, ``n=1``, ties) — is what stops a
third ad-hoc quantile from growing somewhere else in the tree.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["nearest_rank", "percentile", "percentiles"]


def percentile(values, q: float) -> float:
    """The ``q``-th percentile (``0 <= q <= 100``) of ``values``.

    Linear-interpolation semantics identical to ``numpy.percentile``:
    ``n=1`` returns that value for every ``q``; an empty input returns
    NaN (numpy would warn and return NaN — the empty check keeps runs
    warning-clean).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


def percentiles(values, qs=(50, 95, 99)) -> tuple[float, ...]:
    """:func:`percentile` at each ``q`` of ``qs`` (one sort, many reads)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return tuple(float("nan") for _ in qs)
    return tuple(float(np.percentile(arr, q)) for q in qs)


def nearest_rank(n: int, q: float) -> int:
    """1-based nearest-rank of the ``q``-th percentile among ``n`` samples.

    The classic discrete rule: ``rank = ceil(q/100 * n)``, clamped to
    ``[1, n]`` so ``q=0`` selects the minimum and ``q=100`` the maximum.
    This is the rule a streaming histogram can answer exactly from
    bucket counts — the selected rank always falls inside one bucket.
    ``n`` must be positive (an empty population has no ranks).
    """
    if n <= 0:
        raise ValueError("nearest_rank needs a non-empty population")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    return min(n, max(1, math.ceil(q / 100.0 * n)))
