"""The metrics registry: windowed counters, gauges and histograms.

:class:`MetricsRegistry` mirrors the :class:`~repro.obs.Tracer`
contract exactly: it is **passive** (callers pass explicit simulated
timestamps — it never touches a clock), it is attached to a
:class:`~repro.engine.simulator.Simulator` (``Simulator(metrics=...)``)
or threaded through ``run_epoch(metrics=...)`` / ``GNNServer``, and
when it is *not* attached every hook site in the engine is guarded by
a single ``is not None`` check, so un-instrumented runs allocate no
metrics object anywhere and stay bit-identical to the seed — the
zero-cost-off guarantee the bit-identity tests pin.

Unlike the tracer (which retains every event for post-hoc timeline
analysis), the registry *streams*: samples fold into fixed sim-time
windows of ``window_s`` seconds as they arrive, so per-window
p50/p95/p99 come from bounded state (log-bucketed histograms,
time-weighted gauge integrals, per-window counter sums) however many
samples a window sees.  Window boundaries are a pure function of the
simulated timestamp (``index = floor(t / window_s)``), which makes
every exported series byte-identical across ``--workers`` settings —
worker count decides which process runs a simulation, never what time
its events carry.

Instruments are keyed by ``(name, labels)``:

- :class:`Counter` — monotone accumulator (``inc``): shed requests,
  SLO violations, per-link wire bytes.  Exports the running total and
  the per-window increment (a rate series).
- :class:`Gauge` — a step function (``set``): queue depth, SM
  occupancy.  Exports the time-weighted per-window mean and the
  per-window max, integrated exactly across window boundaries.
- :class:`Histogram` — a distribution (``observe``): request and
  per-stage latencies, batch sizes.  One
  :class:`~repro.metrics.histogram.LogHistogram` per window plus a
  run-cumulative one.

Annotated point events (fault activations, invariant violations) are
recorded with :meth:`MetricsRegistry.event` and exported alongside the
series so a dashboard can pin causes onto the timelines.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.metrics.histogram import LogHistogram

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _label_key(labels: dict) -> tuple:
    """Canonical hashable identity of a label set (sorted pairs)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotone accumulator with per-window increments."""

    __slots__ = ("name", "labels", "total", "windows", "_w")

    def __init__(self, name: str, labels: dict, window_s: float):
        self.name = name
        self.labels = labels
        self._w = window_s
        self.total = 0.0
        self.windows: dict[int, float] = {}

    def inc(self, t: float, value: float = 1.0) -> None:
        value = float(value)
        self.total += value
        w = int(t // self._w)
        self.windows[w] = self.windows.get(w, 0.0) + value

    def series(self) -> list[dict]:
        return [
            {"t": w * self._w, "value": self.windows[w]}
            for w in sorted(self.windows)
        ]

    def to_dict(self) -> dict:
        return {"total": self.total, "windows": self.series()}


class Gauge:
    """Step function with exact time-weighted window integrals."""

    __slots__ = ("name", "labels", "last", "_t", "_w",
                 "_integral", "_max")

    def __init__(self, name: str, labels: dict, window_s: float):
        self.name = name
        self.labels = labels
        self._w = window_s
        self.last = 0.0
        self._t = 0.0
        self._integral: dict[int, float] = {}
        self._max: dict[int, float] = {}

    def _touch_max(self, w: int, value: float) -> None:
        cur = self._max.get(w)
        if cur is None or value > cur:
            self._max[w] = value

    def _accumulate(self, t: float) -> None:
        """Integrate the held value from the last sample time to ``t``,
        splitting exactly at window boundaries."""
        if t <= self._t:
            return
        ws, v = self._w, self.last
        w0 = int(self._t // ws)
        w1 = int(t // ws)
        if v != 0.0:
            if w0 == w1:
                self._integral[w0] = (
                    self._integral.get(w0, 0.0) + (t - self._t) * v
                )
            else:
                self._integral[w0] = (
                    self._integral.get(w0, 0.0)
                    + ((w0 + 1) * ws - self._t) * v
                )
                for w in range(w0 + 1, w1):
                    self._integral[w] = self._integral.get(w, 0.0) + ws * v
                self._integral[w1] = (
                    self._integral.get(w1, 0.0) + (t - w1 * ws) * v
                )
        # the held value bounds the max of every window it spans
        for w in range(w0, w1 + 1):
            self._touch_max(w, v)
        self._t = t

    def set(self, t: float, value: float) -> None:
        value = float(value)
        self._accumulate(t)
        self.last = value
        self._touch_max(int(t // self._w), value)

    def set_many(self, ts, values) -> None:
        """Bulk ``set``: fold a whole run of samples in one call.

        The engine's buffered hot paths (resource utilization
        transitions) stage ``(t, value)`` samples in flat arrays and
        flush them here per window instead of integrating per event.
        The per-window state afterwards equals replaying ``set`` per
        sample — windows that receive contributions from both the
        vectorized and the boundary-crossing path may differ by float
        summation order (≤ 1 ulp per window).

        Requires nondecreasing ``ts`` starting at or after the last
        sample time; anything else (and small or degenerate batches)
        falls back to the scalar loop.
        """
        n = len(ts)
        if n != len(values):
            raise ValueError(
                f"set_many: {n} timestamps vs {len(values)} values"
            )
        if n == 0:
            return
        if n < 32 or ts[0] < self._t:
            for t, v in zip(ts, values):
                self.set(t, v)
            return
        ts_a = np.asarray(ts, dtype=np.float64)
        vs_a = np.asarray(values, dtype=np.float64)
        ws = self._w
        # held-value segments: value h_i over [s_i, e_i)
        s = np.empty(n)
        s[0] = self._t
        s[1:] = ts_a[:-1]
        e = ts_a
        h = np.empty(n)
        h[0] = self.last
        h[1:] = vs_a[:-1]
        if np.any(e[1:] < e[:-1]):
            for t, v in zip(ts, values):
                self.set(t, v)
            return
        w0 = (s // ws).astype(np.int64)
        w1 = (e // ws).astype(np.int64)
        wmin = int(w0[0])
        size = int(w1[-1]) - wmin + 1
        if size > 4 * n + 1024:  # sparse samples over a huge time span
            for t, v in zip(ts, values):
                self.set(t, v)
            return
        integral = np.zeros(size)
        touched = np.zeros(size, dtype=bool)
        dense_max = np.full(size, -np.inf)
        live = e > s  # zero-width slices integrate (and bound) nothing
        nz = live & (h != 0.0)
        cross = live & (w0 != w1)
        # each live segment's share inside its first window
        head_end = np.minimum(e, (w0 + 1).astype(np.float64) * ws)
        np.add.at(integral, w0[nz] - wmin, (head_end[nz] - s[nz]) * h[nz])
        touched[w0[nz] - wmin] = True
        nzc = cross & (h != 0.0)
        np.add.at(integral, w1[nzc] - wmin,
                  (e[nzc] - w1[nzc].astype(np.float64) * ws) * h[nzc])
        touched[w1[nzc] - wmin] = True
        # interior windows of crossing segments are rare: scalar loop
        for i in np.flatnonzero(cross):
            hi = float(h[i])
            for w in range(int(w0[i]) + 1, int(w1[i])):
                if hi != 0.0:
                    integral[w - wmin] += ws * hi
                    touched[w - wmin] = True
                if hi > dense_max[w - wmin]:
                    dense_max[w - wmin] = hi
        # held values bound the max of every window they span; sampled
        # values touch their own window (w1 is the sample's window)
        np.maximum.at(dense_max, w0[live] - wmin, h[live])
        np.maximum.at(dense_max, w1[live] - wmin, h[live])
        np.maximum.at(dense_max, w1 - wmin, vs_a)
        for idx in np.flatnonzero(touched):
            w = int(idx) + wmin
            self._integral[w] = (self._integral.get(w, 0.0)
                                 + float(integral[idx]))
        for idx in np.flatnonzero(dense_max > -np.inf):
            self._touch_max(int(idx) + wmin, float(dense_max[idx]))
        self.last = float(vs_a[-1])
        self._t = float(ts_a[-1])

    def finalize(self, t_end: float) -> None:
        """Integrate the held value through the end of the run."""
        self._accumulate(t_end)

    def series(self) -> list[dict]:
        windows = sorted(set(self._integral) | set(self._max))
        return [
            {
                "t": w * self._w,
                "mean": self._integral.get(w, 0.0) / self._w,
                "max": self._max.get(w, 0.0),
            }
            for w in windows
        ]

    def to_dict(self) -> dict:
        return {"last": self.last, "windows": self.series()}


class Histogram:
    """Per-window plus run-cumulative log-bucketed distributions."""

    __slots__ = ("name", "labels", "cumulative", "windows", "_w", "_growth")

    def __init__(self, name: str, labels: dict, window_s: float,
                 growth: float | None = None):
        self.name = name
        self.labels = labels
        self._w = window_s
        self._growth = growth
        self.cumulative = self._new()
        self.windows: dict[int, LogHistogram] = {}

    def _new(self) -> LogHistogram:
        return (LogHistogram() if self._growth is None
                else LogHistogram(growth=self._growth))

    def observe(self, t: float, value: float) -> None:
        self.cumulative.add(value)
        w = int(t // self._w)
        h = self.windows.get(w)
        if h is None:
            h = self.windows[w] = self._new()
        h.add(value)

    def window_items(self) -> list[tuple[float, LogHistogram]]:
        """``(window start time, histogram)`` pairs in time order."""
        return [(w * self._w, self.windows[w]) for w in sorted(self.windows)]

    def series(self, qs=(50, 95, 99)) -> list[dict]:
        out = []
        for t, h in self.window_items():
            row = {"t": t, "count": h.count, "mean": h.mean}
            for q, v in zip(qs, h.quantiles(qs)):
                row[f"p{q:g}"] = v
            out.append(row)
        return out

    def to_dict(self) -> dict:
        return {
            "cumulative": self.cumulative.to_dict(),
            "windows": self.series(),
        }


class MetricsRegistry:
    """Keyed instruments + annotated events over one simulated run."""

    def __init__(self, window_s: float = 0.05):
        if not (window_s > 0.0) or not math.isfinite(window_s):
            raise ValueError("window_s must be positive and finite")
        self.window_s = float(window_s)
        self._instruments: dict[tuple[str, str, tuple], object] = {}
        #: callables that flush externally buffered samples into the
        #: registry; run before any finalize/export read
        self._flushers: list = []
        #: annotated point events: (t, name, attrs) in insertion order
        self.events: list[tuple[float, str, dict]] = []
        #: latest timestamp handed to :meth:`finalize` (run end)
        self.end: float = 0.0
        self.finalized = False

    # -- instrument access (get-or-create, pre-bind in hot paths) -------
    def _get(self, kind: str, name: str, labels: dict, factory):
        key = (kind, name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = self._instruments[key] = factory()
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels,
                         lambda: Counter(name, labels, self.window_s))

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels,
                         lambda: Gauge(name, labels, self.window_s))

    def histogram(self, name: str, growth: float | None = None,
                  **labels) -> Histogram:
        return self._get(
            "histogram", name, labels,
            lambda: Histogram(name, labels, self.window_s, growth=growth),
        )

    # -- buffered producers ----------------------------------------------
    def add_flusher(self, fn) -> None:
        """Register a flush callback for a hot path that stages samples
        in flat arrays (e.g. resource utilization transitions).  All
        flushers run before :meth:`finalize` and :meth:`to_dict` read
        instrument state, so batched producers export the same series
        as per-event ones.  Flushers must be idempotent."""
        self._flushers.append(fn)

    def flush(self) -> None:
        """Drain every registered buffered producer into the registry."""
        for fn in self._flushers:
            fn()

    # -- events ----------------------------------------------------------
    def event(self, t: float, name: str, **attrs) -> None:
        """Record an annotated point event (fault, violation, ...)."""
        self.events.append((float(t), name, attrs))

    # -- lookups (never create) ------------------------------------------
    def find(self, kind: str, name: str, **labels):
        """The instrument at ``(kind, name, labels)``, or None."""
        return self._instruments.get((kind, name, _label_key(labels)))

    def instruments(self, kind: str | None = None,
                    name: str | None = None) -> Iterator[tuple]:
        """Iterate ``(kind, name, labels-dict, instrument)`` sorted by
        key — a deterministic order whatever the registration order."""
        for key in sorted(self._instruments):
            k, n, lk = key
            if kind is not None and k != kind:
                continue
            if name is not None and n != name:
                continue
            yield k, n, dict(lk), self._instruments[key]

    # -- end of run -------------------------------------------------------
    def finalize(self, t_end: float) -> None:
        """Close the run at ``t_end``: gauges integrate their held value
        through the end so the final window's mean is complete."""
        self.flush()
        self.end = max(self.end, float(t_end))
        for key, inst in self._instruments.items():
            if key[0] == "gauge":
                inst.finalize(self.end)
        self.finalized = True

    def to_dict(self) -> dict:
        """JSON-safe snapshot of every instrument and event, in a
        deterministic order (sorted by kind, name, labels)."""
        self.flush()
        out: list[dict] = []
        for kind, name, labels, inst in self.instruments():
            row = {"kind": kind, "name": name, "labels": labels}
            row.update(inst.to_dict())
            out.append(row)
        return {
            "window_s": self.window_s,
            "end": self.end,
            "instruments": out,
            "events": [
                {"t": t, "name": name, **attrs}
                for t, name, attrs in sorted(
                    self.events, key=lambda e: (e[0], e[1])
                )
            ],
        }

    def __len__(self) -> int:
        return len(self._instruments)
