"""Streaming metrics, SLO health monitoring and run reports.

The observability layer next to :mod:`repro.obs`: where the tracer
retains every event for post-hoc timelines, the metrics registry
*streams* — samples fold into fixed sim-time windows as they arrive,
so per-window p50/p95/p99 come from bounded state however long the
run.  Zero-cost when detached (the engine guards every hook with one
``is not None`` check) and byte-identical across ``--workers``
(window boundaries are a pure function of simulated time).

See ``docs/observability.md`` for the metric/label schema, window
semantics and SLO definitions.
"""

from repro.metrics.export import to_csv, to_jsonl, to_prometheus, write_jsonl
from repro.metrics.histogram import DEFAULT_GROWTH, LogHistogram
from repro.metrics.quantile import nearest_rank, percentile, percentiles
from repro.metrics.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.metrics.report import build_report, write_report
from repro.metrics.slo import SLOMonitor, serve_summary

__all__ = [
    "DEFAULT_GROWTH",
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "SLOMonitor",
    "build_report",
    "nearest_rank",
    "percentile",
    "percentiles",
    "serve_summary",
    "to_csv",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
    "write_report",
]
