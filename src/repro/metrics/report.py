"""Self-contained HTML run report (``repro report``).

One artifact that merges the windowed metrics timelines of a serving
run (p99/burn-rate series, stage latencies, queue depth, shed rate,
cache effectiveness, chaos event markers), the chaos scenario matrix
with its per-scenario "SLO minutes violated" column, and the existing
trace analyses (stall breakdown, critical path) as preformatted text.

The output is a single file with inline SVG and a small hover layer —
no external assets, so it can be attached to a CI run or mailed
around.  Rendering is a pure function of the input dicts (no clocks,
no randomness): the same serve/chaos JSON produces byte-identical
HTML, which keeps the artifact inside the repo's determinism contract.

Chart conventions follow the repo-wide dataviz rules: categorical
series take palette slots in fixed order (never cycled past 8 — the
tail folds into "other"), ordered series (p50/p95/p99) use one blue
ramp, thresholds are dashed status-colored rules, text stays in text
tokens, every figure carries a legend when it has >= 2 series plus a
table-view twin, and values are also reachable without hover.
"""

from __future__ import annotations

import html
import json
import math

__all__ = ["build_report", "write_report"]

# -- palette (validated reference instance; see docs/observability.md) ----
_CSS = """
:root { color-scheme: light; }
body {
  margin: 0; background: #f9f9f7; color: #0b0b0b;
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948;
  --ramp-250: #86b6ef; --ramp-450: #2a78d6; --ramp-650: #104281;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-serious: #ec835a; --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root { color-scheme: dark; }
  body {
    background: #0d0d0d; color: #ffffff;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --axis: #383835; --ring: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767;
    --ramp-250: #6da7ec; --ramp-450: #3987e5; --ramp-650: #184f95;
  }
}
main { max-width: 880px; margin: 0 auto; padding: 24px 16px 48px; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
.sub { color: var(--ink-2); margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 12px 16px; min-width: 128px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
.tile .note { color: var(--ink-3); font-size: 12px; margin-top: 2px; }
figure {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; margin: 12px 0; padding: 12px 16px 8px;
}
figcaption { font-weight: 600; margin-bottom: 2px; }
.figsub { color: var(--ink-2); font-size: 12px; margin-bottom: 8px; }
.legend { display: flex; flex-wrap: wrap; gap: 4px 16px; margin: 6px 0 2px;
          color: var(--ink-2); font-size: 12px; }
.legend .key { display: inline-block; width: 14px; height: 0;
               border-top: 2px solid; border-radius: 1px;
               vertical-align: middle; margin-right: 5px; }
svg { display: block; width: 100%; height: auto; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif;
           fill: var(--ink-3); font-variant-numeric: tabular-nums; }
details { margin: 6px 0 4px; }
summary { color: var(--ink-2); font-size: 12px; cursor: pointer; }
table { border-collapse: collapse; font-size: 12px; margin-top: 6px;
        font-variant-numeric: tabular-nums; }
th, td { padding: 3px 10px 3px 0; text-align: right;
         border-bottom: 1px solid var(--grid); }
th { color: var(--ink-2); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
pre {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 12px 16px; overflow-x: auto;
  font-size: 12px; line-height: 1.4;
}
.bar-rect:hover { opacity: 0.82; }
#tooltip {
  position: fixed; pointer-events: none; display: none; z-index: 10;
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 6px; padding: 6px 10px; font-size: 12px;
  box-shadow: 0 2px 8px rgba(0,0,0,0.12);
}
#tooltip .t { color: var(--ink-2); margin-bottom: 2px; }
#tooltip .row { display: flex; align-items: center; gap: 6px; }
#tooltip .row .key { width: 12px; height: 0; border-top: 2px solid; }
#tooltip .row b { font-weight: 600; }
#tooltip .row span { color: var(--ink-2); }
"""

# hover layer: crosshair + all-series tooltip on line charts, per-mark
# tooltip on bars.  Labels land in the DOM via textContent only.
_JS = """
(function () {
  var tip = document.createElement('div');
  tip.id = 'tooltip';
  document.body.appendChild(tip);
  function showTip(x, y) {
    tip.style.display = 'block';
    var w = tip.offsetWidth, h = tip.offsetHeight;
    var px = Math.min(x + 14, window.innerWidth - w - 8);
    tip.style.left = px + 'px';
    tip.style.top = Math.max(4, y - h - 12) + 'px';
  }
  function row(color, value, label) {
    var r = document.createElement('div'); r.className = 'row';
    var k = document.createElement('i'); k.className = 'key';
    k.style.borderTopColor = color; r.appendChild(k);
    var b = document.createElement('b');
    b.textContent = value; r.appendChild(b);
    var s = document.createElement('span');
    s.textContent = label; r.appendChild(s);
    return r;
  }
  document.querySelectorAll('figure[data-chart]').forEach(function (fig) {
    var d = JSON.parse(fig.getAttribute('data-chart'));
    var svg = fig.querySelector('svg');
    if (!svg || !d.x.length) return;
    var ns = 'http://www.w3.org/2000/svg';
    var hair = document.createElementNS(ns, 'line');
    hair.setAttribute('y1', d.top); hair.setAttribute('y2', d.bottom);
    hair.setAttribute('stroke', 'var(--axis)');
    hair.setAttribute('stroke-width', '1');
    hair.style.display = 'none';
    svg.appendChild(hair);
    svg.addEventListener('pointermove', function (ev) {
      var box = svg.getBoundingClientRect();
      var vx = (ev.clientX - box.left) * d.width / box.width;
      var best = 0, bd = Infinity;
      for (var i = 0; i < d.px.length; i++) {
        var dd = Math.abs(d.px[i] - vx);
        if (dd < bd) { bd = dd; best = i; }
      }
      hair.setAttribute('x1', d.px[best]);
      hair.setAttribute('x2', d.px[best]);
      hair.style.display = '';
      tip.replaceChildren();
      var t = document.createElement('div'); t.className = 't';
      t.textContent = d.x[best]; tip.appendChild(t);
      d.series.forEach(function (s) {
        var v = s.values[best];
        tip.appendChild(row(s.color, v === null ? '—' : v, s.name));
      });
      showTip(ev.clientX, ev.clientY);
    });
    svg.addEventListener('pointerleave', function () {
      hair.style.display = 'none'; tip.style.display = 'none';
    });
  });
  document.querySelectorAll('[data-bar]').forEach(function (el) {
    el.addEventListener('pointermove', function (ev) {
      var d = JSON.parse(el.getAttribute('data-bar'));
      tip.replaceChildren();
      var t = document.createElement('div'); t.className = 't';
      t.textContent = d.label; tip.appendChild(t);
      tip.appendChild(row(d.color, d.value, d.name));
      showTip(ev.clientX, ev.clientY);
    });
    el.addEventListener('pointerleave', function () {
      tip.style.display = 'none';
    });
  });
})();
"""

#: fixed categorical slot order — color follows the entity, never rank
_SLOTS = [f"var(--series-{i})" for i in range(1, 9)]
#: one-hue ordered ramp for p50 < p95 < p99
_RAMP = ["var(--ramp-250)", "var(--ramp-450)", "var(--ramp-650)"]

_W, _H = 760, 200
_ML, _MR, _MT, _MB = 52, 14, 10, 26


def _esc(s) -> str:
    return html.escape(str(s), quote=True)


def _fmt(v: float) -> str:
    """Compact human number (tick labels, tooltips, tables)."""
    if v is None or v != v:
        return "—"
    a = abs(v)
    if a >= 1e9:
        return f"{v / 1e9:.3g}G"
    if a >= 1e6:
        return f"{v / 1e6:.3g}M"
    if a >= 1e4:
        return f"{v / 1e3:.3g}k"
    if a >= 100 or v == int(v):
        return f"{v:.0f}"
    if a >= 1:
        return f"{v:.3g}"
    if a >= 1e-3:
        return f"{v:.3g}"
    return f"{v:.2g}"


def _nice_ticks(hi: float, n: int = 4) -> list[float]:
    """Clean round tick values covering [0, hi]."""
    if not hi > 0:
        return [0.0, 1.0]
    raw = hi / n
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mult * mag
        if step >= raw:
            break
    ticks = []
    v = 0.0
    while v < hi * (1 + 1e-9):
        ticks.append(round(v, 10))
        v += step
    ticks.append(round(v, 10))
    return ticks


class _Fig:
    """One line-chart figure: SVG + legend + hover data + table twin."""

    def __init__(self, title: str, subtitle: str, x_unit: str = "s"):
        self.title = title
        self.subtitle = subtitle
        self.x_unit = x_unit
        self.series: list[dict] = []
        self.threshold: tuple[float, str] | None = None
        self.events: list[tuple[float, str]] = []

    def add(self, name: str, points: list[tuple[float, float]],
            color: str) -> None:
        if points:
            self.series.append(
                {"name": name, "points": points, "color": color}
            )

    def render(self) -> str:
        if not self.series:
            return ""
        xs = sorted({x for s in self.series for x, _ in s["points"]})
        ymax = max(
            (y for s in self.series for _, y in s["points"] if y == y),
            default=0.0,
        )
        if self.threshold:
            ymax = max(ymax, self.threshold[0])
        ticks = _nice_ticks(ymax if ymax > 0 else 1.0)
        ymax = ticks[-1]
        x0, x1 = xs[0], xs[-1]
        span = (x1 - x0) or 1.0
        pw, ph = _W - _ML - _MR, _H - _MT - _MB

        def X(x):
            return round(_ML + (x - x0) / span * pw, 2)

        def Y(y):
            return round(_MT + ph - (y / ymax) * ph if ymax else _MT + ph, 2)

        parts = [
            f'<svg viewBox="0 0 {_W} {_H}" role="img" '
            f'aria-label="{_esc(self.title)}">'
        ]
        for t in ticks:
            y = Y(t)
            parts.append(
                f'<line x1="{_ML}" y1="{y}" x2="{_W - _MR}" y2="{y}" '
                f'stroke="var(--grid)" stroke-width="1"/>'
                f'<text x="{_ML - 6}" y="{y + 3.5}" '
                f'text-anchor="end">{_fmt(t)}</text>'
            )
        parts.append(
            f'<line x1="{_ML}" y1="{Y(0)}" x2="{_W - _MR}" y2="{Y(0)}" '
            f'stroke="var(--axis)" stroke-width="1"/>'
        )
        n_xticks = min(6, len(xs))
        for i in range(n_xticks):
            x = x0 + span * i / max(1, n_xticks - 1)
            parts.append(
                f'<text x="{X(x)}" y="{_H - 8}" text-anchor="middle">'
                f"{_fmt(x)}{_esc(self.x_unit)}</text>"
            )
        if self.threshold:
            tv, tname = self.threshold
            y = Y(tv)
            parts.append(
                f'<line x1="{_ML}" y1="{y}" x2="{_W - _MR}" y2="{y}" '
                f'stroke="var(--status-serious)" stroke-width="1" '
                f'stroke-dasharray="4 3"/>'
                f'<text x="{_W - _MR}" y="{y - 4}" text-anchor="end">'
                f"{_esc(tname)}</text>"
            )
        for t, name in self.events:
            if x0 <= t <= x1:
                parts.append(
                    f'<line x1="{X(t)}" y1="{_MT}" x2="{X(t)}" '
                    f'y2="{_MT + ph}" stroke="var(--status-critical)" '
                    f'stroke-width="1" stroke-dasharray="2 3">'
                    f"<title>{_esc(name)}</title></line>"
                )
        for s in self.series:
            pts = " ".join(f"{X(x)},{Y(y)}" for x, y in s["points"]
                           if y == y)
            parts.append(
                f'<polyline points="{pts}" fill="none" '
                f'stroke="{s["color"]}" stroke-width="2" '
                f'stroke-linejoin="round" stroke-linecap="round"/>'
            )
            lx, ly = s["points"][-1]
            if ly == ly:
                parts.append(
                    f'<circle cx="{X(lx)}" cy="{Y(ly)}" r="4" '
                    f'fill="{s["color"]}" stroke="var(--surface-1)" '
                    f'stroke-width="2"/>'
                )
        parts.append("</svg>")
        svg = "".join(parts)

        legend = ""
        if len(self.series) >= 2:
            legend = '<div class="legend">' + "".join(
                f'<span><i class="key" style="border-top-color:'
                f'{s["color"]}"></i>{_esc(s["name"])}</span>'
                for s in self.series
            ) + "</div>"

        by_x = {
            s["name"]: dict(s["points"]) for s in self.series
        }
        head = "".join(f"<th>{_esc(s['name'])}</th>" for s in self.series)
        rows = "".join(
            "<tr><td>" + _fmt(x) + self.x_unit + "</td>" + "".join(
                f"<td>{_fmt(by_x[s['name']].get(x))}</td>"
                for s in self.series
            ) + "</tr>"
            for x in xs
        )
        table = (
            "<details><summary>Data table</summary><table><tr>"
            f"<th>t</th>{head}</tr>{rows}</table></details>"
        )

        chart = {
            "width": _W, "top": _MT, "bottom": _MT + ph,
            "px": [float(X(x)) for x in xs],
            "x": [f"t = {_fmt(x)}{self.x_unit}" for x in xs],
            "series": [
                {
                    "name": s["name"], "color": s["color"],
                    "values": [
                        (None if (v := dict(s["points"]).get(x)) is None
                         or v != v else _fmt(v))
                        for x in xs
                    ],
                }
                for s in self.series
            ],
        }
        return (
            f"<figure data-chart='{_esc(json.dumps(chart))}'>"
            f"<figcaption>{_esc(self.title)}</figcaption>"
            f'<div class="figsub">{_esc(self.subtitle)}</div>'
            f"{svg}{legend}{table}</figure>"
        )


def _bar_figure(title: str, subtitle: str, rows: list[tuple[str, float]],
                unit: str) -> str:
    """Horizontal single-series bar chart (value labels at bar tips)."""
    if not rows:
        return ""
    vmax = max((v for _, v in rows), default=0.0) or 1.0
    bar_h, gap = 22, 10
    label_w, val_w = 190, 64
    h = len(rows) * (bar_h + gap) + 8
    pw = _W - label_w - val_w - _MR
    parts = [f'<svg viewBox="0 0 {_W} {h}" role="img" '
             f'aria-label="{_esc(title)}">']
    for i, (name, v) in enumerate(rows):
        y = 4 + i * (bar_h + gap)
        w = max(1.0, v / vmax * pw) if v > 0 else 0.0
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_h / 2 + 4}" '
            f'text-anchor="end">{_esc(name)}</text>'
        )
        bar = {"label": name, "name": title, "value": f"{_fmt(v)}{unit}",
               "color": "var(--series-1)"}
        if w:
            parts.append(
                f'<path class="bar-rect" d="M{label_w},{y} '
                f"h{round(w - 4, 2)} a4,4 0 0 1 4,4 v{bar_h - 8} "
                f'a4,4 0 0 1 -4,4 h-{round(w - 4, 2)} z" '
                f'fill="var(--series-1)" '
                f"data-bar='{_esc(json.dumps(bar))}'/>"
            )
        parts.append(
            f'<text x="{label_w + w + 6}" y="{y + bar_h / 2 + 4}">'
            f"{_fmt(v)}{_esc(unit)}</text>"
        )
    parts.append(
        f'<line x1="{label_w}" y1="0" x2="{label_w}" y2="{h}" '
        f'stroke="var(--axis)" stroke-width="1"/></svg>'
    )
    table = (
        "<details><summary>Data table</summary><table>"
        "<tr><th>scenario</th><th>value</th></tr>" + "".join(
            f"<tr><td>{_esc(n)}</td><td>{_fmt(v)}{_esc(unit)}</td></tr>"
            for n, v in rows
        ) + "</table></details>"
    )
    return (
        f"<figure><figcaption>{_esc(title)}</figcaption>"
        f'<div class="figsub">{_esc(subtitle)}</div>'
        f"{''.join(parts)}{table}</figure>"
    )


def _tile(label: str, value: str, note: str = "",
          color: str | None = None) -> str:
    style = f' style="color:{color}"' if color else ""
    note_html = f'<div class="note">{_esc(note)}</div>' if note else ""
    return (
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value"{style}>{_esc(value)}</div>{note_html}</div>'
    )


def _control_section(serve: dict) -> str:
    """Controller-action timeline for a served-under-control report.

    Handles all three ``report.control`` shapes (see
    ``docs/control.md``): a single tuner summary, the router's
    ``{"replicas": [...]}`` list, and the autoscaler's
    ``{"autoscale": ..., "replicas": [...]}`` record.
    """
    control = serve.get("control") or {}
    if not control:
        return ""
    if "action_counts" in control:
        tuners = [("server", control)]
    else:
        tuners = [(f"replica{i}", t)
                  for i, t in enumerate(control.get("replicas") or [])
                  if t]
    auto = control.get("autoscale") or {}
    end_s = serve.get("elapsed_s") or 0.0

    out = ["<h2>Control plane</h2>",
           '<p class="sub">Online knob changes made by the SLO-burn '
           "controller; everything below is replayable from the "
           "action log.</p>"]
    n_actions = sum(
        sum(t.get("action_counts", {}).values()) for _, t in tuners
    ) + len(auto.get("actions") or ())
    tiles = [_tile("Controller actions", _fmt(n_actions))]
    if tuners:
        final = tuners[0][1].get("final") or {}
        base = tuners[0][1].get("baseline") or {}
        if final:
            tiles.append(_tile(
                "Final batch max", _fmt(final.get("batch_max")),
                f"baseline {_fmt(base.get('batch_max'))}"))
            tiles.append(_tile(
                "Final max-wait", f"{_fmt(final.get('timeout_ms'))}ms",
                f"baseline {_fmt(base.get('timeout_ms'))}ms"))
            if final.get("pressure"):
                tiles.append(_tile("Shed pressure",
                                   _fmt(final["pressure"]),
                                   "priorities below are shed"))
    if auto:
        tiles.append(_tile(
            "Replicas", _fmt(auto.get("final_replicas")),
            f"peak {_fmt(auto.get('max_replicas_used'))}"))
    out.append(f'<div class="tiles">{"".join(tiles)}</div>')

    def knob_steps(actions, knob, base):
        """Step series of one knob's value over time."""
        pts = [(0.0, base)] if base is not None else []
        for a in actions:
            if a.get("knob") != knob:
                continue
            t = a["t_ms"] / 1e3
            pts.append((t, a["before"]))
            pts.append((t, a["after"]))
        if pts and end_s > pts[-1][0]:
            pts.append((end_s, pts[-1][1]))
        return pts if len(pts) > 1 else []

    for knob, title, unit, scale in (
            ("timeout_ms", "Batch max-wait over time", "ms", 1.0),
            ("batch_max", "Batch size cap over time", "", 1.0)):
        fig = _Fig(title, "controller-applied steps; flat = no action",
                   x_unit="s")
        drew = False
        for i, (name, t) in enumerate(tuners[:8]):
            base_key = "timeout_ms" if knob == "timeout_ms" else "batch_max"
            base = (t.get("baseline") or {}).get(base_key)
            pts = knob_steps(t.get("actions") or [], knob, base)
            if pts:
                fig.add(name, [(x, v * scale) for x, v in pts], _SLOTS[i])
                drew = True
        if drew:
            out.append(fig.render())

    timeline = auto.get("timeline") or []
    if timeline:
        fig = _Fig("Serving replicas over time",
                   "routable (active) and warming replicas per control "
                   "interval", x_unit="s")
        for i, key in enumerate(("active", "warming")):
            fig.add(key, [(r["t_ms"] / 1e3, r[key]) for r in timeline],
                    _SLOTS[i])
        out.append(fig.render())

    rows = []
    for name, t in tuners:
        for a in t.get("actions") or []:
            rows.append((a["t_ms"] / 1e3, name, a))
    for a in auto.get("actions") or []:
        rows.append((a["t_ms"] / 1e3, "autoscaler", a))
    rows.sort(key=lambda r: (r[0], r[1]))
    if rows:
        body = "".join(
            f"<tr><td>{_fmt(t)}s</td><td>{_esc(actor)}</td>"
            f"<td>{_esc(a['kind'])}</td><td>{_esc(a['knob'])}</td>"
            f"<td>{_fmt(a['before'])}</td><td>{_fmt(a['after'])}</td>"
            f"<td>{_fmt(a.get('signal'))}</td></tr>"
            for t, actor, a in rows
        )
        out.append(
            f"<details><summary>Action log ({len(rows)})</summary>"
            "<table><tr><th>t</th><th>actor</th><th>action</th>"
            "<th>knob</th><th>before</th><th>after</th>"
            f"<th>signal</th></tr>{body}</table></details>"
        )

    tenants = serve.get("tenants") or {}
    if tenants:
        body = "".join(
            f"<tr><td>{_esc(name)}</td><td>{_fmt(t.get('priority'))}</td>"
            f"<td>{_fmt(t.get('offered'))}</td>"
            f"<td>{_fmt(t.get('completed'))}</td>"
            f"<td>{_fmt(t.get('shed'))}</td>"
            f"<td>{_fmt(t.get('slo_violations'))}</td>"
            f"<td>{_fmt(t.get('p99_ms'))}</td></tr>"
            for name, t in tenants.items()
        )
        out.append(
            "<h2>Tenants</h2><table><tr><th>tenant</th><th>prio</th>"
            "<th>offered</th><th>completed</th><th>shed</th>"
            f"<th>SLO viol.</th><th>p99 (ms)</th></tr>{body}</table>"
        )
    return "".join(out)


def _serve_section(serve: dict) -> str:
    """Stat tiles + metric timelines for one serving run."""
    out: list[str] = []
    lat = serve.get("latency_ms", {})
    metrics = serve.get("metrics") or {}
    slo = metrics.get("slo") or {}

    tiles = []
    minutes = slo.get("slo_minutes_violated")
    if minutes is not None:
        ok = minutes == 0
        tiles.append(_tile(
            "SLO minutes violated",
            f"{minutes:.3g}",
            "burn rate > 1" if not ok else "no window out of SLO",
            color="var(--status-good)" if ok else "var(--status-critical)",
        ))
    att = slo.get("attainment", serve.get("slo_attainment"))
    if att is not None:
        tiles.append(_tile("SLO attainment", f"{att * 100:.2f}%",
                           f"target {slo.get('target', 0.99) * 100:g}%"))
    if lat.get("p99") is not None:
        tiles.append(_tile("p99 latency", f"{_fmt(lat['p99'])}ms",
                           f"SLO {_fmt(serve.get('slo_ms'))}ms"))
    if serve.get("completed") is not None:
        tiles.append(_tile("Completed", _fmt(serve["completed"]),
                           f"{_fmt(serve.get('shed', 0))} shed"))
    if serve.get("goodput_qps") is not None:
        tiles.append(_tile("Goodput", f"{_fmt(serve['goodput_qps'])} qps",
                           f"offered {_fmt(serve.get('offered_qps'))} qps"))
    out.append(
        f"<h2>Serving — {_esc(serve.get('system', '?'))} @ "
        f"{_fmt(serve.get('offered_qps', 0))} qps</h2>"
        f'<div class="tiles">{"".join(tiles)}</div>'
    )
    if not metrics:
        out.append('<p class="sub">No metrics attached — run with '
                   "<code>--metrics</code> for timelines.</p>")
        out.append(_control_section(serve))
        return "".join(out)

    events = [(e["t_ms"] / 1e3, e["name"])
              for e in metrics.get("events", [])]
    win_ms = metrics.get("window_ms", 0.0)

    fig = _Fig("Windowed request latency",
               f"p50/p95/p99 per {_fmt(win_ms)}ms window; dashed rule "
               "is the SLO, red markers are chaos events")
    for q, color in zip(("p50", "p95", "p99"), _RAMP):
        fig.add(q, [(w["t_ms"] / 1e3, w[f"{q}_ms"])
                    for w in slo.get("windows", [])], color)
    if serve.get("slo_ms"):
        fig.threshold = (serve["slo_ms"], "SLO")
    fig.events = events
    out.append(fig.render())

    fig = _Fig("SLO burn rate",
               "violation fraction / error budget per window; above the "
               "dashed rule the window is out of SLO")
    fig.add("burn rate", [(w["t_ms"] / 1e3, w["burn_rate"])
                          for w in slo.get("windows", [])], _SLOTS[0])
    fig.threshold = (1.0, "budget")
    fig.events = events
    out.append(fig.render())

    stages = metrics.get("stages") or {}
    fig = _Fig("Stage latency (p95)",
               "per-stage p95 per window, in pipeline order")
    order = ("queue", "batch", "sample", "load", "compute")
    names = [s for s in order if s in stages]
    names += sorted(set(stages) - set(names))
    for i, name in enumerate(names[:8]):
        fig.add(name, [(r["t_ms"] / 1e3, r["p95_ms"])
                       for r in stages[name]], _SLOTS[i])
    out.append(fig.render())

    fig = _Fig("Admission queue depth",
               "time-weighted mean depth per GPU per window")
    for i, (gpu, rows) in enumerate(
            sorted((metrics.get("admission_depth") or {}).items())[:8]):
        fig.add(gpu, [(r["t"], r["mean"]) for r in rows], _SLOTS[i])
    out.append(fig.render())

    fig = _Fig("Shed and degraded requests", "requests per window")
    for i, key in enumerate(("shed", "degraded")):
        data = metrics.get(key)
        if data:
            fig.add(key, [(r["t"], r["value"]) for r in data["windows"]],
                    _SLOTS[i])
    out.append(fig.render())

    links = metrics.get("link_bytes") or {}
    if links:
        ranked = sorted(links.items(),
                        key=lambda kv: (-kv[1]["total"], kv[0]))
        fig = _Fig("Interconnect traffic",
                   "bytes per window on the busiest links")
        for i, (link, data) in enumerate(ranked[:7]):
            fig.add(link, [(r["t"], r["value"]) for r in data["windows"]],
                    _SLOTS[i])
        if len(ranked) > 7:
            rest: dict[float, float] = {}
            for _, data in ranked[7:]:
                for r in data["windows"]:
                    rest[r["t"]] = rest.get(r["t"], 0.0) + r["value"]
            fig.add("other", sorted(rest.items()), _SLOTS[7])
        out.append(fig.render())

    cache = metrics.get("cache") or {}
    feature = cache.get("feature") or {}
    if feature:
        fig = _Fig("Feature fetch paths",
                   "requests per window by serving path")
        for i, (path, data) in enumerate(sorted(feature.items())[:8]):
            fig.add(path, [(r["t"], r["value"]) for r in data["windows"]],
                    _SLOTS[i])
        out.append(fig.render())
    plan = cache.get("plan")
    if plan:
        out.append(
            '<div class="tiles">'
            + _tile("Plan cache hit rate", f"{plan['hit_rate'] * 100:.1f}%",
                    f"{_fmt(plan['hits'])} hits / "
                    f"{_fmt(plan['misses'])} misses")
            + "</div>"
        )

    if events:
        rows = "".join(
            f"<tr><td>{_fmt(t)}s</td><td>{_esc(name)}</td></tr>"
            for t, name in events
        )
        out.append(
            "<details><summary>Chaos events "
            f"({len(events)})</summary><table><tr><th>t</th>"
            f"<th>event</th></tr>{rows}</table></details>"
        )
    out.append(_control_section(serve))
    return "".join(out)


def _flatten_chaos(chaos) -> list[dict]:
    """Normalize chaos input to a flat cell list.

    Accepts either an already-flat list of cell dicts or the
    :func:`repro.chaos.scenarios.resilience_report` payload (nested
    ``systems -> scenario -> cell``); cells keep their dict order, so
    the section is deterministic for a given input.
    """
    if isinstance(chaos, list):
        return [c for c in chaos if isinstance(c, dict)]
    if not isinstance(chaos, dict):
        return []
    systems = chaos.get("systems")
    if isinstance(systems, dict):
        cells = []
        for system, per in systems.items():
            if not isinstance(per, dict):
                continue
            for scen, c in per.items():
                if not isinstance(c, dict):
                    continue
                cell = dict(c)
                cell["scenario"] = f"{system}/{scen}"
                cell.setdefault("status", c.get("outcome"))
                inv = c.get("invariants")
                if "violations" not in cell and isinstance(inv, dict):
                    cell["violations"] = len(inv.get("violations") or ())
                cells.append(cell)
        return cells
    maybe = chaos.get("scenarios", chaos)
    if isinstance(maybe, list):
        return [c for c in maybe if isinstance(c, dict)]
    return []


def _chaos_section(chaos) -> str:
    cells = _flatten_chaos(chaos)
    if not cells:
        return ""
    out = ["<h2>Chaos scenario matrix</h2>",
           '<p class="sub">Resilience under injected faults; "SLO min" '
           "is simulated minutes spent in windows with burn rate "
           "&gt; 1.</p>"]
    cols = [("scenario", "scenario"), ("mode", "mode"),
            ("status", "status"), ("p99_ms", "p99 (ms)"),
            ("goodput_qps", "goodput"), ("shed_rate", "shed"),
            ("degraded", "degraded"), ("violations", "invariant viol."),
            ("slo_minutes_violated", "SLO min"),
            ("slo_minutes_violated_controller", "SLO min (ctl)"),
            ("controller_actions", "ctl actions")]
    present = [(k, t) for k, t in cols if any(k in c for c in cells)]
    head = "".join(f"<th>{_esc(t)}</th>" for _, t in present)
    body = []
    for c in cells:
        tds = []
        for k, _ in present:
            v = c.get(k)
            tds.append(
                f"<td>{_esc(v) if isinstance(v, str) else _fmt(v)}</td>"
            )
        body.append("<tr>" + "".join(tds) + "</tr>")
    out.append(f"<table><tr>{head}</tr>{''.join(body)}</table>")

    bars = [
        (f"{c.get('scenario', '?')} ({c['mode']})"
         if c.get("mode") else str(c.get("scenario", "?")),
         c["slo_minutes_violated"])
        for c in cells
        if isinstance(c.get("slo_minutes_violated"), (int, float))
    ]
    out.append(_bar_figure(
        "SLO minutes violated per scenario",
        "simulated minutes out of SLO under each fault scenario",
        bars, " min"))
    return "".join(out)


def build_report(serve=None, chaos=None,
                 trace_sections: list[tuple[str, str]] | None = None,
                 title: str = "repro run report") -> str:
    """Render the unified HTML run report (a pure function of inputs).

    ``serve`` is one :meth:`~repro.serve.stats.ServeReport.to_dict`
    payload or a list of them (one section each); ``chaos`` accepts the
    ``repro chaos`` report or a flat cell list (see
    :func:`_flatten_chaos`); ``trace_sections`` are ``(heading, text)``
    pairs rendered preformatted.
    """
    body: list[str] = [f"<h1>{_esc(title)}</h1>",
                       '<p class="sub">DSP reproduction — streaming '
                       "metrics, SLO health and trace analyses in one "
                       "artifact.</p>"]
    for s in (serve if isinstance(serve, list) else [serve] if serve else []):
        body.append(_serve_section(s))
    if chaos:
        section = _chaos_section(chaos)
        if section:
            body.append(section)
    for name, text in trace_sections or []:
        body.append(f"<h2>{_esc(name)}</h2><pre>{_esc(text)}</pre>")
    if len(body) == 2:
        body.append('<p class="sub">Nothing to report — pass --serve, '
                    "--chaos or --trace.</p>")
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        '<meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width,initial-scale=1">'
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body><main>{''.join(body)}</main>"
        f"<script>{_JS}</script></body></html>\n"
    )


def write_report(path, **kwargs) -> None:
    with open(path, "w") as f:
        f.write(build_report(**kwargs))
