"""Per-GPU dynamic batching with bounded admission and load shedding.

Each GPU owns an :class:`AdmissionBatcher`: arriving requests enter a
bounded admission queue (arrivals beyond ``queue_capacity`` are **shed**
— an open-loop server must drop rather than queue unboundedly), and a
batch *closes* when either

- ``batch_max`` requests are pending, or
- the oldest pending request has waited ``timeout_s``

— the standard max-size / max-wait dynamic batcher.  Under light load
batches close on the timeout (small batches, latency-bound); as load
approaches saturation the queue backs up and batches close full
(throughput-bound) — that transition is the latency–throughput knee the
sweep driver measures.

The batcher is a simulator citizen: the consumer (the serving
pipeline's batcher process) blocks on :meth:`next_batch` exactly like a
:class:`~repro.engine.resources.BoundedQueue` getter, and the producer
side (:meth:`offer`) is called from the arrivals process at each
request's arrival instant.  Timeout closes are driven by simulator
timers, so no wall-clock is involved anywhere.

Live knobs
----------
``batch_max`` / ``timeout_s`` / ``queue_capacity`` are *instance*
attributes seeded from the frozen :class:`BatcherConfig`.  The serving
control plane (:mod:`repro.control`) retunes them mid-run through
:meth:`apply`; without a controller they never move, and every decision
reads the same values the config carried — the default path is
bit-identical to the pre-controller batcher.

Tenancy and pressure
--------------------
With a :class:`~repro.control.tenancy.TenantState` attached, admission
additionally enforces per-tenant quotas (shed reason ``"quota"``), and
a controller-raised ``pressure`` level sheds requests whose priority is
below it (shed reason ``"priority"``) before they ever occupy a queue
slot.  Both gates are skipped entirely when unused.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.engine.simulator import Process, Simulator
from repro.serve.workload import Request
from repro.utils.errors import ConfigError, ReproError

#: admission shed reasons, in check order
SHED_REASONS = ("priority", "quota", "capacity")


@dataclass(frozen=True)
class BatcherConfig:
    """Dynamic-batching knobs (per GPU)."""

    batch_max: int = 16
    timeout_s: float = 2e-3
    queue_capacity: int = 64

    def __post_init__(self) -> None:
        if self.batch_max < 1:
            raise ConfigError("batch_max must be positive")
        if self.timeout_s < 0:
            raise ConfigError("timeout_s must be non-negative")
        if self.queue_capacity < 1:
            raise ConfigError("queue_capacity must be positive")


class AdmissionBatcher:
    """Bounded admission queue + max-size/max-wait batch former."""

    def __init__(self, sim: Simulator, gpu: int, config: BatcherConfig,
                 tenants=None):
        self.sim = sim
        self.gpu = gpu
        self.config = config
        # live knobs: the controller mutates these via apply(); the
        # frozen config stays the baseline it recovers toward
        self.batch_max = config.batch_max
        self.timeout_s = config.timeout_s
        self.queue_capacity = config.queue_capacity
        #: optional per-tenant quota accounting (TenantState)
        self.tenants = tenants
        #: controller pressure level: shed priority < pressure
        self.pressure = 0
        #: reason of the most recent shed (read by the arrivals loop)
        self.last_shed_reason: str | None = None
        self.name = f"admit-gpu{gpu}"
        self.pending: deque[Request] = deque()
        self.shed: list[Request] = []
        self.closing = False
        self._waiter: Process | None = None
        #: deadline of the armed timeout timer (None = no timer in flight)
        self._timer_deadline: float | None = None
        # lazily bound metrics instruments (only when sim.metrics is set)
        self._m_depth = None
        self._m_shed = None

    # -- producer side (arrivals process) ------------------------------
    def offer(self, req: Request) -> bool:
        """Admit ``req`` at the current simulated time; False = shed."""
        if self.pressure > req.priority:
            return self._shed(req, "priority")
        tenants = self.tenants
        if tenants is not None and req.tenant is not None:
            if (tenants.pending[req.tenant]
                    >= tenants.quota_slots[req.tenant]):
                return self._shed(req, "quota")
        if len(self.pending) >= self.queue_capacity:
            return self._shed(req, "capacity")
        self.pending.append(req)
        if tenants is not None and req.tenant is not None:
            tenants.pending[req.tenant] += 1
            if self.sim.invariants is not None:
                self.sim.invariants.on_admit(
                    self.name, req.tenant, tenants.pending[req.tenant],
                    tenants.quota_slots[req.tenant],
                )
        if self.sim.tracer is not None:
            self._trace_depth()
        if self.sim.metrics is not None:
            self._metric_depth()
        self._service()
        return True

    def close(self) -> None:
        """No more arrivals: drain remaining requests, then hand the
        consumer the ``None`` sentinel."""
        self.closing = True
        self._service()

    # -- consumer side (batcher process) --------------------------------
    def next_batch(self) -> "_NextBatch":
        """Simulator request: resolves to a list of requests, or to
        ``None`` once the batcher is closed and drained."""
        return _NextBatch(self)

    # -- control plane ----------------------------------------------------
    def apply(self, batch_max: int | None = None,
              timeout_s: float | None = None,
              pressure: int | None = None) -> None:
        """Retune live knobs at the current simulated instant.

        Takes effect immediately: a shrunken ``batch_max`` or
        ``timeout_s`` can close the pending batch right now, so the
        batcher re-services its consumer (and re-arms the timeout
        timer against the new deadline) after every change.
        """
        if batch_max is not None:
            if batch_max < 1:
                raise ConfigError("batch_max must be positive")
            self.batch_max = int(batch_max)
        if timeout_s is not None:
            if timeout_s < 0:
                raise ConfigError("timeout_s must be non-negative")
            self.timeout_s = float(timeout_s)
        if pressure is not None:
            if pressure < 0:
                raise ConfigError("pressure must be non-negative")
            self.pressure = int(pressure)
        self._service()

    # -- internals -------------------------------------------------------
    def _shed(self, req: Request, reason: str) -> bool:
        self.shed.append(req)
        self.last_shed_reason = reason
        if self.sim.tracer is not None:
            self.sim.tracer.instant(
                self.name, "shed", self.sim.now, cat="shed", rid=req.rid
            )
        if self.sim.metrics is not None:
            shed = self._m_shed
            if shed is None:
                shed = self._m_shed = self.sim.metrics.counter(
                    "requests_shed", gpu=self.gpu
                )
            shed.inc(self.sim.now)
            if reason != "capacity":
                self.sim.metrics.counter(
                    "requests_shed_reason", reason=reason
                ).inc(self.sim.now)
        return False

    def _ready(self) -> bool:
        if not self.pending:
            return False
        if len(self.pending) >= self.batch_max or self.closing:
            return True
        oldest = self.pending[0].arrival
        return self.sim.now - oldest >= self.timeout_s

    def _pop_batch(self) -> list[Request]:
        n = min(len(self.pending), self.batch_max)
        batch = [self.pending.popleft() for _ in range(n)]
        tenants = self.tenants
        if tenants is not None:
            for req in batch:
                if req.tenant is not None:
                    tenants.pending[req.tenant] -= 1
        if self.sim.tracer is not None:
            self._trace_depth()
        if self.sim.metrics is not None:
            self._metric_depth()
        return batch

    def _service(self) -> None:
        """Resume a blocked consumer if a batch can close right now,
        otherwise make sure a timeout timer is armed."""
        if self._waiter is None:
            return
        if self._ready():
            proc, self._waiter = self._waiter, None
            self.sim.resume(proc, self._pop_batch())
        elif self.closing and not self.pending:
            proc, self._waiter = self._waiter, None
            self.sim.resume(proc, None)
        elif self.pending:
            self._arm_timer()

    def _arm_timer(self) -> None:
        deadline = self.pending[0].arrival + self.timeout_s
        if self._timer_deadline is not None and self._timer_deadline <= deadline:
            return  # an earlier (or equal) timer will fire and re-arm
        self._timer_deadline = deadline
        self.sim.schedule(
            max(0.0, deadline - self.sim.now),
            lambda d=deadline: self._fire(d),
        )

    def _fire(self, deadline: float) -> None:
        if self._timer_deadline == deadline:
            self._timer_deadline = None
        # Close on the armed deadline itself: re-deriving "has the head
        # waited timeout_s" from sim.now can disagree with the deadline
        # by one ulp and re-arm a zero-delay timer forever.
        if (self._waiter is not None and self.pending
                and self.pending[0].arrival + self.timeout_s
                <= deadline):
            proc, self._waiter = self._waiter, None
            self.sim.resume(proc, self._pop_batch())
            return
        self._service()

    def _trace_depth(self) -> None:
        self.sim.tracer.counter(
            self.name, "depth", self.sim.now,
            depth=len(self.pending), shed=len(self.shed),
        )

    def _metric_depth(self) -> None:
        """Admission-depth gauge on a change.  Callers guard with
        ``if sim.metrics is not None`` (zero-cost-off)."""
        depth = self._m_depth
        if depth is None:
            depth = self._m_depth = self.sim.metrics.gauge(
                "admission_depth", gpu=self.gpu
            )
        depth.set(self.sim.now, len(self.pending))


@dataclass
class _NextBatch:
    """The blocking request yielded by the consumer process."""

    batcher: AdmissionBatcher
    result: object = None

    def __sim_request__(self, sim: Simulator, proc: Process) -> bool:
        b = self.batcher
        if b._waiter is not None:
            raise ReproError(f"{b.name}: only one consumer allowed")
        if b._ready():
            self.result = b._pop_batch()
            return True
        if b.closing and not b.pending:
            self.result = None
            return True
        proc.waiting_on = ("get", b.name)  # lazy; classified as queue-wait
        b._waiter = proc
        if b.pending:
            b._arm_timer()
        return False
