"""QPS sweep driver: offered load vs latency, and the saturation knee.

Replays one :class:`~repro.serve.workload.Workload` at a ladder of
offered loads (the same arrival pattern, time-compressed — common
random numbers) and reports, per point, the full SLO accounting.  The
*knee* is the largest offered QPS the server sustains: p99 latency
within the SLO and (at most) a token shed rate.  Comparing knees across
systems is the serving analogue of Table 4 — DSP's partitioned cache +
CSP sampling buy it a strictly higher sustainable QPS than Pull-Data
or UVA data movement at the same SLO.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.service import GNNServer, ServeConfig
from repro.serve.stats import ServeReport
from repro.serve.workload import Workload
from repro.utils.errors import ConfigError
from repro.utils.rng import make_rng, spawn_rngs


@dataclass(frozen=True)
class SweepPoint:
    """One offered load and the report the server produced under it."""

    qps: float
    report: ServeReport


def _reseed_sampler(system) -> None:
    """Restore the sampler's RNG streams to their built state so every
    sweep point samples the same neighbourhoods (comparability)."""
    sampler = getattr(system, "sampler", None)
    rngs = getattr(sampler, "rngs", None)
    if rngs is not None:
        sampler.rngs = spawn_rngs(make_rng(system.config.seed), len(rngs))


def _reset_dynamic(system) -> None:
    """Return the dynamic cache policy — and the shared store it
    mutates — to the post-warmup baseline, so each sweep point starts
    from the same placement whichever worker executes it."""
    dyn = getattr(getattr(system, "loader", None), "dynamic", None)
    if dyn is not None:
        dyn.reset()


def _reset_plan_cache(system) -> None:
    """Return the feature-path plan cache to its freshly-built state.

    Sweep points sharing a process also share ``system.loader`` and its
    plan cache; loader outputs are cache-transparent, but hit/miss
    counts (surfaced by the metrics layer) are not.  Resetting per run
    makes them a pure function of the point — byte-identical whichever
    worker executes it."""
    pc = getattr(getattr(system, "loader", None), "plan_cache", None)
    if pc is not None:
        pc.reset()


def serve_once(
    system,
    workload: Workload,
    qps: float,
    config: ServeConfig | None = None,
    tracer=None,
    metrics: bool = False,
    metrics_window_s: float | None = None,
) -> ServeReport:
    """Serve ``workload`` at one offered QPS; sampler RNGs are reset
    first so points of a sweep are independent and reproducible.

    With ``config.check_invariants`` the run is audited by an
    :class:`~repro.chaos.InvariantChecker` (strict: a broken simulation
    raises instead of producing a subtly wrong report); the report
    itself is bit-identical with the checker on or off.

    ``metrics=True`` attaches a
    :class:`~repro.metrics.MetricsRegistry` (window =
    ``metrics_window_s``, defaulting to the SLO) and fills
    ``report.metrics`` with the windowed SLO/stage/queue/cache summary
    (:func:`repro.metrics.serve_summary`).  Window boundaries are pure
    functions of simulated time, so the summary is byte-identical
    whichever worker runs the point.  With ``metrics=False`` the report
    is bit-identical to one produced before the metrics layer existed.
    """
    _reseed_sampler(system)
    _reset_dynamic(system)
    _reset_plan_cache(system)
    invariants = None
    if config is not None and config.check_invariants:
        from repro.chaos.invariants import InvariantChecker

        invariants = InvariantChecker()
    registry = None
    if metrics:
        from repro.metrics import MetricsRegistry

        cfg = config if config is not None else ServeConfig()
        registry = MetricsRegistry(
            window_s=(metrics_window_s if metrics_window_s is not None
                      else cfg.slo_s)
        )
    server = GNNServer(system, config, tracer=tracer, metrics=registry,
                       invariants=invariants)
    report = server.run(workload.requests(qps), offered_qps=qps)
    if invariants is not None:
        invariants.finalize()
    if registry is not None:
        from repro.metrics import serve_summary

        report.metrics = serve_summary(registry, report.slo_s)
    return report


def qps_sweep(
    system,
    workload: Workload,
    qps_values,
    config: ServeConfig | None = None,
    workers: int = 1,
    trace_base=None,
    metrics: bool = False,
    metrics_window_s: float | None = None,
    warm_nodes=None,
) -> list[SweepPoint]:
    """Serve the workload at each offered load, in increasing order.

    Every point is an independent run (``serve_once`` re-seeds the
    sampler), so with ``workers > 1`` the points fan out across CPU
    cores via :mod:`repro.parallel`; results are bit-identical to the
    serial sweep because both paths run the same ``serve_point``
    handler — the worker count only decides which process executes it.
    With ``workers <= 1`` the caller's already-built system is reused
    (adopted into the executor's per-process memo); workers build their
    own copy from the run spec's config.

    ``trace_base`` (a path like ``"sweep.json"``) makes each point
    record a :class:`~repro.obs.Tracer` and write its own Chrome trace
    named per run (``sweep-qps2000.json``, ...).

    ``metrics=True`` attaches a windowed metrics registry per point
    (see :func:`serve_once`); the summaries ride on each report and are
    byte-identical across ``workers`` settings.

    ``warm_nodes`` (renumbered node ids) seeds the dynamic cache policy
    from workload history *inside each executing process*, exactly once
    — worker processes rebuild the system from its config, so warmup
    applied only to the caller's system would make results depend on
    which process served a point.  Ignored when the system has no
    dynamic policy.
    """
    from repro.obs.export import run_trace_path
    from repro.parallel import RunSpec, adopt_system, run_tasks

    values = sorted(float(q) for q in qps_values)
    if not values:
        raise ConfigError("need at least one QPS value")
    specs = [
        RunSpec(
            kind="serve_point",
            label=f"qps{q:g}",
            seed=system.config.seed,
            payload={
                "system": system.name,
                "config": system.config,
                "workload": workload,
                "qps": q,
                "serve_config": config,
                "metrics": metrics,
                "metrics_window_s": metrics_window_s,
                "warm_nodes": warm_nodes,
            },
            trace_path=(
                run_trace_path(trace_base, f"qps{q:g}") if trace_base else None
            ),
        )
        for q in values
    ]
    if workers <= 1:
        adopt_system(system)
    reports = run_tasks(specs, workers=workers)
    return [
        SweepPoint(qps=q, report=r) for q, r in zip(values, reports)
    ]


def max_sustainable_qps(
    points: list[SweepPoint],
    slo_s: float | None = None,
    shed_tol: float = 0.01,
) -> float:
    """The knee: largest offered QPS with p99 <= SLO and shed rate <=
    ``shed_tol`` (0.0 when no point qualifies)."""
    best = 0.0
    for p in points:
        slo = p.report.slo_s if slo_s is None else slo_s
        if p.report.completed == 0:
            continue
        if p.report.p99 <= slo and p.report.shed_rate <= shed_tol:
            best = max(best, p.qps)
    return best
