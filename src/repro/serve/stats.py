"""SLO accounting for serving runs: percentiles, goodput, shed rate.

A request's latency decomposes into five stages (all simulated time):

- ``queue``   — arrival until its batch closed (admission + batching);
- ``batch``   — batch close until the pipeline started sampling it
  (dispatch backpressure when the GPU's pipeline is behind);
- ``sample`` / ``load`` / ``compute`` — wall time of the batch inside
  each pipeline stage, including resource waits.

Goodput counts only requests that finished within the SLO; shed
requests never execute, so they hurt goodput through the shed rate,
not the percentiles (standard open-loop methodology: latency is
reported over completed requests, shedding is reported separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import scrub_nan
from repro.metrics.quantile import percentiles

#: latency stages in pipeline order
STAGE_NAMES = ("queue", "batch", "sample", "load", "compute")


@dataclass
class RequestRecord:
    """Per-request outcome, filled in by the serving pipeline."""

    rid: int
    node: int
    arrival: float
    gpu: int = -1
    batch_id: int = -1
    shed: bool = False
    close: float = float("nan")  # batch-close instant
    start: float = float("nan")  # pipeline entry (sample start)
    done: float = float("nan")  # compute finished
    stages: dict = field(default_factory=dict)  # stage -> seconds
    prediction: int | None = None  # functional runs only
    degraded: bool = False  # served via a degraded path (chaos failover)
    tenant: str | None = None  # multi-tenant serving only
    priority: int = 0
    shed_reason: str | None = None  # "capacity" | "quota" | "priority"

    @property
    def latency(self) -> float:
        return self.done - self.arrival


@dataclass
class ServeReport:
    """Aggregate SLO view of one serving run at one offered load."""

    system: str
    offered_qps: float
    slo_s: float
    offered: int
    completed: int
    shed: int
    elapsed: float  # first arrival -> last completion (sim seconds)
    throughput_qps: float
    goodput_qps: float  # completed within the SLO, per second
    shed_rate: float
    slo_attainment: float  # in-SLO completions / offered
    p50: float
    p95: float
    p99: float
    mean_latency: float
    max_latency: float
    stage_means: dict  # stage name -> mean seconds over completions
    mean_batch_size: float
    num_batches: int
    accuracy: float = float("nan")  # functional runs with labels only
    degraded: int = 0  # completions served via a degraded path
    #: windowed metrics summary (:func:`repro.metrics.serve_summary`)
    #: attached by ``serve_once(metrics=True)``; None otherwise
    metrics: dict | None = None
    #: controller summary (action log + final knobs) attached by the
    #: serving control plane when a controller ran; None otherwise
    control: dict | None = None
    #: per-tenant accounting (:func:`repro.control.tenant_summary`)
    #: attached only under multi-tenant serving; None otherwise
    tenants: dict | None = None

    def to_dict(self) -> dict:
        out = {
            "system": self.system,
            "offered_qps": self.offered_qps,
            "slo_ms": self.slo_s * 1e3,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "elapsed_s": scrub_nan(self.elapsed),
            "throughput_qps": scrub_nan(self.throughput_qps),
            "goodput_qps": scrub_nan(self.goodput_qps),
            "shed_rate": self.shed_rate,
            "slo_attainment": self.slo_attainment,
            "latency_ms": {
                "p50": scrub_nan(self.p50 * 1e3),
                "p95": scrub_nan(self.p95 * 1e3),
                "p99": scrub_nan(self.p99 * 1e3),
                "mean": scrub_nan(self.mean_latency * 1e3),
                "max": scrub_nan(self.max_latency * 1e3),
            },
            "stage_means_ms": {
                k: scrub_nan(v * 1e3) for k, v in self.stage_means.items()
            },
            "mean_batch_size": scrub_nan(self.mean_batch_size),
            "num_batches": self.num_batches,
            "accuracy": scrub_nan(self.accuracy),
        }
        # emitted only when degradation happened, so fault-free report
        # JSON stays byte-identical to pre-chaos outputs
        if self.degraded:
            out["degraded"] = self.degraded
        # same contract: the key exists only when metrics were attached
        if self.metrics is not None:
            out["metrics"] = self.metrics
        # and again for the control plane: keys exist only when a
        # controller / tenancy actually ran, so default-path payloads
        # stay byte-identical to pre-control outputs
        if self.control is not None:
            out["control"] = self.control
        if self.tenants is not None:
            out["tenants"] = self.tenants
        return out


def build_report(
    system: str,
    offered_qps: float,
    slo_s: float,
    records: list[RequestRecord],
    num_batches: int,
    accuracy: float = float("nan"),
) -> ServeReport:
    """Aggregate per-request records into a :class:`ServeReport`."""
    offered = len(records)
    done = [r for r in records if not r.shed]
    shed = offered - len(done)
    latencies = np.array([r.latency for r in done]) if done else np.empty(0)
    last_event = max(
        [r.arrival for r in records] + [r.done for r in done], default=0.0
    )
    elapsed = float(last_event)
    within = int((latencies <= slo_s).sum()) if len(latencies) else 0

    if len(latencies):
        # the single shared quantile helper (numpy.percentile
        # semantics), so every report stays bit-identical to the
        # historical inline computation
        p50, p95, p99 = percentiles(latencies)
        mean_lat = float(latencies.mean())
        max_lat = float(latencies.max())
    else:
        p50 = p95 = p99 = mean_lat = max_lat = float("nan")

    stage_means = {}
    for name in STAGE_NAMES:
        vals = [r.stages.get(name, 0.0) for r in done]
        stage_means[name] = float(np.mean(vals)) if vals else float("nan")

    batch_sizes = len(done) / num_batches if num_batches else float("nan")
    return ServeReport(
        system=system,
        offered_qps=offered_qps,
        slo_s=slo_s,
        offered=offered,
        completed=len(done),
        shed=shed,
        elapsed=elapsed,
        throughput_qps=len(done) / elapsed if elapsed > 0 else float("nan"),
        goodput_qps=within / elapsed if elapsed > 0 else float("nan"),
        shed_rate=shed / offered if offered else 0.0,
        slo_attainment=within / offered if offered else 0.0,
        p50=p50,
        p95=p95,
        p99=p99,
        mean_latency=mean_lat,
        max_latency=max_lat,
        stage_means=stage_means,
        mean_batch_size=batch_sizes,
        num_batches=num_batches,
        accuracy=accuracy,
        degraded=sum(1 for r in done if r.degraded),
    )
