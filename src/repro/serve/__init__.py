"""Online GNN inference serving on the simulated cluster.

Turns the offline training simulator into a traffic-serving one: an
open-loop workload generator (:mod:`repro.serve.workload`), a per-GPU
dynamic batcher with bounded admission and load shedding
(:mod:`repro.serve.batcher`), a per-GPU sample -> load -> compute
serving pipeline over the discrete-event engine
(:mod:`repro.serve.service`), SLO accounting
(:mod:`repro.serve.stats`) and a QPS-sweep driver that locates the
saturation knee (:mod:`repro.serve.sweep`).  See ``docs/serving.md``.
"""

from repro.serve.batcher import AdmissionBatcher, BatcherConfig
from repro.serve.service import GNNServer, ServeConfig
from repro.serve.stats import ServeReport, build_report
from repro.serve.sweep import (
    SweepPoint,
    max_sustainable_qps,
    qps_sweep,
    serve_once,
)
from repro.serve.workload import Request, Workload, WorkloadConfig, make_workload

__all__ = [
    "AdmissionBatcher",
    "BatcherConfig",
    "GNNServer",
    "Request",
    "ServeConfig",
    "ServeReport",
    "SweepPoint",
    "Workload",
    "WorkloadConfig",
    "build_report",
    "make_workload",
    "max_sustainable_qps",
    "qps_sweep",
    "serve_once",
]
