"""Graceful degradation for serving: cache-peer loss failover.

DSP's feature cache is *partitioned* (§3.1): each GPU holds a distinct
shard, so losing a peer takes its shard with it — requests that would
have been served over NVLink must fail over to the UVA cold path
(host memory over PCIe), exactly like a cold miss.  Functionally
nothing changes (host memory still has every row); only placement and
therefore timing degrade.

:class:`DegradedStore` wraps any :class:`~repro.cache.store.CacheStore`
and reclassifies entries held by lost peers as COLD.
:func:`degraded_loader` builds a failover
:class:`~repro.cache.loader.FeatureLoader` over it — with the plan
cache disabled, because memoized placement plans do not encode which
peers are alive.
"""

from __future__ import annotations

import numpy as np

from repro.cache.loader import FeatureLoader
from repro.cache.store import CacheStore, Location, Placement


class DegradedStore(CacheStore):
    """A cache store view with some peers' shards gone.

    Entries whose holder is in ``lost`` (including the requesting GPU
    itself) answer COLD, so the loader routes them over UVA.
    """

    def __init__(self, store: CacheStore, lost):
        self.store = store
        self.lost = frozenset(lost)
        self.num_gpus = store.num_gpus

    def locate(self, nodes: np.ndarray, gpu: int) -> Location:
        loc = self.store.locate(nodes, gpu)
        if not self.lost:
            return loc
        dead = np.isin(loc.holder, np.fromiter(self.lost, dtype=np.int64))
        if not dead.any():
            return loc
        placement = loc.placement.copy()
        holder = loc.holder.copy()
        placement[dead] = Placement.COLD
        holder[dead] = -1
        return Location(placement, holder)

    def cached_nodes(self, gpu: int) -> np.ndarray:
        if gpu in self.lost:
            return np.empty(0, dtype=np.int64)
        return self.store.cached_nodes(gpu)


def degraded_loader(system, lost) -> FeatureLoader | None:
    """A failover loader for ``system`` with ``lost`` cache peers.

    Returns ``None`` when there is nothing to degrade: the system has
    no GPU cache store (host-gather baselines), nothing was lost, or
    the lost peers held no cached rows (e.g. DGL-UVA's ``NoCache`` —
    those systems are *immune* to cache-peer loss).  Callers keep
    using the system's own load path then.
    """
    base = getattr(system, "loader", None)
    store = getattr(base, "store", None)
    if store is None or not lost:
        return None
    if not any(len(store.cached_nodes(g)) for g in lost):
        return None
    return FeatureLoader(base.features, DegradedStore(store, lost),
                         plan_cache=None)


__all__ = ["DegradedStore", "degraded_loader"]
