"""The serving pipeline: batches -> CSP sample -> cache load -> forward.

:class:`GNNServer` wraps any built
:class:`~repro.core.system.TrainingSystem` and serves an open-loop
request stream on the discrete-event engine.  Per GPU it runs four
simulator processes connected by bounded queues (mirroring the
training pipeline of §5, but per *request batch* instead of per
training mini-batch):

``feeder``   closes dynamic batches (:mod:`repro.serve.batcher`) and
             pushes them into the pipeline — when the pipeline is
             behind, the push blocks, admission backs up and sheds;
``sampler``  runs the system's sampler (CSP for DSP, Pull-Data or UVA
             for the baselines) for the batch's ego networks;
``loader``   fetches features through the system's cache loader;
``compute``  prices (and, with ``functional=True``, actually runs) the
             model forward pass and completes the batch's requests.

Requests are routed to the GPU owning their seed's graph patch (DSP's
co-partitioning, §3.1); systems without a partition round-robin.  Seed
ids arrive in the dataset's *original* numbering and are mapped into
the system's renumbered space, so identical workloads are comparable
across systems.

Cost semantics: each of a batch's ops runs for its barrier wall time
(``OpCost.stage``) on the driving GPU, holding that GPU's SM footprint
and — for collectives — one of its communication channels.  Remote
GPUs' transient participation in a batch's all-to-alls is charged to
the batch's latency but not modelled as SM contention on the peers;
concurrent batches on one GPU do contend for its SMs and channels.

With a :class:`~repro.obs.Tracer` attached the run emits op spans
(tagged gpu/stage/batch), wait spans, SM/channel/queue-depth counters,
admission-depth counters and shed instants; with no tracer attached no
event object is allocated anywhere (same zero-cost-off guarantee as
the training pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.system import COMPUTE_DEDUP_CORRECTION
from repro.engine import BoundedQueue, Resource, Simulator
from repro.engine.simulator import Timeout
from repro.nn import Tensor
from repro.sampling.ops import LocalKernel, OpTrace
from repro.serve.batcher import AdmissionBatcher, BatcherConfig
from repro.serve.degrade import degraded_loader
from repro.serve.stats import RequestRecord, ServeReport, build_report
from repro.serve.workload import Request
from repro.utils.errors import ConfigError

#: serving pipeline stages in dependency order
SERVE_STAGES = ("sample", "load", "compute")


@dataclass(frozen=True)
class ServeConfig:
    """Server-side knobs (workload knobs live in WorkloadConfig)."""

    batch_max: int = 16
    batch_timeout_s: float = 2e-3
    queue_capacity: int = 64
    slo_s: float = 50e-3
    #: bounded-queue capacity between serving pipeline stages
    pipeline_depth: int = 2
    #: per-GPU communication channels collectives contend for
    comm_channels: int = 2
    #: run the real numpy forward pass and record predictions
    functional: bool = False
    #: audit the run with a :class:`repro.chaos.InvariantChecker`
    #: (attached by :func:`repro.serve.sweep.serve_once`; auditing
    #: never changes the report, it only raises on a broken simulation)
    check_invariants: bool = False
    #: online batcher tuner (:class:`repro.control.ControllerConfig`);
    #: None (the default) serves with static knobs, bit-identical to
    #: the pre-control code path
    controller: object | None = None
    #: multi-tenant admission (:class:`repro.control.TenancyConfig`);
    #: None serves a single anonymous tenant, bit-identically
    tenancy: object | None = None

    def __post_init__(self) -> None:
        if self.slo_s <= 0:
            raise ConfigError("slo_s must be positive")
        if self.pipeline_depth < 1:
            raise ConfigError("pipeline_depth must be positive")
        if self.comm_channels < 1:
            raise ConfigError("comm_channels must be positive")

    def batcher(self) -> BatcherConfig:
        return BatcherConfig(
            batch_max=self.batch_max,
            timeout_s=self.batch_timeout_s,
            queue_capacity=self.queue_capacity,
        )


class _Batch:
    """One dynamic batch moving through the serving pipeline."""

    __slots__ = ("bid", "gpu", "requests", "seeds", "close", "start",
                 "samples", "feats", "stages", "degraded")

    def __init__(self, bid: int, gpu: int, requests: list[Request],
                 seeds: np.ndarray, close: float):
        self.bid = bid
        self.gpu = gpu
        self.requests = requests
        self.seeds = seeds  # renumbered ids, one per request
        self.close = close
        self.start = float("nan")
        self.samples = None
        self.feats = None
        self.stages: dict = {}
        self.degraded = False  # served via a failover path


class GNNServer:
    """Serve an open-loop request stream on a built training system."""

    def __init__(self, system, config: ServeConfig | None = None,
                 tracer=None, metrics=None, injector=None, invariants=None):
        self.system = system
        self.config = config if config is not None else ServeConfig()
        self.tracer = tracer
        #: optional :class:`repro.metrics.MetricsRegistry` — streams
        #: per-stage latency/batch/queue/shed/cache series into fixed
        #: sim-time windows (zero-cost when None, like the tracer)
        self.metrics = metrics
        #: optional :class:`repro.chaos.FaultInjector` (straggler /
        #: link faults and lost cache peers perturb the serve replay)
        self.injector = injector
        #: optional :class:`repro.chaos.InvariantChecker`
        self.invariants = invariants
        self.k = system.k
        numbering = getattr(system, "numbering", None)
        self._old_to_new = None if numbering is None else numbering.old_to_new
        self._owner_of = getattr(system.sampler, "owner_of", None)

    # -- request routing -------------------------------------------------
    def map_seed(self, node: int) -> int:
        """Original-numbering node id -> the system's id space."""
        if self._old_to_new is None:
            return int(node)
        return int(self._old_to_new[node])

    def route(self, req: Request, seed: int) -> int:
        """GPU that admits the request (patch owner, else round-robin)."""
        if self._owner_of is not None:
            return int(self._owner_of(np.asarray([seed]))[0])
        return req.rid % self.k

    # -- the simulated serving run ----------------------------------------
    def run(self, requests: list[Request],
            offered_qps: float | None = None) -> ServeReport:
        """Serve ``requests`` (sorted by arrival); returns the report."""
        if not requests:
            raise ConfigError("need at least one request")
        system, cfg, k = self.system, self.config, self.k
        met = self.metrics
        controller = None
        if cfg.controller is not None:
            # the tuner reads windowed completion/violation counts, so a
            # controlled run always streams metrics — into a private
            # registry when the caller didn't attach one (the report's
            # ``metrics`` field stays None either way, see serve_once)
            from repro.control.controller import ServeController

            if met is None:
                from repro.metrics import MetricsRegistry

                met = MetricsRegistry(window_s=cfg.slo_s)
            controller = ServeController(cfg.controller, cfg, met,
                                         tracer=self.tracer)
        if cfg.tenancy is not None:
            requests = cfg.tenancy.assign(requests)
        sim = Simulator(tracer=self.tracer, metrics=met)
        tracer = self.tracer
        inj = self.injector
        if self.invariants is not None:
            sim.invariants = self.invariants
        if inj is not None:
            inj.install(sim)
        plan_cache = getattr(system.loader, "plan_cache", None)
        # failover loaders per lost-peer set, built lazily on first use
        failover_loaders: dict = {}

        # pre-bound metrics instruments (hot-path hooks below are all
        # guarded by ``met is not None`` — zero-cost when detached)
        m_lat = m_batch = m_done = m_viol = m_degr = None
        m_stage: dict = {}
        if met is not None:
            m_lat = met.histogram("request_latency")
            m_stage = {
                s: met.histogram("stage_latency", stage=s)
                for s in ("queue", "batch") + SERVE_STAGES
            }
            m_batch = met.histogram("batch_size")
            m_done = met.counter("requests_completed")
            m_viol = met.counter("slo_violations")
            m_degr = met.counter("requests_degraded")

        threads = [
            Resource(sim, system.cluster.gpu.total_threads,
                     name=f"serve-gpu{g}-sm")
            for g in range(k)
        ]
        channels = [
            Resource(sim, cfg.comm_channels, name=f"serve-gpu{g}-comm")
            for g in range(k)
        ]
        if cfg.tenancy is not None:
            from repro.control.tenancy import TenantState

            batchers = [
                AdmissionBatcher(
                    sim, g, cfg.batcher(),
                    tenants=TenantState(cfg.tenancy, cfg.queue_capacity),
                )
                for g in range(k)
            ]
        else:
            batchers = [AdmissionBatcher(sim, g, cfg.batcher())
                        for g in range(k)]
        sampleq = [BoundedQueue(sim, cfg.pipeline_depth, name=f"gpu{g}-sampleq")
                   for g in range(k)]
        loadq = [BoundedQueue(sim, cfg.pipeline_depth, name=f"gpu{g}-serveloadq")
                 for g in range(k)]
        computeq = [BoundedQueue(sim, cfg.pipeline_depth,
                                 name=f"gpu{g}-computeq")
                    for g in range(k)]

        records: dict[int, RequestRecord] = {}
        route_of: dict[int, int] = {}
        seed_of: dict[int, int] = {}
        for req in requests:
            seed = self.map_seed(req.node)
            gpu = self.route(req, seed)
            seed_of[req.rid] = seed
            route_of[req.rid] = gpu
            records[req.rid] = RequestRecord(
                rid=req.rid, node=req.node, arrival=req.arrival, gpu=gpu,
                tenant=req.tenant, priority=req.priority,
            )
        batch_count = [0]
        #: outstanding requests — the controller's termination signal
        #: (only maintained when a controller is attached)
        remaining = [len(requests)] if controller is not None else None
        if controller is not None:
            controller.install(sim, batchers, remaining)

        def run_op(g: int, cost, stage: str, bid: int, track: str):
            t0 = sim.now
            dur = float(cost.stage)
            if inj is not None:
                if any(cost.link_bytes().values()):
                    bw = inj.blackout_wait(cost)
                    if bw > 0.0:
                        yield Timeout(bw)
                    dur *= inj.comm_scale(g, cost)
                elif not cost.host:
                    dur *= inj.compute_scale(g)
            if cost.host:
                yield Timeout(dur)
            else:
                footprint = min(cost.threads, threads[g].capacity)
                if cost.collective:
                    yield channels[g].acquire(1)
                yield threads[g].acquire(footprint)
                yield Timeout(dur)
                threads[g].release(footprint)
                if cost.collective:
                    channels[g].release(1)
            if tracer is not None:
                tracer.span(track, cost.label, cat=stage, start=t0,
                            end=sim.now, gpu=g, stage=stage, batch=bid,
                            collective=cost.collective)

        def arrivals():
            for req in requests:
                if req.arrival > sim.now:
                    yield Timeout(req.arrival - sim.now)
                b = batchers[route_of[req.rid]]
                if not b.offer(req):
                    rec = records[req.rid]
                    rec.shed = True
                    rec.shed_reason = b.last_shed_reason
                    if remaining is not None:
                        remaining[0] -= 1
            for b in batchers:
                b.close()

        def feeder(g: int):
            while True:
                reqs = yield batchers[g].next_batch()
                if reqs is None:
                    yield sampleq[g].put(None)
                    return
                bid = batch_count[0]
                batch_count[0] += 1
                seeds = np.array([seed_of[r.rid] for r in reqs],
                                 dtype=np.int64)
                batch = _Batch(bid, g, reqs, seeds, close=sim.now)
                for r in reqs:
                    rec = records[r.rid]
                    rec.batch_id = bid
                    rec.close = sim.now
                if tracer is not None:
                    tracer.instant(f"batcher-gpu{g}", "batch-close", sim.now,
                                   cat="batch", batch=bid, size=len(reqs))
                if met is not None:
                    m_batch.observe(sim.now, len(reqs))
                yield sampleq[g].put(batch)

        def sampler(g: int):
            track = f"sampler-gpu{g}"
            while True:
                batch = yield sampleq[g].get()
                if batch is None:
                    yield loadq[g].put(None)
                    return
                batch.start = sim.now
                t0 = sim.now
                per_gpu = [np.empty(0, dtype=np.int64) for _ in range(k)]
                per_gpu[g] = batch.seeds
                samples, trace = system._sample(per_gpu)
                for cost in system.engine.trace_cost(trace):
                    yield from run_op(g, cost, "sample", batch.bid, track)
                batch.samples = samples
                batch.stages["sample"] = sim.now - t0
                yield loadq[g].put(batch)

        def loader(g: int):
            track = f"loader-gpu{g}"
            while True:
                batch = yield loadq[g].get()
                if batch is None:
                    yield computeq[g].put(None)
                    return
                t0 = sim.now
                reqs = [s.all_nodes for s in batch.samples]
                failover = None
                if inj is not None:
                    lost = inj.lost_peers()
                    if lost:
                        if lost not in failover_loaders:
                            failover_loaders[lost] = degraded_loader(
                                system, lost)
                        failover = failover_loaders[lost]
                if failover is not None:
                    # lost cache peer: serve the batch over the UVA
                    # cold path instead of the dead shard
                    feats, trace, stats = failover.load(reqs)
                    batch.degraded = True
                    if tracer is not None:
                        tracer.instant(track, "degraded-load", sim.now,
                                       cat="chaos", batch=batch.bid,
                                       lost=sorted(lost))
                else:
                    feats, trace, stats = system._load(reqs)
                for cost in system.engine.trace_cost(trace):
                    yield from run_op(g, cost, "load", batch.bid, track)
                if tracer is not None and plan_cache is not None:
                    tracer.counter("plan-cache", "plan-cache", sim.now,
                                   hits=plan_cache.hits,
                                   misses=plan_cache.misses)
                dyn = stats.pop("dynamic", None)
                if met is not None:
                    for path, n in stats.items():
                        if n:
                            met.counter("feature_requests", path=path).inc(
                                sim.now, n
                            )
                    hits = stats["local"] + stats["remote"]
                    if hits:
                        met.counter("cache_hit").inc(sim.now, hits)
                    if dyn is not None:
                        if dyn["promoted"]:
                            met.counter("cache_promote").inc(
                                sim.now, dyn["promoted"])
                        if dyn["demoted"]:
                            met.counter("cache_demote").inc(
                                sim.now, dyn["demoted"])
                    if plan_cache is not None:
                        met.gauge("plan_cache_hits").set(
                            sim.now, plan_cache.hits)
                        met.gauge("plan_cache_misses").set(
                            sim.now, plan_cache.misses)
                batch.feats = feats
                batch.stages["load"] = sim.now - t0
                yield computeq[g].put(batch)

        def compute(g: int):
            track = f"infer-gpu{g}"
            while True:
                batch = yield computeq[g].get()
                if batch is None:
                    return
                t0 = sim.now
                sample = batch.samples[g]
                flops = np.zeros(k)
                flops[g] = (system.models[g].forward_flops(sample)
                            * COMPUTE_DEDUP_CORRECTION)
                trace = OpTrace()
                trace.add(LocalKernel("compute", flops, label="serve-infer"))
                for cost in system.engine.trace_cost(trace):
                    yield from run_op(g, cost, "compute", batch.bid, track)
                batch.stages["compute"] = sim.now - t0
                preds = None
                if cfg.functional and len(sample.seeds):
                    out = system.models[g](sample, Tensor(batch.feats[g]),
                                           training=False)
                    preds = np.argmax(out.data, axis=1)
                for i, r in enumerate(batch.requests):
                    rec = records[r.rid]
                    rec.done = sim.now
                    rec.degraded = batch.degraded
                    rec.stages = {
                        "queue": rec.close - rec.arrival,
                        "batch": batch.start - rec.close,
                        **batch.stages,
                    }
                    if preds is not None:
                        rec.prediction = int(preds[i])
                    if met is not None:
                        lat = rec.latency
                        m_lat.observe(sim.now, lat)
                        m_done.inc(sim.now)
                        # the SLO boundary is decided here, on the exact
                        # latency — never re-derived from bucketed state
                        if lat > cfg.slo_s:
                            m_viol.inc(sim.now)
                        if batch.degraded:
                            m_degr.inc(sim.now)
                        for stage, dur in rec.stages.items():
                            m_stage[stage].observe(sim.now, dur)
                if remaining is not None:
                    remaining[0] -= len(batch.requests)

        if tracer is not None:
            if plan_cache is not None:
                tracer.declare_track("plan-cache", group="cache", sort=0)
            for g in range(k):
                tracer.declare_track(f"batcher-gpu{g}", group=f"gpu{g}", sort=0)
                tracer.declare_track(f"sampler-gpu{g}", group=f"gpu{g}", sort=1)
                tracer.declare_track(f"loader-gpu{g}", group=f"gpu{g}", sort=2)
                tracer.declare_track(f"infer-gpu{g}", group=f"gpu{g}", sort=3)
        sim.spawn(arrivals(), name="arrivals")
        for g in range(k):
            sim.spawn(feeder(g), name=f"batcher-gpu{g}")
            sim.spawn(sampler(g), name=f"sampler-gpu{g}")
            sim.spawn(loader(g), name=f"loader-gpu{g}")
            sim.spawn(compute(g), name=f"infer-gpu{g}")
        sim.run()
        if met is not None:
            met.finalize(sim.now)

        ordered = [records[r.rid] for r in requests]
        accuracy = float("nan")
        if cfg.functional:
            done = [r for r in ordered if not r.shed and r.prediction is not None]
            if done:
                labels = system.data.labels
                hits = sum(
                    int(r.prediction == int(labels[seed_of[r.rid]]))
                    for r in done
                )
                accuracy = hits / len(done)
        if offered_qps is None:
            span = max(r.arrival for r in requests)
            offered_qps = len(requests) / span if span > 0 else float("nan")
        #: per-request records / batch count / functional accuracy of the
        #: latest run, kept for replica merging (repro.cluster.serve)
        self.last_records = ordered
        self.last_num_batches = batch_count[0]
        self.last_accuracy = accuracy
        report = build_report(
            system.name, offered_qps, cfg.slo_s, ordered, batch_count[0],
            accuracy=accuracy,
        )
        if controller is not None:
            report.control = controller.summary()
        if cfg.tenancy is not None:
            from repro.control.tenancy import tenant_summary

            report.tenants = tenant_summary(ordered, cfg.slo_s)
        return report
