"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``train``    train one system and print per-epoch metrics
``compare``  run several systems on one workload (Table 4 style)
``info``     show datasets, systems and the simulated hardware
``infer``    train then run distributed full-graph inference
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.harness import TABLE_SYSTEMS
from repro.core import RunConfig, SYSTEMS, build_system
from repro.graph import DATASET_SPECS
from repro.utils import fmt_bytes, fmt_time


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", default="products", choices=sorted(DATASET_SPECS))
    p.add_argument("--gpus", type=int, default=8)
    p.add_argument("--model", default="sage", choices=["sage", "gcn", "gat"])
    p.add_argument("--hidden", type=int, default=256)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--fanout", default="15,10,5",
                   help="comma-separated per-layer fan-out")
    p.add_argument("--lr", type=float, default=3e-3)
    p.add_argument("--seed", type=int, default=0)


def _config(args) -> RunConfig:
    return RunConfig(
        dataset=args.dataset,
        num_gpus=args.gpus,
        model=args.model,
        hidden_dim=args.hidden,
        batch_size=args.batch_size,
        fanout=tuple(int(f) for f in args.fanout.split(",")),
        lr=args.lr,
        seed=args.seed,
    )


def cmd_train(args) -> int:
    """``repro train``: train one system, print per-epoch metrics."""
    cfg = _config(args)
    system = build_system(args.system, cfg)
    rows = []
    print(f"{'epoch':>5} {'loss':>9} {'val acc':>8} {'epoch time':>12} "
          f"{'NVLink':>10} {'PCIe':>10}")
    for epoch in range(args.epochs):
        m = system.run_epoch(functional=not args.cost_only)
        rows.append(m)
        print(f"{epoch:>5} {m.loss:>9.4f} {m.val_accuracy:>8.2%} "
              f"{fmt_time(m.epoch_time):>12} {fmt_bytes(m.nvlink_bytes):>10} "
              f"{fmt_bytes(m.pcie_bytes):>10}")
    if args.json:
        json.dump([_metrics_dict(m) for m in rows], sys.stdout, indent=2)
        print()
    return 0


def cmd_compare(args) -> int:
    """``repro compare``: Table-4-style system comparison."""
    cfg = _config(args)
    systems = args.systems.split(",") if args.systems else list(TABLE_SYSTEMS)
    print(f"{'system':<10} {'epoch':>12} {'sample':>12} {'load':>12} "
          f"{'train':>12}")
    out = {}
    for name in systems:
        m = build_system(name, cfg).run_epoch(
            max_batches=args.batches, functional=False
        )
        out[name] = m
        print(f"{name:<10} {fmt_time(m.epoch_time):>12} "
              f"{fmt_time(m.sample_time):>12} {fmt_time(m.load_time):>12} "
              f"{fmt_time(m.train_time):>12}")
    if args.json:
        json.dump({n: _metrics_dict(m) for n, m in out.items()},
                  sys.stdout, indent=2)
        print()
    return 0


def cmd_info(args) -> int:
    """``repro info``: list datasets, systems and the hardware model."""
    from repro.hw import Topology
    from repro.utils import GB

    print("datasets:")
    for name, spec in DATASET_SPECS.items():
        print(f"  {name:<12} {spec.num_nodes:>8} nodes {spec.num_edges:>9} "
              f"edges  dim {spec.feature_dim:>3}  scale {spec.scale:7.1f}")
    print("\nsystems:", ", ".join(sorted(SYSTEMS)))
    print("\nDGX-1 model (Table 1):")
    for k in (1, 2, 4, 8):
        t = Topology.dgx1(k)
        print(f"  {k}-GPU: NVLink {t.aggregate_nvlink_bandwidth() / GB:6.0f} "
              f"GB/s, PCIe {t.aggregate_pcie_bandwidth() / GB:4.0f} GB/s")
    return 0


def cmd_infer(args) -> int:
    """``repro infer``: train briefly, then full-graph inference."""
    from repro.core.inference import full_graph_inference
    from repro.nn import accuracy

    cfg = _config(args)
    system = build_system(args.system, cfg)
    for epoch in range(args.epochs):
        m = system.run_epoch()
        print(f"epoch {epoch}: loss {m.loss:.4f} val {m.val_accuracy:.2%}")
    preds, trace = full_graph_inference(system)
    t = system.engine.stage_time(trace)
    test = system.data.test_nodes
    acc = accuracy(preds[test], system.data.labels[test])
    print(f"full-graph inference: test accuracy {acc:.2%}, "
          f"simulated time {fmt_time(t)}")
    return 0


def _metrics_dict(m) -> dict:
    return {
        "epoch_time": m.epoch_time,
        "sample_time": m.sample_time,
        "load_time": m.load_time,
        "train_time": m.train_time,
        "nvlink_bytes": m.nvlink_bytes,
        "pcie_bytes": m.pcie_bytes,
        "network_bytes": m.network_bytes,
        "loss": None if m.loss != m.loss else m.loss,
        "val_accuracy": None if m.val_accuracy != m.val_accuracy
        else m.val_accuracy,
        "utilization": m.utilization,
        "num_batches": m.num_batches,
    }


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DSP (PPoPP'23) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("train", help="train one system")
    _add_workload_args(p)
    p.add_argument("--system", default="DSP", choices=sorted(SYSTEMS))
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--cost-only", action="store_true",
                   help="skip numpy training, keep cost accounting")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("compare", help="compare systems on one workload")
    _add_workload_args(p)
    p.add_argument("--systems", default="",
                   help="comma-separated subset (default: all five)")
    p.add_argument("--batches", type=int, default=6)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("info", help="datasets / systems / hardware model")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("infer", help="train then full-graph inference")
    _add_workload_args(p)
    p.add_argument("--system", default="DSP", choices=sorted(SYSTEMS))
    p.add_argument("--epochs", type=int, default=3)
    p.set_defaults(func=cmd_infer)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
