"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``train``    train one system and print per-epoch metrics
``compare``  run several systems on one workload (Table 4 style)
``info``     show datasets, systems and the simulated hardware
``infer``    train then run distributed full-graph inference
``serve``    online inference serving: QPS sweep, SLO accounting, knee
``trace``    run one traced epoch; write a Chrome trace, print stalls
``perf``     wall-clock microbenchmarks -> BENCH_perf.json
``chaos``    deterministic fault-injection scenarios -> resilience report
``control``  controller-on vs static SLO-minutes matrix -> verdict
``report``   merge saved serve/chaos/trace artifacts into one HTML report
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.harness import TABLE_SYSTEMS
from repro.core import RunConfig, SYSTEMS, build_system
from repro.core.metrics import metrics_dict as _metrics_dict, scrub_nan
from repro.graph import DATASET_SPECS
from repro.utils import fmt_bytes, fmt_time


def _fail(message: str) -> int:
    """One-line operator-facing error on stderr; exit status 1."""
    print(f"error: {message}", file=sys.stderr)
    return 1


def _control_figures(control: dict | None) -> tuple[int, int]:
    """(total controller actions, final replica count) from any of the
    three ``report.control`` shapes: single-server tuner summary,
    router ``{"replicas": [...]}``, autoscaler ``{"autoscale": ...}``."""
    if not control:
        return 0, 1
    actions = 0
    replicas = 1
    tuners = control.get("replicas", [control] if "action_counts" in control
                         else [])
    for t in tuners:
        if t:
            actions += sum(t.get("action_counts", {}).values())
    replicas = max(replicas, len(tuners))
    auto = control.get("autoscale")
    if auto:
        actions += len(auto.get("actions", ()))
        replicas = auto.get("final_replicas", replicas)
    return actions, replicas


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", default="products", choices=sorted(DATASET_SPECS))
    p.add_argument("--gpus", type=int, default=8)
    p.add_argument("--num-nodes", type=int, default=1,
                   help="servers in the cluster (default 1; >1 needs a "
                        "DSP-family system, see docs/cluster.md)")
    p.add_argument("--nic", default="ethernet",
                   choices=["ethernet", "infiniband"],
                   help="cross-server NIC model (default ethernet)")
    p.add_argument("--model", default="sage", choices=["sage", "gcn", "gat"])
    p.add_argument("--hidden", type=int, default=256)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--fanout", default="15,10,5",
                   help="comma-separated per-layer fan-out")
    p.add_argument("--lr", type=float, default=3e-3)
    p.add_argument("--dynamic-cache", action="store_true",
                   help="access-frequency cache promotion/demotion on "
                        "top of the static layout (DSP family; see "
                        "docs/caching.md)")
    p.add_argument("--cache-window", type=int, default=8,
                   help="loader calls per dynamic rebalance window "
                        "(default 8)")
    p.add_argument("--cache-ewma", type=float, default=0.5,
                   help="EWMA weight of the newest window (default 0.5)")
    p.add_argument("--cache-prefetch", type=int, default=32,
                   help="max frontier-prefetch promotions per patch per "
                        "load, 0 = off (default 32)")
    p.add_argument("--cache-bias", type=float, default=0.0,
                   help="GNS-style sampling bias toward cached nodes "
                        "(default 0 = off, bit-identical sampling)")
    p.add_argument("--compress", default="none",
                   choices=["none", "fp16", "int8"],
                   help="cold-path feature codec: non-local rows travel "
                        "compressed and decode on arrival (default none)")
    p.add_argument("--cache-bytes", type=float, default=None,
                   help="per-GPU feature cache budget in bytes (default: "
                        "whatever fits device memory)")
    p.add_argument("--seed", type=int, default=0)


def _config(args) -> RunConfig:
    return RunConfig(
        dataset=args.dataset,
        num_gpus=args.gpus,
        num_nodes=args.num_nodes,
        nic=args.nic,
        model=args.model,
        hidden_dim=args.hidden,
        batch_size=args.batch_size,
        fanout=tuple(int(f) for f in args.fanout.split(",")),
        lr=args.lr,
        dynamic_cache=args.dynamic_cache,
        cache_window=args.cache_window,
        cache_ewma=args.cache_ewma,
        cache_prefetch=args.cache_prefetch,
        cache_bias=args.cache_bias,
        compress=args.compress,
        feature_cache_bytes=args.cache_bytes,
        seed=args.seed,
    )


def cmd_train(args) -> int:
    """``repro train``: train one system, print per-epoch metrics."""
    cfg = _config(args)
    system = build_system(args.system, cfg)
    rows = []
    print(f"{'epoch':>5} {'loss':>9} {'val acc':>8} {'epoch time':>12} "
          f"{'NVLink':>10} {'PCIe':>10}")
    for epoch in range(args.epochs):
        m = system.run_epoch(functional=not args.cost_only)
        rows.append(m)
        print(f"{epoch:>5} {m.loss:>9.4f} {m.val_accuracy:>8.2%} "
              f"{fmt_time(m.epoch_time):>12} {fmt_bytes(m.nvlink_bytes):>10} "
              f"{fmt_bytes(m.pcie_bytes):>10}")
    if args.json or args.out:
        _emit_json([_metrics_dict(m) for m in rows], args)
    return 0


def cmd_compare(args) -> int:
    """``repro compare``: Table-4-style system comparison.

    With ``--workers N`` each system's measured epoch runs in its own
    worker process (one task per system, :mod:`repro.parallel`); the
    printed table and JSON are bit-identical to a serial run.
    """
    from repro.bench.harness import compare_epochs

    cfg = _config(args)
    systems = args.systems.split(",") if args.systems else list(TABLE_SYSTEMS)
    out = compare_epochs(
        systems, cfg, max_batches=args.batches, workers=args.workers
    )
    print(f"{'system':<10} {'epoch':>12} {'sample':>12} {'load':>12} "
          f"{'train':>12}")
    for name, m in out.items():
        print(f"{name:<10} {fmt_time(m.epoch_time):>12} "
              f"{fmt_time(m.sample_time):>12} {fmt_time(m.load_time):>12} "
              f"{fmt_time(m.train_time):>12}")
    if args.json or args.out:
        _emit_json({n: _metrics_dict(m) for n, m in out.items()}, args)
    return 0


def cmd_info(args) -> int:
    """``repro info``: list datasets, systems and the hardware model."""
    from repro.hw import Topology
    from repro.utils import GB

    print("datasets:")
    for name, spec in DATASET_SPECS.items():
        print(f"  {name:<12} {spec.num_nodes:>8} nodes {spec.num_edges:>9} "
              f"edges  dim {spec.feature_dim:>3}  scale {spec.scale:7.1f}")
    print("\nsystems:", ", ".join(sorted(SYSTEMS)))
    print("\nDGX-1 model (Table 1):")
    for k in (1, 2, 4, 8):
        t = Topology.dgx1(k)
        print(f"  {k}-GPU: NVLink {t.aggregate_nvlink_bandwidth() / GB:6.0f} "
              f"GB/s, PCIe {t.aggregate_pcie_bandwidth() / GB:4.0f} GB/s")
    return 0


def cmd_infer(args) -> int:
    """``repro infer``: train briefly, then full-graph inference."""
    from repro.core.inference import full_graph_inference
    from repro.nn import accuracy

    cfg = _config(args)
    system = build_system(args.system, cfg)
    rows = []
    for epoch in range(args.epochs):
        m = system.run_epoch()
        rows.append(m)
        print(f"epoch {epoch}: loss {m.loss:.4f} val {m.val_accuracy:.2%}")
    preds, trace = full_graph_inference(system)
    t = system.engine.stage_time(trace)
    test = system.data.test_nodes
    acc = accuracy(preds[test], system.data.labels[test])
    print(f"full-graph inference: test accuracy {acc:.2%}, "
          f"simulated time {fmt_time(t)}")
    if args.json or args.out:
        _emit_json(
            {
                "epochs": [_metrics_dict(m) for m in rows],
                "inference": {
                    "test_accuracy": scrub_nan(acc),
                    "simulated_time_s": scrub_nan(t),
                },
            },
            args,
        )
    return 0


def cmd_serve(args) -> int:
    """``repro serve``: online serving sweep with SLO accounting."""
    import numpy as np

    from repro.serve import (
        ServeConfig,
        WorkloadConfig,
        make_workload,
        max_sustainable_qps,
        qps_sweep,
    )

    cfg = _config(args)
    qps_values = [float(q) for q in args.qps.split(",")]
    tenancy = None
    if args.tenants > 0:
        from repro.control import TenancyConfig

        tenancy = TenancyConfig.uniform(args.tenants, seed=args.seed)
    controller = None
    if args.controller:
        from repro.control import ControllerConfig

        controller = ControllerConfig(
            interval_s=(args.control_interval_ms * 1e-3
                        if args.control_interval_ms is not None else None),
            max_pressure=tenancy.max_priority() if tenancy else 0,
        )
    serve_cfg = ServeConfig(
        batch_max=args.batch_max,
        batch_timeout_s=args.batch_timeout_ms * 1e-3,
        queue_capacity=args.queue_capacity,
        slo_s=args.slo_ms * 1e-3,
        functional=args.functional,
        check_invariants=args.invariants,
        controller=controller,
        tenancy=tenancy,
    )
    wl_cfg = WorkloadConfig(
        num_requests=args.requests,
        arrival=args.arrival,
        skew=args.skew,
        drift_phases=args.drift_phases,
        seed=args.seed,
    )
    systems = [s for s in args.systems.split(",") if s]
    if args.num_replicas > 1 and args.trace_base:
        return _fail("--trace-base is ambiguous with --num-replicas > 1; "
                     "trace a single replica instead")
    if args.scale_max > 1 and args.num_replicas > 1:
        return _fail("--scale-max replaces the fixed --num-replicas router; "
                     "use one or the other")
    if args.scale_max > 1 and args.trace_base:
        return _fail("--trace-base is ambiguous under autoscaling; "
                     "trace a single replica instead")
    workload = None
    payload: dict = {
        "slo_ms": args.slo_ms,
        "num_nodes": args.num_nodes,
        "num_replicas": args.num_replicas,
        "routing": args.routing,
        "systems": {},
    }
    slo_col = f" {'SLO min':>8}" if args.metrics else ""
    act_col = (f" {'actions':>7} {'repl':>4}"
               if args.controller or args.scale_max > 1 else "")
    print(f"{'system':<10} {'offered':>10} {'p50':>10} {'p99':>10} "
          f"{'goodput':>10} {'shed':>6} {'batch':>6}{slo_col}{act_col}")
    knees = {}
    for name in systems:
        system = build_system(name, cfg)
        if workload is None:
            workload = make_workload(
                wl_cfg, np.arange(system.base_dataset.num_nodes)
            )
        warm_nodes = None
        if args.cache_warmup > 0:
            dyn = getattr(getattr(system, "loader", None), "dynamic", None)
            if dyn is not None:
                hist = workload.nodes[: args.cache_warmup]
                numbering = getattr(system, "numbering", None)
                if numbering is not None:
                    hist = numbering.old_to_new[hist]
                promoted = dyn.warm(hist)
                dyn._warm_applied = True  # sweep workers re-warm theirs
                warm_nodes = hist
                print(f"{name}: warmed dynamic cache from "
                      f"{len(hist)} requests ({promoted} rows promoted)")
        trace_base = None
        if args.trace_base:
            from repro.obs import run_trace_path

            trace_base = run_trace_path(args.trace_base, name)
        metrics_window_s = (
            args.metrics_window_ms * 1e-3
            if args.metrics_window_ms is not None else None
        )
        if args.scale_max > 1:
            from repro.control import AutoscaleConfig, autoscaled_qps_sweep

            points = autoscaled_qps_sweep(
                system, workload, qps_values,
                scale=AutoscaleConfig(
                    min_replicas=args.scale_min,
                    max_replicas=args.scale_max,
                    target_qps_per_replica=args.target_qps_per_replica,
                ),
                config=serve_cfg, workers=args.workers,
                metrics=args.metrics, metrics_window_s=metrics_window_s,
            )
        elif args.num_replicas > 1:
            from repro.cluster import RouterConfig, replicated_qps_sweep

            points = replicated_qps_sweep(
                system, workload, qps_values,
                router=RouterConfig(num_replicas=args.num_replicas,
                                    policy=args.routing, seed=args.seed),
                config=serve_cfg, workers=args.workers,
                metrics=args.metrics, metrics_window_s=metrics_window_s,
            )
        else:
            points = qps_sweep(
                system, workload, qps_values, serve_cfg,
                workers=args.workers, trace_base=trace_base,
                metrics=args.metrics, metrics_window_s=metrics_window_s,
                warm_nodes=warm_nodes,
            )
        for p in points:
            r = p.report
            line = (f"{name:<10} {p.qps:>10.0f} {fmt_time(r.p50):>10} "
                    f"{fmt_time(r.p99):>10} {r.goodput_qps:>8.0f}/s "
                    f"{r.shed_rate:>6.1%} {r.mean_batch_size:>6.1f}")
            if args.metrics and r.metrics is not None:
                line += f" {r.metrics['slo']['slo_minutes_violated']:>8.4f}"
            if act_col:
                actions, replicas = _control_figures(r.control)
                line += f" {actions:>7} {replicas:>4}"
            print(line)
        knees[name] = max_sustainable_qps(points)
        payload["systems"][name] = {
            "points": [p.report.to_dict() for p in points],
            "max_sustainable_qps": knees[name],
        }
    print(f"\nmax sustainable QPS (p99 <= {args.slo_ms:g}ms, "
          "shed <= 1%):")
    for name, knee in knees.items():
        print(f"  {name:<10} {knee:>10.0f}")
    if args.json or args.out:
        _emit_json(payload, args)
    return 0


def cmd_trace(args) -> int:
    """``repro trace``: one traced epoch -> Chrome trace + stall report.

    Runs the system cost-only with a :class:`repro.obs.Tracer`
    attached, writes the Chrome trace-event JSON (open it in Perfetto
    or ``chrome://tracing``), optionally a plain-text timeline, and
    prints the per-GPU busy/stall breakdown and the epoch's critical
    path (see ``docs/observability.md``).
    """
    from repro.obs import (
        Tracer,
        critical_path,
        format_breakdown,
        format_critical_path,
        stall_breakdown,
        to_text,
        write_chrome_trace,
    )
    from repro.utils import DeadlockError

    cfg = _config(args)
    system = build_system(args.system, cfg)
    tracer = Tracer()
    deadlock = None
    try:
        system.run_epoch(max_batches=args.batches, functional=False,
                         tracer=tracer)
    except DeadlockError as err:
        deadlock = err  # the trace up to the deadlock is still valid
    try:
        write_chrome_trace(tracer, args.out)
        print(f"wrote {args.out} ({len(tracer)} events; load in Perfetto "
              "or chrome://tracing)")
        if args.text:
            with open(args.text, "w") as f:
                f.write(to_text(tracer))
            print(f"wrote {args.text}")
    except OSError as err:
        return _fail(f"cannot write trace: {err}")

    total = tracer.end_time()
    print(f"\n{args.system} on {args.dataset}, {args.gpus} GPU(s), "
          f"{args.batches} batch(es), {total:.6f}s simulated")
    print(format_breakdown(stall_breakdown(tracer, total, args.gpus), total))
    print()
    print(format_critical_path(critical_path(tracer)))
    pc = getattr(system.loader, "plan_cache", None)
    if pc is not None:
        from repro.obs import format_plan_cache

        print()
        print(format_plan_cache(pc.stats()))
    if deadlock is not None:
        stuck = [ev for ev in tracer.spans() if ev.args.get("unresolved")]
        print(f"\nDEADLOCK after {total:.6f}s — {len(stuck)} unresolved "
              "stall span(s):")
        for ev in sorted(stuck, key=lambda e: e.track):
            print(f"  {ev.track:<20} {ev.cat:<16} {ev.name} "
                  f"(blocked since {ev.start:.6f}s)")
        print(f"cause: {deadlock}")
        return 1
    return 0


def cmd_perf(args) -> int:
    """``repro perf``: wall-clock microbenchmarks of the hot paths.

    Times the Python implementation itself (not simulated hardware):
    the CSP layer round against its chunked reference implementation,
    the feature loader against the seed's per-holder loop, a costed
    DSP epoch, one serving sweep point, and a whole QPS sweep (serial
    vs the parallel executor).  Writes ``BENCH_perf.json`` so perf PRs
    carry measured before/after deltas (see ``docs/performance.md``).

    ``--baseline PATH`` additionally diffs the fresh run against a
    committed baseline and exits nonzero when any benchmark's speedup
    regressed by more than ``--tolerance`` (default 20%).
    """
    from repro.bench.perf import diff_against_baseline, format_perf, run_perf

    benches = [b for b in args.benches.split(",") if b] if args.benches else None
    payload = run_perf(quick=args.quick, benches=benches, workers=args.workers)
    print(format_perf(payload))
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"\nwrote {args.out}")
    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
        report, regressions = diff_against_baseline(
            payload, baseline, tolerance=args.tolerance
        )
        print()
        print(report)
        if regressions:
            return 1
    return 0


def cmd_chaos(args) -> int:
    """``repro chaos``: run the fault-injection scenario suite.

    Executes the ``systems x scenarios`` matrix (each cell: fault-free
    baseline pass, then the scenario's :class:`~repro.chaos.FaultPlan`
    with the injector, CCC watchdog and invariant checker armed),
    prints the resilience table and optionally emits the JSON report.
    The report is deterministic: same config, same seed, any
    ``--workers`` -> byte-identical JSON (see ``docs/robustness.md``).

    Exit code 1 iff any run violated a simulation invariant — stalls
    from crash scenarios are *findings*, not harness failures.
    """
    from repro.chaos.scenarios import (
        SCENARIOS,
        format_report,
        resilience_report,
    )

    cfg = _config(args)
    systems = [s for s in args.systems.split(",") if s]
    if cfg.num_nodes > 1:
        multinode = [s for s in systems if s.startswith("DSP")]
        dropped = sorted(set(systems) - set(multinode))
        if dropped:
            print(f"note: skipping single-server systems on "
                  f"{cfg.num_nodes} nodes: {', '.join(dropped)}")
        systems = multinode
        if not systems:
            return _fail("no system in --systems supports --num-nodes > 1")
    scenarios = (
        [s for s in args.scenarios.split(",") if s]
        if args.scenarios else sorted(SCENARIOS)
    )
    controller = None
    if args.controller:
        from repro.control import ControllerConfig

        controller = ControllerConfig(
            interval_s=(args.control_interval_ms * 1e-3
                        if args.control_interval_ms is not None else None),
        )
    payload = resilience_report(
        systems,
        scenarios,
        cfg,
        max_batches=args.batches,
        requests=args.requests,
        qps=args.qps,
        workers=args.workers,
        controller=controller,
    )
    print(format_report(payload))
    if args.json or args.out:
        _emit_json(payload, args)
    return 0 if payload["summary"]["invariant_violations"] == 0 else 1


def cmd_control(args) -> int:
    """``repro control``: controller-on vs static SLO-minutes matrix.

    Every cell serves the same workload under the same
    :class:`~repro.chaos.FaultPlan` twice — static knobs, then with
    the :class:`~repro.control.ServeController` closing the loop — and
    compares "SLO minutes violated".  The matrix is byte-identical
    across ``--workers`` (see ``docs/control.md``).

    Exit code 1 iff any cell regressed (controller strictly worse than
    its static configuration).
    """
    from repro.control import (
        CORE_SCENARIOS,
        ControllerConfig,
        control_matrix,
        format_control_matrix,
    )
    from repro.serve import ServeConfig, WorkloadConfig

    cfg = _config(args)
    scenarios = ([s for s in args.scenarios.split(",") if s]
                 if args.scenarios else list(CORE_SCENARIOS))
    controller = ControllerConfig(
        interval_s=(args.control_interval_ms * 1e-3
                    if args.control_interval_ms is not None else None),
    )
    serve_cfg = ServeConfig(
        batch_max=args.batch_max,
        batch_timeout_s=args.batch_timeout_ms * 1e-3,
        queue_capacity=args.queue_capacity,
        slo_s=args.slo_ms * 1e-3,
    )
    label = args.arrival if args.drift_phases <= 1 else (
        f"{args.arrival}+drift{args.drift_phases}"
    )
    wl_cfg = WorkloadConfig(
        num_requests=args.requests,
        arrival=args.arrival,
        skew=args.skew,
        drift_phases=args.drift_phases,
        seed=args.seed,
    )
    payload = control_matrix(
        args.system, cfg, controller,
        scenarios=scenarios,
        workload_configs={label: wl_cfg},
        qps=args.qps,
        serve_config=serve_cfg,
        workers=args.workers,
    )
    print(format_control_matrix(payload))
    if args.json or args.out:
        _emit_json(payload, args)
    return 0 if payload["summary"]["regressed"] == 0 else 1


def cmd_report(args) -> int:
    """``repro report``: one self-contained HTML artifact.

    Merges saved run outputs — a ``repro serve --metrics --out`` sweep
    (or a single :class:`~repro.serve.stats.ServeReport` dict), a
    ``repro chaos --out`` resilience report, and a Chrome trace from
    ``repro trace`` — into a single HTML file with windowed SLO/latency
    timelines, the chaos matrix with its "SLO minutes violated" column,
    and the stall-breakdown / critical-path text analyses.  Rendering
    is deterministic: the same inputs produce byte-identical HTML.

    Bad inputs (missing files, corrupt JSON, a file that is not a
    Chrome trace) exit with a one-line error and status 1.
    """
    from repro.metrics import write_report
    from repro.utils.errors import ConfigError

    def load(path):
        with open(path) as f:
            return json.load(f)

    serve_sections: list[dict] = []
    chaos_payload = None
    trace_sections: list[tuple[str, str]] = []
    try:
        if args.serve:
            data = load(args.serve)
            if isinstance(data, dict) and isinstance(
                    data.get("systems"), dict):
                # sweep payload: one section per system, preferring the
                # highest offered load that carries a metrics summary
                for name, entry in data["systems"].items():
                    points = [p for p in entry.get("points", ())
                              if isinstance(p, dict)]
                    with_metrics = [p for p in points if p.get("metrics")]
                    serve_sections.extend((with_metrics or points)[-1:])
            elif isinstance(data, dict):
                serve_sections.append(data)
        if args.chaos:
            chaos_payload = load(args.chaos)
        if args.trace:
            from repro.obs import (
                critical_path,
                format_breakdown,
                format_critical_path,
                format_plan_cache,
                plan_cache_stats,
                read_chrome_trace,
                stall_breakdown,
            )
            from repro.obs.analysis import track_gpu

            tracer = read_chrome_trace(args.trace)
            total = tracer.end_time()
            gpus = 1 + max(
                (g for g in (track_gpu(ev.track) for ev in tracer.events)
                 if g is not None),
                default=0,
            )
            trace_sections.append((
                "Stall breakdown",
                format_breakdown(
                    stall_breakdown(tracer, total, gpus), total
                ),
            ))
            trace_sections.append(
                ("Critical path", format_critical_path(critical_path(tracer)))
            )
            pc = plan_cache_stats(tracer)
            if pc is not None:
                trace_sections.append(("Plan cache", format_plan_cache(pc)))
    except FileNotFoundError as err:
        return _fail(f"{err.filename}: no such file")
    except json.JSONDecodeError as err:
        return _fail(f"corrupt JSON input: {err}")
    except ConfigError as err:
        return _fail(str(err))
    try:
        write_report(
            args.out,
            serve=serve_sections or None,
            chaos=chaos_payload,
            trace_sections=trace_sections or None,
            title=args.title,
        )
    except OSError as err:
        return _fail(f"cannot write report: {err}")
    print(f"wrote {args.out} ({len(serve_sections)} serve section(s), "
          f"chaos {'yes' if chaos_payload else 'no'}, "
          f"{len(trace_sections)} trace section(s))")
    return 0


def _emit_json(payload, args) -> None:
    """Write ``payload`` to ``--out`` when given, else to stdout."""
    if getattr(args, "out", None):
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")
    else:
        json.dump(payload, sys.stdout, indent=2)
        print()


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DSP (PPoPP'23) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("train", help="train one system")
    _add_workload_args(p)
    p.add_argument("--system", default="DSP", choices=sorted(SYSTEMS))
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--cost-only", action="store_true",
                   help="skip numpy training, keep cost accounting")
    p.add_argument("--json", action="store_true")
    p.add_argument("--out", metavar="PATH",
                   help="write the JSON metrics to PATH instead of stdout")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("compare", help="compare systems on one workload")
    _add_workload_args(p)
    p.add_argument("--systems", default="",
                   help="comma-separated subset (default: all five)")
    p.add_argument("--batches", type=int, default=6)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes, one task per system "
                        "(default 1 = serial; results are bit-identical)")
    p.add_argument("--json", action="store_true")
    p.add_argument("--out", metavar="PATH",
                   help="write the JSON metrics to PATH instead of stdout")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "trace", help="traced epoch: Chrome trace + stall breakdown"
    )
    _add_workload_args(p)
    p.add_argument("--system", default="DSP", choices=sorted(SYSTEMS))
    p.add_argument("--batches", type=int, default=4,
                   help="mini-batches to trace (default 4)")
    p.add_argument("--out", metavar="PATH", default="trace.json",
                   help="Chrome trace-event JSON path (default trace.json)")
    p.add_argument("--text", metavar="PATH", default=None,
                   help="also write a plain-text timeline to PATH")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("info", help="datasets / systems / hardware model")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("infer", help="train then full-graph inference")
    _add_workload_args(p)
    p.add_argument("--system", default="DSP", choices=sorted(SYSTEMS))
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--json", action="store_true")
    p.add_argument("--out", metavar="PATH",
                   help="write the JSON metrics to PATH instead of stdout")
    p.set_defaults(func=cmd_infer)

    p = sub.add_parser(
        "serve", help="online inference serving: QPS sweep + SLO knee"
    )
    _add_workload_args(p)
    p.add_argument("--systems", default="DSP",
                   help="comma-separated systems to sweep (default DSP)")
    p.add_argument("--qps", default="2000,8000,32000,128000",
                   help="comma-separated offered loads to sweep")
    p.add_argument("--requests", type=int, default=256,
                   help="requests per sweep point (default 256)")
    p.add_argument("--slo-ms", type=float, default=5.0,
                   help="p99 latency SLO in milliseconds (default 5)")
    p.add_argument("--batch-max", type=int, default=16,
                   help="dynamic batch size cap (default 16)")
    p.add_argument("--batch-timeout-ms", type=float, default=1.0,
                   help="dynamic batch max-wait in ms (default 1)")
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="per-GPU admission queue bound (default 64)")
    p.add_argument("--arrival", default="poisson",
                   choices=["poisson", "bursty", "diurnal"])
    p.add_argument("--skew", type=float, default=0.8,
                   help="Zipf popularity exponent for seed nodes")
    p.add_argument("--drift-phases", type=int, default=1,
                   help="popularity-drift phases: the Zipf hot set "
                        "permutes this many times over the request "
                        "stream (default 1 = stationary)")
    p.add_argument("--cache-warmup", type=int, default=0,
                   help="seed the dynamic cache from the first N "
                        "workload requests before the sweep (needs "
                        "--dynamic-cache; default 0 = off)")
    p.add_argument("--functional", action="store_true",
                   help="run the real forward pass and report accuracy")
    p.add_argument("--invariants", action="store_true",
                   help="audit every point with the simulation "
                        "invariant checker (report is unchanged; a "
                        "broken simulation raises instead)")
    p.add_argument("--controller", action="store_true",
                   help="close the loop: the SLO-burn AIMD tuner retunes "
                        "batch-max / max-wait online (see docs/control.md)")
    p.add_argument("--control-interval-ms", type=float, default=None,
                   help="controller decision interval in ms "
                        "(default: 4 SLO windows)")
    p.add_argument("--tenants", type=int, default=0,
                   help="split the workload across N synthetic tenants "
                        "with priority classes and admission quotas "
                        "(default 0 = off)")
    p.add_argument("--scale-min", type=int, default=1,
                   help="autoscaler floor replicas (with --scale-max > 1)")
    p.add_argument("--scale-max", type=int, default=1,
                   help="autoscale serving replicas up to this many "
                        "(default 1 = no autoscaler)")
    p.add_argument("--target-qps-per-replica", type=float, default=None,
                   help="per-replica capacity the autoscaler sizes "
                        "against (default: offered QPS / scale-max)")
    p.add_argument("--num-replicas", type=int, default=1,
                   help="serving replicas behind the cluster router "
                        "(default 1 = plain serve_once path)")
    p.add_argument("--routing", default="affinity",
                   choices=["random", "least-loaded", "affinity"],
                   help="request routing policy across replicas "
                        "(default affinity; see docs/cluster.md)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes, one task per sweep point "
                        "(default 1 = serial; results are bit-identical)")
    p.add_argument("--trace-base", metavar="PATH", default=None,
                   help="write one Chrome trace per sweep point, named "
                        "PATH-<system>-qps<Q>.json")
    p.add_argument("--metrics", action="store_true",
                   help="attach the windowed metrics registry to every "
                        "sweep point: adds the SLO-minutes-violated "
                        "column and a 'metrics' summary per point in "
                        "the JSON (input for 'repro report')")
    p.add_argument("--metrics-window-ms", type=float, default=None,
                   help="metrics window width in ms (default: the SLO)")
    p.add_argument("--json", action="store_true")
    p.add_argument("--out", metavar="PATH",
                   help="write the JSON report to PATH instead of stdout")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "perf", help="wall-clock microbenchmarks -> BENCH_perf.json"
    )
    p.add_argument("--quick", action="store_true",
                   help="small datasets / few iterations (CI smoke)")
    p.add_argument("--benches", default="",
                   help="comma-separated subset of: csp_layer, "
                        "feature_load, epoch, serve_batch, sweep, "
                        "chaos_scenario, multinode_epoch, engine_core, "
                        "cache_dynamic, control_loop (default all)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes, one task per benchmark "
                        "(default 1 = serial)")
    p.add_argument("--baseline", metavar="PATH", default=None,
                   help="diff against a committed BENCH_perf.json; exit "
                        "nonzero on >tolerance speedup regression")
    p.add_argument("--tolerance", type=float, default=0.2,
                   help="allowed fractional speedup regression vs the "
                        "baseline (default 0.2)")
    p.add_argument("--out", metavar="PATH", default="BENCH_perf.json",
                   help="JSON output path (default BENCH_perf.json)")
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser(
        "chaos", help="fault-injection scenarios -> resilience report"
    )
    _add_workload_args(p)
    p.add_argument("--systems", default="DSP,DSP-Pull,DGL-UVA",
                   help="comma-separated systems to stress "
                        "(default DSP,DSP-Pull,DGL-UVA)")
    p.add_argument("--scenarios", default="",
                   help="comma-separated scenario names "
                        "(default: all; see docs/robustness.md)")
    p.add_argument("--batches", type=int, default=4,
                   help="mini-batches per training scenario (default 4)")
    p.add_argument("--requests", type=int, default=64,
                   help="requests per serving scenario (default 64)")
    p.add_argument("--qps", type=float, default=2000.0,
                   help="offered load for serving scenarios (default 2000)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes, one task per (system, "
                        "scenario) cell (default 1 = serial; the report "
                        "is bit-identical)")
    p.add_argument("--controller", action="store_true",
                   help="run each serving scenario a third time with the "
                        "SLO-burn controller closing the loop and report "
                        "its SLO minutes next to the static pass")
    p.add_argument("--control-interval-ms", type=float, default=None,
                   help="controller decision interval in ms "
                        "(default: 4 SLO windows)")
    p.add_argument("--json", action="store_true")
    p.add_argument("--out", metavar="PATH",
                   help="write the JSON report to PATH instead of stdout")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "control", help="controller-on vs static SLO-minutes matrix"
    )
    _add_workload_args(p)
    p.add_argument("--system", default="DSP", choices=sorted(SYSTEMS))
    p.add_argument("--scenarios", default="",
                   help="comma-separated chaos scenarios (default: the "
                        "seven core recipes; 'none' = fault-free)")
    p.add_argument("--requests", type=int, default=256,
                   help="requests per cell (default 256)")
    p.add_argument("--qps", type=float, default=3000.0,
                   help="offered load per cell (default 3000)")
    p.add_argument("--slo-ms", type=float, default=5.0,
                   help="p99 latency SLO in milliseconds (default 5; "
                        "pick one tight enough that the static config "
                        "burns error budget, or every cell is 0 vs 0)")
    p.add_argument("--batch-max", type=int, default=16,
                   help="static batch size cap the controller starts "
                        "from (default 16)")
    p.add_argument("--batch-timeout-ms", type=float, default=1.0,
                   help="static batch max-wait in ms (default 1)")
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="per-GPU admission queue bound (default 64)")
    p.add_argument("--arrival", default="diurnal",
                   choices=["poisson", "bursty", "diurnal"])
    p.add_argument("--skew", type=float, default=0.8,
                   help="Zipf popularity exponent for seed nodes")
    p.add_argument("--drift-phases", type=int, default=1,
                   help="popularity-drift phases (default 1 = stationary)")
    p.add_argument("--control-interval-ms", type=float, default=None,
                   help="controller decision interval in ms "
                        "(default: 4 SLO windows)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes, one task per cell "
                        "(default 1 = serial; the matrix is bit-identical)")
    p.add_argument("--json", action="store_true")
    p.add_argument("--out", metavar="PATH",
                   help="write the JSON matrix to PATH instead of stdout")
    p.set_defaults(func=cmd_control)

    p = sub.add_parser(
        "report", help="merge saved serve/chaos/trace artifacts into one "
                       "self-contained HTML report"
    )
    p.add_argument("--serve", metavar="PATH", default=None,
                   help="JSON from 'repro serve --metrics --out' (or a "
                        "single serve report dict)")
    p.add_argument("--chaos", metavar="PATH", default=None,
                   help="JSON from 'repro chaos --out'")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="Chrome trace from 'repro trace' or --trace-base")
    p.add_argument("--title", default="repro run report",
                   help="report heading (default 'repro run report')")
    p.add_argument("--out", metavar="PATH", default="report.html",
                   help="HTML output path (default report.html)")
    p.set_defaults(func=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
