"""Interconnect topology: NVLink mesh + PCIe switches.

Models a DGX-1-style server (paper §7.1, Table 1).  The NVLink layout
is a hybrid cube-mesh: each quad of GPUs forms a ring of double links
and GPU ``i`` connects to GPU ``i + 4`` with a double link.  Every V100
then uses its 6 NVLink ports, and the aggregate bandwidths match the
paper's Table 1 exactly (25 GB/s per link per direction):

=======  ========================  =================
GPUs     NVLink links in use       aggregate (GB/s)
=======  ========================  =================
1        0                         0
2        2   (0-1 double)          100
4        8   (quad ring)           400
8        24  (2 rings + 4 cross)   1200
=======  ========================  =================

Pairs without a direct link (e.g. 0 and 2) communicate by multi-hop
forwarding through an intermediate GPU — the paper observes this is
still faster than PCIe, and DSP relies on it for the partitioned
feature cache.

PCIe: GPUs {0,1}, {2,3}, {4,5}, {6,7} share one switch each; a switch
provides 16 GB/s per direction to host memory (32 GB/s aggregate),
reproducing Table 1's PCIe column and the switch contention that makes
DGL-UVA scale poorly from 1 to 2 GPUs (§7.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

import numpy as np

from repro.utils.errors import ConfigError
from repro.utils.units import GB


class LinkKind(Enum):
    NVLINK = "nvlink"
    PCIE = "pcie"


#: unidirectional bandwidth of one NVLink 2.0 link (V100), bytes/s
NVLINK_LANE_BW = 25 * GB
#: unidirectional bandwidth of one PCIe 3.0 x16 switch uplink, bytes/s
PCIE_SWITCH_BW = 16 * GB

#: NVLink one-hop latency and PCIe round-trip latency (seconds)
NVLINK_LATENCY = 2e-6
PCIE_LATENCY = 5e-6


@dataclass(frozen=True)
class Topology:
    """Link structure of the simulated server.

    ``nvlink[i, j]`` is the number of NVLink lanes directly between
    GPUs ``i`` and ``j`` (0 if not directly connected).
    ``pcie_switch[i]`` is the PCIe switch id of GPU ``i``.
    """

    nvlink: np.ndarray
    pcie_switch: np.ndarray
    nvlink_lane_bw: float = NVLINK_LANE_BW
    pcie_switch_bw: float = PCIE_SWITCH_BW

    def __post_init__(self) -> None:
        nv = np.asarray(self.nvlink, dtype=np.int64)
        object.__setattr__(self, "nvlink", nv)
        object.__setattr__(
            self, "pcie_switch", np.asarray(self.pcie_switch, dtype=np.int64)
        )
        if nv.ndim != 2 or nv.shape[0] != nv.shape[1]:
            raise ConfigError("nvlink matrix must be square")
        if not np.array_equal(nv, nv.T):
            raise ConfigError("nvlink matrix must be symmetric")
        if np.any(np.diag(nv) != 0):
            raise ConfigError("no self links")
        if len(self.pcie_switch) != nv.shape[0]:
            raise ConfigError("pcie_switch must list every GPU")

    @property
    def num_gpus(self) -> int:
        return self.nvlink.shape[0]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def dgx1(cls, num_gpus: int = 8, scale: float = 1.0) -> "Topology":
        """First ``num_gpus`` GPUs of the 8-GPU hybrid cube-mesh."""
        if not 1 <= num_gpus <= 8:
            raise ConfigError("DGX-1 has 1..8 GPUs")
        full = np.zeros((8, 8), dtype=np.int64)

        def link(i: int, j: int, lanes: int = 2) -> None:
            full[i, j] = full[j, i] = lanes

        # quad rings (double links)
        for base in (0, 4):
            ring = [base, base + 1, base + 2, base + 3]
            for k in range(4):
                link(ring[k], ring[(k + 1) % 4])
        # cross-quad links i <-> i+4 (double links)
        for i in range(4):
            link(i, i + 4)

        switches = np.array([0, 0, 1, 1, 2, 2, 3, 3], dtype=np.int64)
        return cls(
            nvlink=full[:num_gpus, :num_gpus],
            pcie_switch=switches[:num_gpus],
            nvlink_lane_bw=NVLINK_LANE_BW / scale,
            pcie_switch_bw=PCIE_SWITCH_BW / scale,
        )

    def degraded(self, nvlink_factor: float = 1.0,
                 pcie_factor: float = 1.0) -> "Topology":
        """A slowed-down view of this topology (chaos what-if analysis).

        Returns a new :class:`Topology` with the same link structure
        and every NVLink lane (PCIe switch uplink) at ``1/factor`` of
        its bandwidth — the steady-state equivalent of a
        :class:`~repro.chaos.LinkDegrade` fault, usable anywhere a
        topology is accepted (cost models, capacity planning).
        """
        if nvlink_factor < 1.0 or pcie_factor < 1.0:
            raise ConfigError("degradation factors must be >= 1")
        return Topology(
            nvlink=self.nvlink,
            pcie_switch=self.pcie_switch,
            nvlink_lane_bw=self.nvlink_lane_bw / nvlink_factor,
            pcie_switch_bw=self.pcie_switch_bw / pcie_factor,
        )

    # ------------------------------------------------------------------
    # NVLink queries
    # ------------------------------------------------------------------
    def nvlink_bandwidth(self, i: int, j: int) -> float:
        """Direct unidirectional NVLink bandwidth between two GPUs (0 if none)."""
        return float(self.nvlink[i, j]) * self.nvlink_lane_bw

    def route(self, i: int, j: int) -> tuple[tuple[int, int], ...]:
        """Shortest NVLink path from ``i`` to ``j`` as a tuple of hops.

        Multi-hop paths model relaying through an intermediate GPU
        (paper §3.1).  Raises if the GPUs are NVLink-disconnected.
        """
        return _route_cached(_topo_key(self), i, j)

    def path_bandwidth(self, i: int, j: int) -> float:
        """Bottleneck unidirectional bandwidth along the NVLink route."""
        hops = self.route(i, j)
        if not hops:
            return float("inf")  # local access
        return min(self.nvlink_bandwidth(a, b) for a, b in hops)

    def has_nvlink_path(self, i: int, j: int) -> bool:
        try:
            self.route(i, j)
            return True
        except ConfigError:
            return False

    # ------------------------------------------------------------------
    # PCIe queries
    # ------------------------------------------------------------------
    def pcie_sharers(self, gpu: int, active_gpus: "list[int] | None" = None) -> int:
        """How many active GPUs share ``gpu``'s PCIe switch (including it)."""
        active = range(self.num_gpus) if active_gpus is None else active_gpus
        sw = self.pcie_switch[gpu]
        return sum(1 for g in active if self.pcie_switch[g] == sw)

    def pcie_bandwidth(self, gpu: int, active_gpus: "list[int] | None" = None) -> float:
        """Effective unidirectional host bandwidth for one GPU.

        GPUs behind the same switch split the uplink — this is the
        contention that stalls DGL-UVA when going from 1 to 2 GPUs.
        """
        return self.pcie_switch_bw / self.pcie_sharers(gpu, active_gpus)

    # ------------------------------------------------------------------
    # Table 1 aggregates
    # ------------------------------------------------------------------
    def aggregate_nvlink_bandwidth(self) -> float:
        """Total NVLink bandwidth among the in-use GPUs, both directions.

        With the unscaled DGX-1 this reproduces the paper's Table 1 row:
        0 / 100 / 400 / 1200 GB/s for 1 / 2 / 4 / 8 GPUs.
        """
        lanes = self.nvlink.sum()  # counts each pair twice == both directions
        return float(lanes) * self.nvlink_lane_bw

    def aggregate_pcie_bandwidth(self) -> float:
        """Total PCIe bandwidth, both directions (Table 1 bottom row)."""
        switches = len(np.unique(self.pcie_switch))
        return switches * self.pcie_switch_bw * 2


def _topo_key(t: Topology) -> tuple:
    return (t.nvlink.tobytes(), t.nvlink.shape[0], t.nvlink_lane_bw)


@lru_cache(maxsize=4096)
def _route_cached(key: tuple, i: int, j: int) -> tuple[tuple[int, int], ...]:
    nv = np.frombuffer(key[0], dtype=np.int64).reshape(key[1], key[1])
    n = key[1]
    if not (0 <= i < n and 0 <= j < n):
        raise ConfigError(f"GPU index out of range: {i}, {j}")
    if i == j:
        return ()
    # BFS shortest hop count, tie-broken toward wider first hops
    prev = {i: None}
    frontier = [i]
    while frontier and j not in prev:
        nxt: list[int] = []
        for u in frontier:
            order = np.argsort(-nv[u])  # prefer wider links
            for v in order:
                if nv[u, v] > 0 and int(v) not in prev:
                    prev[int(v)] = u
                    nxt.append(int(v))
        frontier = nxt
    if j not in prev:
        raise ConfigError(f"GPUs {i} and {j} are not NVLink-connected")
    path = [j]
    while path[-1] != i:
        path.append(prev[path[-1]])
    path.reverse()
    return tuple(zip(path[:-1], path[1:]))
