"""GPU kernel duration model.

The paper's Fig 2 shows that the graph-sampling and feature-loading
kernels stop getting faster well before all 5120 physical threads are
allocated: they are bound by memory latency/bandwidth, not compute.
This module models a kernel as

    duration(threads) = launch + work / rate(min(threads, sat_threads))

where ``rate`` grows linearly with the granted threads up to the
kernel's saturation point ``sat_threads``.  The execution engine uses
``threads`` as the kernel's SM-resource footprint, which is what lets
the pipeline overlap small kernels from different mini-batches (Fig 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.devices import GPUSpec
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class KernelSpec:
    """One GPU kernel invocation.

    ``work`` is in kernel-specific units (tasks, bytes, FLOPs);
    ``full_rate`` is the device's rate in those units per second at (or
    beyond) saturation; ``sat_threads`` is where the kernel stops
    scaling (Fig 2: ~1-2k threads for sampling/loading).
    """

    name: str
    work: float
    full_rate: float
    sat_threads: int
    threads: int  # threads the kernel requests / its resource footprint
    launch_s: float = 6e-6

    def __post_init__(self) -> None:
        if self.work < 0 or self.full_rate <= 0:
            raise ConfigError("work must be >= 0 and rate positive")
        if self.sat_threads <= 0 or self.threads <= 0:
            raise ConfigError("thread counts must be positive")


def kernel_duration(spec: KernelSpec, granted_threads: int | None = None) -> float:
    """Simulated duration of ``spec`` when given ``granted_threads``.

    The rate scales linearly below ``sat_threads`` and is flat above —
    allocating more threads than the saturation point buys nothing,
    which is exactly the Fig 2 curve.
    """
    threads = spec.threads if granted_threads is None else granted_threads
    if threads <= 0:
        raise ConfigError("granted_threads must be positive")
    eff = min(threads, spec.sat_threads) / spec.sat_threads
    return spec.launch_s + spec.work / (spec.full_rate * eff)


# ----------------------------------------------------------------------
# kernel builders for the workloads in the paper
# ----------------------------------------------------------------------
def _footprint(work_per_thread: float, work: float, lo: int, hi: int) -> int:
    """SM threads a kernel can keep busy: light kernels occupy few
    threads — the root cause of the paper's low utilization (Fig 2/6)."""
    return int(np.clip(work / max(work_per_thread, 1e-9), lo, hi))


def sampling_kernel(gpu: GPUSpec, num_tasks: float, fanout: int) -> KernelSpec:
    """Local neighbour sampling of ``num_tasks`` frontier nodes.

    Work is one unit per sampled neighbour; the kernel saturates early
    because it is bound by irregular adjacency reads.
    """
    work = float(num_tasks) * max(fanout, 1)
    # memory-latency bound: DSP launches it with ~1k threads (it stops
    # scaling there, Fig 2), leaving most SMs free for overlap
    return KernelSpec(
        name="sample",
        work=work,
        full_rate=gpu.sample_rate,
        sat_threads=1024,
        threads=_footprint(8.0, work, 128, 1024),
        launch_s=gpu.kernel_launch_s,
    )


def gather_kernel(gpu: GPUSpec, nbytes: float) -> KernelSpec:
    """Gathering feature rows from device memory (irregular access)."""
    return KernelSpec(
        name="gather",
        work=float(nbytes),
        full_rate=gpu.gather_rate,
        sat_threads=2048,
        threads=_footprint(2048.0, float(nbytes), 256, 2048),
        launch_s=gpu.kernel_launch_s,
    )


def compute_kernel(
    gpu: GPUSpec, flops: float, name: str = "compute",
    footprint_scale: float = 1.0,
) -> KernelSpec:
    """Dense model compute (GNN layer matmuls).

    A big GEMM fills the device; the small per-batch GEMMs of
    multi-GPU GNN training do not (paper §1: "the kernels for GNN
    training are lighter than those for ordinary neural networks").
    ``footprint_scale`` < 1 marks a proportionally shrunk mini-batch:
    occupancy is computed from the full-batch-equivalent FLOPs so the
    overlap behaviour matches the paper's batch size.
    """
    return KernelSpec(
        name=name,
        work=float(flops),
        full_rate=gpu.flops,
        sat_threads=gpu.total_threads,
        threads=_footprint(
            1e6 * footprint_scale, float(flops), 512, gpu.total_threads
        ),
        launch_s=gpu.kernel_launch_s,
    )


def comm_kernel(gpu: GPUSpec, duration: float, name: str = "comm") -> KernelSpec:
    """A communication kernel of known duration.

    NCCL send/recv kernels need only a small number of threads to
    saturate a link (paper §5), so their footprint is tiny — that is
    why overlapping them with compute pays off.
    """
    return KernelSpec(
        name=name,
        work=duration,
        full_rate=1.0,
        sat_threads=1,
        threads=128,
        launch_s=0.0,
    )
