"""Simulated multi-GPU hardware substrate.

The paper's results are driven by a handful of hardware facts: NVLink is
an order of magnitude faster than PCIe (Table 1), UVA reads over PCIe
suffer read amplification (min 50-byte requests: 32 B payload + 18 B
header), GPU kernels saturate well below the full thread count (Fig 2),
GPUs behind the same PCIe switch contend for bandwidth, and raw CUDA
allocation (cudaMalloc/cudaFree) is expensive compared to a pooled
allocator.  This package models exactly those facts:

- :mod:`~repro.hw.devices` — GPU/CPU specs (a V100-like GPU, optionally
  scaled down in memory and rates to match the scaled datasets).
- :mod:`~repro.hw.interconnect` — the DGX-1 NVLink hybrid-cube-mesh and
  PCIe-switch topology with multi-hop routing.
- :mod:`~repro.hw.comm` — an alpha–beta cost model for NCCL-style
  collectives plus the UVA read-amplification channel.
- :mod:`~repro.hw.kernels` — kernel duration model with thread
  saturation and launch overhead.
- :mod:`~repro.hw.memory` — GPU memory tracking and allocator models.
- :mod:`~repro.hw.network` — cross-server NICs (ethernet/IB α–β costs)
  and multi-server cluster topologies with shared-NIC contention.
"""

from repro.hw.devices import GPUSpec, CPUSpec, Cluster
from repro.hw.interconnect import Topology, LinkKind
from repro.hw.network import (
    NICSpec,
    ClusterTopology,
    multi_server_cluster,
    NIC_PRESETS,
)
from repro.hw.comm import CommCost, CostModel, UVA_REQUEST_PAYLOAD, UVA_REQUEST_TOTAL
from repro.hw.kernels import KernelSpec, kernel_duration
from repro.hw.memory import DeviceMemory, AllocatorKind, alloc_overhead

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "Cluster",
    "Topology",
    "LinkKind",
    "NICSpec",
    "ClusterTopology",
    "multi_server_cluster",
    "NIC_PRESETS",
    "CommCost",
    "CostModel",
    "UVA_REQUEST_PAYLOAD",
    "UVA_REQUEST_TOTAL",
    "KernelSpec",
    "kernel_duration",
    "DeviceMemory",
    "AllocatorKind",
    "alloc_overhead",
]
