"""Cross-server network model: NICs and multi-server topologies.

One DGX box is the paper's world; the cluster subsystem scales it to
``S`` servers joined by a commodity network (GSplit / FastSample's
setting).  Each server keeps the hybrid cube-mesh NVLink topology of
:class:`~repro.hw.interconnect.Topology`; across servers the only link
is the NIC, modelled with the same α–β discipline as every other link
class:

- :class:`NICSpec` — latency (α) + unidirectional bandwidth (β) of one
  server's NIC, with ``ethernet`` (100 GbE) and ``infiniband`` (HDR)
  presets;
- :class:`ClusterTopology` — ``S`` copies of a server topology plus one
  NIC per server.  ``flat()`` materializes the cluster as one
  block-diagonal :class:`Topology` spanning all ``S * G`` GPUs so the
  existing cost models price intra-server traffic unchanged (there is
  deliberately *no* cross-server NVLink: collectives that would cross
  servers must be lowered first, see :mod:`repro.cluster.csp`).

Shared-NIC contention mirrors the PCIe-switch rule: every GPU of a
server funnels its cross-server bytes through the one NIC, so a
server's exchange time is ``α + max(bytes_out, bytes_in) / β`` over the
*summed* per-server traffic (:meth:`ClusterTopology.exchange_time`),
and :meth:`ClusterTopology.nic_bandwidth` exposes the per-GPU share for
capacity planning.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

import numpy as np

from repro.hw.devices import CPUSpec, Cluster, GPUSpec
from repro.hw.interconnect import Topology
from repro.utils.errors import ConfigError
from repro.utils.units import GB

#: NIC presets: unidirectional bandwidth (bytes/s) and one-way latency.
#: Ethernet matches the legacy :class:`~repro.hw.devices.NetworkSpec`
#: (100 GbE = 12.5 GB/s) so single-link results stay comparable.
NIC_PRESETS = {
    "ethernet": (12.5 * GB, 5e-6),
    "infiniband": (25.0 * GB, 1.5e-6),
}


@dataclass(frozen=True)
class NICSpec:
    """One server's network interface (α–β cost parameters).

    Duck-compatible with :class:`~repro.hw.devices.NetworkSpec` — it
    exposes ``bandwidth`` / ``latency`` / ``scaled`` — so it can be
    passed anywhere the legacy spec is accepted (notably
    ``CostEngine(network=...)``).
    """

    kind: str = "ethernet"
    bandwidth: float = NIC_PRESETS["ethernet"][0]
    latency: float = NIC_PRESETS["ethernet"][1]

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0:
            raise ConfigError("NIC bandwidth must be > 0 and latency >= 0")

    @classmethod
    def preset(cls, kind: str) -> "NICSpec":
        try:
            bw, lat = NIC_PRESETS[kind]
        except KeyError:
            raise ConfigError(
                f"unknown NIC {kind!r}; available: {sorted(NIC_PRESETS)}"
            ) from None
        return cls(kind=kind, bandwidth=bw, latency=lat)

    def scaled(self, scale: float) -> "NICSpec":
        """The network does not shrink with the dataset (same contract
        as ``NetworkSpec.scaled``)."""
        return self

    def degraded(self, factor: float) -> "NICSpec":
        """This NIC at ``1/factor`` of its bandwidth (steady-state
        equivalent of a ``LinkDegrade(link="network")`` fault)."""
        if factor < 1.0:
            raise ConfigError("degradation factor must be >= 1")
        return replace(self, bandwidth=self.bandwidth / factor)


@dataclass(frozen=True)
class ClusterTopology:
    """``num_servers`` copies of ``server`` joined by one NIC each.

    Global GPU ids are server-major: GPU ``g`` of server ``s`` is
    ``s * G + g`` where ``G = server.num_gpus``.  GPU ``s * G`` acts as
    the server's *gateway* — the GPU whose staging buffers feed the NIC
    during the cross-server phase of a hierarchical shuffle.
    """

    num_servers: int
    server: Topology
    nic: NICSpec = NICSpec()

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ConfigError("need at least one server")

    @property
    def gpus_per_server(self) -> int:
        return self.server.num_gpus

    @property
    def num_gpus(self) -> int:
        return self.num_servers * self.server.num_gpus

    def server_of(self, gpu: int) -> int:
        if not 0 <= gpu < self.num_gpus:
            raise ConfigError(f"GPU index out of range: {gpu}")
        return gpu // self.server.num_gpus

    def gateway_of(self, server: int) -> int:
        if not 0 <= server < self.num_servers:
            raise ConfigError(f"server index out of range: {server}")
        return server * self.server.num_gpus

    @cached_property
    def _flat(self) -> Topology:
        s, g = self.num_servers, self.server.num_gpus
        nvlink = np.zeros((s * g, s * g), dtype=np.int64)
        switches = np.zeros(s * g, dtype=np.int64)
        # PCIe switch ids must stay unique per server: each server has
        # its own switches and host uplinks
        per_server = int(self.server.pcie_switch.max()) + 1
        for i in range(s):
            lo, hi = i * g, (i + 1) * g
            nvlink[lo:hi, lo:hi] = self.server.nvlink
            switches[lo:hi] = self.server.pcie_switch + i * per_server
        return Topology(
            nvlink=nvlink,
            pcie_switch=switches,
            nvlink_lane_bw=self.server.nvlink_lane_bw,
            pcie_switch_bw=self.server.pcie_switch_bw,
        )

    def flat(self) -> Topology:
        """The cluster as one block-diagonal :class:`Topology`.

        Intra-server links are exact copies of the server topology;
        there is no cross-server NVLink, so ``route()`` across blocks
        raises — by design, to catch unlowered cross-server collectives
        at pricing time instead of silently mispricing them.
        """
        return self._flat

    # ------------------------------------------------------------------
    # NIC contention (the PCIe-switch rule, one level up)
    # ------------------------------------------------------------------
    def nic_sharers(self, server: int, active_gpus=None) -> int:
        """How many active GPUs funnel traffic through this server's NIC."""
        active = range(self.num_gpus) if active_gpus is None else active_gpus
        return sum(1 for gpu in active if self.server_of(gpu) == server)

    def nic_bandwidth(self, server: int, active_gpus=None) -> float:
        """Effective per-GPU share of the NIC among concurrent senders."""
        return self.nic.bandwidth / max(1, self.nic_sharers(server, active_gpus))

    def exchange_time(self, matrix) -> float:
        """α–β time of one batched cross-server exchange.

        ``matrix[s, s']`` is the bytes server ``s`` sends to ``s'``.
        Every server's NIC moves its total in/out concurrently, so the
        exchange finishes when the busiest NIC drains:
        ``α + max_s(max(out_s, in_s)) / β``.
        """
        m = np.asarray(matrix, dtype=np.float64)
        if m.shape != (self.num_servers, self.num_servers):
            raise ConfigError(
                f"exchange matrix must be {self.num_servers}x{self.num_servers}"
            )
        out_load = m.sum(axis=1) - np.diag(m)
        in_load = m.sum(axis=0) - np.diag(m)
        worst = float(np.maximum(out_load, in_load).max()) if m.size else 0.0
        if worst == 0.0:
            return 0.0
        return self.nic.latency + worst / self.nic.bandwidth

    def degraded(self, nvlink_factor: float = 1.0, pcie_factor: float = 1.0,
                 network_factor: float = 1.0) -> "ClusterTopology":
        """A slowed-down view of the cluster (chaos what-if analysis);
        extends ``Topology.degraded`` with the cross-server link class."""
        return ClusterTopology(
            num_servers=self.num_servers,
            server=self.server.degraded(nvlink_factor, pcie_factor),
            nic=self.nic.degraded(network_factor),
        )

    def aggregate_network_bandwidth(self) -> float:
        """Total cross-server bandwidth, both directions (Table-1 style)."""
        return self.num_servers * self.nic.bandwidth * 2


def multi_server_cluster(topology: ClusterTopology, scale: float = 1.0) -> Cluster:
    """Hardware for a cluster of identical DGX-style servers.

    The returned :class:`~repro.hw.devices.Cluster` spans all
    ``S * G`` GPUs on the block-diagonal topology; per-GPU and per-CPU
    specs scale exactly like ``Cluster.dgx1`` so a 1-server cluster is
    bit-identical to the single-server construction.
    """
    return Cluster(
        gpu=GPUSpec().scaled(scale),
        cpu=CPUSpec().scaled(scale),
        topology=topology.flat(),
        scale=scale,
    )
