"""Communication cost model.

Implements an alpha-beta (latency + bytes/bandwidth) model for the
NCCL-style collectives DSP uses (all-to-all for CSP and feature
loading, allreduce for gradients) plus the UVA channel through which
GPUs read host memory over PCIe.

The UVA channel is where *read amplification* lives: the minimum PCIe
read is 50 bytes on the wire — a 32-byte payload plus an 18-byte packet
header (paper §1, citing EMOGI).  Reading an 8-byte adjacency entry
therefore moves 50 bytes; reading a 512-byte feature vector moves
ceil(512/32) * 50 = 800 bytes.  Every method returns a
:class:`CommCost` carrying both the simulated duration and the byte
accounting needed for the Fig 1 communication-volume experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hw.interconnect import (
    NVLINK_LATENCY,
    PCIE_LATENCY,
    Topology,
)
from repro.utils.errors import ConfigError

#: the link classes every byte of simulated traffic is billed to —
#: the canonical key set for per-link counters (obs tracing, Fig 1)
LINK_CLASSES = ("nvlink", "pcie", "network")

#: useful payload per minimum PCIe read request (bytes)
UVA_REQUEST_PAYLOAD = 32
#: wire size of that request: payload + 18-byte packet header
UVA_REQUEST_TOTAL = 50

#: fixed software overhead to launch one collective (NCCL call, sync)
COLLECTIVE_LAUNCH = 20e-6

#: random UVA reads are latency-bound well before they saturate PCIe:
#: each item is an independent pointer chase across the bus.  This is
#: the per-GPU item rate (items/s) that caps small-item gathers.
UVA_ITEM_RATE = 1e8


@dataclass(frozen=True)
class CommCost:
    """Duration and byte accounting of one communication operation.

    ``payload_bytes`` is what the caller asked for; ``nvlink_bytes`` and
    ``pcie_bytes`` are what actually crossed each link class (including
    multi-hop forwarding and read amplification).  Local copies are
    free and contribute to no counter.
    """

    time: float = 0.0
    nvlink_bytes: float = 0.0
    pcie_bytes: float = 0.0
    payload_bytes: float = 0.0

    def __add__(self, other: "CommCost") -> "CommCost":
        return CommCost(
            time=self.time + other.time,
            nvlink_bytes=self.nvlink_bytes + other.nvlink_bytes,
            pcie_bytes=self.pcie_bytes + other.pcie_bytes,
            payload_bytes=self.payload_bytes + other.payload_bytes,
        )

    @property
    def total_bytes(self) -> float:
        return self.nvlink_bytes + self.pcie_bytes

    def breakdown(self) -> dict:
        """Wire bytes per link class, keyed by :data:`LINK_CLASSES`."""
        return {"nvlink": self.nvlink_bytes, "pcie": self.pcie_bytes,
                "network": 0.0}


ZERO_COST = CommCost()


class CostModel:
    """Analytic communication costs over a :class:`Topology`.

    Collectives are modelled as bandwidth-bound pipelines: duration is
    the bottleneck link's transfer time plus per-hop latency and a fixed
    launch overhead.  Within one collective the participating links are
    assumed dedicated (NCCL serializes collectives on its stream); the
    cross-kernel interaction is handled by the execution engine.
    """

    def __init__(self, topology: Topology, launch_scale: float = 1.0,
                 backend: str = "nccl"):
        """``launch_scale`` multiplies fixed per-operation overheads
        (collective launch, PCIe latency).  Systems that shrink the
        mini-batch by a factor f pass f so that per-batch constants
        keep the same *share* of batch time as at full batch size.

        ``backend`` selects the inter-GPU communication library
        (paper §3.2): ``"nccl"`` (default) works on any topology and
        relays multi-hop pairs; ``"nvshmem"`` uses one-sided puts with
        ~4x lower launch overhead but **requires a direct NVLink link
        between every GPU pair** — exactly why DSP ships with NCCL.
        Constructing an nvshmem model on a topology without a full mesh
        raises :class:`~repro.utils.errors.ConfigError`.
        """
        self.topology = topology
        if launch_scale <= 0:
            raise ConfigError("launch_scale must be positive")
        if backend not in ("nccl", "nvshmem"):
            raise ConfigError(f"unknown comm backend {backend!r}")
        if backend == "nvshmem":
            n = topology.num_gpus
            for i in range(n):
                for j in range(n):
                    if i != j and topology.nvlink[i, j] == 0:
                        raise ConfigError(
                            "NVSHMEM needs a full NVLink mesh; GPUs "
                            f"{i} and {j} have no direct link (paper "
                            "§3.2: some GPU servers do not have one)"
                        )
        self.backend = backend
        launch = COLLECTIVE_LAUNCH * (0.25 if backend == "nvshmem" else 1.0)
        self.launch = launch * launch_scale
        self.pcie_latency = PCIE_LATENCY * launch_scale
        self.hop_latency = NVLINK_LATENCY * launch_scale

    # ------------------------------------------------------------------
    # NVLink collectives
    # ------------------------------------------------------------------
    def alltoall(self, size_matrix: np.ndarray) -> CommCost:
        """All-to-all over NVLink: ``size_matrix[i, j]`` bytes from i to j.

        Multi-hop pairs load every link on their route (the relay GPU
        forwards the bytes).  Diagonal entries are local and free.
        """
        s = np.asarray(size_matrix, dtype=np.float64)
        n = self.topology.num_gpus
        if s.shape != (n, n):
            raise ConfigError(f"size matrix must be {n}x{n}")
        if n == 1:
            return CommCost(payload_bytes=0.0)

        link_load: dict[tuple[int, int], float] = {}
        nvlink_bytes = 0.0
        max_hops = 1
        for i in range(n):
            for j in range(n):
                b = float(s[i, j])
                if i == j or b == 0.0:
                    continue
                hops = self.topology.route(i, j)
                max_hops = max(max_hops, len(hops))
                for hop in hops:
                    link_load[hop] = link_load.get(hop, 0.0) + b
                    nvlink_bytes += b
        if not link_load:
            return CommCost(time=self.launch)
        worst = max(
            load / self.topology.nvlink_bandwidth(a, b)
            for (a, b), load in link_load.items()
        )
        payload = float(s.sum() - np.trace(s))
        return CommCost(
            time=self.launch + max_hops * self.hop_latency + worst,
            nvlink_bytes=nvlink_bytes,
            payload_bytes=payload,
        )

    def allreduce(self, nbytes: float) -> CommCost:
        """Ring allreduce of ``nbytes`` per GPU over NVLink."""
        n = self.topology.num_gpus
        if n == 1:
            return CommCost(payload_bytes=0.0)
        ring = list(range(n)) + [0]
        ring_bw = min(
            self.topology.path_bandwidth(a, b) for a, b in zip(ring[:-1], ring[1:])
        )
        # each GPU sends 2 * (n-1)/n * nbytes around the ring
        per_gpu = 2.0 * (n - 1) / n * nbytes
        moved = per_gpu * n
        return CommCost(
            time=self.launch + 2 * (n - 1) * self.hop_latency + per_gpu / ring_bw,
            nvlink_bytes=moved,
            payload_bytes=nbytes * n,
        )

    def broadcast(self, nbytes: float, root: int = 0) -> CommCost:
        """Tree broadcast of ``nbytes`` from ``root`` over NVLink."""
        n = self.topology.num_gpus
        if n == 1 or nbytes == 0:
            return ZERO_COST
        worst_bw = min(
            self.topology.path_bandwidth(root, j) for j in range(n) if j != root
        )
        moved = nbytes * (n - 1)
        return CommCost(
            time=self.launch + math.ceil(math.log2(n)) * self.hop_latency
            + nbytes / worst_bw,
            nvlink_bytes=moved,
            payload_bytes=moved,
        )

    # ------------------------------------------------------------------
    # PCIe / UVA
    # ------------------------------------------------------------------
    def uva_gather(
        self,
        gpu: int,
        num_items: int,
        item_bytes: float,
        active_gpus: "list[int] | None" = None,
    ) -> CommCost:
        """Random reads of ``num_items`` items from host memory via UVA.

        Each item is fetched with minimum-size PCIe reads, so the wire
        traffic is ``ceil(item_bytes / 32) * 50`` per item — the read
        amplification of Fig 1.  Bandwidth is the GPU's share of its
        PCIe switch.
        """
        if num_items == 0:
            return ZERO_COST
        packets = math.ceil(item_bytes / UVA_REQUEST_PAYLOAD)
        wire = float(num_items) * packets * UVA_REQUEST_TOTAL
        payload = float(num_items) * item_bytes
        bw = self.topology.pcie_bandwidth(gpu, active_gpus)
        # bandwidth-bound for large items, latency(item-rate)-bound for
        # small ones — random reads cannot saturate the bus
        duration = max(wire / bw, float(num_items) / UVA_ITEM_RATE)
        return CommCost(
            time=self.pcie_latency + duration,
            pcie_bytes=wire,
            payload_bytes=payload,
        )

    def pcie_copy(
        self,
        gpu: int,
        nbytes: float,
        active_gpus: "list[int] | None" = None,
    ) -> CommCost:
        """Bulk DMA copy between host and one GPU (no amplification)."""
        if nbytes == 0:
            return ZERO_COST
        bw = self.topology.pcie_bandwidth(gpu, active_gpus)
        return CommCost(
            time=self.pcie_latency + nbytes / bw,
            pcie_bytes=float(nbytes),
            payload_bytes=float(nbytes),
        )

    def peer_copy(self, src: int, dst: int, nbytes: float) -> CommCost:
        """Point-to-point GPU copy over the NVLink route."""
        if src == dst or nbytes == 0:
            return ZERO_COST
        hops = self.topology.route(src, dst)
        bw = self.topology.path_bandwidth(src, dst)
        return CommCost(
            time=len(hops) * self.hop_latency + nbytes / bw,
            nvlink_bytes=float(nbytes) * len(hops),
            payload_bytes=float(nbytes),
        )
