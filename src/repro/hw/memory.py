"""GPU memory tracking and allocator cost models.

Two facts from the paper are modelled here:

1. GPU memory is finite: the data-layout planner must decide what part
   of the topology and feature cache fits (Fig 10 sweeps this budget).
   :class:`DeviceMemory` does the bookkeeping and raises
   :class:`~repro.utils.errors.CapacityError` on overflow.

2. Allocator choice matters: Quiver allocates per-batch buffers with
   raw ``cudaMalloc``/``cudaFree``, whose implicit synchronization makes
   it *slower* than DGL-UVA despite caching features (§7.2, Table 4).
   DSP and DGL use a PyTorch-style pooled allocator with near-zero
   steady-state cost.  :func:`alloc_overhead` returns the per-batch time
   penalty for each allocator kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.utils.errors import CapacityError
from repro.utils.units import fmt_bytes


class AllocatorKind(Enum):
    #: raw cudaMalloc/cudaFree per batch (Quiver)
    RAW_CUDA = "raw_cuda"
    #: pooled, PyTorch-style caching allocator (DGL, DSP)
    POOLED = "pooled"


#: cudaMalloc+cudaFree round-trip, including the device synchronization
#: it forces (order ~100s of microseconds on V100-class parts)
RAW_ALLOC_S = 350e-6
#: pooled allocator steady-state cost per allocation
POOLED_ALLOC_S = 3e-6


def alloc_overhead(kind: AllocatorKind, num_allocations: int) -> float:
    """Total allocator time for ``num_allocations`` buffer (re)allocations."""
    if num_allocations < 0:
        raise ValueError("num_allocations must be >= 0")
    per = RAW_ALLOC_S if kind is AllocatorKind.RAW_CUDA else POOLED_ALLOC_S
    return per * num_allocations


@dataclass
class DeviceMemory:
    """Byte-accurate tracking of one GPU's memory."""

    capacity: float
    used: float = 0.0
    reservations: dict[str, float] = field(default_factory=dict)

    def reserve(self, tag: str, nbytes: float) -> None:
        """Reserve ``nbytes`` under ``tag``; raises CapacityError if OOM."""
        if nbytes < 0:
            raise ValueError("cannot reserve negative bytes")
        if tag in self.reservations:
            raise CapacityError(f"tag {tag!r} already reserved")
        if self.used + nbytes > self.capacity:
            raise CapacityError(
                f"cannot reserve {fmt_bytes(nbytes)} under {tag!r}: "
                f"{fmt_bytes(self.capacity - self.used)} free of "
                f"{fmt_bytes(self.capacity)}"
            )
        self.reservations[tag] = nbytes
        self.used += nbytes

    def release(self, tag: str) -> None:
        if tag not in self.reservations:
            raise CapacityError(f"tag {tag!r} not reserved")
        self.used -= self.reservations.pop(tag)

    @property
    def free(self) -> float:
        return self.capacity - self.used

    def fits(self, nbytes: float) -> bool:
        return nbytes <= self.free
