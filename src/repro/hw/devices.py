"""Device specifications for the simulated cluster.

The experiment machine in the paper is an AWS p3.16xlarge: 8 V100 GPUs
(16 GB each, 80 SMs x 64 threads = 5120 "physical threads", the number
quoted in Fig 2) and a 64-core Xeon E5-2686 host with 480 GB of memory.

Because the datasets are scaled down ~100-1000x (see
:mod:`repro.graph.datasets`), device memory and all processing *rates*
are divided by the same per-dataset ``scale``.  Scaling data and rates
together leaves every ratio the paper measures — what fits where, epoch
seconds, speedups — in the paper's regime while letting the simulation
run on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.errors import ConfigError
from repro.utils.units import GB

from repro.hw.interconnect import Topology


@dataclass(frozen=True)
class GPUSpec:
    """A V100-like GPU.

    Rates are *unscaled* (real-hardware magnitudes); :meth:`scaled`
    derives the simulation device.  ``sample_rate`` is neighbour-sample
    tasks per second at full occupancy; ``gather_rate`` is bytes/s of
    feature gathering from HBM; ``flops`` is dense-compute throughput.
    """

    name: str = "V100"
    memory_bytes: float = 16 * GB
    num_sms: int = 80
    threads_per_sm: int = 64
    #: neighbour samples drawn per second; bound by random HBM access
    #: latency, calibrated so CSP's per-epoch sampling time sits in the
    #: paper's Table 6 range relative to the UVA/CPU baselines
    sample_rate: float = 1.5e8
    gather_rate: float = 300 * GB  # HBM gather bytes/s (irregular access)
    flops: float = 10e12  # fp32 FLOP/s (achievable, not peak)
    kernel_launch_s: float = 6e-6

    @property
    def total_threads(self) -> int:
        """Physical threads; 5120 for V100 as quoted in the paper's Fig 2."""
        return self.num_sms * self.threads_per_sm

    def scaled(self, scale: float) -> "GPUSpec":
        """Divide memory capacity by ``scale``; rates stay real.

        The datasets are shrunk by ``scale``, so shrinking capacity by
        the same factor preserves what-fits-where (the cache-pressure
        regimes of Fig 10 / Table 4).  Rates and per-op overheads stay
        at real-hardware magnitudes: both the data volume *and* the
        batch count shrink by ``scale``, so every simulated time is
        ~1/scale of the paper's wall time and all ratios are preserved.
        """
        if scale <= 0:
            raise ConfigError("scale must be positive")
        return replace(self, memory_bytes=self.memory_bytes / scale)


@dataclass(frozen=True)
class CPUSpec:
    """Host CPU: threads and per-thread sampling rate.

    CPU sampling throughput is what limits PyG/DGL-CPU: all GPUs'
    sampling requests contend for the same host cores (paper §7.2).
    """

    name: str = "Xeon-E5-2686"
    num_threads: int = 64
    memory_bytes: float = 480 * GB
    sample_rate_per_thread: float = 0.6e6  # sampling tasks/s per core
    gather_rate: float = 40 * GB  # host memory gather bytes/s (all cores)

    def scaled(self, scale: float) -> "CPUSpec":
        """Divide memory capacity by ``scale``; rates stay real."""
        if scale <= 0:
            raise ConfigError("scale must be positive")
        return CPUSpec(
            name=self.name,
            num_threads=self.num_threads,
            memory_bytes=self.memory_bytes / scale,
            sample_rate_per_thread=self.sample_rate_per_thread,
            gather_rate=self.gather_rate,
        )


@dataclass(frozen=True)
class NetworkSpec:
    """Inter-machine network (the multi-machine extension, paper §3.2).

    Default is a 100 Gb/s fabric; ``bandwidth`` is unidirectional
    bytes/s per machine NIC.
    """

    bandwidth: float = 12.5 * GB
    latency: float = 5e-6

    def scaled(self, scale: float) -> "NetworkSpec":
        if scale <= 0:
            raise ConfigError("scale must be positive")
        return self  # rates stay real, like the other devices


@dataclass(frozen=True)
class Cluster:
    """A set of GPUs, a host CPU and the interconnect between them."""

    gpu: GPUSpec
    cpu: CPUSpec
    topology: Topology
    scale: float = 1.0

    @property
    def num_gpus(self) -> int:
        return self.topology.num_gpus

    @classmethod
    def dgx1(cls, num_gpus: int = 8, scale: float = 1.0) -> "Cluster":
        """The paper's testbed: up to 8 V100s in a DGX-1-like topology.

        ``scale`` divides device *memory capacity* only; pass the
        dataset's ``spec.scale`` so what-fits-in-GPU-memory matches the
        paper's regimes.  Link bandwidths and compute rates stay at
        real-hardware magnitudes, so every simulated time is roughly
        ``1/scale`` of the paper's wall time with all ratios preserved.
        """
        if not 1 <= num_gpus <= 8:
            raise ConfigError("DGX-1 has 1..8 GPUs")
        return cls(
            gpu=GPUSpec().scaled(scale),
            cpu=CPUSpec().scaled(scale),
            topology=Topology.dgx1(num_gpus),
            scale=scale,
        )
