"""Graph and dataset I/O.

Real deployments bring their own graphs.  This module loads directed
edge lists (text/CSV, optionally weighted) into
:class:`~repro.graph.csr.CSRGraph`, persists graphs compactly as
``.npz``, and assembles a full :class:`~repro.graph.datasets.Dataset`
from user-supplied arrays so every system in :mod:`repro.core` can
train on external data.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.datasets import Dataset, DatasetSpec
from repro.utils.errors import ReproError


def load_edge_list(
    path,
    num_nodes: int | None = None,
    delimiter: str | None = None,
    comments: str = "#",
    weighted: bool = False,
) -> CSRGraph:
    """Read a directed edge list: one ``src dst [weight]`` per line.

    ``num_nodes`` defaults to ``max id + 1``.  Lines starting with
    ``comments`` are skipped.  Duplicate edges are removed.
    """
    data = np.loadtxt(
        path, comments=comments, delimiter=delimiter, ndmin=2, dtype=np.float64
    )
    if data.size == 0:
        raise ReproError(f"no edges found in {path!r}")
    if data.shape[1] < 2 or (weighted and data.shape[1] < 3):
        raise ReproError("expected 'src dst' (+ 'weight' when weighted) columns")
    src = data[:, 0].astype(np.int64)
    dst = data[:, 1].astype(np.int64)
    if num_nodes is None:
        num_nodes = int(max(src.max(), dst.max())) + 1
    w = data[:, 2].astype(np.float32) if weighted else None
    return CSRGraph.from_edges(src, dst, num_nodes=num_nodes, edge_weights=w)


def save_graph(path, graph: CSRGraph) -> None:
    """Persist a graph as compressed ``.npz`` (atomic replace)."""
    path = Path(path)
    payload = {"indptr": graph.indptr, "indices": graph.indices}
    if graph.edge_weights is not None:
        payload["edge_weights"] = graph.edge_weights
    tmp = path.with_suffix(path.suffix + ".tmp")
    np.savez_compressed(tmp, **payload)
    written = tmp if tmp.suffix == ".npz" else tmp.with_suffix(
        tmp.suffix + ".npz"
    )
    os.replace(written, path)


def load_graph(path) -> CSRGraph:
    """Load a graph saved by :func:`save_graph`."""
    with np.load(path) as z:
        w = z["edge_weights"] if "edge_weights" in z.files else None
        return CSRGraph(indptr=z["indptr"], indices=z["indices"],
                        edge_weights=w)


def dataset_from_arrays(
    name: str,
    graph: CSRGraph,
    features: np.ndarray,
    labels: np.ndarray,
    train_fraction: float = 0.1,
    paper_num_nodes: int | None = None,
    seed: int = 0,
) -> Dataset:
    """Wrap user data as a :class:`Dataset` usable by every system.

    Splits nodes into train/val/test deterministically from ``seed``;
    ``paper_num_nodes`` optionally sets the hardware scaling factor
    (see :class:`~repro.graph.datasets.DatasetSpec`).
    """
    features = np.asarray(features, dtype=np.float32)
    labels = np.asarray(labels, dtype=np.int64)
    n = graph.num_nodes
    if features.ndim != 2 or features.shape[0] != n:
        raise ReproError("features must be [num_nodes, dim]")
    if labels.shape != (n,):
        raise ReproError("need one label per node")
    if labels.min() < 0:
        raise ReproError("labels must be non-negative")
    if not 0.0 < train_fraction < 1.0:
        raise ReproError("train_fraction must be in (0, 1)")
    num_classes = int(labels.max()) + 1
    spec = DatasetSpec(
        name=name,
        num_nodes=n,
        num_edges=graph.num_edges,
        feature_dim=features.shape[1],
        num_classes=num_classes,
        train_fraction=train_fraction,
        paper_num_nodes=paper_num_nodes,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    n_train = max(1, int(train_fraction * n))
    n_val = max(1, n // 50)
    return Dataset(
        name=name,
        graph=graph,
        features=features,
        labels=labels,
        train_nodes=np.sort(perm[:n_train]),
        val_nodes=np.sort(perm[n_train : n_train + n_val]),
        test_nodes=np.sort(perm[n_train + n_val : n_train + 2 * n_val]),
        num_classes=num_classes,
        spec=spec,
    )
