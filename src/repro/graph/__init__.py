"""Graph substrate: CSR storage, generators, datasets, partitioning.

This package provides everything DSP needs from a graph system:

- :class:`~repro.graph.csr.CSRGraph` — compressed sparse row adjacency
  (in-neighbour lists, as in the paper's §6) with optional edge weights
  for biased sampling.
- :mod:`~repro.graph.generators` — power-law (RMAT-style) and
  degree-corrected stochastic-block-model generators used to synthesize
  scaled stand-ins for ogbn-products / ogbn-papers100M / Friendster.
- :mod:`~repro.graph.datasets` — the three named datasets of the paper
  at ~1000x reduced scale, with node features and labels.
- :mod:`~repro.graph.partition` — a METIS-like multilevel partitioner
  plus hash/range baselines.
- :mod:`~repro.graph.reorder` — node renumbering so each graph patch
  owns a consecutive global-id range (making owner lookup a range check).
"""

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_graph, dcsbm_graph, uniform_graph
from repro.graph.datasets import Dataset, load_dataset, DATASET_SPECS
from repro.graph.partition import (
    Partition,
    metis_partition,
    hash_partition,
    range_partition,
    ldg_partition,
    edge_cut,
)
from repro.graph.reorder import renumber_by_partition, NodeNumbering

__all__ = [
    "CSRGraph",
    "rmat_graph",
    "dcsbm_graph",
    "uniform_graph",
    "Dataset",
    "load_dataset",
    "DATASET_SPECS",
    "Partition",
    "metis_partition",
    "hash_partition",
    "range_partition",
    "ldg_partition",
    "edge_cut",
    "renumber_by_partition",
    "NodeNumbering",
]
