"""Graph partitioning.

DSP partitions the graph topology into well-connected, balanced patches
(one per GPU) with METIS (paper §3.1).  METIS itself is not available
here, so :func:`metis_partition` implements the same *multilevel*
recipe METIS uses [Karypis & Kumar, 1998]:

1. **Coarsen** the (symmetrized) graph by repeated heavy-edge matching,
2. compute an **initial partition** of the coarsest graph by greedy
   region growing, and
3. **uncoarsen**, refining at every level with balance-constrained
   boundary moves (a vectorized Kernighan–Lin/FM-style pass).

Hash and range partitioners are provided as locality-free baselines for
the partitioning ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graph.csr import CSRGraph
from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class Partition:
    """A k-way node partition.

    ``assignment[v]`` is the part (GPU) that owns node ``v``.
    """

    assignment: np.ndarray
    num_parts: int

    def __post_init__(self) -> None:
        a = np.ascontiguousarray(self.assignment, dtype=np.int64)
        object.__setattr__(self, "assignment", a)
        if self.num_parts <= 0:
            raise PartitionError("num_parts must be positive")
        if len(a) and (a.min() < 0 or a.max() >= self.num_parts):
            raise PartitionError("assignment out of range")

    @property
    def num_nodes(self) -> int:
        return len(self.assignment)

    @property
    def part_sizes(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.num_parts)

    def nodes_of(self, part: int) -> np.ndarray:
        """Global ids of the nodes owned by ``part``."""
        return np.flatnonzero(self.assignment == part)

    def imbalance(self) -> float:
        """max part size / ideal part size (1.0 = perfectly balanced)."""
        sizes = self.part_sizes
        ideal = self.num_nodes / self.num_parts
        return float(sizes.max() / ideal) if ideal > 0 else 1.0


def edge_cut(graph: CSRGraph, partition: Partition) -> int:
    """Number of directed edges whose endpoints lie in different parts."""
    if partition.num_nodes != graph.num_nodes:
        raise PartitionError("partition does not match graph")
    dst = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)
    a = partition.assignment
    return int(np.count_nonzero(a[graph.indices] != a[dst]))


def hash_partition(num_nodes: int, num_parts: int, seed: int = 0) -> Partition:
    """Locality-free baseline: pseudo-random assignment, balanced in expectation."""
    rng = make_rng(seed)
    # balanced by construction: shuffle a round-robin assignment
    assignment = np.arange(num_nodes, dtype=np.int64) % num_parts
    rng.shuffle(assignment)
    return Partition(assignment, num_parts)


def range_partition(num_nodes: int, num_parts: int) -> Partition:
    """Contiguous equal ranges of the existing node numbering."""
    bounds = np.linspace(0, num_nodes, num_parts + 1).astype(np.int64)
    assignment = np.zeros(num_nodes, dtype=np.int64)
    for part in range(num_parts):
        assignment[bounds[part] : bounds[part + 1]] = part
    return Partition(assignment, num_parts)


def ldg_partition(
    graph: CSRGraph,
    num_parts: int,
    rng: np.random.Generator | int | None = None,
    slack: float = 1.05,
) -> Partition:
    """Linear Deterministic Greedy streaming partitioning.

    One pass over the nodes (random order): each node joins the part
    holding most of its already-placed neighbours, discounted by how
    full the part is — ``score = |N(v) in part| * (1 - size/capacity)``
    [Stanton & Kluot, KDD'12].  Far cheaper than multilevel partitioning
    (a single pass, no coarsening) at somewhat worse cut quality; the
    practical choice when the graph itself arrives as a stream.
    """
    if num_parts <= 0:
        raise PartitionError("num_parts must be positive")
    if num_parts > graph.num_nodes:
        raise PartitionError("more parts than nodes")
    rng = make_rng(rng)
    n = graph.num_nodes
    capacity = slack * n / num_parts
    assignment = np.full(n, -1, dtype=np.int64)
    sizes = np.zeros(num_parts, dtype=np.float64)
    indptr, indices = graph.indptr, graph.indices

    for v in rng.permutation(n):
        nbrs = indices[indptr[v] : indptr[v + 1]]
        placed = assignment[nbrs]
        placed = placed[placed >= 0]
        gains = np.bincount(placed, minlength=num_parts).astype(np.float64)
        score = gains * np.maximum(1.0 - sizes / capacity, 0.0)
        # break score ties toward the emptiest part (keeps balance)
        best = np.flatnonzero(score == score.max())
        part = int(best[np.argmin(sizes[best])])
        assignment[v] = part
        sizes[part] += 1.0
    return Partition(assignment, num_parts)


# ----------------------------------------------------------------------
# multilevel partitioner
# ----------------------------------------------------------------------
def metis_partition(
    graph: CSRGraph,
    num_parts: int,
    rng: np.random.Generator | int | None = None,
    imbalance: float = 1.05,
    coarsest_size: int | None = None,
    refine_passes: int = 8,
) -> Partition:
    """METIS-like multilevel k-way partitioning.

    Minimizes the edge cut subject to ``max part weight <= imbalance *
    ideal`` (node weight = number of original nodes collapsed into a
    coarse node, so balance refers to *original* node counts, which is
    what DSP needs: equal patches per GPU).
    """
    if num_parts <= 0:
        raise PartitionError("num_parts must be positive")
    if num_parts > graph.num_nodes:
        raise PartitionError("more parts than nodes")
    rng = make_rng(rng)
    if num_parts == 1:
        return Partition(np.zeros(graph.num_nodes, dtype=np.int64), 1)

    adj = _symmetrized_adjacency(graph)
    node_w = np.ones(graph.num_nodes, dtype=np.int64)
    if coarsest_size is None:
        coarsest_size = max(64 * num_parts, 256)

    # ---- coarsening phase ------------------------------------------------
    levels: list[tuple[sp.csr_matrix, np.ndarray, np.ndarray]] = []
    while adj.shape[0] > coarsest_size:
        mapping, n_coarse = _heavy_edge_matching(adj, rng)
        if n_coarse >= adj.shape[0] * 0.95:  # matching stalled
            break
        levels.append((adj, node_w, mapping))
        adj, node_w = _contract(adj, node_w, mapping, n_coarse)

    # ---- initial partition on coarsest graph -----------------------------
    assignment = _greedy_growing(adj, node_w, num_parts, rng)
    assignment = _refine(adj, node_w, assignment, num_parts, imbalance, refine_passes, rng)

    # ---- uncoarsening + refinement ---------------------------------------
    for fine_adj, fine_w, mapping in reversed(levels):
        assignment = assignment[mapping]
        assignment = _refine(
            fine_adj, fine_w, assignment, num_parts, imbalance, refine_passes, rng
        )

    return Partition(assignment, num_parts)


def _symmetrized_adjacency(graph: CSRGraph) -> sp.csr_matrix:
    """Undirected weighted adjacency: weight = #directed edges between the pair."""
    n = graph.num_nodes
    dst = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    data = np.ones(graph.num_edges, dtype=np.float64)
    a = sp.coo_matrix((data, (dst, graph.indices)), shape=(n, n)).tocsr()
    a = a + a.T
    a.setdiag(0)
    a.eliminate_zeros()
    return a.tocsr()


def _heavy_edge_matching(
    adj: sp.csr_matrix, rng: np.random.Generator
) -> tuple[np.ndarray, int]:
    """Vectorized mutual heavy-edge matching.

    Each node nominates its heaviest neighbour (ties broken by a random
    per-round key); mutually nominating pairs are matched.  A few rounds
    are run so nodes whose first choice got taken can re-nominate.
    Returns (fine node -> coarse node mapping, number of coarse nodes).
    """
    n = adj.shape[0]
    matched_with = np.full(n, -1, dtype=np.int64)
    indptr, indices, data = adj.indptr, adj.indices, adj.data

    for _ in range(2):
        free = matched_with < 0
        if not free.any():
            break
        # jitter weights so argmax tie-breaking varies per round
        jitter = rng.random(len(data)) * 1e-6
        choice = _rowwise_argmax_neighbor(
            indptr, indices, data + jitter, eligible=free
        )
        # a nomination is valid only from a free node to a free node
        choice[~free] = -1
        valid = choice >= 0
        mutual = np.zeros(n, dtype=bool)
        idx = np.flatnonzero(valid)
        mutual[idx] = choice[choice[idx]] == idx
        pair = np.flatnonzero(mutual & (choice > np.arange(n)))
        matched_with[pair] = choice[pair]
        matched_with[choice[pair]] = pair

    # Mutual matching leaves most of a *dense* power-law graph unmatched
    # (everyone nominates the same hubs), so finish with a sequential
    # greedy pass: visit remaining free nodes in random order, match each
    # with its heaviest still-free neighbour.
    free_nodes = rng.permutation(np.flatnonzero(matched_with < 0))
    for v in free_nodes:
        if matched_with[v] >= 0:
            continue
        lo, hi = indptr[v], indptr[v + 1]
        nbrs = indices[lo:hi]
        ok = matched_with[nbrs] < 0
        ok &= nbrs != v
        if not ok.any():
            continue
        cand = nbrs[ok]
        u = int(cand[np.argmax(data[lo:hi][ok])])
        matched_with[v] = u
        matched_with[u] = v

    # canonical representative = min(v, match(v)); vectorized relabel
    rep = np.where(matched_with >= 0, np.minimum(np.arange(n), matched_with), np.arange(n))
    uniq, mapping = np.unique(rep, return_inverse=True)
    return mapping.astype(np.int64), len(uniq)


def _rowwise_argmax_neighbor(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    eligible: np.ndarray,
) -> np.ndarray:
    """For each row, the eligible neighbour with maximum weight (-1 if none)."""
    n = len(indptr) - 1
    out = np.full(n, -1, dtype=np.int64)
    w = np.where(eligible[indices], data, -np.inf)
    deg = np.diff(indptr)
    nonempty = np.flatnonzero(deg > 0)
    if len(nonempty) == 0:
        return out
    # O(nnz) row maxima via reduceat, then scatter any position attaining
    # the row max (ties are equivalent for matching purposes).
    rowmax = np.full(n, -np.inf)
    rowmax[nonempty] = np.maximum.reduceat(w, indptr[nonempty])
    row_of = np.repeat(np.arange(n, dtype=np.int64), deg)
    cand = np.flatnonzero(np.isfinite(w) & (w == rowmax[row_of]))
    out[row_of[cand]] = indices[cand]
    return out


def _contract(
    adj: sp.csr_matrix, node_w: np.ndarray, mapping: np.ndarray, n_coarse: int
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Collapse matched pairs; edge weights between coarse nodes are summed."""
    coo = adj.tocoo()
    rows = mapping[coo.row]
    cols = mapping[coo.col]
    keep = rows != cols
    coarse = sp.coo_matrix(
        (coo.data[keep], (rows[keep], cols[keep])), shape=(n_coarse, n_coarse)
    ).tocsr()
    coarse.sum_duplicates()
    coarse_w = np.bincount(mapping, weights=node_w, minlength=n_coarse).astype(np.int64)
    return coarse, coarse_w


def _greedy_growing(
    adj: sp.csr_matrix,
    node_w: np.ndarray,
    num_parts: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Initial partition: BFS-grow regions from random seeds up to the ideal weight."""
    n = adj.shape[0]
    total = int(node_w.sum())
    ideal = total / num_parts
    assignment = np.full(n, -1, dtype=np.int64)
    indptr, indices = adj.indptr, adj.indices

    order = rng.permutation(n)
    cursor = 0

    def next_seed() -> int:
        nonlocal cursor
        while cursor < n and assignment[order[cursor]] >= 0:
            cursor += 1
        return int(order[cursor]) if cursor < n else -1

    for part in range(num_parts - 1):
        frontier: list[int] = []
        weight = 0
        while weight < ideal:
            if not frontier:
                seed = next_seed()  # jump components when the BFS dries up
                if seed < 0:
                    break
                frontier.append(seed)
            v = frontier.pop()
            if assignment[v] >= 0:
                continue
            assignment[v] = part
            weight += int(node_w[v])
            for u in indices[indptr[v] : indptr[v + 1]]:
                if assignment[u] < 0:
                    frontier.append(int(u))
    assignment[assignment < 0] = num_parts - 1
    return assignment


def _refine(
    adj: sp.csr_matrix,
    node_w: np.ndarray,
    assignment: np.ndarray,
    num_parts: int,
    imbalance: float,
    passes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Balance-constrained boundary refinement.

    Each pass computes, for every node, its connectivity to every part
    (one sparse matmul), then greedily moves positive-gain boundary
    nodes in random order while keeping every part under the balance
    cap.  Severely overweight parts are also drained by moving their
    best boundary nodes out even at zero/negative gain.
    """
    n = adj.shape[0]
    assignment = assignment.copy()
    total = float(node_w.sum())
    cap = imbalance * total / num_parts

    for _ in range(passes):
        onehot = sp.csr_matrix(
            (np.ones(n), (np.arange(n), assignment)), shape=(n, num_parts)
        )
        conn = np.asarray((adj @ onehot).todense())  # n x k connectivity weight
        own = conn[np.arange(n), assignment]
        conn_other = conn.copy()
        conn_other[np.arange(n), assignment] = -np.inf
        best_part = np.argmax(conn_other, axis=1)
        best = conn_other[np.arange(n), best_part]
        gain = best - own

        part_w = np.bincount(assignment, weights=node_w, minlength=num_parts)
        movable = np.isfinite(best) & (gain > 0)
        moved = 0
        for v in rng.permutation(np.flatnonzero(movable)):
            tgt = int(best_part[v])
            w = float(node_w[v])
            if part_w[tgt] + w <= cap:
                part_w[assignment[v]] -= w
                part_w[tgt] += w
                assignment[v] = tgt
                moved += 1
        # rebalance overweight parts regardless of gain: prefer the
        # best-connected target, fall back to the lightest part
        for part in np.flatnonzero(part_w > cap):
            over = np.flatnonzero(assignment == part)
            order = np.argsort(-gain[over])
            for v in over[order]:
                if part_w[part] <= cap:
                    break
                w = float(node_w[v])
                tgt = int(best_part[v])
                if not np.isfinite(best[v]) or part_w[tgt] + w > cap:
                    tgt = int(np.argmin(part_w))
                if tgt == part:
                    continue
                if part_w[tgt] + w <= cap or part_w[tgt] + w < part_w[part]:
                    part_w[part] -= w
                    part_w[tgt] += w
                    assignment[v] = tgt
                    moved += 1
        if moved == 0 and (part_w <= cap).all():
            break
        if moved == 0:
            break  # no progress is possible; avoid spinning
    return assignment
