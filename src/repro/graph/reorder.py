"""Node renumbering for partitioned graphs.

DSP renumbers nodes so that every graph patch owns a *consecutive*
global-id range (paper §6).  This turns "which GPU holds node v's
adjacency list?" into a range check, and local ids are obtained by
subtracting the patch base offset.  :class:`NodeNumbering` captures the
resulting id scheme; all lookups are vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.utils.errors import PartitionError


@dataclass(frozen=True)
class NodeNumbering:
    """Bidirectional mapping between original and partition-ordered ids.

    Attributes
    ----------
    old_to_new / new_to_old:
        Permutations between the dataset's original node ids ("old") and
        the renumbered global ids ("new").
    part_offsets:
        ``int64[num_parts + 1]``; part ``p`` owns new ids
        ``[part_offsets[p], part_offsets[p + 1])``.
    """

    old_to_new: np.ndarray
    new_to_old: np.ndarray
    part_offsets: np.ndarray

    @property
    def num_parts(self) -> int:
        return len(self.part_offsets) - 1

    @property
    def num_nodes(self) -> int:
        return len(self.old_to_new)

    def owner_of(self, new_ids: np.ndarray) -> np.ndarray:
        """Part owning each (new) global id — a vectorized range check."""
        new_ids = np.asarray(new_ids, dtype=np.int64)
        return np.searchsorted(self.part_offsets, new_ids, side="right") - 1

    def to_local(self, new_ids: np.ndarray) -> np.ndarray:
        """Local id of each (new) global id within its owning part."""
        new_ids = np.asarray(new_ids, dtype=np.int64)
        return new_ids - self.part_offsets[self.owner_of(new_ids)]

    def to_global(self, part: int, local_ids: np.ndarray) -> np.ndarray:
        """(new) global ids of the given local ids on ``part``."""
        local_ids = np.asarray(local_ids, dtype=np.int64)
        size = self.part_offsets[part + 1] - self.part_offsets[part]
        if len(local_ids) and (local_ids.min() < 0 or local_ids.max() >= size):
            raise PartitionError("local id out of range for part")
        return local_ids + self.part_offsets[part]

    def part_size(self, part: int) -> int:
        return int(self.part_offsets[part + 1] - self.part_offsets[part])


def renumber_by_partition(
    graph: CSRGraph, partition: Partition
) -> tuple[CSRGraph, Partition, NodeNumbering]:
    """Renumber ``graph`` so each part's nodes get consecutive global ids.

    Returns the renumbered graph, the matching (sorted) partition, and
    the :class:`NodeNumbering`.  Within a part the original relative
    order is preserved, keeping the renumbering deterministic.
    """
    if partition.num_nodes != graph.num_nodes:
        raise PartitionError("partition does not match graph")
    order = np.argsort(partition.assignment, kind="stable")  # new -> old
    old_to_new = np.empty_like(order)
    old_to_new[order] = np.arange(graph.num_nodes, dtype=np.int64)

    new_graph = graph.permute(old_to_new)
    sizes = partition.part_sizes
    part_offsets = np.zeros(partition.num_parts + 1, dtype=np.int64)
    np.cumsum(sizes, out=part_offsets[1:])
    new_assignment = np.repeat(
        np.arange(partition.num_parts, dtype=np.int64), sizes
    )
    numbering = NodeNumbering(
        old_to_new=old_to_new, new_to_old=order, part_offsets=part_offsets
    )
    return new_graph, Partition(new_assignment, partition.num_parts), numbering
