"""Scaled synthetic stand-ins for the paper's evaluation datasets.

The paper evaluates on ogbn-products (2 M nodes / 123 M edges),
ogbn-papers100M (111 M / 3.2 B) and Friendster (66 M / 3.6 B), none of
which can be downloaded offline or held at full scale here.  Each
dataset is replaced by a ~1000x-smaller synthetic graph that preserves
what the experiments actually exercise:

- average degree (drives sampling fan-in and adjacency-list sizes),
- degree skew (drives feature-cache hit rates),
- feature dimension (drives the feature:topology byte ratio, which is
  what Fig. 10's cache-split experiment sweeps), and
- community structure with correlated labels (so the convergence
  experiment, Fig. 9, trains a real model to a real accuracy).

The simulated GPUs (:mod:`repro.hw.devices`) scale their memory by the
same factor, so "what fits in GPU memory" matches the paper's regimes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import dcsbm_graph
from repro.utils.errors import ConfigError
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Generation parameters for one synthetic dataset."""

    name: str
    num_nodes: int
    num_edges: int
    feature_dim: int
    num_classes: int
    intra_prob: float = 0.8
    power: float = 2.5
    #: cap exponent for the degree-propensity tail (n ** theta_cap_exp);
    #: the paper-scale datasets use 0.7 for realistic hub weight
    theta_cap_exp: float = 0.5
    train_fraction: float = 0.1
    seed: int = 17
    #: node count of the real dataset this one stands in for (Table 3);
    #: the simulated hardware divides its memory, bandwidth and compute
    #: rates by ``scale`` so cache-pressure regimes and epoch-time
    #: magnitudes match the paper's.
    paper_num_nodes: int | None = None

    @property
    def scale(self) -> float:
        """Down-scaling factor vs the paper's dataset (1.0 if original)."""
        if self.paper_num_nodes is None:
            return 1.0
        return self.paper_num_nodes / self.num_nodes

    @property
    def feature_nbytes(self) -> int:
        return self.num_nodes * self.feature_dim * 4


#: Scaled versions of Table 3.  Edge counts are directed edges.
DATASET_SPECS: dict[str, DatasetSpec] = {
    # ogbn-products: 2M nodes, 123M edges, avg deg 50.5, feat dim 100
    "products": DatasetSpec(
        name="products",
        num_nodes=20_000,
        num_edges=1_000_000,
        feature_dim=100,
        num_classes=16,
        power=2.1,
        theta_cap_exp=0.7,
        train_fraction=0.1,
        paper_num_nodes=2_000_000,
    ),
    # ogbn-papers100M: 111M nodes, 3.2B edges, avg deg 28.8, feat dim 128
    "papers": DatasetSpec(
        name="papers",
        num_nodes=120_000,
        num_edges=3_400_000,
        feature_dim=128,
        num_classes=32,
        power=2.1,
        theta_cap_exp=0.7,
        train_fraction=0.05,
        paper_num_nodes=111_000_000,
    ),
    # Friendster: 66M nodes, 3.6B edges, avg deg 54.5, feat dim 256
    "friendster": DatasetSpec(
        name="friendster",
        num_nodes=70_000,
        num_edges=3_800_000,
        feature_dim=256,
        num_classes=24,
        power=2.1,
        theta_cap_exp=0.7,
        train_fraction=0.05,
        paper_num_nodes=66_000_000,
    ),
    # small graph for unit tests and the quickstart example
    "tiny": DatasetSpec(
        name="tiny",
        num_nodes=1_000,
        num_edges=20_000,
        feature_dim=16,
        num_classes=4,
        train_fraction=0.3,
        seed=3,
    ),
}


@dataclass(frozen=True)
class Dataset:
    """A loaded dataset: graph + node features + labels + splits."""

    name: str
    graph: CSRGraph
    features: np.ndarray  # float32[num_nodes, feature_dim]
    labels: np.ndarray  # int64[num_nodes]
    train_nodes: np.ndarray
    val_nodes: np.ndarray
    test_nodes: np.ndarray
    num_classes: int
    spec: DatasetSpec = field(repr=False)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def feature_dim(self) -> int:
        return self.features.shape[1]

    @property
    def feature_nbytes(self) -> int:
        return self.features.nbytes

    def permuted(self, old_to_new: np.ndarray, graph: CSRGraph) -> "Dataset":
        """The same dataset under a node renumbering (see reorder module)."""
        new_to_old = np.empty_like(old_to_new)
        new_to_old[old_to_new] = np.arange(len(old_to_new))
        return Dataset(
            name=self.name,
            graph=graph,
            features=self.features[new_to_old],
            labels=self.labels[new_to_old],
            train_nodes=np.sort(old_to_new[self.train_nodes]),
            val_nodes=np.sort(old_to_new[self.val_nodes]),
            test_nodes=np.sort(old_to_new[self.test_nodes]),
            num_classes=self.num_classes,
            spec=self.spec,
        )


def _generate(spec: DatasetSpec) -> Dataset:
    rng = make_rng(spec.seed)
    graph, community = dcsbm_graph(
        num_nodes=spec.num_nodes,
        num_edges=spec.num_edges,
        num_communities=spec.num_classes,
        intra_prob=spec.intra_prob,
        power=spec.power,
        theta_cap_exp=spec.theta_cap_exp,
        rng=rng,
        return_communities=True,
    )
    labels = community.astype(np.int64)

    # features: class centroid + Gaussian noise -> learnable but not trivial
    centroids = rng.normal(0.0, 1.0, size=(spec.num_classes, spec.feature_dim))
    noise = rng.normal(0.0, 1.5, size=(spec.num_nodes, spec.feature_dim))
    features = (centroids[labels] + noise).astype(np.float32)

    perm = rng.permutation(spec.num_nodes)
    n_train = int(spec.train_fraction * spec.num_nodes)
    n_val = max(1, spec.num_nodes // 50)
    train = np.sort(perm[:n_train])
    val = np.sort(perm[n_train : n_train + n_val])
    test = np.sort(perm[n_train + n_val : n_train + n_val + n_val])
    return Dataset(
        name=spec.name,
        graph=graph,
        features=features,
        labels=labels,
        train_nodes=train,
        val_nodes=val,
        test_nodes=test,
        num_classes=spec.num_classes,
        spec=spec,
    )


def _cache_dir() -> Path:
    """Where generated datasets are persisted between processes.

    Benchmarks spawn many processes; regenerating the multi-million-edge
    graphs each time would dominate runtime, so generation results are
    stored as ``.npz`` keyed by the spec.  Override with ``REPRO_DATA_DIR``.
    """
    return Path(os.environ.get("REPRO_DATA_DIR", Path.home() / ".cache" / "repro-dsp"))


def _spec_key(spec: DatasetSpec) -> str:
    return (
        f"{spec.name}-n{spec.num_nodes}-e{spec.num_edges}-f{spec.feature_dim}"
        f"-c{spec.num_classes}-p{spec.intra_prob}-w{spec.power}"
        f"-x{spec.theta_cap_exp}-s{spec.seed}-t{spec.train_fraction}-v1"
    )


def _save(path: Path, ds: Dataset) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp.npz")
    np.savez_compressed(
        tmp,
        indptr=ds.graph.indptr,
        indices=ds.graph.indices,
        features=ds.features,
        labels=ds.labels,
        train=ds.train_nodes,
        val=ds.val_nodes,
        test=ds.test_nodes,
    )
    os.replace(tmp, path)


def _load_npz(path: Path, spec: DatasetSpec) -> Dataset:
    with np.load(path) as z:
        graph = CSRGraph(indptr=z["indptr"], indices=z["indices"])
        return Dataset(
            name=spec.name,
            graph=graph,
            features=z["features"],
            labels=z["labels"],
            train_nodes=z["train"],
            val_nodes=z["val"],
            test_nodes=z["test"],
            num_classes=spec.num_classes,
            spec=spec,
        )


@lru_cache(maxsize=8)
def _load_cached(name: str) -> Dataset:
    spec = DATASET_SPECS[name]
    path = _cache_dir() / f"{_spec_key(spec)}.npz"
    if path.exists():
        try:
            return _load_npz(path, spec)
        except (OSError, KeyError, ValueError):
            path.unlink(missing_ok=True)  # corrupt cache; regenerate
    ds = _generate(spec)
    try:
        _save(path, ds)
    except OSError:
        pass  # caching is best-effort
    return ds


#: user-registered datasets (see :func:`register_dataset`)
_REGISTERED: dict[str, Dataset] = {}


def register_dataset(dataset: Dataset, overwrite: bool = False) -> None:
    """Make a user-built :class:`Dataset` loadable by name.

    Lets external graphs (see :mod:`repro.graph.io`) run through every
    training system: ``RunConfig(dataset=<registered name>)``.
    """
    name = dataset.name
    if not overwrite and (name in DATASET_SPECS or name in _REGISTERED):
        raise ConfigError(f"dataset {name!r} already exists")
    _REGISTERED[name] = dataset


def load_dataset(name: str) -> Dataset:
    """Load (generating and caching on first use) a named dataset."""
    if name in _REGISTERED:
        return _REGISTERED[name]
    if name not in DATASET_SPECS:
        raise ConfigError(
            f"unknown dataset {name!r}; available: "
            f"{sorted(DATASET_SPECS) + sorted(_REGISTERED)}"
        )
    return _load_cached(name)


@lru_cache(maxsize=32)
def _partition_cached(name: str, num_parts: int, seed: int):
    from repro.graph.partition import Partition, metis_partition

    ds = _load_cached(name)
    spec = ds.spec
    path = _cache_dir() / f"{_spec_key(spec)}-part{num_parts}-s{seed}.npy"
    if path.exists():
        try:
            return Partition(np.load(path), num_parts)
        except (OSError, ValueError):
            path.unlink(missing_ok=True)
    part = metis_partition(ds.graph, num_parts, rng=seed)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp.npy")
        np.save(tmp, part.assignment)
        os.replace(tmp, path)
    except OSError:
        pass
    return part


def load_partition(name: str, num_parts: int, seed: int = 0):
    """METIS-like partition of a named dataset, cached on disk.

    Partitioning the multi-million-edge graphs takes seconds; the
    benchmark suite needs the same (dataset, k) partitions over and
    over, so they are persisted alongside the dataset cache.
    """
    if name in _REGISTERED:
        # user datasets have no spec-keyed disk cache; partition directly
        from repro.graph.partition import metis_partition

        return metis_partition(_REGISTERED[name].graph, num_parts, rng=seed)
    if name not in DATASET_SPECS:
        raise ConfigError(f"unknown dataset {name!r}")
    return _partition_cached(name, num_parts, seed)
