"""Synthetic graph generators.

The paper evaluates on three real power-law graphs (ogbn-products,
ogbn-papers100M, Friendster).  Those graphs are not available offline,
so we generate scaled stand-ins that preserve the two properties DSP's
results depend on:

- a **heavily skewed degree distribution** (hot nodes dominate feature
  accesses, which is what makes GPU feature caching effective), and
- **community structure** (what METIS exploits; also gives GNNs a
  learnable signal for the convergence experiment, Fig. 9).

Two generators are provided: an RMAT-style recursive generator (degree
skew, weak communities) and a degree-corrected stochastic block model
(degree skew *and* planted communities).  Both are fully vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.errors import ReproError
from repro.utils.rng import make_rng


def rmat_graph(
    num_nodes: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: np.random.Generator | int | None = None,
) -> CSRGraph:
    """Generate an RMAT (Kronecker) graph with ``num_edges`` directed edges.

    ``num_nodes`` is rounded up to the next power of two internally and
    edges falling on padding nodes are redirected by modulo, so the
    returned graph has exactly ``num_nodes`` nodes.  The default
    (a, b, c) parameters are the standard Graph500 values and give a
    power-law-like in-degree distribution.
    """
    if num_nodes <= 0 or num_edges < 0:
        raise ReproError("num_nodes must be positive and num_edges non-negative")
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c) < 0:
        raise ReproError("RMAT probabilities must be non-negative and sum <= 1")
    rng = make_rng(rng)
    scale = max(1, int(np.ceil(np.log2(num_nodes))))

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # At each level pick one of four quadrants per edge; the quadrant's
    # (row, col) bit pair appends one bit to (src, dst) respectively.
    quadrant_p = np.array([a, b, c, d])
    quadrant_p = quadrant_p / quadrant_p.sum()
    for _ in range(scale):
        q = rng.choice(4, size=num_edges, p=quadrant_p)
        src = (src << 1) | (q >> 1)  # quadrants 2,3 are the bottom row
        dst = (dst << 1) | (q & 1)  # quadrants 1,3 are the right column
    src %= num_nodes
    dst %= num_nodes
    return CSRGraph.from_edges(src, dst, num_nodes)


def dcsbm_graph(
    num_nodes: int,
    num_edges: int,
    num_communities: int = 16,
    intra_prob: float = 0.8,
    power: float = 2.5,
    theta_cap_exp: float = 0.5,
    rng: np.random.Generator | int | None = None,
    return_communities: bool = False,
) -> CSRGraph | tuple[CSRGraph, np.ndarray]:
    """Degree-corrected stochastic block model.

    Each node gets a community (uniform) and a degree propensity drawn
    from a Pareto power law so the degree distribution has tail exponent
    about ``power`` (2–3 is typical of real graphs).  For every edge we
    first decide whether it stays inside one community (with probability
    ``intra_prob``), then draw both endpoints proportional to their
    propensity within the chosen communities.  Duplicate edges are
    discarded and topped up over a few rounds so the returned graph has
    exactly ``num_edges`` distinct directed edges (or as many as fit).

    Returns the graph, and additionally the community assignment when
    ``return_communities`` is set (used to derive node labels).
    """
    if not 0.0 <= intra_prob <= 1.0:
        raise ReproError("intra_prob must be in [0, 1]")
    if num_communities <= 0 or num_communities > num_nodes:
        raise ReproError("need 1 <= num_communities <= num_nodes")
    if power <= 1.0:
        raise ReproError("power must exceed 1 (degree tail exponent)")
    rng = make_rng(rng)

    community = rng.integers(0, num_communities, size=num_nodes)
    # make sure every community is non-empty so endpoint draws never fail
    community[:num_communities] = np.arange(num_communities)
    # Pareto(alpha = power - 1) propensities; cap the largest (at
    # num_nodes ** theta_cap_exp) so no single node absorbs the edge
    # budget, which would collapse under dedup.
    theta = (1.0 - rng.random(num_nodes)) ** (-1.0 / (power - 1.0))
    theta = np.minimum(theta, float(num_nodes) ** theta_cap_exp)

    # Pre-compute, per community, the member list and a cumulative
    # propensity table so endpoint draws are a vectorized searchsorted.
    members: list[np.ndarray] = []
    cumw: list[np.ndarray] = []
    for comm in range(num_communities):
        m = np.flatnonzero(community == comm)
        members.append(m)
        w = np.cumsum(theta[m])
        cumw.append(w / w[-1])

    def draw_in_communities(comms: np.ndarray) -> np.ndarray:
        out = np.empty(len(comms), dtype=np.int64)
        u = rng.random(len(comms))
        for comm in range(num_communities):
            mask = comms == comm
            if not mask.any():
                continue
            idx = np.searchsorted(cumw[comm], u[mask], side="left")
            out[mask] = members[comm][idx]
        return out

    def draw_edges(count: int) -> np.ndarray:
        src_comm = rng.integers(0, num_communities, size=count)
        intra = rng.random(count) < intra_prob
        dst_comm = np.where(
            intra, src_comm, rng.integers(0, num_communities, size=count)
        )
        src = draw_in_communities(src_comm)
        dst = draw_in_communities(dst_comm)
        return dst * np.int64(num_nodes) + src  # packed (dst, src) keys

    # top-up loop: duplicates are dropped, so oversample until the target
    keys = np.empty(0, dtype=np.int64)
    for _ in range(8):
        missing = num_edges - len(keys)
        if missing <= 0:
            break
        batch = draw_edges(int(missing * 1.5) + 1024)
        keys = np.unique(np.concatenate([keys, batch]))
    if len(keys) > num_edges:
        keep = rng.permutation(len(keys))[:num_edges]
        keys = keys[keep]

    src = keys % num_nodes
    dst = keys // num_nodes
    graph = CSRGraph.from_edges(src, dst, num_nodes, dedup=False)
    if return_communities:
        return graph, community
    return graph


def uniform_graph(
    num_nodes: int,
    num_edges: int,
    rng: np.random.Generator | int | None = None,
) -> CSRGraph:
    """Uniform random directed graph (G(n, m) style), for tests/baselines."""
    if num_nodes <= 0:
        raise ReproError("num_nodes must be positive")
    rng = make_rng(rng)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    return CSRGraph.from_edges(src, dst, num_nodes)
