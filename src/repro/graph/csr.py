"""Compressed sparse row graph storage.

DSP stores each graph patch in CSR format where every node records its
*in-neighbours* in the adjacency list to facilitate sampling (paper §6):
a GNN layer aggregates a node's embedding from the nodes that point at
it, so sampling "neighbours of v" means sampling from v's in-edges.

The structure is deliberately minimal and fully vectorized: two integer
arrays (``indptr`` / ``indices``) plus an optional per-edge weight array
used by biased sampling (§4.2, weights are stored alongside edges during
data preparation so sampling GPUs read them locally).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ReproError


@dataclass(frozen=True)
class CSRGraph:
    """An immutable directed graph in CSR (in-neighbour) layout.

    Attributes
    ----------
    indptr:
        ``int64[num_nodes + 1]``; the adjacency list of node ``v`` is
        ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64[num_edges]`` neighbour ids.  Ids are *global* node ids —
        the paper stores global ids in adjacency lists to avoid id
        conversion for sampled nodes (§6) and we do the same.
    edge_weights:
        Optional ``float32[num_edges]`` non-negative weights used by
        biased sampling.  ``None`` means unweighted (unbiased sampling).
    """

    indptr: np.ndarray
    indices: np.ndarray
    edge_weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ReproError("indptr and indices must be 1-D arrays")
        if len(indptr) == 0 or indptr[0] != 0:
            raise ReproError("indptr must start with 0")
        if indptr[-1] != len(indices):
            raise ReproError(
                f"indptr[-1]={indptr[-1]} does not match len(indices)={len(indices)}"
            )
        if np.any(np.diff(indptr) < 0):
            raise ReproError("indptr must be non-decreasing")
        if self.edge_weights is not None:
            w = np.ascontiguousarray(self.edge_weights, dtype=np.float32)
            object.__setattr__(self, "edge_weights", w)
            if w.shape != indices.shape:
                raise ReproError("edge_weights must have one entry per edge")
            if np.any(w < 0):
                raise ReproError("edge weights must be non-negative")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    @property
    def degrees(self) -> np.ndarray:
        """In-degree of every node, ``int64[num_nodes]``."""
        return np.diff(self.indptr)

    @property
    def average_degree(self) -> float:
        return self.num_edges / max(self.num_nodes, 1)

    def neighbors(self, v: int) -> np.ndarray:
        """The in-neighbour list of node ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray | None:
        if self.edge_weights is None:
            return None
        return self.edge_weights[self.indptr[v] : self.indptr[v + 1]]

    @property
    def topology_nbytes(self) -> int:
        """Bytes needed to store the topology (what sits in GPU memory)."""
        n = self.indptr.nbytes + self.indices.nbytes
        if self.edge_weights is not None:
            n += self.edge_weights.nbytes
        return n

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
        edge_weights: np.ndarray | None = None,
        dedup: bool = True,
    ) -> "CSRGraph":
        """Build the in-neighbour CSR from a directed edge list.

        An edge ``(src[i], dst[i])`` makes ``src[i]`` an in-neighbour of
        ``dst[i]``, i.e. it lands in ``dst[i]``'s adjacency list.
        Self-loops are kept; parallel edges are removed when ``dedup``.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ReproError("src and dst must have the same length")
        if len(src) and (src.min() < 0 or dst.min() < 0):
            raise ReproError("node ids must be non-negative")
        if len(src) and max(src.max(), dst.max()) >= num_nodes:
            raise ReproError("edge endpoint exceeds num_nodes")

        if dedup and len(src):
            # unique (dst, src) pairs; keeps first weight for duplicates
            key = dst * np.int64(num_nodes) + src
            _, keep = np.unique(key, return_index=True)
            keep.sort()
            src, dst = src[keep], dst[keep]
            if edge_weights is not None:
                edge_weights = np.asarray(edge_weights)[keep]

        order = np.argsort(dst, kind="stable")
        src, dst = src[order], dst[order]
        if edge_weights is not None:
            edge_weights = np.asarray(edge_weights, dtype=np.float32)[order]
        counts = np.bincount(dst, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr=indptr, indices=src, edge_weights=edge_weights)

    def with_weights(self, weights: np.ndarray) -> "CSRGraph":
        """Return a copy of this graph with the given per-edge weights."""
        return CSRGraph(self.indptr, self.indices, weights)

    def with_node_weights(self, node_weights: np.ndarray) -> "CSRGraph":
        """Attach per-*node* weights by expanding them onto edges.

        Biased sampling draws neighbour ``u`` of ``v`` with probability
        proportional to ``w_u`` (§4.2).  DSP materializes ``w_u`` on the
        edge ``e_{v,u}`` so weights are local to the sampling GPU; this
        helper performs that materialization.
        """
        node_weights = np.asarray(node_weights, dtype=np.float32)
        if node_weights.shape != (self.num_nodes,):
            raise ReproError("need one weight per node")
        return self.with_weights(node_weights[self.indices])

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """Reverse every edge (in-neighbour CSR becomes out-neighbour CSR)."""
        dst = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees)
        return CSRGraph.from_edges(
            src=dst,
            dst=self.indices,
            num_nodes=self.num_nodes,
            edge_weights=self.edge_weights,
            dedup=False,
        )

    def induced_subgraph(self, nodes: np.ndarray) -> tuple["CSRGraph", np.ndarray]:
        """Subgraph induced by ``nodes``; returns (subgraph, old ids).

        Node ``i`` of the subgraph corresponds to ``nodes[i]``.  Edges
        whose endpoint falls outside ``nodes`` are dropped.
        """
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        remap = np.full(self.num_nodes, -1, dtype=np.int64)
        remap[nodes] = np.arange(len(nodes))
        dst = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees)
        src = self.indices
        mask = (remap[dst] >= 0) & (remap[src] >= 0)
        w = None if self.edge_weights is None else self.edge_weights[mask]
        sub = CSRGraph.from_edges(
            src=remap[src[mask]],
            dst=remap[dst[mask]],
            num_nodes=len(nodes),
            edge_weights=w,
            dedup=False,
        )
        return sub, nodes

    def permute(self, perm: np.ndarray) -> "CSRGraph":
        """Renumber nodes: new id of old node ``v`` is ``perm[v]``."""
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.num_nodes,):
            raise ReproError("perm must be a permutation of all node ids")
        check = np.zeros(self.num_nodes, dtype=bool)
        check[perm] = True
        if not check.all():
            raise ReproError("perm must be a permutation of all node ids")
        dst = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees)
        return CSRGraph.from_edges(
            src=perm[self.indices],
            dst=perm[dst],
            num_nodes=self.num_nodes,
            edge_weights=self.edge_weights,
            dedup=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        w = "weighted" if self.edge_weights is not None else "unweighted"
        return (
            f"CSRGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"avg_degree={self.average_degree:.1f}, {w})"
        )
