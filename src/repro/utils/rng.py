"""Deterministic random-number-generator plumbing.

All stochastic components (graph generators, samplers, model init,
mini-batch shuffling) take an explicit :class:`numpy.random.Generator`.
These helpers create and fan out generators reproducibly so that a run
is fully determined by one integer seed.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a Generator: pass through an existing one, else seed a new one."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Used to give each simulated GPU its own stream so per-GPU sampling
    results do not depend on GPU execution order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
