"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without catching programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class CapacityError(ReproError):
    """A resource (GPU memory, queue slot, cache budget) was exceeded."""


class DeadlockError(ReproError):
    """The execution engine detected a communication deadlock.

    Raised when concurrently launched collective kernels block each
    other permanently (paper §5, Figure 8).  Enabling centralized
    communication coordination (CCC) prevents this.
    """

    def __init__(self, message: str, waiting: dict | None = None):
        super().__init__(message)
        #: map of gpu id -> collective tag it is blocked on (diagnostics)
        self.waiting = dict(waiting or {})


class PartitionError(ReproError):
    """Graph partitioning failed or produced an invalid partition."""


class WorkerError(ReproError):
    """A run task failed inside a parallel worker process.

    The child's formatted traceback is embedded in the message (and
    kept on :attr:`child_traceback`) so a fan-out failure reads the
    same as it would have when run serially.
    """

    def __init__(self, message: str, label: str = "",
                 child_traceback: str = ""):
        super().__init__(message)
        #: label of the failing :class:`repro.parallel.RunSpec`
        self.label = label
        #: the traceback as formatted in the worker process
        self.child_traceback = child_traceback
