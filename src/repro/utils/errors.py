"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without catching programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class CapacityError(ReproError):
    """A resource (GPU memory, queue slot, cache budget) was exceeded."""


class DeadlockError(ReproError):
    """The execution engine detected a communication deadlock.

    Raised when concurrently launched collective kernels block each
    other permanently (paper §5, Figure 8).  Enabling centralized
    communication coordination (CCC) prevents this.
    """

    def __init__(self, message: str, waiting: dict | None = None):
        super().__init__(message)
        #: map of gpu id -> collective tag it is blocked on (diagnostics)
        self.waiting = dict(waiting or {})


class PipelineStall(DeadlockError):
    """The pipeline wedged on a bounded queue whose other side is gone.

    Raised instead of a bare :class:`DeadlockError` when the engine can
    prove the wedge is a *stall* — a producer blocked on a full queue
    whose consumer has exited (or a consumer starved by dead
    producers) — so the failure is diagnosable: the message names the
    dead worker(s), the queue, and every process blocked on it.
    Subclasses :class:`DeadlockError` so existing handlers still catch
    it.
    """

    def __init__(self, message: str, waiting: dict | None = None,
                 dead: tuple = ()):
        super().__init__(message, waiting)
        #: names of the exited workers the blocked processes depend on
        self.dead = tuple(dead)


class InvariantViolation(ReproError):
    """A simulation invariant was broken (see ``repro.chaos.invariants``).

    Raised by the :class:`~repro.chaos.invariants.InvariantChecker`
    the moment a check fails: non-monotone clock, queue over capacity,
    out-of-order CCC launch, link-byte non-conservation, or a batch
    lost without an accounted cause.
    """

    def __init__(self, message: str, invariant: str = ""):
        super().__init__(message)
        #: short name of the violated invariant (e.g. ``"queue-bound"``)
        self.invariant = invariant


class PartitionError(ReproError):
    """Graph partitioning failed or produced an invalid partition."""


class WorkerError(ReproError):
    """A run task failed inside a parallel worker process.

    The child's formatted traceback is embedded in the message (and
    kept on :attr:`child_traceback`) so a fan-out failure reads the
    same as it would have when run serially.
    """

    def __init__(self, message: str, label: str = "",
                 child_traceback: str = ""):
        super().__init__(message)
        #: label of the failing :class:`repro.parallel.RunSpec`
        self.label = label
        #: the traceback as formatted in the worker process
        self.child_traceback = child_traceback
