"""Shared utilities: units, errors, RNG handling, validation helpers."""

from repro.utils.errors import (
    ReproError,
    ConfigError,
    CapacityError,
    DeadlockError,
    InvariantViolation,
    PartitionError,
    PipelineStall,
    WorkerError,
)
from repro.utils.units import KB, MB, GB, Bytes, fmt_bytes, fmt_time
from repro.utils.rng import make_rng, spawn_rngs

__all__ = [
    "ReproError",
    "ConfigError",
    "CapacityError",
    "DeadlockError",
    "InvariantViolation",
    "PartitionError",
    "PipelineStall",
    "WorkerError",
    "KB",
    "MB",
    "GB",
    "Bytes",
    "fmt_bytes",
    "fmt_time",
    "make_rng",
    "spawn_rngs",
]
