"""Byte and time units plus human-readable formatting.

The hardware model works in bytes and seconds throughout; these helpers
keep magic numbers out of the cost-model code.
"""

from __future__ import annotations

Bytes = int

KB: Bytes = 1024
MB: Bytes = 1024 * KB
GB: Bytes = 1024 * MB

US = 1e-6
MS = 1e-3


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``fmt_bytes(2048) == '2.00 KiB'``."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.2f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Format a duration, picking the largest unit that keeps >= 1 digit."""
    if seconds < 0:
        return "-" + fmt_time(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.2f} min"
