"""Blocking primitives for the simulator: resources, queues, barriers.

- :class:`Resource` models an irrevocable pool (GPU SM threads): a
  kernel acquires its footprint, holds it for its whole duration, and
  releases on completion.  Waiters are served FIFO.  The resource also
  integrates time-weighted usage, which is how GPU utilization (paper
  Fig 6) is measured.
- :class:`BoundedQueue` is the producer-consumer queue of the training
  pipeline (paper §5, Fig 7) — ``put`` blocks when the queue is at
  capacity, which is how DSP throttles fast stages.
- :class:`Rendezvous` is the all-participants barrier at the heart of a
  collective kernel: the kernel "runs" only once every peer has
  launched, which is property (ii) behind the Fig 8 deadlock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.engine.simulator import Process, Simulator
from repro.utils.errors import ReproError

#: buffered gauge samples are flushed to the registry at this depth
#: (and always at ``MetricsRegistry.finalize``)
METRIC_FLUSH_EVERY = 256


class _Request:
    """Base: stores the synchronous result for the simulator to pick up."""

    result: Any = None


class _UsageMetricsBuffer:
    """Flat-array staging of a resource's utilization gauge samples.

    Per ``used`` transition the hot path appends three floats instead
    of running two window-splitting ``Gauge.set`` calls; the buffer is
    flushed in bulk (:meth:`repro.metrics.registry.Gauge.set_many`,
    vectorized per-window integration) every
    :data:`METRIC_FLUSH_EVERY` samples and, via the registry's flusher
    hook, before the registry finalizes or exports — so the exported
    series are identical to the per-event path.
    """

    __slots__ = ("_util", "_busy", "_ts", "_utils", "_busys")

    def __init__(self, registry, name: str):
        self._util = registry.gauge("resource_util", resource=name)
        self._busy = registry.gauge("resource_busy", resource=name)
        self._ts: list[float] = []
        self._utils: list[float] = []
        self._busys: list[float] = []
        registry.add_flusher(self.flush)

    def add(self, t: float, util: float, busy: float) -> None:
        ts = self._ts
        ts.append(t)
        self._utils.append(util)
        self._busys.append(busy)
        if len(ts) >= METRIC_FLUSH_EVERY:
            self.flush()

    def flush(self) -> None:
        if not self._ts:
            return
        self._util.set_many(self._ts, self._utils)
        self._busy.set_many(self._ts, self._busys)
        self._ts = []
        self._utils = []
        self._busys = []


class Resource:
    """A counted resource pool with FIFO waiters and usage accounting."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity <= 0:
            raise ReproError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.used = 0
        self._waiters: deque[tuple[Process, int]] = deque()
        # time-weighted integrals for utilization metrics
        self._last_t = sim.now
        self._area = 0.0  # integral of used threads dt
        self._busy = 0.0  # integral of [used > 0] dt
        # lazily bound metrics buffer (only when sim.metrics is set)
        self._m_buf: _UsageMetricsBuffer | None = None

    # -- accounting ----------------------------------------------------
    def _account(self) -> None:
        dt = self.sim.now - self._last_t
        if dt == 0.0:
            # Same-timestamp re-entry (acquire+release at one event time,
            # or occupancy() followed by busy_fraction()): integrating a
            # zero-width slice must not touch the integrals.  Guarding
            # here keeps repeated metric reads idempotent by
            # construction, not by floating-point luck.
            return
        self._area += self.used * dt
        self._busy += dt if self.used > 0 else 0.0
        self._last_t = self.sim.now

    def _trace_used(self) -> None:
        """Counter event on a ``used`` transition.  Callers guard with
        ``if sim.tracer is not None`` to keep untraced runs call-free."""
        self.sim.tracer.counter(self.name, "used", self.sim.now,
                                used=self.used)

    def _metric_used(self) -> None:
        """Utilization gauges on a ``used`` transition.  Callers guard
        with ``if sim.metrics is not None`` (zero-cost-off).  Samples
        are staged in flat arrays and flushed to the registry in bulk,
        not integrated per event (see :class:`_UsageMetricsBuffer`)."""
        buf = self._m_buf
        if buf is None:
            buf = self._m_buf = _UsageMetricsBuffer(self.sim.metrics,
                                                    self.name)
        buf.add(self.sim.now, self.used / self.capacity,
                1.0 if self.used else 0.0)

    def occupancy(self, total_time: float | None = None) -> float:
        """Mean fraction of capacity in use over the simulation."""
        self._account()
        t = self._last_t if total_time is None else total_time
        return self._area / self.capacity / t if t > 0 else 0.0

    def busy_fraction(self, total_time: float | None = None) -> float:
        """Fraction of time at least one holder was resident."""
        self._account()
        t = self._last_t if total_time is None else total_time
        return self._busy / t if t > 0 else 0.0

    # -- acquire/release -----------------------------------------------
    def acquire(self, n: int) -> "_Acquire":
        if n <= 0:
            raise ReproError("must acquire a positive amount")
        if n > self.capacity:
            raise ReproError(
                f"{self.name}: requested {n} exceeds capacity {self.capacity}"
            )
        return _Acquire(self, n)

    def release(self, n: int) -> None:
        if n <= 0 or n > self.used:
            raise ReproError(f"{self.name}: bad release of {n} (used={self.used})")
        self._account()
        self.used -= n
        if self.sim.tracer is not None:
            self._trace_used()
        if self.sim.metrics is not None:
            self._metric_used()
        self._drain()

    def _drain(self) -> None:
        # FIFO: the head waiter blocks those behind it (irrevocable,
        # in-order SM allocation — what makes Fig 8 deadlocks possible)
        while self._waiters and self.used + self._waiters[0][1] <= self.capacity:
            proc, n = self._waiters.popleft()
            self._account()
            self.used += n
            if self.sim.tracer is not None:
                self._trace_used()
            if self.sim.metrics is not None:
                self._metric_used()
            self.sim.resume(proc)


@dataclass
class _Acquire(_Request):
    resource: Resource
    n: int

    def __sim_request__(self, sim: Simulator, proc: Process) -> bool:
        r = self.resource
        if not r._waiters and r.used + self.n <= r.capacity:
            r._account()
            r.used += self.n
            if sim.tracer is not None:
                r._trace_used()
            if sim.metrics is not None:
                r._metric_used()
            return True
        proc.waiting_on = ("acquire", r.name, self.n)  # lazy label
        r._waiters.append((proc, self.n))
        return False


class BoundedQueue:
    """FIFO queue with a capacity limit; put/get block as needed."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "queue"):
        if capacity <= 0:
            raise ReproError("queue capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: deque[Any] = deque()
        self._putters: deque[tuple[Process, Any]] = deque()
        self._getters: deque[Process] = deque()
        #: total items that passed through (metrics)
        self.total_put = 0
        # lazily bound metrics instrument (only when sim.metrics is set)
        self._m_depth = None

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> "_Put":
        return _Put(self, item)

    def get(self) -> "_Get":
        return _Get(self)

    def _push(self, item: Any) -> None:
        self.total_put += 1
        if self._getters:
            getter = self._getters.popleft()
            self.sim.resume(getter, item)
        else:
            self.items.append(item)
        if self.sim.invariants is not None:
            self.sim.invariants.on_queue_push(
                self.name, len(self.items), self.capacity
            )
        if self.sim.tracer is not None:
            self._trace_depth()
        if self.sim.metrics is not None:
            self._metric_depth()

    def _trace_depth(self) -> None:
        """Queue-depth counter on a change.  Callers guard with
        ``if sim.tracer is not None`` to keep untraced runs call-free."""
        self.sim.tracer.counter(self.name, "depth", self.sim.now,
                                depth=len(self.items),
                                blocked_putters=len(self._putters),
                                blocked_getters=len(self._getters))

    def _metric_depth(self) -> None:
        """Depth gauge on a change.  Callers guard with
        ``if sim.metrics is not None`` (zero-cost-off)."""
        depth = self._m_depth
        if depth is None:
            depth = self._m_depth = self.sim.metrics.gauge(
                "queue_depth", queue=self.name
            )
        depth.set(self.sim.now, len(self.items))


@dataclass
class _Put(_Request):
    queue: BoundedQueue
    item: Any

    def __sim_request__(self, sim: Simulator, proc: Process) -> bool:
        q = self.queue
        # a slot is free if the buffer has room (waiting getters imply
        # an empty buffer, so the check below covers that case too)
        if len(q.items) < q.capacity:
            q._push(self.item)
            return True
        proc.waiting_on = ("put", q.name)  # lazy label
        q._putters.append((proc, self.item))
        return False


@dataclass
class _Get(_Request):
    queue: BoundedQueue

    def __sim_request__(self, sim: Simulator, proc: Process) -> bool:
        q = self.queue
        if q.items:
            self.result = q.items.popleft()
            if q._putters:
                putter, item = q._putters.popleft()
                q._push(item)
                sim.resume(putter)
            else:
                if sim.tracer is not None:
                    q._trace_depth()
                if sim.metrics is not None:
                    q._metric_depth()
            return True
        proc.waiting_on = ("get", q.name)  # lazy label
        q._getters.append(proc)
        return False


class Rendezvous:
    """Barriers keyed by tag: all ``n_expected`` arrivals resume together."""

    def __init__(self, sim: Simulator, name: str = "rendezvous"):
        self.sim = sim
        self.name = name
        self._pending: dict[Any, list[Process]] = {}

    def arrive(self, tag: Any, n_expected: int) -> "_Arrive":
        if n_expected <= 0:
            raise ReproError("n_expected must be positive")
        return _Arrive(self, tag, n_expected)


@dataclass
class _Arrive(_Request):
    barrier: Rendezvous
    tag: Any
    n_expected: int

    def __sim_request__(self, sim: Simulator, proc: Process) -> bool:
        b = self.barrier
        waiting = b._pending.setdefault(self.tag, [])
        if len(waiting) + 1 == self.n_expected:
            del b._pending[self.tag]
            for p in waiting:
                sim.resume(p)
            if sim.tracer is not None:
                sim.tracer.instant(b.name, f"release:{self.tag}", sim.now,
                                   cat="rendezvous", parties=self.n_expected)
            return True  # last arrival proceeds immediately
        proc.waiting_on = ("barrier", b.name, self.tag)  # lazy label
        waiting.append(proc)
        return False
