"""The discrete-event simulator core.

A :class:`Process` wraps a generator.  Each ``yield`` hands the
simulator a request object; the simulator resumes the generator when
the request completes.  Supported requests:

- :class:`Timeout` — resume after a fixed simulated delay.
- any object whose *class* defines a ``__sim_request__(sim, process)``
  method (the resource/queue/barrier primitives in
  :mod:`repro.engine.resources`).
- another generator — run it inline (sub-process call), resuming the
  parent with the child's return value.

Deadlock detection comes for free: if the event queue runs dry while
processes are still blocked, nothing can ever happen again, and the
simulator raises :class:`~repro.utils.errors.DeadlockError` naming each
blocked process and what it is waiting on — exactly the situation of
the paper's Fig 8.

Two interchangeable scheduler cores drive the loop (the event *order*
is bit-identical between them; ``tests/engine/test_scheduler_equivalence``
pins the contract):

- the default **bucketed calendar core**: pending events live in a
  ``{timestamp: [target, value, ...]}`` bucket table plus a heap of
  *distinct* timestamps.  Scheduling into an existing timestamp is an
  O(1) append — the near-monotonic, heavily duplicated timestamps the
  serving tier produces (zero-delay queue handoffs, barrier releases,
  quantized batcher deadlines) pay no heap traffic at all — and only
  the first event of a new timestamp pays the O(log d) heap push
  (``d`` = distinct pending times, the far-future fallback).  The run
  loop dispatches **all events of one timestamp as a single batch**:
  one ``now`` update and one invariant ``on_event_time`` call per
  distinct time instead of per event, with FIFO order preserved
  because bucket appends happen in global scheduling order (what the
  legacy core's per-event sequence counter enforced).
- the legacy **heap core** (``use_heap_scheduler=True``, or env
  ``REPRO_HEAP_SCHEDULER=1``): one ``(time, seq, target, value)``
  binary heap, one push/pop per event — retained as the escape hatch
  and as the *before* measurement of the ``engine_core``
  microbenchmark (``repro perf``).

The hot path allocates nothing when no tracer/metrics/invariant hook
is attached: blocking diagnostics (``Process.waiting_on``) store the
raw request and format the human-readable label lazily, only when
deadlock forensics, ``__repr__`` or an attached tracer asks for it.
"""

from __future__ import annotations

import heapq
import itertools
import os
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterator

from repro.obs.tracer import wait_category
from repro.utils.errors import DeadlockError, ReproError


@dataclass(frozen=True)
class Timeout:
    """Request: resume the yielding process after ``delay`` sim-seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ReproError(f"negative delay: {self.delay}")


def _format_wait(wait: Any) -> str:
    """Render a lazily stored wait descriptor as the diagnostic label.

    Blocking sites store either a plain string (legacy contract), the
    :class:`Timeout` request itself, or a ``(kind, *args)`` tuple; the
    formats below reproduce the labels the eager f-strings used to
    build, so :func:`repro.obs.tracer.wait_category` and deadlock
    messages are unchanged.
    """
    if type(wait) is str:
        return wait
    if type(wait) is Timeout:
        return f"timeout({wait.delay:g})"
    kind = wait[0]
    if kind == "guarded":
        return f"guarded({wait[1]}, {wait[2]}#{wait[3]})"
    args = ", ".join(str(a) for a in wait[1:])
    return f"{kind}({args})"


class Process:
    """A running generator plus its call stack of nested generators.

    ``__slots__`` because serve sweeps create one per request batch and
    the event loop touches these attributes millions of times.
    """

    __slots__ = (
        "name", "stack", "done", "result", "_wait",
        "block_start", "block_label",
    )

    def __init__(self, name: str, gen: Generator):
        self.name = name
        self.stack: list[Generator] = [gen]
        self.done = False
        self.result: Any = None
        #: raw blocking-request descriptor; read the formatted label via
        #: :attr:`waiting_on` (diagnostics only — never on the hot path)
        self._wait: Any = None
        # open wait-span bookkeeping; only touched when a tracer is set
        self.block_start: float = 0.0
        self.block_label: str | None = None

    @property
    def waiting_on(self) -> str | None:
        """Human-readable description of the blocking request.

        Formatted on demand from the stored raw descriptor so the
        common (unblocked-or-timeout) path allocates no string.
        """
        w = self._wait
        return None if w is None else _format_wait(w)

    @waiting_on.setter
    def waiting_on(self, wait: Any) -> None:
        self._wait = wait

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else (self.waiting_on or "runnable")
        return f"Process({self.name}: {state})"


#: sentinel returned by :meth:`Simulator._step_rare` when the process
#: blocked (distinguishable from a legitimate ``None`` send value)
_BLOCKED = object()


def _env_use_heap() -> bool:
    """Resolve the scheduler escape hatch from the environment."""
    return os.environ.get("REPRO_HEAP_SCHEDULER", "") not in ("", "0")


class Simulator:
    """Event loop: schedules callbacks at simulated times, drives processes.

    ``use_heap_scheduler`` selects the legacy single-heap core
    (``None``, the default, reads the ``REPRO_HEAP_SCHEDULER``
    environment variable, so whole suites can be replayed on the old
    core without code changes).  Both cores dispatch events in the
    identical (time, scheduling-order) sequence.
    """

    def __init__(self, tracer=None, metrics=None,
                 use_heap_scheduler: bool | None = None) -> None:
        self.now: float = 0.0
        if use_heap_scheduler is None:
            use_heap_scheduler = _env_use_heap()
        self.use_heap_scheduler = bool(use_heap_scheduler)
        # legacy core: entries are ``(time, seq, target, value)``;
        # ``target`` is a Process (resume it with ``value``) or a bare
        # callback — a tuple dispatch instead of a per-event lambda
        self._heap: list[tuple[float, int, Any, Any]] = []
        self._seq = itertools.count()
        # bucketed core: timestamp -> flat [target, value, ...] pairs,
        # plus a heap of the *distinct* pending timestamps
        self._buckets: dict[float, list] = {}
        self._times: list[float] = []
        self._processes: list[Process] = []
        #: events dispatched so far (callbacks + process resumptions);
        #: ``repro perf`` reports events/s from this counter
        self.events_processed: int = 0
        #: optional :class:`repro.obs.Tracer`; when None (the default)
        #: no trace event is ever allocated (every hook is guarded)
        self.tracer = tracer
        #: optional :class:`repro.metrics.MetricsRegistry`; when None
        #: (the default) no metrics hook runs anywhere in the engine —
        #: same zero-cost-off contract as the tracer
        self.metrics = metrics
        #: optional :class:`repro.chaos.InvariantChecker`; when None
        #: (the default) no invariant hook runs anywhere in the engine.
        #: Under the bucketed core ``on_event_time`` fires once per
        #: distinct timestamp (a dispatch batch), not once per event.
        self.invariants = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _push(self, t: float, target: Any, value: Any) -> None:
        """Enqueue one event; FIFO at equal times on both cores."""
        if self.use_heap_scheduler:
            heapq.heappush(self._heap, (t, next(self._seq), target, value))
            return
        b = self._buckets.get(t)
        if b is None:
            self._buckets[t] = [target, value]
            heapq.heappush(self._times, t)
        else:
            b.append(target)
            b.append(value)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now (FIFO at equal times)."""
        if delay < 0:
            raise ReproError(f"negative delay: {delay}")
        self._push(self.now + delay, callback, None)

    def _schedule_step(self, delay: float, proc: Process, value: Any) -> None:
        """Schedule resuming ``proc`` with ``value`` (no lambda per event)."""
        self._push(self.now + delay, proc, value)

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Register a generator as a process; it starts when run() is called."""
        proc = Process(name, gen)
        self._processes.append(proc)
        self._schedule_step(0.0, proc, None)
        return proc

    def resume(self, proc: Process, value: Any = None) -> None:
        """Called by primitives to unblock a process at the current time."""
        self._push(self.now, proc, value)

    # ------------------------------------------------------------------
    # process driving
    # ------------------------------------------------------------------
    def _step(self, proc: Process, value: Any) -> None:
        """Advance ``proc`` with ``value`` until it blocks or finishes.

        The instrumented trampoline: closes/opens tracer wait spans.
        Used whenever a tracer is attached, and always by the legacy
        heap core (whose behaviour it preserves verbatim).
        """
        if self.tracer is not None and proc.block_label is not None:
            self.tracer.span(
                proc.name, proc.block_label,
                cat=wait_category(proc.block_label),
                start=proc.block_start, end=self.now,
            )
            proc.block_label = None
        proc._wait = None
        while True:
            gen = proc.stack[-1]
            try:
                request = gen.send(value)
            except StopIteration as stop:
                proc.stack.pop()
                if not proc.stack:
                    proc.done = True
                    proc.result = stop.value
                    return
                value = stop.value
                continue
            value = None

            if isinstance(request, Timeout):
                self._schedule_step(request.delay, proc, None)
                proc._wait = request
                return
            if isinstance(request, Iterator):
                proc.stack.append(request)
                continue
            hook = getattr(request, "__sim_request__", None)
            if hook is None:
                raise ReproError(
                    f"process {proc.name!r} yielded unsupported object: {request!r}"
                )
            if hook(self, proc):
                # request completed synchronously; its result was stashed
                value = getattr(request, "result", None)
                continue
            if self.tracer is not None:
                proc.block_start = self.now
                proc.block_label = proc.waiting_on
            return  # blocked; the primitive will call resume()

    def _step_rare(self, proc: Process, request: Any) -> Any:
        """Slow-path dispatch for requests the inlined trampoline does
        not special-case (``Timeout`` subclasses, nested generators).

        Returns the sentinel ``_BLOCKED`` when ``proc`` blocked, else
        pushes the sub-generator and returns ``None`` as the next send
        value (mirrors :meth:`_step`'s semantics for these branches).
        """
        if isinstance(request, Timeout):  # Timeout subclass
            self._schedule_step(request.delay, proc, None)
            proc._wait = request
            return _BLOCKED
        if isinstance(request, Iterator):
            proc.stack.append(request)
            return None
        raise ReproError(
            f"process {proc.name!r} yielded unsupported object: {request!r}"
        )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def _drain_heap(self, until: float | None) -> bool:
        """Legacy core: one heap pop per event.  Returns False when the
        ``until`` cutoff was reached with events still pending."""
        step = self._step
        inv = self.invariants
        heap = self._heap
        n = 0
        try:
            while heap:
                t = heap[0][0]
                if until is not None and t > until:
                    self.now = until
                    return False
                _, _, target, value = heapq.heappop(heap)
                self.now = t
                n += 1
                if inv is not None:
                    inv.on_event_time(t)
                if type(target) is Process:
                    step(target, value)
                else:
                    target()
        finally:
            self.events_processed += n
        return True

    def _drain_buckets(self, until: float | None) -> bool:
        """Bucketed core: dispatch all events of one timestamp as one
        batch — a single ``now`` update and a single invariant
        ``on_event_time`` call per distinct time.  Events scheduled *at*
        the batch's timestamp while it drains are appended to the live
        bucket and dispatched in the same pass, in scheduling order —
        exactly the (time, seq) order of the legacy heap.

        The untraced process trampoline is inlined into the dispatch
        loop (no per-event method call): its semantics are
        :meth:`_step` minus the tracer guards, with the common cases
        leaned out — exact-type timeout test with an in-place bucket
        push, request hooks resolved through the class (no per-event
        bound-method allocation) and probed before the ``Iterator`` ABC
        check.  None of the engine's request primitives are iterators,
        so the reorder is observationally equivalent; the rare branches
        (``Timeout`` subclasses, sub-generators) fall back to
        :meth:`_step_rare`.  When a tracer is attached the instrumented
        :meth:`_step` drives processes instead.
        """
        traced_step = self._step if self.tracer is not None else None
        inv = self.invariants
        times = self._times
        buckets = self._buckets
        pop = heapq.heappop
        push = heapq.heappush
        n = 0
        try:
            while times:
                t = times[0]
                if until is not None and t > until:
                    self.now = until
                    return False
                pop(times)
                batch = buckets[t]
                self.now = t
                if inv is not None:
                    inv.on_event_time(t)
                i = 0
                while i < len(batch):  # len() rechecked: same-t appends
                    target = batch[i]
                    value = batch[i + 1]
                    i += 2
                    if type(target) is not Process:
                        target()
                        continue
                    if traced_step is not None:
                        traced_step(target, value)
                        continue
                    # -- inlined untraced trampoline -------------------
                    target._wait = None
                    stack = target.stack
                    while True:
                        try:
                            request = stack[-1].send(value)
                        except StopIteration as stop:
                            stack.pop()
                            if not stack:
                                target.done = True
                                target.result = stop.value
                                break
                            value = stop.value
                            continue
                        value = None
                        if type(request) is Timeout:
                            # self.now == t for the whole batch; a zero
                            # delay lands in the live bucket and runs in
                            # this same pass (scheduling order)
                            t2 = t + request.delay
                            b = buckets.get(t2)
                            if b is None:
                                buckets[t2] = [target, None]
                                push(times, t2)
                            else:
                                b.append(target)
                                b.append(None)
                            target._wait = request  # label formatted lazily
                            break
                        hook = getattr(type(request), "__sim_request__", None)
                        if hook is not None:
                            if hook(request, self, target):
                                value = getattr(request, "result", None)
                                continue
                            break  # blocked; the primitive will resume()
                        value = self._step_rare(target, request)
                        if value is _BLOCKED:
                            break
                del buckets[t]
                n += i >> 1
        finally:
            self.events_processed += n
        return True

    def run(self, until: float | None = None) -> float:
        """Execute events until the queue is empty (or ``until`` is reached).

        Returns the final simulated time.  Raises
        :class:`DeadlockError` when no event is pending but some
        process is still blocked.
        """
        processed_before = self.events_processed
        if self.use_heap_scheduler:
            drained = self._drain_heap(until)
        else:
            drained = self._drain_buckets(until)
        if self.metrics is not None:
            delta = self.events_processed - processed_before
            if delta:
                self.metrics.counter("engine_events").inc(self.now, delta)
        if not drained:
            return self.now  # ``until`` cutoff; events still pending

        if self.tracer is not None:
            # close wait spans of processes that never resumed, so a
            # deadlock's stall attribution survives into the trace
            # (the Fig 8 forensics: who holds what, who waits on whom)
            for p in self._processes:
                if p.block_label is not None:
                    self.tracer.span(
                        p.name, p.block_label,
                        cat=wait_category(p.block_label),
                        start=p.block_start, end=self.now,
                        unresolved=True,
                    )
                    p.block_label = None
        stuck = {p.name: p.waiting_on for p in self._processes
                 if not p.done and p._wait is not None}
        if stuck:
            raise DeadlockError(
                "simulation deadlocked; blocked processes: "
                + ", ".join(f"{k} <- {v}" for k, v in sorted(stuck.items())),
                waiting=stuck,
            )
        return self.now

    @property
    def unfinished(self) -> list[Process]:
        return [p for p in self._processes if not p.done]
