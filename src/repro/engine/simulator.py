"""The discrete-event simulator core.

A :class:`Process` wraps a generator.  Each ``yield`` hands the
simulator a request object; the simulator resumes the generator when
the request completes.  Supported requests:

- :class:`Timeout` — resume after a fixed simulated delay.
- any object with a ``__sim_request__(sim, process)`` method (the
  resource/queue/barrier primitives in :mod:`repro.engine.resources`).
- another generator — run it inline (sub-process call), resuming the
  parent with the child's return value.

Deadlock detection comes for free: if the event heap runs dry while
processes are still blocked, nothing can ever happen again, and the
simulator raises :class:`~repro.utils.errors.DeadlockError` naming each
blocked process and what it is waiting on — exactly the situation of
the paper's Fig 8.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterator

from repro.obs.tracer import wait_category
from repro.utils.errors import DeadlockError, ReproError


@dataclass(frozen=True)
class Timeout:
    """Request: resume the yielding process after ``delay`` sim-seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ReproError(f"negative delay: {self.delay}")


class Process:
    """A running generator plus its call stack of nested generators.

    ``__slots__`` because serve sweeps create one per request batch and
    the event loop touches these attributes millions of times.
    """

    __slots__ = (
        "name", "stack", "done", "result", "waiting_on",
        "block_start", "block_label",
    )

    def __init__(self, name: str, gen: Generator):
        self.name = name
        self.stack: list[Generator] = [gen]
        self.done = False
        self.result: Any = None
        #: human-readable description of the blocking request (diagnostics)
        self.waiting_on: str | None = None
        # open wait-span bookkeeping; only touched when a tracer is set
        self.block_start: float = 0.0
        self.block_label: str | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else (self.waiting_on or "runnable")
        return f"Process({self.name}: {state})"


class Simulator:
    """Event loop: schedules callbacks at simulated times, drives processes."""

    def __init__(self, tracer=None, metrics=None) -> None:
        self.now: float = 0.0
        #: entries are ``(time, seq, target, value)``; ``target`` is a
        #: Process (resume it with ``value``) or a bare callback — a
        #: tuple dispatch instead of a per-event lambda allocation
        self._heap: list[tuple[float, int, Any, Any]] = []
        self._seq = itertools.count()
        self._processes: list[Process] = []
        #: number of processes currently blocked on a primitive
        self._blocked = 0
        #: optional :class:`repro.obs.Tracer`; when None (the default)
        #: no trace event is ever allocated (every hook is guarded)
        self.tracer = tracer
        #: optional :class:`repro.metrics.MetricsRegistry`; when None
        #: (the default) no metrics hook runs anywhere in the engine —
        #: same zero-cost-off contract as the tracer
        self.metrics = metrics
        #: optional :class:`repro.chaos.InvariantChecker`; when None
        #: (the default) no invariant hook runs anywhere in the engine
        self.invariants = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now (FIFO at equal times)."""
        if delay < 0:
            raise ReproError(f"negative delay: {delay}")
        heapq.heappush(
            self._heap, (self.now + delay, next(self._seq), callback, None)
        )

    def _schedule_step(self, delay: float, proc: Process, value: Any) -> None:
        """Schedule resuming ``proc`` with ``value`` (no lambda per event)."""
        heapq.heappush(
            self._heap, (self.now + delay, next(self._seq), proc, value)
        )

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Register a generator as a process; it starts when run() is called."""
        proc = Process(name, gen)
        self._processes.append(proc)
        self._schedule_step(0.0, proc, None)
        return proc

    # ------------------------------------------------------------------
    # process driving
    # ------------------------------------------------------------------
    def _step(self, proc: Process, value: Any) -> None:
        """Advance ``proc`` with ``value`` until it blocks or finishes."""
        if self.tracer is not None and proc.block_label is not None:
            self.tracer.span(
                proc.name, proc.block_label,
                cat=wait_category(proc.block_label),
                start=proc.block_start, end=self.now,
            )
            proc.block_label = None
        proc.waiting_on = None
        while True:
            gen = proc.stack[-1]
            try:
                request = gen.send(value)
            except StopIteration as stop:
                proc.stack.pop()
                if not proc.stack:
                    proc.done = True
                    proc.result = stop.value
                    return
                value = stop.value
                continue
            value = None

            if isinstance(request, Timeout):
                self._schedule_step(request.delay, proc, None)
                proc.waiting_on = f"timeout({request.delay:g})"
                return
            if isinstance(request, Iterator):
                proc.stack.append(request)
                continue
            hook = getattr(request, "__sim_request__", None)
            if hook is None:
                raise ReproError(
                    f"process {proc.name!r} yielded unsupported object: {request!r}"
                )
            if hook(self, proc):
                # request completed synchronously; its result was stashed
                value = getattr(request, "result", None)
                continue
            if self.tracer is not None:
                proc.block_start = self.now
                proc.block_label = proc.waiting_on
            return  # blocked; the primitive will call resume()

    def resume(self, proc: Process, value: Any = None) -> None:
        """Called by primitives to unblock a process at the current time."""
        self._schedule_step(0.0, proc, value)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Execute events until the heap is empty (or ``until`` is reached).

        Returns the final simulated time.  Raises
        :class:`DeadlockError` when no event is pending but some
        process is still blocked.
        """
        step = self._step
        inv = self.invariants
        while self._heap:
            t = self._heap[0][0]
            if until is not None and t > until:
                self.now = until
                return self.now
            _, _, target, value = heapq.heappop(self._heap)
            self.now = t
            if inv is not None:
                inv.on_event_time(t)
            if type(target) is Process:
                step(target, value)
            else:
                target()

        if self.tracer is not None:
            # close wait spans of processes that never resumed, so a
            # deadlock's stall attribution survives into the trace
            # (the Fig 8 forensics: who holds what, who waits on whom)
            for p in self._processes:
                if p.block_label is not None:
                    self.tracer.span(
                        p.name, p.block_label,
                        cat=wait_category(p.block_label),
                        start=p.block_start, end=self.now,
                        unresolved=True,
                    )
                    p.block_label = None
        stuck = {p.name: p.waiting_on for p in self._processes
                 if not p.done and p.waiting_on is not None}
        if stuck:
            raise DeadlockError(
                "simulation deadlocked; blocked processes: "
                + ", ".join(f"{k} <- {v}" for k, v in sorted(stuck.items())),
                waiting=stuck,
            )
        return self.now

    @property
    def unfinished(self) -> list[Process]:
        return [p for p in self._processes if not p.done]
