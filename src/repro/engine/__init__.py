"""Discrete-event execution engine.

The engine is what turns cost-model durations into *system* behaviour:
kernels contending for SM threads, workers blocking on bounded queues,
collectives rendezvousing across GPUs, deadlocks when collective
kernels launch in different orders (paper Fig 8), and the centralized
communication coordination (CCC) that prevents them (paper §5).

Workers are Python generators driven by :class:`Simulator`; they yield
requests (timeouts, resource acquisitions, queue operations, barrier
arrivals) and resume when the request is satisfied at some simulated
time.  The design mirrors classic process-based DES (SimPy-style) but
is dependency-free and adds the pieces DSP needs: time-weighted
resource utilization accounting and the CCC launch gate.
"""

from repro.engine.simulator import Simulator, Timeout, Process
from repro.engine.resources import Resource, BoundedQueue, Rendezvous
from repro.engine.coordination import (
    ROUND_ABANDONED,
    ROUND_ABORTED,
    ROUND_OK,
    CollectiveGuard,
    LaunchGate,
)

__all__ = [
    "Simulator",
    "Timeout",
    "Process",
    "Resource",
    "BoundedQueue",
    "Rendezvous",
    "LaunchGate",
    "CollectiveGuard",
    "ROUND_OK",
    "ROUND_ABORTED",
    "ROUND_ABANDONED",
]
