"""Centralized communication coordination (CCC).

Collective kernels deadlock when two GPUs launch them in different
orders (paper Fig 8): each GPU's first kernel holds SM resources while
waiting for its peer, and the peer's matching kernel can never launch.

CCC (paper §5) removes the root cause — divergent launch orders — by
having one *leader* GPU fix a single global order.  On the leader, a
collective is appended to the order the moment its worker is ready to
communicate; the order is broadcast, and every follower launches its
communication kernels in exactly that sequence, waiting if its own
worker for the next collective is not ready yet.

:class:`LaunchGate` implements the protocol.  Workers call::

    yield gate.wait_turn(gpu, tag)   # before acquiring SMs / launching
    ...launch, rendezvous, run...
    gate.launched(gpu, tag)          # after the kernel has started

With the gate, all GPUs launch in leader order and cross-order
deadlocks cannot form; without it (``gate=None`` in the workers) the
Fig 8 interleaving is reproducible in the engine tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.engine.simulator import Process, Simulator, Timeout
from repro.utils.errors import ReproError

#: outcomes of a guarded collective round (see :class:`CollectiveGuard`)
ROUND_OK = "ok"
ROUND_ABORTED = "aborted"
ROUND_ABANDONED = "abandoned"


class LaunchGate:
    """Serializes collective-kernel launch order across GPUs."""

    def __init__(self, sim: Simulator, num_gpus: int, leader: int = 0):
        if not 0 <= leader < num_gpus:
            raise ReproError("leader must be one of the GPUs")
        self.sim = sim
        self.num_gpus = num_gpus
        self.leader = leader
        #: the global launch order, fixed by leader submission order
        self.order: list[Any] = []
        self._position: dict[Any, int] = {}
        #: next order index each GPU may launch
        self._next: list[int] = [0] * num_gpus
        self._waiters: list[deque[tuple[Process, Any]]] = [
            deque() for _ in range(num_gpus)
        ]

    def wait_turn(self, gpu: int, tag: Any) -> "_WaitTurn":
        if not 0 <= gpu < self.num_gpus:
            raise ReproError(f"bad gpu id {gpu}")
        return _WaitTurn(self, gpu, tag)

    def launched(self, gpu: int, tag: Any) -> None:
        """Record that ``gpu`` has started the kernel for ``tag``."""
        pos = self._position.get(tag)
        if pos is None or pos != self._next[gpu]:
            raise ReproError(f"gpu {gpu} launched {tag!r} out of turn")
        self._next[gpu] += 1
        if self.sim.invariants is not None:
            self.sim.invariants.on_launch(gpu, tag, pos)
        if self.sim.tracer is not None:
            self.sim.tracer.instant(
                "ccc-gate", f"launched:{tag}", self.sim.now,
                cat="ccc", gpu=gpu, position=pos,
            )
        self._drain(gpu)

    # -- internals -------------------------------------------------------
    def _register(self, tag: Any) -> None:
        if tag not in self._position:
            self._position[tag] = len(self.order)
            self.order.append(tag)
            if self.sim.tracer is not None:
                self.sim.tracer.instant(
                    "ccc-gate", f"order:{tag}", self.sim.now,
                    cat="ccc", position=self._position[tag],
                )
            for gpu in range(self.num_gpus):
                self._drain(gpu)

    def _ready(self, gpu: int, tag: Any) -> bool:
        pos = self._position.get(tag)
        return pos is not None and pos == self._next[gpu]

    def _drain(self, gpu: int) -> None:
        waiters = self._waiters[gpu]
        # scan for the (single) waiter whose turn has come
        for _ in range(len(waiters)):
            proc, tag = waiters.popleft()
            if self._ready(gpu, tag):
                self.sim.resume(proc)
            else:
                waiters.append((proc, tag))


@dataclass
class _WaitTurn:
    gate: LaunchGate
    gpu: int
    tag: Any
    result: Any = None

    def __sim_request__(self, sim: Simulator, proc: Process) -> bool:
        g = self.gate
        if self.gpu == g.leader:
            # leader submission defines the global order
            g._register(self.tag)
        if g._ready(self.gpu, self.tag):
            return True
        proc.waiting_on = ("ccc", self.gpu, self.tag)  # lazy label
        g._waiters[self.gpu].append((proc, self.tag))
        return False


class CollectiveGuard:
    """Watchdog over collective rendezvous rounds.

    A plain :class:`~repro.engine.resources.Rendezvous` waits forever:
    one hung participant (an injected ``collective-drop``, a crashed
    trainer) deadlocks every peer of the round.  The guard is the
    response side: rounds are keyed ``(tag, attempt)``, the first
    arrival of an attempt arms a timer, and if the round has not
    completed when the timer fires the attempt is *aborted* — all
    waiters resume with :data:`ROUND_ABORTED`, back off
    ``backoff * attempt`` and re-form the round at the next attempt.
    Late arrivals to an aborted attempt are answered synchronously so
    they fast-forward to the live attempt.  After ``max_retries``
    aborts the round is *abandoned*: everyone (including eventual late
    arrivals) gets :data:`ROUND_ABANDONED` and proceeds degraded —
    callers charge the round's duration but skip its wire bytes.
    Every abort/abandon is a tracer instant, so watchdog activity is
    visible on the timeline.

    Workers use it via ``yield from``::

        outcome = yield from guard.join(tag, k)
        # outcome is ROUND_OK or ROUND_ABANDONED; never hangs forever
    """

    def __init__(self, sim: Simulator, timeout: float,
                 max_retries: int = 3, backoff: float | None = None,
                 name: str = "collective-guard"):
        if timeout <= 0:
            raise ReproError("guard timeout must be positive")
        if max_retries < 0:
            raise ReproError("max_retries must be >= 0")
        self.sim = sim
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = 0.25 * timeout if backoff is None else backoff
        self.name = name
        self._pending: dict[tuple, list[Process]] = {}
        self._aborted: set[tuple] = set()
        self._abandoned: set = set()
        self._next_attempt: dict = {}
        # counters for the resilience report
        self.rounds = 0
        self.aborts = 0
        self.retries = 0
        self.abandoned_rounds = 0

    def join(self, tag: Any, n_expected: int):
        """Generator: rendezvous on ``tag`` under watchdog protection."""
        if n_expected <= 0:
            raise ReproError("n_expected must be positive")
        attempt = self._next_attempt.get(tag, 0)
        while True:
            if tag in self._abandoned:
                return ROUND_ABANDONED
            if (tag, attempt) in self._aborted:
                attempt += 1  # fast-forward through dead attempts
                continue
            outcome = yield _GuardArrive(self, tag, attempt, n_expected)
            if outcome != ROUND_ABORTED:
                return outcome
            self.retries += 1
            attempt = max(attempt + 1, self._next_attempt.get(tag, 0))
            if self.backoff > 0:
                yield Timeout(self.backoff * attempt)

    # -- internals -------------------------------------------------------
    def _abort(self, key: tuple) -> None:
        waiting = self._pending.pop(key, None)
        if waiting is None:
            return  # the round completed before the timer fired
        tag, attempt = key
        self._aborted.add(key)
        self._next_attempt[tag] = attempt + 1
        self.aborts += 1
        abandoned = attempt + 1 > self.max_retries
        if abandoned:
            self._abandoned.add(tag)
            self.abandoned_rounds += 1
        outcome = ROUND_ABANDONED if abandoned else ROUND_ABORTED
        if self.sim.tracer is not None:
            verb = "abandon" if abandoned else "abort"
            self.sim.tracer.instant(
                self.name, f"{verb}:{tag}", self.sim.now,
                cat="ccc", attempt=attempt, arrived=len(waiting),
            )
        for p in waiting:
            self.sim.resume(p, outcome)


class _AbortTimer:
    """Scheduled callback that aborts a guarded attempt on expiry."""

    __slots__ = ("guard", "key")

    def __init__(self, guard: CollectiveGuard, key: tuple):
        self.guard = guard
        self.key = key

    def __call__(self) -> None:
        self.guard._abort(self.key)


@dataclass
class _GuardArrive:
    guard: CollectiveGuard
    tag: Any
    attempt: int
    n_expected: int
    result: Any = None

    def __sim_request__(self, sim: Simulator, proc: Process) -> bool:
        g = self.guard
        if self.tag in g._abandoned:
            self.result = ROUND_ABANDONED
            return True
        key = (self.tag, self.attempt)
        if key in g._aborted:
            self.result = ROUND_ABORTED
            return True
        waiting = g._pending.setdefault(key, [])
        if len(waiting) + 1 == self.n_expected:
            del g._pending[key]
            for p in waiting:
                sim.resume(p, ROUND_OK)
            g.rounds += 1
            if sim.tracer is not None:
                sim.tracer.instant(
                    g.name, f"complete:{self.tag}", sim.now,
                    cat="ccc", attempt=self.attempt,
                    parties=self.n_expected,
                )
            self.result = ROUND_OK
            return True
        if not waiting:
            # first arrival of this attempt arms the watchdog
            sim.schedule(g.timeout, _AbortTimer(g, key))
        waiting.append(proc)
        proc.waiting_on = ("guarded", g.name, self.tag, self.attempt)
        return False
