"""Centralized communication coordination (CCC).

Collective kernels deadlock when two GPUs launch them in different
orders (paper Fig 8): each GPU's first kernel holds SM resources while
waiting for its peer, and the peer's matching kernel can never launch.

CCC (paper §5) removes the root cause — divergent launch orders — by
having one *leader* GPU fix a single global order.  On the leader, a
collective is appended to the order the moment its worker is ready to
communicate; the order is broadcast, and every follower launches its
communication kernels in exactly that sequence, waiting if its own
worker for the next collective is not ready yet.

:class:`LaunchGate` implements the protocol.  Workers call::

    yield gate.wait_turn(gpu, tag)   # before acquiring SMs / launching
    ...launch, rendezvous, run...
    gate.launched(gpu, tag)          # after the kernel has started

With the gate, all GPUs launch in leader order and cross-order
deadlocks cannot form; without it (``gate=None`` in the workers) the
Fig 8 interleaving is reproducible in the engine tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.engine.simulator import Process, Simulator
from repro.utils.errors import ReproError


class LaunchGate:
    """Serializes collective-kernel launch order across GPUs."""

    def __init__(self, sim: Simulator, num_gpus: int, leader: int = 0):
        if not 0 <= leader < num_gpus:
            raise ReproError("leader must be one of the GPUs")
        self.sim = sim
        self.num_gpus = num_gpus
        self.leader = leader
        #: the global launch order, fixed by leader submission order
        self.order: list[Any] = []
        self._position: dict[Any, int] = {}
        #: next order index each GPU may launch
        self._next: list[int] = [0] * num_gpus
        self._waiters: list[deque[tuple[Process, Any]]] = [
            deque() for _ in range(num_gpus)
        ]

    def wait_turn(self, gpu: int, tag: Any) -> "_WaitTurn":
        if not 0 <= gpu < self.num_gpus:
            raise ReproError(f"bad gpu id {gpu}")
        return _WaitTurn(self, gpu, tag)

    def launched(self, gpu: int, tag: Any) -> None:
        """Record that ``gpu`` has started the kernel for ``tag``."""
        pos = self._position.get(tag)
        if pos is None or pos != self._next[gpu]:
            raise ReproError(f"gpu {gpu} launched {tag!r} out of turn")
        self._next[gpu] += 1
        if self.sim.tracer is not None:
            self.sim.tracer.instant(
                "ccc-gate", f"launched:{tag}", self.sim.now,
                cat="ccc", gpu=gpu, position=pos,
            )
        self._drain(gpu)

    # -- internals -------------------------------------------------------
    def _register(self, tag: Any) -> None:
        if tag not in self._position:
            self._position[tag] = len(self.order)
            self.order.append(tag)
            if self.sim.tracer is not None:
                self.sim.tracer.instant(
                    "ccc-gate", f"order:{tag}", self.sim.now,
                    cat="ccc", position=self._position[tag],
                )
            for gpu in range(self.num_gpus):
                self._drain(gpu)

    def _ready(self, gpu: int, tag: Any) -> bool:
        pos = self._position.get(tag)
        return pos is not None and pos == self._next[gpu]

    def _drain(self, gpu: int) -> None:
        waiters = self._waiters[gpu]
        # scan for the (single) waiter whose turn has come
        for _ in range(len(waiters)):
            proc, tag = waiters.popleft()
            if self._ready(gpu, tag):
                self.sim.resume(proc)
            else:
                waiters.append((proc, tag))


@dataclass
class _WaitTurn:
    gate: LaunchGate
    gpu: int
    tag: Any
    result: Any = None

    def __sim_request__(self, sim: Simulator, proc: Process) -> bool:
        g = self.gate
        if self.gpu == g.leader:
            # leader submission defines the global order
            g._register(self.tag)
        if g._ready(self.gpu, self.tag):
            return True
        proc.waiting_on = f"ccc({self.gpu}, {self.tag})"
        g._waiters[self.gpu].append((proc, self.tag))
        return False
