"""Setup shim so `pip install -e .` / `setup.py develop` work offline.

The environment for this project has no network access and no `wheel`
package, which breaks PEP-517 editable installs under old setuptools;
this classic setup.py keeps the legacy develop path available.
"""

from setuptools import setup

setup()
