"""Figure 10: epoch time vs feature-cache size under a fixed budget.

8 GPUs, 6 GB total cache per GPU (scaled), split between graph topology
and node features.  The paper's finding: the curve first falls (hot
features stop going over PCIe) then rises (topology spills to UVA);
the optimum caches the whole topology first.
"""

import pytest

from repro.bench import fmt_table, quick_mode
from repro.core import RunConfig, build_system
from repro.graph import load_dataset
from repro.utils import GB


def _sweep(dataset: str, fractions):
    spec = load_dataset(dataset).spec
    total = 6 * GB / spec.scale  # the paper's 6 GB budget, scaled
    times = []
    for frac in fractions:
        feat = total * frac
        cfg = RunConfig(
            dataset=dataset,
            num_gpus=8,
            feature_cache_bytes=feat,
            topology_cache_bytes=total - feat,
        )
        m = build_system("DSP", cfg).run_epoch(max_batches=4, functional=False)
        times.append(m.epoch_time)
    return times


@pytest.mark.parametrize("dataset", ["papers", "friendster"])
def test_fig10_cache_split(benchmark, emit, dataset):
    fractions = [1 / 6, 3 / 6, 0.95] if quick_mode() else \
        [1 / 12, 2 / 12, 4 / 12, 6 / 12, 8 / 12, 10 / 12, 0.95]
    times = _sweep(dataset, fractions)

    emit(fmt_table(
        f"Figure 10: DSP epoch time vs feature-cache share on {dataset}, "
        "8 GPUs, 6 GB budget (simulated ms)",
        [f"{f:.0%}" for f in fractions],
        [("epoch", [t * 1e3 for t in times])],
    ))

    # starving the feature cache is clearly bad (left end of the U)
    best = min(times)
    assert best < 0.9 * times[0]
    # starving the topology is bad too; on friendster the 256-dim
    # features keep paying until very large caches, so the right-end
    # rise is shallower (see EXPERIMENTS.md) — require it only to stop
    # improving, and strictly rise for papers
    assert times[-1] >= best
    if dataset == "papers":
        assert times[-1] > 1.1 * best

    benchmark.pedantic(lambda: _sweep(dataset, [0.5]), rounds=1, iterations=1)
