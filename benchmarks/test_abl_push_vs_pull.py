"""Ablation: task-push vs data-pull communication *volume* (paper §4.1).

Complements Fig 11 (time) with the byte counts behind it: pushing a
sampling task moves one frontier id out and `fanout` sampled ids back;
pulling moves the whole adjacency (and weight) list.
"""

import pytest

from repro.bench import fmt_table, quick_mode
from repro.core import RunConfig
from repro.core.system import DSP
from repro.sampling import CSPConfig, PullDataSampler


def _volumes(dataset: str, biased: bool, batches: int = 3):
    cfg = RunConfig(dataset=dataset, num_gpus=8, biased=biased)
    dsp = DSP(cfg)
    pull = PullDataSampler(
        dsp.sampler.patches, dsp.sampler.part_offsets, seed=cfg.seed
    )
    push_bytes = pull_bytes = 0.0
    for batch in dsp._global_batches()[:batches]:
        per_gpu = dsp._assign_seeds(batch)
        _, push_trace, _ = dsp.sampler.sample(per_gpu, dsp.csp_config)
        _, pull_trace, _ = pull.sample(per_gpu, dsp.csp_config)
        push_bytes += push_trace.nvlink_payload_bytes()
        pull_bytes += pull_trace.nvlink_payload_bytes()
    return push_bytes, pull_bytes


def test_ablation_push_vs_pull(benchmark, emit):
    dataset = "products" if quick_mode() else "friendster"
    rows = []
    ratios = {}
    for biased in (False, True):
        push, pull = _volumes(dataset, biased)
        label = "biased" if biased else "unbiased"
        ratios[label] = pull / push
        rows.append((f"push/{label}", [push / 1e6]))
        rows.append((f"pull/{label}", [pull / 1e6]))
        rows.append((f"ratio/{label}", [pull / push]))

    emit(fmt_table(
        f"Ablation: NVLink payload, task push vs data pull on {dataset} (MB)",
        ["volume"],
        rows,
    ))

    # pulling whole adjacency lists moves several times the bytes, and
    # biased sampling doubles the pull side (weights ride along)
    assert ratios["unbiased"] > 1.5
    assert ratios["biased"] > ratios["unbiased"] * 1.5

    benchmark.pedantic(lambda: _volumes(dataset, False, batches=1),
                       rounds=1, iterations=1)
