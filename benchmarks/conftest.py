"""Shared fixtures for the reproduction benchmarks.

Every benchmark prints a paper-style table.  pytest captures stdout, so
tables are collected by the ``emit`` fixture and re-printed in the
terminal summary (which is never captured) — that way
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
both the wall-clock benchmark stats and the reproduced tables/figures.
"""

from __future__ import annotations

import pytest

_TABLES: list[str] = []


@pytest.fixture
def emit():
    """Collect a rendered table for the end-of-run summary."""

    def _emit(table: str) -> None:
        _TABLES.append(table)
        print(table)

    return _emit


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for table in _TABLES:
        terminalreporter.write(table)


@pytest.fixture(scope="session", autouse=True)
def _warm_datasets():
    """Generate/load the datasets once so benchmarks measure systems,
    not dataset generation."""
    from repro.graph import load_dataset

    for name in ("products", "papers", "friendster"):
        load_dataset(name)
    yield
