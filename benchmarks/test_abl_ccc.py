"""Ablation: centralized communication coordination on/off (paper §5).

With one NCCL channel per GPU (collectives serialize on a stream) and
per-GPU straggler skew, concurrent workers launch collectives in
divergent orders and deadlock — Fig 8.  CCC fixes the launch order
globally and the same workload completes; its ordering overhead is
small.
"""

import numpy as np
import pytest

from repro.core.cost import OpCost
from repro.core.pipeline import PipelineRunner
from repro.hw import Cluster
from repro.utils import DeadlockError

K = 4


def _skewed_batches(n, seed):
    rng = np.random.default_rng(seed)

    def local():
        per = rng.uniform(0.02, 0.4, size=K)
        return OpCost(label="k", per_gpu=per, stage=float(per.max()), threads=512)

    def coll():
        d = float(rng.uniform(0.1, 0.3))
        return OpCost(label="c", per_gpu=np.full(K, d), stage=d, threads=128,
                      collective=True)

    return [
        {
            "sample": [local(), coll()],
            "load": [local(), coll()],
            "train": [local()],
        }
        for _ in range(n)
    ]


def test_ablation_ccc(benchmark, emit):
    cluster = Cluster.dgx1(K)
    trials = 12
    deadlocks = 0
    with_ccc_times = []
    for seed in range(trials):
        batches = _skewed_batches(8, seed)
        try:
            PipelineRunner(cluster, batches, ccc=False, comm_channels=1).run()
        except DeadlockError:
            deadlocks += 1
        res = PipelineRunner(cluster, batches, ccc=True, comm_channels=1).run()
        with_ccc_times.append(res.epoch_time)

    from repro.bench import fmt_table

    emit(fmt_table(
        "Ablation: CCC, 12 random straggler patterns, 1 comm channel/GPU",
        ["value"],
        [
            ("no-CCC deadlocks", [f"{deadlocks}/{trials}"]),
            ("CCC deadlocks", ["0/12"]),
            ("CCC mean epoch", [f"{np.mean(with_ccc_times):.3g}s"]),
        ],
    ))

    assert deadlocks > 0  # Fig 8 is reproducible
    assert all(t > 0 for t in with_ccc_times)  # CCC always completes

    benchmark.pedantic(
        lambda: PipelineRunner(
            cluster, _skewed_batches(8, 0), ccc=True, comm_channels=1
        ).run(),
        rounds=3, iterations=1,
    )
