"""Table 4: GraphSAGE epoch time, 5 systems x 3 datasets x {1,2,4,8} GPUs.

Simulated times are ~1/scale of the paper's wall times (the datasets
are scaled down; see DESIGN.md), so the comparison is about *shape*:
DSP wins everywhere, the gap widens with more GPUs, CPU systems scale
poorly, and Quiver/DGL-UVA trade places across datasets.
"""

import pytest

from repro.bench import DATASETS, GPU_COUNTS, fmt_table, measured_epoch, quick_mode
from repro.bench.harness import TABLE_SYSTEMS
from repro.core import RunConfig

PAPER = {  # epoch seconds from the paper's Table 4
    "products": {"PyG": [28.8, 20.4, 17.1, 16.1], "DGL-CPU": [14.7, 9.29, 6.43, 5.45],
                 "Quiver": [5.71, 4.06, 2.82, 2.51], "DGL-UVA": [6.87, 6.03, 3.17, 1.61],
                 "DSP": [3.11, 1.75, 0.992, 0.613]},
    "papers": {"PyG": [131, 89.0, 68.3, 49.2], "DGL-CPU": [111, 76.0, 62.3, 45.1],
               "Quiver": [70.9, 42.3, 23.8, 17.2], "DGL-UVA": [47.5, 39.6, 30.2, 18.3],
               "DSP": [39.1, 24.5, 15.3, 4.62]},
    "friendster": {"PyG": [1110, 828, 575, 477], "DGL-CPU": [1080, 781, 537, 470],
                   "Quiver": [449, 249, 145, 118], "DGL-UVA": [432, 410, 207, 107],
                   "DSP": [270, 116, 64.6, 44.8]},
}


def _sweep(dataset, gpu_counts):
    out = {}
    for name in TABLE_SYSTEMS:
        out[name] = [
            measured_epoch(name, RunConfig(dataset=dataset, num_gpus=k)).epoch_time
            for k in gpu_counts
        ]
    return out


@pytest.mark.parametrize("dataset", DATASETS)
def test_table4_epoch_time(benchmark, emit, dataset):
    gpu_counts = (1, 8) if quick_mode() else GPU_COUNTS
    times = _sweep(dataset, gpu_counts)

    rows = []
    for name in TABLE_SYSTEMS:
        rows.append((name, [t * 1e3 for t in times[name]]))
        paper = [PAPER[dataset][name][GPU_COUNTS.index(k)] for k in gpu_counts]
        rows.append(("  paper(s)", paper))
    emit(fmt_table(
        f"Table 4: epoch time on {dataset} (simulated ms; paper rows in s)",
        [f"{k}-GPU" for k in gpu_counts],
        rows,
    ))

    # shape checks: DSP is fastest everywhere and speedup over the best
    # baseline at 8 GPUs is at least 2x (paper: >2x in most cases)
    for col in range(len(gpu_counts)):
        best_baseline = min(
            times[n][col] for n in TABLE_SYSTEMS if n != "DSP"
        )
        assert times["DSP"][col] < best_baseline
    assert times["DSP"][-1] * 2 < min(
        times[n][-1] for n in ("PyG", "DGL-CPU", "Quiver", "DGL-UVA")
    )
    # CPU systems scale worst (paper §7.2)
    cpu_scaling = times["DGL-CPU"][0] / times["DGL-CPU"][-1]
    dsp_scaling = times["DSP"][0] / times["DSP"][-1]
    assert dsp_scaling > cpu_scaling

    benchmark.pedantic(
        lambda: measured_epoch(
            "DSP", RunConfig(dataset=dataset, num_gpus=8), max_batches=2
        ),
        rounds=1, iterations=1,
    )
