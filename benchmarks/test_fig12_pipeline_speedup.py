"""Figure 12: speedup of DSP (pipelined) over DSP-Seq in epoch time.

The paper reports modest gains at 1 GPU growing to >1.5x at 8 GPUs for
all three datasets: more GPUs mean lighter kernels and relatively more
communication, so there is more to overlap.
"""

import pytest

from repro.bench import DATASETS, GPU_COUNTS, fmt_table, quick_mode
from repro.core import RunConfig, build_system


def _speedup(dataset: str, k: int, batches: int = 10):
    cfg = RunConfig(dataset=dataset, num_gpus=k)
    seq = build_system("DSP-Seq", cfg).run_epoch(
        max_batches=batches, functional=False
    )
    pipe = build_system("DSP", cfg).run_epoch(
        max_batches=batches, functional=False
    )
    return seq.epoch_time / pipe.epoch_time


def test_fig12_pipeline_speedup(benchmark, emit):
    datasets = DATASETS[:1] if quick_mode() else DATASETS
    gpu_counts = (1, 8) if quick_mode() else GPU_COUNTS
    rows = []
    speedups = {}
    for ds in datasets:
        speedups[ds] = [_speedup(ds, k) for k in gpu_counts]
        rows.append((ds, [f"{s:.2f}x" for s in speedups[ds]]))

    emit(fmt_table(
        "Figure 12: speedup of DSP over DSP-Seq in epoch time",
        [f"{k}-GPU" for k in gpu_counts],
        rows,
    ))

    for ds in datasets:
        s = speedups[ds]
        assert all(x >= 0.97 for x in s)  # never slower
        assert s[-1] > s[0]  # gain grows with GPU count
        assert s[-1] > 1.15  # clear gain at 8 GPUs

    benchmark.pedantic(lambda: _speedup(datasets[0], 8, batches=4),
                       rounds=1, iterations=1)
