"""Ablation: single vs multiple sampler/loader workers per GPU.

Paper §5: DSP uses one worker instance per task.  Extra instances keep
more mini-batches in flight, which (i) eats GPU memory that the feature
cache needs and (ii) contends for CPU threads and GPU resources.
Empirically the paper found multi-instance degrades overall
performance.

KNOWN DIVERGENCE (see EXPERIMENTS.md): our event simulator reproduces
the memory cost (i) exactly, but does not model host-thread or HBM
bandwidth contention (ii), so the *timing* side shows extra overlap
instead of degradation.  The benchmark therefore asserts the memory
effect and reports the timing for inspection.
"""

import pytest

from repro.bench import fmt_table, quick_mode
from repro.core import RunConfig, build_system


def _epoch(dataset: str, workers: int):
    cfg = RunConfig(
        dataset=dataset,
        num_gpus=8,
        sampler_workers=workers,
        loader_workers=workers,
    )
    system = build_system("DSP", cfg)
    m = system.run_epoch(max_batches=10, functional=False)
    return m, system.layout.store.total_cached


def test_ablation_multi_worker(benchmark, emit):
    # friendster is the memory-tight dataset where in-flight buffers
    # visibly displace cached features
    dataset = "friendster"
    single, cache1 = _epoch(dataset, 1)
    double, cache2 = _epoch(dataset, 2)

    emit(fmt_table(
        f"Ablation: worker instances per GPU on {dataset}, 8 GPUs",
        ["epoch (ms)", "load (ms)", "cached vectors"],
        [
            ("1 worker", [single.epoch_time * 1e3, single.load_time * 1e3, cache1]),
            ("2 workers", [double.epoch_time * 1e3, double.load_time * 1e3, cache2]),
        ],
    ))

    # extra in-flight state shrinks the cache (the paper's memory cost)
    assert cache2 < cache1
    # the cache loss shows up as extra cold traffic
    assert double.pcie_bytes >= single.pcie_bytes

    benchmark.pedantic(lambda: _epoch(dataset, 2), rounds=1, iterations=1)
