"""Figure 9: training quality — correctness of the reproduction.

All systems run the same BSP logic, so accuracy as a function of
*mini-batch count* must coincide (Fig 9a); accuracy as a function of
*wall time* favours DSP because its batches are faster (Fig 9b).

We train DSP, DGL-UVA and Quiver for several epochs on real (synthetic)
data — the models, gradients and accuracies are all real; only the
clock is simulated.
"""

import numpy as np
import pytest

from repro.bench import fmt_table, quick_mode
from repro.core import RunConfig, build_system

SYSTEMS = ("DSP", "DGL-UVA", "Quiver")


def _train_curves(dataset: str, epochs: int):
    curves = {}
    for name in SYSTEMS:
        cfg = RunConfig(
            dataset=dataset, num_gpus=8, hidden_dim=64, lr=5e-3, seed=11
        )
        system = build_system(name, cfg)
        batches, times, accs = [0], [0.0], []
        accs.append(system.evaluate(system.data.val_nodes))
        t = 0.0
        for _ in range(epochs):
            m = system.run_epoch()
            t += m.epoch_time
            batches.append(system.batches_seen)
            times.append(t)
            accs.append(m.val_accuracy)
        curves[name] = (batches, times, accs)
    return curves


def test_fig9_convergence(benchmark, emit):
    dataset = "products" if quick_mode() else "papers"
    epochs = 2 if quick_mode() else 5
    curves = _train_curves(dataset, epochs)

    batches = curves["DSP"][0]
    emit(fmt_table(
        f"Figure 9a: val accuracy vs mini-batch count on {dataset}, 8 GPUs",
        [str(b) for b in batches],
        [(name, [f"{a:.3f}" for a in curves[name][2]]) for name in SYSTEMS],
    ))
    emit(fmt_table(
        f"Figure 9b: simulated time (ms) at each epoch boundary on {dataset}",
        [f"ep{j}" for j in range(epochs + 1)],
        [(name, [t * 1e3 for t in curves[name][1]]) for name in SYSTEMS],
    ))

    final = {name: curves[name][2][-1] for name in SYSTEMS}
    chance = 1.0 / build_system(
        "DSP", RunConfig(dataset=dataset, num_gpus=8, hidden_dim=64)
    ).data.num_classes
    for name in SYSTEMS:
        # everyone actually learns
        assert final[name] > 1.5 * chance
        # Fig 9a: same-batch-count accuracy coincides across systems
        assert abs(final[name] - final["DSP"]) < 0.1
    # Fig 9b: DSP reaches the end of training first by a wide margin
    for name in ("DGL-UVA", "Quiver"):
        assert curves["DSP"][1][-1] * 1.5 < curves[name][1][-1]

    benchmark.pedantic(
        lambda: _train_curves(dataset, 1), rounds=1, iterations=1
    )
