"""Table 5: GCN epoch time with 8 GPUs.

GCN computes less than GraphSAGE, so communication is a larger share
and DSP's advantage grows (paper §7.2).
"""

import pytest

from repro.bench import DATASETS, fmt_table, measured_epoch, quick_mode
from repro.bench.harness import TABLE_SYSTEMS
from repro.core import RunConfig

PAPER = {
    "products": {"PyG": 15.5, "DGL-CPU": 8.32, "Quiver": 3.97,
                 "DGL-UVA": 4.91, "DSP": 0.552},
    "papers": {"PyG": 41.4, "DGL-CPU": 48.7, "Quiver": 23.7,
               "DGL-UVA": 13.6, "DSP": 5.97},
    "friendster": {"PyG": 501, "DGL-CPU": 478, "Quiver": 172,
                   "DGL-UVA": 137, "DSP": 29.9},
}


def test_table5_gcn(benchmark, emit):
    datasets = DATASETS[:1] if quick_mode() else DATASETS
    gcn, sage = {}, {}
    for name in TABLE_SYSTEMS:
        gcn[name] = [
            measured_epoch(
                name, RunConfig(dataset=ds, num_gpus=8, model="gcn")
            ).epoch_time
            for ds in datasets
        ]
        sage[name] = [
            measured_epoch(name, RunConfig(dataset=ds, num_gpus=8)).epoch_time
            for ds in datasets
        ]

    rows = []
    for name in TABLE_SYSTEMS:
        rows.append((name, [t * 1e3 for t in gcn[name]]))
        rows.append(("  paper(s)", [PAPER[ds][name] for ds in datasets]))
    emit(fmt_table(
        "Table 5: GCN epoch time, 8 GPUs (simulated ms; paper rows in s)",
        list(datasets),
        rows,
    ))

    for col in range(len(datasets)):
        baselines = [gcn[n][col] for n in TABLE_SYSTEMS if n != "DSP"]
        assert gcn["DSP"][col] < min(baselines)
        # DSP's speedup for GCN >= its speedup for SAGE (lighter compute
        # -> communication savings matter more, §7.2)
        sage_speedup = min(
            sage[n][col] for n in TABLE_SYSTEMS if n != "DSP"
        ) / sage["DSP"][col]
        gcn_speedup = min(baselines) / gcn["DSP"][col]
        assert gcn_speedup > 0.8 * sage_speedup

    benchmark.pedantic(
        lambda: measured_epoch(
            "DSP",
            RunConfig(dataset=datasets[0], num_gpus=8, model="gcn"),
            max_batches=2,
        ),
        rounds=1, iterations=1,
    )
