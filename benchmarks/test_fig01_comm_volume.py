"""Figure 1: communication volume of graph sampling methods, 8 GPUs.

The paper normalizes by *Ideal* — a hypothetical scheme that moves only
the data actually needed.  UVA sampling sits far above Ideal because of
PCIe read amplification (50-byte minimum requests); CSP sits *below*
Ideal because accesses to locally-owned adjacency lists move nothing
(paper footnote 1).
"""

import numpy as np
import pytest

from repro.bench import DATASETS, fmt_table, quick_mode
from repro.core import RunConfig
from repro.core.system import DSP
from repro.graph import load_dataset
from repro.sampling import CSPConfig, UVASampler


def _comm_volumes(dataset: str, batches: int = 4):
    cfg = RunConfig(dataset=dataset, num_gpus=8)
    dsp = DSP(cfg)
    uva = UVASampler(load_dataset(dataset).graph, 8, seed=0)
    csp_cfg = dsp.csp_config

    ideal = uva_wire = csp_bytes = 0.0
    for batch in dsp._global_batches()[:batches]:
        per_gpu = dsp._assign_seeds(batch)
        _, csp_trace, _ = dsp.sampler.sample(per_gpu, csp_cfg)
        csp_bytes += csp_trace.nvlink_payload_bytes()

        rr = [batch[g::8] for g in range(8)]
        _, uva_trace, _ = uva.sample(rr, csp_cfg)
        uva_wire += uva_trace.uva_wire_bytes()
        # ideal: exactly the payload the sampler needs, no amplification,
        # every access remote (the paper's normalization baseline)
        ideal += uva_trace.uva_payload_bytes()
    return uva_wire / ideal, 1.0, csp_bytes / ideal


def test_fig1_comm_volume(benchmark, emit):
    datasets = DATASETS[:1] if quick_mode() else DATASETS
    rows = {name: [] for name in ("UVA", "Ideal", "CSP")}
    for ds in datasets:
        u, i, c = _comm_volumes(ds)
        rows["UVA"].append(u)
        rows["Ideal"].append(i)
        rows["CSP"].append(c)

    emit(fmt_table(
        "Figure 1: sampling communication volume, 8 GPUs (normalized by Ideal)",
        list(datasets),
        [(k, v) for k, v in rows.items()],
    ))
    for col in range(len(datasets)):
        # shape: UVA >> Ideal > CSP (amplification ~6.25x for 8B reads)
        assert rows["UVA"][col] > 3.0
        assert rows["CSP"][col] < 1.0

    benchmark.pedantic(lambda: _comm_volumes(datasets[0], batches=1),
                       rounds=1, iterations=1)
