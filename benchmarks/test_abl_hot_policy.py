"""Ablation: hot-node selection policy for the feature cache (paper §2).

In-degree (DSP's default), PageRank and reverse PageRank all track the
sampling access distribution on power-law graphs; a random cache is the
control and misses far more often.
"""

import pytest

from repro.bench import fmt_table, quick_mode
from repro.core import RunConfig, build_system

POLICIES = ("degree", "pagerank", "reverse_pagerank", "random")


def _hit_rates(dataset: str, budget_fraction: float = 0.05):
    from repro.graph import load_dataset

    ds = load_dataset(dataset)
    budget = int(ds.feature_nbytes / 8 * budget_fraction)
    out = {}
    for policy in POLICIES:
        cfg = RunConfig(
            dataset=dataset, num_gpus=8, hot_policy=policy,
            feature_cache_bytes=budget,
        )
        m = build_system("DSP", cfg).run_epoch(max_batches=4, functional=False)
        s = m.cache_stats
        total = s["local"] + s["remote"] + s["cold"]
        out[policy] = (1 - s["cold"] / total, m.load_time)
    return out


def test_ablation_hot_policy(benchmark, emit):
    dataset = "products" if quick_mode() else "papers"
    res = _hit_rates(dataset)

    emit(fmt_table(
        f"Ablation: hot-node policy on {dataset}, 8 GPUs, small cache",
        ["hit rate", "load (ms)"],
        [(p, [f"{res[p][0]:.1%}", res[p][1] * 1e3]) for p in POLICIES],
    ))

    for policy in ("degree", "pagerank", "reverse_pagerank"):
        assert res[policy][0] > 1.5 * res["random"][0]
        assert res[policy][1] < res["random"][1]
    # degree is competitive with the PageRank variants (why DSP defaults to it)
    best = max(res[p][0] for p in POLICIES)
    assert res["degree"][0] > best - 0.08

    benchmark.pedantic(lambda: _hit_rates(dataset), rounds=1, iterations=1)
