"""Table 1: aggregate NVLink / PCIe bandwidth of the DGX-1 vs GPU count.

Paper values (GB/s):  PCIe 32/32/64/128, NVLink 0/100/400/1200.
"""

from repro.bench import GPU_COUNTS, fmt_table
from repro.hw import Topology
from repro.utils import GB

PAPER = {
    "PCIe": [32, 32, 64, 128],
    "NVLink": [0, 100, 400, 1200],
}


def test_table1_bandwidth(benchmark, emit):
    topos = {k: Topology.dgx1(k) for k in GPU_COUNTS}
    pcie = [topos[k].aggregate_pcie_bandwidth() / GB for k in GPU_COUNTS]
    nvlink = [topos[k].aggregate_nvlink_bandwidth() / GB for k in GPU_COUNTS]

    emit(fmt_table(
        "Table 1: aggregate bandwidth (GB/s) on the DGX-1 model",
        [f"{k}-GPU" for k in GPU_COUNTS],
        [
            ("PCIe", pcie),
            ("  paper", PAPER["PCIe"]),
            ("NVLink", nvlink),
            ("  paper", PAPER["NVLink"]),
        ],
    ))
    for got, want in zip(pcie, PAPER["PCIe"]):
        assert got == want
    for got, want in zip(nvlink, PAPER["NVLink"]):
        assert got == want

    benchmark.pedantic(lambda: Topology.dgx1(8), rounds=5, iterations=10)
