"""Ablation: random walks via CSP (paper §4.2).

Random walk = node-wise sampling with fan-out 1, reshuffle removed:
the walk state (16 bytes) travels to the next node's owner.  We measure
the per-step traffic and show it is independent of node degree — the
property that makes CSP walks cheap where pull-based walkers pay the
whole adjacency list per step.
"""

import numpy as np
import pytest

from repro.bench import fmt_table, quick_mode
from repro.core import RunConfig
from repro.core.system import DSP
from repro.sampling import random_walk
from repro.sampling.ops import AllToAll


def _walk_stats(dataset: str, walks_per_gpu: int, length: int):
    cfg = RunConfig(dataset=dataset, num_gpus=8)
    dsp = DSP(cfg)
    rng = np.random.default_rng(3)
    starts = []
    for g in range(8):
        lo = int(dsp.sampler.part_offsets[g])
        hi = int(dsp.sampler.part_offsets[g + 1])
        starts.append(rng.integers(lo, hi, size=walks_per_gpu))
    paths, trace = random_walk(dsp.sampler, starts, length=length, seed=1)
    move_bytes = sum(
        op.matrix.sum() for op in trace
        if isinstance(op, AllToAll) and "move" in op.label
    )
    hops = sum(int((p >= 0).sum()) - len(p) for p in paths)
    deg = dsp.data.graph.degrees
    pull_equiv = float(np.mean(deg)) * 8 * hops  # pulling adjacency per hop
    return hops, move_bytes, pull_equiv


def test_ablation_random_walk(benchmark, emit):
    dataset = "products" if quick_mode() else "friendster"
    hops, move, pull = _walk_stats(dataset, walks_per_gpu=64, length=8)

    emit(fmt_table(
        f"Ablation: random-walk traffic on {dataset}, 8 GPUs, 512 walks x 8",
        ["value"],
        [
            ("completed hops", [hops]),
            ("CSP walk-state bytes", [move]),
            ("bytes/hop", [move / max(hops, 1)]),
            ("pull-adjacency equivalent", [pull]),
        ],
    ))

    # walk-state movement is O(1) per hop (<= 16 bytes + skipped local
    # moves), pulling adjacency lists is O(degree) per hop
    assert move / max(hops, 1) <= 16.0
    assert pull > 10 * move

    benchmark.pedantic(
        lambda: _walk_stats(dataset, walks_per_gpu=16, length=4),
        rounds=1, iterations=1,
    )
