"""Ablation: the multi-machine extension (paper §3.2).

"The machines only communicate for cold features and model
synchronization."  We verify exactly that: with everything hot the
network carries only the gradient ring; once features go cold, the
sharded remote reads appear; and a slower fabric slows the epoch.
"""

import pytest

from repro.bench import fmt_table, quick_mode
from repro.core import RunConfig
from repro.core.multimachine import MultiMachineDSP
from repro.hw.devices import NetworkSpec
from repro.utils import GB


def _run(dataset: str, machines: int, cache_bytes=None, bandwidth=12.5 * GB):
    cfg = RunConfig(dataset=dataset, num_gpus=4,
                    feature_cache_bytes=cache_bytes)
    mm = MultiMachineDSP(cfg, num_machines=machines,
                         network=NetworkSpec(bandwidth=bandwidth))
    return mm.run_epoch(max_batches=4, functional=False)


def test_ablation_multimachine(benchmark, emit):
    dataset = "products" if quick_mode() else "papers"

    hot = _run(dataset, machines=2)
    cold = _run(dataset, machines=2, cache_bytes=0.0)
    cold_slow = _run(dataset, machines=2, cache_bytes=0.0,
                     bandwidth=1.25 * GB)
    single = _run(dataset, machines=1)

    emit(fmt_table(
        f"Ablation: multi-machine DSP on {dataset}, 2x4 GPUs",
        ["epoch (ms)", "network (MB)"],
        [
            ("1 machine", [single.epoch_time * 1e3,
                           single.network_bytes / 1e6]),
            ("2m hot cache", [hot.epoch_time * 1e3,
                              hot.network_bytes / 1e6]),
            ("2m no cache", [cold.epoch_time * 1e3,
                             cold.network_bytes / 1e6]),
            ("2m no cache 10GbE", [cold_slow.epoch_time * 1e3,
                                   cold_slow.network_bytes / 1e6]),
        ],
    ))

    # machines only talk for cold features + gradients (§3.2):
    # with a hot cache the network carries just the gradient ring
    assert hot.network_bytes < 0.35 * cold.network_bytes
    assert cold.network_bytes > 0
    # a 10x slower fabric visibly slows the cold configuration
    assert cold_slow.epoch_time > cold.epoch_time
    # single machine uses no network at all
    assert single.network_bytes == 0

    benchmark.pedantic(lambda: _run(dataset, 2), rounds=1, iterations=1)
