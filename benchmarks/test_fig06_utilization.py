"""Figure 6: GPU utilization, sequential execution vs the pipeline.

Utilization is thread-weighted SM occupancy over the epoch.  The
paper's observation: sequential execution leaves GPUs increasingly idle
as the GPU count grows (lighter kernels, more peer waiting), while the
pipeline keeps them busy by overlapping mini-batches.
"""

import pytest

from repro.bench import DATASETS, GPU_COUNTS, fmt_table, measured_epoch, quick_mode
from repro.core import RunConfig


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig6_utilization(benchmark, emit, dataset):
    gpu_counts = (1, 8) if quick_mode() else GPU_COUNTS
    seq, pipe = [], []
    for k in gpu_counts:
        cfg = RunConfig(dataset=dataset, num_gpus=k)
        seq.append(measured_epoch("DSP-Seq", cfg, max_batches=8).utilization)
        pipe.append(measured_epoch("DSP", cfg, max_batches=8).utilization)

    emit(fmt_table(
        f"Figure 6: GPU occupancy on {dataset} (DSP-Seq vs pipeline)",
        [f"{k}-GPU" for k in gpu_counts],
        [("DSP-Seq", seq), ("DSP", pipe)],
    ))

    for s, p in zip(seq, pipe):
        assert p >= s * 0.99  # the pipeline never hurts utilization
    # at 8 GPUs the pipeline's advantage is clear
    assert pipe[-1] > 1.1 * seq[-1]
    # the pipeline's relative gain grows with the GPU count
    assert pipe[-1] / seq[-1] > pipe[0] / seq[0]
    if dataset == "products":
        # sequential utilization degrades as GPUs are added; products is
        # the dataset that fits a single GPU, so its 1-GPU point is not
        # distorted by PCIe stalls (see EXPERIMENTS.md for the others)
        assert seq[-1] < seq[0]

    benchmark.pedantic(
        lambda: measured_epoch(
            "DSP", RunConfig(dataset=dataset, num_gpus=8), max_batches=2
        ),
        rounds=1, iterations=1,
    )
