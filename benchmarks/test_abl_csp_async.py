"""Ablation: synchronous fused CSP stages vs an asynchronous design.

Paper §4.1: CSP is synchronous — each stage batches all tasks of a
layer into one collective and one fused kernel.  The asynchronous
alternative sends each task as it appears and runs each received task
individually; it avoids the stage barrier but pays a per-message and
per-kernel-launch overhead that dwarfs the savings ("observed to have
poor efficiency as the communication and sampling tasks of a single GPU
are small").
"""

import numpy as np
import pytest

from repro.bench import fmt_table, quick_mode
from repro.core import RunConfig
from repro.core.system import DSP
from repro.hw.interconnect import NVLINK_LATENCY
from repro.sampling.ops import AllToAll, LocalKernel

#: per-message software cost of an eager (non-batched) send
ASYNC_MESSAGE_OVERHEAD = 1.2e-6
#: per-task kernel-launch cost when tasks are not fused
ASYNC_LAUNCH_OVERHEAD = 2.0e-6


def _times(dataset: str, batches: int = 3):
    cfg = RunConfig(dataset=dataset, num_gpus=8)
    dsp = DSP(cfg)
    engine = dsp.engine
    shrink = dsp.batch_shrink

    t_sync = t_async = 0.0
    for batch in dsp._global_batches()[:batches]:
        per_gpu = dsp._assign_seeds(batch)
        _, trace, stats = dsp.sampler.sample(per_gpu, dsp.csp_config)
        t_sync += engine.stage_time(trace)
        # async: same bytes and same sampling work, but one message per
        # remote task and one kernel launch per task, minus the barrier
        # (approximated as the collective launch overheads it saves)
        t = engine.stage_time(trace)
        remote_tasks = stats.tasks_total - stats.local_tasks
        t += remote_tasks * 2 * ASYNC_MESSAGE_OVERHEAD * shrink  # there + back
        t += stats.tasks_total * ASYNC_LAUNCH_OVERHEAD * shrink
        n_barriers = sum(1 for op in trace if isinstance(op, AllToAll))
        t -= n_barriers * engine.model.launch
        t_async += max(t, 0.0)
    return t_sync, t_async


def test_ablation_csp_async(benchmark, emit):
    dataset = "products" if quick_mode() else "papers"
    sync, async_ = _times(dataset)

    emit(fmt_table(
        f"Ablation: CSP stage execution on {dataset}, 8 GPUs (sampling ms)",
        ["time"],
        [("sync+fused", [sync * 1e3]), ("async", [async_ * 1e3])],
    ))

    assert sync < async_  # fusing wins despite the barriers

    benchmark.pedantic(lambda: _times(dataset, batches=1), rounds=1,
                       iterations=1)
