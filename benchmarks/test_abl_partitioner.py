"""Ablation: METIS-like partitioning vs hash partitioning (paper §3.1).

DSP partitions with METIS to keep sampling tasks local.  With a hash
partition almost every frontier node is remote, inflating CSP's shuffle
traffic and the sampling time.
"""

import pytest

from repro.bench import fmt_table, measured_epoch, quick_mode
from repro.core import RunConfig


def test_ablation_partitioner(benchmark, emit):
    dataset = "products" if quick_mode() else "papers"
    k = 8
    metis = measured_epoch(
        "DSP", RunConfig(dataset=dataset, num_gpus=k), max_batches=6
    )
    hashed = measured_epoch(
        "DSP", RunConfig(dataset=dataset, num_gpus=k, partitioner="hash"),
        max_batches=6,
    )

    emit(fmt_table(
        f"Ablation: DSP partitioner on {dataset}, 8 GPUs",
        ["epoch (ms)", "sampling (ms)", "NVLink (MB)"],
        [
            ("metis", [metis.epoch_time * 1e3, metis.sample_time * 1e3,
                       metis.nvlink_bytes / 1e6]),
            ("hash", [hashed.epoch_time * 1e3, hashed.sample_time * 1e3,
                      hashed.nvlink_bytes / 1e6]),
        ],
    ))

    # locality cuts NVLink traffic — the claim of §3.1 (the shuffle and
    # remote-feature shares shrink; reshuffle volume is common to both)
    assert metis.nvlink_bytes < 0.9 * hashed.nvlink_bytes
    # co-partitioned caches also turn remote hits into local ones
    assert metis.cache_stats["remote"] < hashed.cache_stats["remote"]
    # ...and locality never hurts the sampler; on the small scaled
    # graphs the absolute time difference is modest (NVLink is fast)
    assert metis.sample_time <= hashed.sample_time * 1.05

    benchmark.pedantic(
        lambda: measured_epoch(
            "DSP",
            RunConfig(dataset=dataset, num_gpus=8, partitioner="hash"),
            max_batches=2,
        ),
        rounds=1, iterations=1,
    )
