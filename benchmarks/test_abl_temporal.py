"""Ablation: temporal sampling under task push vs data pull.

The paper singles out temporal graph sampling (with biased sampling) as
a case where "pulling the entire adjacency list is necessary" for a
pull-based design (§7.3): the time constraint must be evaluated against
every edge's timestamp.  CSP instead ships the 16-byte (node, cut-off)
task to the owner GPU and evaluates the constraint locally.
"""

import numpy as np
import pytest

from repro.bench import fmt_table, quick_mode
from repro.core import RunConfig
from repro.core.system import DSP
from repro.sampling import TemporalCollectiveSampler
from repro.sampling.ops import AllToAll


def _volumes(dataset: str, batches: int = 3):
    cfg = RunConfig(dataset=dataset, num_gpus=8)
    dsp = DSP(cfg)
    graph = dsp.data.graph
    rng = np.random.default_rng(0)
    times = rng.random(graph.num_edges)
    sampler = TemporalCollectiveSampler.from_partitioned_times(
        graph, dsp.sampler.part_offsets, times, seed=0
    )
    deg = graph.degrees

    push = pull = 0.0
    for batch in dsp._global_batches()[:batches]:
        per_gpu = dsp._assign_seeds(batch)
        cuts = [np.full(len(s), 0.8) for s in per_gpu]
        samples, trace, stats = sampler.sample_temporal(
            per_gpu, cuts, cfg.fanout
        )
        push += trace.nvlink_payload_bytes()
        # pull must move adjacency + timestamp lists for every remote
        # frontier node at every layer; reconstruct the frontiers from
        # the samples (frontier of layer l is block l's dst set)
        for g, sample in enumerate(samples):
            for block in sample.blocks:
                frontier = block.dst_nodes
                owners = sampler.owner_of(frontier)
                remote = frontier[owners != g]
                pull += float(deg[remote].sum()) * 16  # nbr ids + times
    return push, pull


def test_ablation_temporal(benchmark, emit):
    dataset = "products" if quick_mode() else "papers"
    push, pull = _volumes(dataset)

    emit(fmt_table(
        f"Ablation: temporal sampling comm volume on {dataset}, 8 GPUs (MB)",
        ["volume"],
        [
            ("CSP (push)", [push / 1e6]),
            ("Pull adjacency+times", [pull / 1e6]),
        ],
    ))

    # pull moves whole adjacency+timestamp lists; push moves tasks
    assert pull > 2 * push

    benchmark.pedantic(lambda: _volumes(dataset, batches=1),
                       rounds=1, iterations=1)
