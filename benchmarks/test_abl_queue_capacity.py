"""Ablation: pipeline queue capacity (paper §5: "capacity 2 is
sufficient for overlapping the tasks")."""

import pytest

from repro.bench import fmt_table, quick_mode
from repro.core import RunConfig, build_system

CAPACITIES = (1, 2, 4, 8)


def _epoch_times(dataset: str):
    out = []
    for cap in CAPACITIES:
        cfg = RunConfig(dataset=dataset, num_gpus=8, queue_capacity=cap)
        m = build_system("DSP", cfg).run_epoch(max_batches=10, functional=False)
        out.append(m.epoch_time)
    return out


def test_ablation_queue_capacity(benchmark, emit):
    dataset = "products" if quick_mode() else "papers"
    times = _epoch_times(dataset)

    emit(fmt_table(
        f"Ablation: DSP queue capacity on {dataset}, 8 GPUs (epoch ms)",
        [str(c) for c in CAPACITIES],
        [("epoch", [t * 1e3 for t in times])],
    ))

    t1, t2, t4, t8 = times
    # capacity 2 captures (nearly) all of the benefit of larger queues
    assert t2 <= t1 * 1.001
    assert t2 <= t4 * 1.05
    assert t2 <= t8 * 1.05
    assert t8 >= t2 * 0.9  # bigger queues buy nothing further

    benchmark.pedantic(
        lambda: build_system(
            "DSP", RunConfig(dataset=dataset, num_gpus=8, queue_capacity=2)
        ).run_epoch(max_batches=4, functional=False),
        rounds=1, iterations=1,
    )
