"""Ablation: partitioned vs replicated feature cache (paper §3.1).

Same per-GPU budget; the partitioned cache holds `num_gpus` times more
distinct vectors (served over NVLink), the replicated cache serves only
local hits.  With several GPUs the partitioned cache wins because PCIe
cold fetches are far more expensive than NVLink remote hits.
"""

import numpy as np
import pytest

from repro.bench import fmt_table, quick_mode
from repro.cache import FeatureLoader, PartitionedCache, ReplicatedCache
from repro.cache.policies import rank_by_degree
from repro.core import RunConfig
from repro.core.cost import CostEngine
from repro.core.system import DSP
from repro.hw import Cluster


def _load_times(dataset: str, budget_nodes: int, batches: int = 4):
    cfg = RunConfig(dataset=dataset, num_gpus=8)
    dsp = DSP(cfg)
    engine = dsp.engine
    hot = rank_by_degree(dsp.data.graph)
    part_store = PartitionedCache(
        dsp.sampler.part_offsets, hot, budget_nodes
    )
    repl_store = ReplicatedCache(dsp.data.num_nodes, 8, hot, budget_nodes)
    out = {}
    for label, store in (("partitioned", part_store), ("replicated", repl_store)):
        loader = FeatureLoader(dsp.data.features, store)
        total = 0.0
        misses = hits = 0
        for batch in dsp._global_batches()[:batches]:
            per_gpu = dsp._assign_seeds(batch)
            samples, _ = dsp._sample(per_gpu)
            _, trace, stats = loader.load([s.all_nodes for s in samples])
            total += engine.stage_time(trace)
            misses += stats["cold"]
            hits += stats["local"] + stats["remote"]
        out[label] = (total, hits / (hits + misses))
    return out


def test_ablation_cache_mode(benchmark, emit):
    dataset = "products" if quick_mode() else "papers"
    # a budget that covers only a slice of the nodes per GPU
    from repro.graph import load_dataset

    budget = load_dataset(dataset).num_nodes // 40
    res = _load_times(dataset, budget)

    emit(fmt_table(
        f"Ablation: cache mode on {dataset}, 8 GPUs, equal per-GPU budget",
        ["load time (ms)", "hit rate"],
        [(k, [v[0] * 1e3, f"{v[1]:.1%}"]) for k, v in res.items()],
    ))

    assert res["partitioned"][1] > res["replicated"][1]  # more hits
    assert res["partitioned"][0] < res["replicated"][0]  # faster loads

    benchmark.pedantic(lambda: _load_times(dataset, budget, batches=1),
                       rounds=1, iterations=1)
