"""Table 6: per-epoch sampling time, 5 systems x 3 datasets x GPU counts.

As in the paper, the sampler is measured in isolation (its stage time,
without pipeline interference).
"""

import pytest

from repro.bench import DATASETS, GPU_COUNTS, fmt_table, measured_epoch, quick_mode
from repro.bench.harness import TABLE_SYSTEMS
from repro.core import RunConfig

PAPER = {
    "products": {"PyG": [5.03, 4.41, 4.26, 4.21], "DGL-CPU": [4.96, 3.89, 2.86, 2.57],
                 "Quiver": [3.72, 2.94, 2.19, 1.98], "DGL-UVA": [2.39, 1.97, 1.12, 0.613],
                 "DSP": [1.60, 0.834, 0.461, 0.323]},
    "papers": {"PyG": [30.0, 31.0, 35.0, 29.1], "DGL-CPU": [30.3, 21.8, 19.4, 16.1],
               "Quiver": [24.1, 18.1, 15.1, 11.3], "DGL-UVA": [14.2, 11.5, 4.91, 2.61],
               "DSP": [12.1, 6.91, 2.47, 1.40]},
    "friendster": {"PyG": [134, 140, 145, 152], "DGL-CPU": [189, 176, 141, 137],
                   "Quiver": [108, 78.9, 54.4, 41.2], "DGL-UVA": [95.3, 71.2, 30.0, 15.2],
                   "DSP": [61.3, 33.2, 13.4, 7.09]},
}


@pytest.mark.parametrize("dataset", DATASETS)
def test_table6_sampling_time(benchmark, emit, dataset):
    gpu_counts = (1, 8) if quick_mode() else GPU_COUNTS
    times = {
        name: [
            measured_epoch(
                name, RunConfig(dataset=dataset, num_gpus=k)
            ).sample_time
            for k in gpu_counts
        ]
        for name in TABLE_SYSTEMS
    }

    rows = []
    for name in TABLE_SYSTEMS:
        rows.append((name, [t * 1e3 for t in times[name]]))
        rows.append(("  paper(s)",
                     [PAPER[dataset][name][GPU_COUNTS.index(k)] for k in gpu_counts]))
    emit(fmt_table(
        f"Table 6: sampling time per epoch on {dataset} "
        "(simulated ms; paper rows in s)",
        [f"{k}-GPU" for k in gpu_counts],
        rows,
    ))

    for col in range(len(gpu_counts)):
        others = [times[n][col] for n in TABLE_SYSTEMS if n != "DSP"]
        assert times["DSP"][col] < min(others)  # DSP fastest sampler
        # UVA sampling beats CPU sampling (GPU kernels + no CPU contention)
        assert times["DGL-UVA"][col] < times["DGL-CPU"][col]
    # CPU sampling barely scales with GPUs (host cores are the bottleneck)
    assert times["PyG"][0] / times["PyG"][-1] < 2.5

    benchmark.pedantic(
        lambda: measured_epoch(
            "DGL-UVA", RunConfig(dataset=dataset, num_gpus=8), max_batches=2
        ),
        rounds=1, iterations=1,
    )
