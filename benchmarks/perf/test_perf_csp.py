"""Perf microbenchmark: the CSP layer round (flat-batch fast path).

Wall-clock (not simulated) time of ``CollectiveSampler.sample`` on the
8-GPU, 3-layer node-wise workload, fast path vs the chunked reference
implementation.  ``REPRO_BENCH_QUICK=1`` shrinks the dataset and
iteration counts.  Run ``repro perf`` for the JSON trajectory
(``BENCH_perf.json``); see ``docs/performance.md``.
"""

from repro.bench.harness import fmt_table, quick_mode
from repro.bench.perf import bench_csp_layer


def test_csp_layer_round(emit):
    r = bench_csp_layer(quick=quick_mode())
    emit(fmt_table(
        "perf: CSP layer round (wall-clock)",
        ["before", "after", "speedup", "Medges/s"],
        [("csp", [
            f"{r['wall_s_before'] * 1e3:.2f}ms",
            f"{r['wall_s_after'] * 1e3:.2f}ms",
            f"{r['speedup']:.2f}x",
            f"{r['sampled_edges_per_s'] / 1e6:.2f}",
        ])],
    ))
    assert r["wall_s_after"] > 0 and r["wall_s_before"] > 0
    assert r["sampled_edges_per_s"] > 0
    # the acceptance bar is 2x on the full-size bench; keep a safety
    # margin against machine noise (quick mode is fixed-cost dominated)
    assert r["speedup"] > (1.0 if quick_mode() else 1.5)
