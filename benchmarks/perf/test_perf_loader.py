"""Perf microbenchmark: FeatureLoader.load, vectorized vs seed loop.

Also asserts the vectorized loader is *equivalent* to the seed's
per-holder implementation (kept in ``repro.bench.perf`` as the oracle):
same feature matrices, same byte matrices, same hit statistics.
"""

import numpy as np

from repro.bench.harness import fmt_table, quick_mode
from repro.bench.perf import _reference_load, bench_feature_load
from repro.cache.loader import FeatureLoader
from repro.cache.store import PartitionedCache


def test_feature_load(emit):
    r = bench_feature_load(quick=quick_mode())
    emit(fmt_table(
        "perf: feature load (wall-clock)",
        ["before", "after", "speedup", "Mrows/s"],
        [("load", [
            f"{r['wall_s_before'] * 1e3:.2f}ms",
            f"{r['wall_s_after'] * 1e3:.2f}ms",
            f"{r['speedup']:.2f}x",
            f"{r['rows_per_s'] / 1e6:.2f}",
        ])],
    ))
    assert r["wall_s_after"] > 0 and r["rows_per_s"] > 0


def test_vectorized_loader_matches_seed_implementation():
    rng = np.random.default_rng(0)
    n, k = 4_000, 4
    offsets = np.linspace(0, n, k + 1).astype(np.int64)
    store = PartitionedCache(offsets, rng.permutation(n), budget_nodes=n // 8)
    features = rng.random((n, 16)).astype(np.float32)
    loader = FeatureLoader(features, store)
    requests = [rng.integers(0, n, size=600) for _ in range(k)]

    out_a, trace_a, stats_a = loader.load(requests)
    out_b, trace_b, stats_b = _reference_load(loader, requests)
    assert stats_a == stats_b
    for a, b in zip(out_a, out_b):
        assert np.array_equal(a, b)
    (group_a,), (group_b,) = trace_a.ops, trace_b.ops
    for branch_a, branch_b in zip(group_a.branches, group_b.branches):
        for op_a, op_b in zip(branch_a, branch_b):
            assert type(op_a) is type(op_b) and op_a.label == op_b.label
            for attr in ("matrix", "work", "items"):
                if hasattr(op_a, attr):
                    assert np.array_equal(
                        getattr(op_a, attr), getattr(op_b, attr)
                    )
