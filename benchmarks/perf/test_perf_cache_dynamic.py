"""Perf benchmark: serving under popularity drift, static vs dynamic
cache policy (plus fp16 cold-path compression).

Unlike the wall-clock benchmarks, the gated figures here are *simulated*
— the throughput ratio at a drain-mode probe load, the hit-rate delta
and the cold-path byte volume are pure functions of the simulation, so
this test also asserts the direction of each claim in docs/caching.md:
dynamic matches or beats the static hit rate, moves fewer UVA bytes per
request, and sustains at least the static knee.
"""

from repro.bench.harness import fmt_table, quick_mode
from repro.bench.perf import bench_cache_dynamic


def test_cache_dynamic(emit):
    r = bench_cache_dynamic(quick=quick_mode())
    emit(fmt_table(
        "perf: dynamic cache under drift (simulated serving)",
        ["static", "dynamic", "ratio"],
        [
            ("throughput", [
                f"{r['throughput_qps_static'] / 1e6:.2f}M/s",
                f"{r['throughput_qps_dynamic'] / 1e6:.2f}M/s",
                f"{r['speedup']:.3f}x",
            ]),
            ("p99", [
                f"{r['p99_static_us']:.0f}us",
                f"{r['p99_dynamic_us']:.0f}us",
                f"{r['p99_static_us'] / r['p99_dynamic_us']:.3f}x",
            ]),
            ("hit rate", [
                f"{r['hit_rate_static']:.3f}",
                f"{r['hit_rate_dynamic']:.3f}",
                "",
            ]),
            ("UVA B/req", [
                f"{r['uva_bytes_per_request_static']:.0f}",
                f"{r['uva_bytes_per_request_dynamic']:.0f}",
                "",
            ]),
            ("knee", [
                f"{r['knee_qps_static'] / 1e6:g}M",
                f"{r['knee_qps_dynamic'] / 1e6:g}M",
                "",
            ]),
        ],
    ))
    assert r["wall_s_before"] > 0 and r["wall_s_after"] > 0
    # the direction of every headline claim
    assert r["speedup"] >= 1.0
    assert r["hit_rate_dynamic"] >= r["hit_rate_static"]
    assert (r["uva_bytes_per_request_dynamic"]
            < r["uva_bytes_per_request_static"])
    assert r["knee_qps_dynamic"] >= r["knee_qps_static"]
    assert r["dynamic"]["promotions"] > 0


def test_deterministic_simulated_figures():
    """The gated speedup is simulated, not wall-clock: two runs agree
    bit for bit (this is what lets CI gate on it with any tolerance)."""
    a = bench_cache_dynamic(quick=True, clock="fake")
    b = bench_cache_dynamic(quick=True, clock="fake")
    for key in ("speedup", "hit_rate_static", "hit_rate_dynamic",
                "uva_bytes_per_request_static",
                "uva_bytes_per_request_dynamic",
                "p99_static_us", "p99_dynamic_us",
                "knee_qps_static", "knee_qps_dynamic"):
        assert a[key] == b[key], key
