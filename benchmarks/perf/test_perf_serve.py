"""Perf microbenchmark: one online-serving sweep point.

Wall-clock of ``serve_once`` — the discrete-event loop, dynamic
batcher, CSP sampling and cache loading for an open-loop request
stream — with the fast sampling path vs the chunked reference path.
The simulator's event dispatch (``__slots__`` Process, tuple dispatch)
is on this path too.
"""

from repro.bench.harness import fmt_table, quick_mode
from repro.bench.perf import bench_serve_batch


def test_serve_batch(emit):
    r = bench_serve_batch(quick=quick_mode())
    emit(fmt_table(
        "perf: serving sweep point (wall-clock)",
        ["before", "after", "speedup", "req/s"],
        [("serve", [
            f"{r['wall_s_before'] * 1e3:.2f}ms",
            f"{r['wall_s_after'] * 1e3:.2f}ms",
            f"{r['speedup']:.2f}x",
            f"{r['requests_per_wall_s']:.0f}",
        ])],
    ))
    assert r["wall_s_after"] > 0 and r["requests_per_wall_s"] > 0
