"""Perf microbenchmark: raw event-dispatch throughput of the engine.

Wall-clock (not simulated) time of the bucketed batch-dispatch
scheduler vs the retained ``use_heap_scheduler=True`` heap core on the
same producer/consumer + timer-storm workload; the benchmark asserts
the two cores agree on the final clock and event count before timing.
``REPRO_BENCH_QUICK=1`` shrinks the workload.  Run ``repro perf`` for
the JSON trajectory (``BENCH_perf.json``); see ``docs/performance.md``.
"""

from repro.bench.harness import fmt_table, quick_mode
from repro.bench.perf import bench_engine_core


def test_engine_core_dispatch(emit):
    r = bench_engine_core(quick=quick_mode())
    emit(fmt_table(
        "perf: engine core event dispatch (wall-clock)",
        ["before", "after", "speedup", "kEv/s"],
        [("engine", [
            f"{r['wall_s_before'] * 1e3:.2f}ms",
            f"{r['wall_s_after'] * 1e3:.2f}ms",
            f"{r['speedup']:.2f}x",
            f"{r['events_per_s'] / 1e3:.0f}",
        ])],
    ))
    assert r["wall_s_after"] > 0 and r["wall_s_before"] > 0
    assert r["events_per_s"] > 0
    # the acceptance bar is 2x on the full-size bench; keep a safety
    # margin against machine noise (quick mode is fixed-cost dominated)
    assert r["speedup"] > (1.0 if quick_mode() else 1.5)
