"""Perf microbenchmark: a costed DSP training epoch end to end.

Wall-clock of ``run_epoch(functional=False)`` — sampling + loading +
cost accounting + pipeline replay — with the fast sampling path vs the
chunked reference path.
"""

from repro.bench.harness import fmt_table, quick_mode
from repro.bench.perf import bench_epoch


def test_epoch(emit):
    r = bench_epoch(quick=quick_mode())
    emit(fmt_table(
        "perf: costed epoch (wall-clock)",
        ["before", "after", "speedup", "batches/s"],
        [("epoch", [
            f"{r['wall_s_before'] * 1e3:.2f}ms",
            f"{r['wall_s_after'] * 1e3:.2f}ms",
            f"{r['speedup']:.2f}x",
            f"{r['batches_per_s']:.1f}",
        ])],
    ))
    assert r["wall_s_after"] > 0 and r["batches_per_s"] > 0
