"""Figure 2: kernel execution speed vs allocated physical threads.

The graph-sampling and feature-loading kernels stop speeding up well
before the V100's 5120 threads — they are memory bound.  We print the
speed (work/second, normalized to the fully-saturated rate) over the
thread counts on the paper's x-axis.
"""

from repro.bench import fmt_table
from repro.hw import GPUSpec, kernel_duration
from repro.hw.kernels import gather_kernel, sampling_kernel

THREADS = [256, 512, 1024, 2048, 3072, 4096, 5120]


def _speed_curve(spec):
    times = [kernel_duration(spec, t) for t in THREADS]
    fastest = min(times)
    return [fastest / t for t in times]


def test_fig2_kernel_scaling(benchmark, emit):
    gpu = GPUSpec()
    sample = sampling_kernel(gpu, num_tasks=200_000, fanout=10)
    gather = gather_kernel(gpu, nbytes=256 * 1024 * 1024)
    s_curve = _speed_curve(sample)
    g_curve = _speed_curve(gather)

    emit(fmt_table(
        "Figure 2: kernel speed vs threads (1.0 = saturated), V100 = 5120 threads",
        [str(t) for t in THREADS],
        [("sampling", s_curve), ("loading", g_curve)],
    ))

    # the paper's observation: speed stabilizes before all threads
    assert s_curve[THREADS.index(1024)] > 0.99  # sampling saturates ~1k
    assert g_curve[THREADS.index(2048)] > 0.99  # loading saturates ~2k
    assert s_curve[0] < 0.5  # but it is not flat from the start

    benchmark.pedantic(
        lambda: [kernel_duration(sample, t) for t in THREADS],
        rounds=5, iterations=100,
    )
