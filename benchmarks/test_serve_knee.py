"""Serving latency–throughput knee: DSP vs Pull-Data vs UVA, 4 GPUs.

The serving analogue of Table 4: the same open-loop request stream is
offered to each system at an increasing QPS ladder, and the *knee* —
the largest offered load served within a 1 ms p99 SLO with at most 1%
shedding — is compared.  DSP's CSP sampling and partitioned NVLink
cache must sustain a strictly higher QPS than the Pull-Data variant
(which ships whole adjacency lists for remote frontier nodes) and the
UVA baseline (which pays PCIe read amplification on every hop and
cold feature loads).
"""

import numpy as np

from repro.bench import fmt_table
from repro.core import RunConfig, build_system
from repro.serve import (
    ServeConfig,
    WorkloadConfig,
    make_workload,
    max_sustainable_qps,
    qps_sweep,
)

SYSTEMS = ("DSP", "DSP-Pull", "DGL-UVA")
LADDER = (100e3, 200e3, 400e3, 800e3, 1600e3)
SERVE = ServeConfig(batch_max=64, batch_timeout_s=0.3e-3,
                    queue_capacity=256, slo_s=1e-3)


def test_serve_knee(benchmark, emit):
    # 2048 requests are needed to drive DSP into saturation at the
    # ladder top; the whole sweep still runs in seconds, so quick mode
    # gets the same size
    n = 2048
    cfg = RunConfig(dataset="products", num_gpus=4)
    workload = None
    sweeps = {}
    for name in SYSTEMS:
        system = build_system(name, cfg)
        if workload is None:
            workload = make_workload(
                WorkloadConfig(num_requests=n, seed=7),
                np.arange(system.base_dataset.num_nodes),
            )
        sweeps[name] = qps_sweep(system, workload, LADDER, SERVE)

    knees = {name: max_sustainable_qps(pts) for name, pts in sweeps.items()}
    emit(fmt_table(
        "Serving knee: p99 latency (ms) by offered QPS, products, 4 GPUs "
        "(knee = max QPS with p99 <= 1ms, shed <= 1%)",
        [f"{q / 1e3:.0f}k" for q in LADDER] + ["knee"],
        [
            (name, [pts[i].report.p99 * 1e3 for i in range(len(LADDER))]
             + [f"{knees[name] / 1e3:.0f}k"])
            for name, pts in sweeps.items()
        ],
    ))

    for name, pts in sweeps.items():
        p99s = [p.report.p99 for p in pts]
        thru = [p.report.throughput_qps for p in pts]
        # latency degrades monotonically with offered load
        for lo, hi in zip(p99s, p99s[1:]):
            assert hi >= lo * 0.999, f"{name}: p99 not monotone"
        # throughput saturates: the last doubling of offered load
        # yields clearly less than double the completions per second
        assert thru[-1] < 2 * 0.9 * thru[-2], (
            f"{name}: throughput still scaling linearly at the ladder top"
        )
        # goodput only ever loses to throughput (SLO misses drop out)
        for p in pts:
            assert 0.0 <= p.report.goodput_qps <= p.report.throughput_qps

    # the headline: DSP sustains strictly more QPS at the same SLO
    assert knees["DSP"] > knees["DSP-Pull"], knees
    assert knees["DSP"] > knees["DGL-UVA"], knees
    # and the UVA baseline trails the partitioned designs badly
    assert knees["DGL-UVA"] < knees["DSP-Pull"], knees
