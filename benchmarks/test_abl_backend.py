"""Ablation: NCCL vs NVSHMEM communication backend (paper §3.2).

The paper chooses NCCL because NVSHMEM "can only handle GPUs with
direct NVLink connections while some GPU servers do not have a NVLink
mesh", and notes DSP's designs are orthogonal to the library.  We show
both halves: NVSHMEM shaves launch overhead where the mesh exists
(2 GPUs), and is structurally unavailable at 4+ GPUs on the DGX-1.
"""

import pytest

from repro.bench import fmt_table, quick_mode
from repro.core import RunConfig, build_system
from repro.utils import ConfigError


def test_ablation_comm_backend(benchmark, emit):
    dataset = "products" if quick_mode() else "papers"

    nccl = build_system(
        "DSP", RunConfig(dataset=dataset, num_gpus=2)
    ).run_epoch(max_batches=6, functional=False)
    shm = build_system(
        "DSP", RunConfig(dataset=dataset, num_gpus=2, comm_backend="nvshmem")
    ).run_epoch(max_batches=6, functional=False)

    emit(fmt_table(
        f"Ablation: comm backend on {dataset}, 2 GPUs (full mesh)",
        ["epoch (ms)", "sampling (ms)"],
        [
            ("NCCL", [nccl.epoch_time * 1e3, nccl.sample_time * 1e3]),
            ("NVSHMEM", [shm.epoch_time * 1e3, shm.sample_time * 1e3]),
        ],
    ))

    # lower launch overheads help, but modestly (designs are orthogonal)
    assert shm.sample_time <= nccl.sample_time
    assert shm.epoch_time <= nccl.epoch_time * 1.02

    # at 4 GPUs the DGX-1 quad ring has no 0-2 link: NVSHMEM must refuse
    with pytest.raises(ConfigError):
        build_system(
            "DSP",
            RunConfig(dataset=dataset, num_gpus=4, comm_backend="nvshmem"),
        )

    benchmark.pedantic(
        lambda: build_system(
            "DSP",
            RunConfig(dataset=dataset, num_gpus=2, comm_backend="nvshmem"),
        ).run_epoch(max_batches=2, functional=False),
        rounds=1, iterations=1,
    )
