"""Table 7: layer-wise sampling without replacement, FastGCN-CPU vs DSP.

Batch 1024, two layers with a budget of 1000 nodes each, 8 GPUs for
DSP.  FastGCN's TensorFlow implementation samples on the CPU and must
scan every candidate edge of the batch frontier; DSP distributes the
same scan across GPUs with Efraimidis-Spirakis keys and merges only the
top-n candidates (see repro.sampling.layerwise).
"""

import numpy as np
import pytest

from repro.bench import DATASETS, fmt_table, quick_mode
from repro.core import RunConfig
from repro.core.system import DSP
from repro.sampling import layerwise_sample_noreplace
from repro.sampling.frontier import next_frontier
from repro.sampling.ops import HostWork, OpTrace

PAPER = {"products": (37.5, 0.12), "papers": (489, 8.96), "friendster": (252000, 52.8)}

#: FastGCN's per-candidate cost multiplier vs our native CPU sampler:
#: TensorFlow graph construction + numpy scipy slicing per batch
FASTGCN_INEFFICIENCY = 8.0


def _times(dataset: str, batches: int = 3, budget: int = 1000):
    cfg = RunConfig(dataset=dataset, num_gpus=8, batch_size=128)
    dsp = DSP(cfg)
    engine = dsp.engine
    graph = dsp.data.graph
    deg = graph.degrees

    t_dsp = t_fastgcn = 0.0
    n_batches = dsp._global_batches()[:batches]
    for batch in n_batches:
        frontiers = dsp._assign_seeds(batch)
        for _layer in range(2):
            blocks, trace = layerwise_sample_noreplace(
                dsp.sampler, frontiers, budget=budget
            )
            t_dsp += engine.stage_time(trace)
            frontiers = [next_frontier(b) for b in blocks]

        # FastGCN on CPU: scan all candidate edges of the union frontier
        frontier = np.asarray(batch)
        for _layer in range(2):
            candidates = float(deg[frontier].sum())
            host = OpTrace()
            host.add(HostWork(
                np.array([candidates * FASTGCN_INEFFICIENCY]
                         + [0.0] * 7), kind="sample"))
            t_fastgcn += engine.stage_time(host)
            frontier = np.unique(
                np.concatenate([graph.neighbors(int(v)) for v in frontier[:64]])
            )[:budget]
    return t_fastgcn, t_dsp


def test_table7_layerwise(benchmark, emit):
    datasets = DATASETS[:1] if quick_mode() else DATASETS
    fast, dsp = [], []
    for ds in datasets:
        f, d = _times(ds)
        fast.append(f)
        dsp.append(d)

    rows = [
        ("FastGCN", [t * 1e3 for t in fast]),
        ("  paper(s)", [PAPER[ds][0] for ds in datasets]),
        ("DSP", [t * 1e3 for t in dsp]),
        ("  paper(s)", [PAPER[ds][1] for ds in datasets]),
    ]
    emit(fmt_table(
        "Table 7: layer-wise sampling w/o replacement (simulated ms; paper s)",
        list(datasets),
        rows,
    ))
    for f, d in zip(fast, dsp):
        assert d * 5 < f  # DSP is at least 5x faster (paper: 55x-4700x)

    benchmark.pedantic(lambda: _times(datasets[0], batches=1),
                       rounds=1, iterations=1)
