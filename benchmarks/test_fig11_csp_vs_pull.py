"""Figure 11: CSP (task push) vs Pull Data, biased sampling, 4 GPUs.

Pull Data must move whole adjacency + weight lists for remote frontier
nodes; CSP moves only frontier ids and sampled neighbours.  The paper
reports CSP cutting sampling time by up to 64%.
"""

import numpy as np
import pytest

from repro.bench import DATASETS, fmt_table, quick_mode
from repro.core import RunConfig
from repro.core.cost import CostEngine
from repro.core.system import DSP
from repro.hw import Cluster
from repro.sampling import CSPConfig, PullDataSampler


def _sampling_times(dataset: str, batches: int = 4):
    cfg = RunConfig(dataset=dataset, num_gpus=4, biased=True)
    dsp = DSP(cfg)  # biased=True attaches edge weights in _prepare
    pull = PullDataSampler(
        dsp.sampler.patches, dsp.sampler.part_offsets, seed=cfg.seed
    )
    engine = dsp.engine

    t_push = t_pull = 0.0
    for batch in dsp._global_batches()[:batches]:
        per_gpu = dsp._assign_seeds(batch)
        _, push_trace, _ = dsp.sampler.sample(per_gpu, dsp.csp_config)
        _, pull_trace, _ = pull.sample(per_gpu, dsp.csp_config)
        t_push += engine.stage_time(push_trace)
        t_pull += engine.stage_time(pull_trace)
    return t_push, t_pull


def test_fig11_csp_vs_pull(benchmark, emit):
    datasets = DATASETS[:1] if quick_mode() else DATASETS
    push, pull = [], []
    for ds in datasets:
        p, q = _sampling_times(ds)
        push.append(p)
        pull.append(q)

    emit(fmt_table(
        "Figure 11: biased sampling time, CSP vs Pull Data, 4 GPUs "
        "(simulated ms per measured batches)",
        list(datasets),
        [
            ("CSP", [t * 1e3 for t in push]),
            ("PullData", [t * 1e3 for t in pull]),
            ("saved", [f"{1 - a / b:.0%}" for a, b in zip(push, pull)]),
        ],
    ))
    for a, b in zip(push, pull):
        assert a < b  # CSP always wins
    # the biggest saving should be substantial (paper: up to 64%)
    threshold = 0.2 if quick_mode() else 0.35
    assert max(1 - a / b for a, b in zip(push, pull)) > threshold

    benchmark.pedantic(lambda: _sampling_times(datasets[0], batches=1),
                       rounds=1, iterations=1)
