"""Knee-QPS scaling with serving replicas (cluster router, affinity).

The headline property of replicated serving: under partition-affinity
routing every extra replica serves a strictly smaller slice of each
GPU patch's request stream, so the knee (max sustainable QPS at the
SLO) is monotonically non-decreasing in the replica count.  This
benchmark pins that curve.
"""

from repro.bench import fmt_table
from repro.cluster import knee_vs_replicas
from repro.core import RunConfig, build_system
from repro.serve import ServeConfig, WorkloadConfig, make_workload

REPLICAS = (1, 2, 4)
LADDER = (2000e3, 3200e3, 5000e3, 8000e3, 12800e3, 20000e3,
          32000e3, 51200e3)
SERVE = ServeConfig(batch_max=32, batch_timeout_s=0.3e-3,
                    queue_capacity=128, slo_s=1e-3)


def test_cluster_knee_scales_with_replicas(benchmark, emit):
    cfg = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16,
                    batch_size=8, fanout=(5, 3))
    system = build_system("DSP", cfg)
    workload = make_workload(WorkloadConfig(num_requests=1024, seed=7),
                             system.data.train_nodes)
    knees = knee_vs_replicas(system, workload, LADDER, REPLICAS,
                             policy="affinity", config=SERVE)

    emit(fmt_table(
        "Serving knee QPS by replica count, tiny, 2 GPUs/replica "
        "(affinity routing, knee = max QPS with p99 <= 1ms, shed <= 1%)",
        [f"R={r}" for r in REPLICAS],
        [("DSP", [f"{knees[r] / 1e6:.1f}M" for r in REPLICAS])],
    ))

    # the acceptance property: the knee never degrades as replicas are
    # added under partition-affinity routing
    for lo, hi in zip(REPLICAS, REPLICAS[1:]):
        assert knees[hi] >= knees[lo], knees
    # and doubling from one replica buys real capacity, not a tie
    assert knees[2] > knees[1], knees
    # every knee sits inside the ladder (the sweep actually saturated)
    assert knees[1] >= LADDER[0], knees

    benchmark.pedantic(
        lambda: knee_vs_replicas(system, workload, LADDER[:3], (2,),
                                 policy="affinity", config=SERVE),
        rounds=1, iterations=1,
    )
