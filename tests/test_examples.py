"""Smoke test: the quickstart example must stay runnable.

The heavier domain examples (compare_systems, capacity_planning, ...)
exercise paths already covered by the benchmark suite and take minutes,
so only the quickstart runs here.
"""

import runpy
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def test_quickstart_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "epoch" in out
    assert "NVLink" in out


def test_all_examples_importable():
    """Every example parses and imports (no stale APIs)."""
    import ast

    for path in sorted(EXAMPLES.glob("*.py")):
        source = path.read_text()
        tree = ast.parse(source)
        # must define main() and guard execution
        names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in names, f"{path.name} lacks main()"
        assert "__main__" in source, f"{path.name} lacks a __main__ guard"


def test_examples_have_docstrings():
    for path in sorted(EXAMPLES.glob("*.py")):
        first = path.read_text().lstrip()
        assert first.startswith('"""'), f"{path.name} lacks a docstring"
