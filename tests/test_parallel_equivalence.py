"""Parallel-vs-serial bit-equivalence: the executor's correctness contract.

``--workers N`` must change *which process* runs a simulation and
nothing else.  These tests pin that by comparing the exact exported
artifacts — sweep report JSON, compare metric dicts, and (under the
deterministic fake clock) the whole ``BENCH_perf.json`` payload — for
``workers`` in {1, 2, 4} on the products dataset.
"""

import json

import numpy as np
import pytest

from repro.bench.harness import compare_epochs
from repro.bench.perf import run_perf
from repro.core import RunConfig, build_system
from repro.core.metrics import metrics_dict
from repro.serve import ServeConfig, WorkloadConfig, make_workload, qps_sweep

WORKERS = (1, 2, 4)

CFG = RunConfig(dataset="products", num_gpus=4, hidden_dim=16,
                batch_size=8, fanout=(5, 3), seed=3)


def sweep_json(workers: int) -> str:
    """One products sweep -> canonical JSON, from a fresh system."""
    system = build_system("DSP", CFG)
    workload = make_workload(
        WorkloadConfig(num_requests=64, seed=1),
        np.arange(system.base_dataset.num_nodes),
    )
    points = qps_sweep(system, workload, [500.0, 2000.0],
                       ServeConfig(functional=False), workers=workers)
    return json.dumps(
        [{"qps": p.qps, "report": p.report.to_dict()} for p in points]
    )


class TestSweepEquivalence:
    def test_workers_do_not_change_sweep_json(self):
        serial = sweep_json(1)
        for n in WORKERS[1:]:
            assert sweep_json(n) == serial, f"workers={n} diverged"


class TestCompareEquivalence:
    def test_workers_do_not_change_compare_metrics(self):
        systems = ("PyG", "DGL-UVA", "DSP")
        serial = compare_epochs(systems, CFG, max_batches=2, workers=1)
        ref = json.dumps({n: metrics_dict(m) for n, m in serial.items()})
        for n in WORKERS[1:]:
            out = compare_epochs(systems, CFG, max_batches=2, workers=n)
            assert list(out) == list(systems)
            got = json.dumps({k: metrics_dict(m) for k, m in out.items()})
            assert got == ref, f"workers={n} diverged"


class TestPerfEquivalence:
    def test_workers_do_not_change_perf_payload(self):
        """Under the fake clock the payload is a pure function of the
        inputs, so the merged BENCH_perf.json must be byte-identical
        whichever process ran each benchmark."""
        benches = ["csp_layer", "feature_load", "sweep"]
        serial = json.dumps(
            run_perf(quick=True, benches=benches, workers=1, clock="fake")
        )
        for n in WORKERS[1:]:
            got = json.dumps(
                run_perf(quick=True, benches=benches, workers=n, clock="fake")
            )
            assert got == serial, f"workers={n} diverged"


class TestCrashPropagation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_bad_qps_surfaces_child_traceback(self, workers):
        from repro.utils import WorkerError

        system = build_system("DSP", CFG)
        workload = make_workload(
            WorkloadConfig(num_requests=16, seed=1),
            np.arange(system.base_dataset.num_nodes),
        )
        with pytest.raises(WorkerError) as err:
            qps_sweep(system, workload, [500.0, -1.0],
                      ServeConfig(functional=False), workers=workers)
        assert err.value.child_traceback  # the child's formatted stack
        assert "Traceback" in str(err.value)
