"""Popularity-drift workload generation and its serving contracts.

Satellite contracts: ``drift_phases == 1`` is the exact pre-drift
generator (bit-identical streams); drifting streams are deterministic
and move their hot set between phases; sweeps over drift workloads are
byte-identical across ``--workers`` settings, including the dynamic
cache policy's warmup and placement churn; and under drift the dynamic
policy matches or beats the static cache's hit rate.
"""

import json

import numpy as np
import pytest

from repro.core import RunConfig, build_system
from repro.serve import (
    ServeConfig,
    WorkloadConfig,
    make_workload,
    qps_sweep,
    serve_once,
)
from repro.utils import ConfigError

CANDIDATES = np.arange(500)


def workload(**kw):
    return make_workload(WorkloadConfig(**kw), CANDIDATES)


def hot_set(nodes: np.ndarray, top: int = 20) -> set:
    ids, counts = np.unique(nodes, return_counts=True)
    return set(ids[np.argsort(-counts)][:top].tolist())


class TestGenerator:
    def test_one_phase_is_the_pre_drift_stream(self):
        """drift_phases=1 (the default) must not perturb the RNG
        consumption of the original generator."""
        a = workload(num_requests=200, skew=1.2, seed=5)
        b = workload(num_requests=200, skew=1.2, seed=5, drift_phases=1)
        np.testing.assert_array_equal(a.nodes, b.nodes)
        np.testing.assert_array_equal(a.times, b.times)

    def test_drift_deterministic(self):
        a = workload(num_requests=300, skew=1.3, seed=2, drift_phases=3)
        b = workload(num_requests=300, skew=1.3, seed=2, drift_phases=3)
        np.testing.assert_array_equal(a.nodes, b.nodes)
        np.testing.assert_array_equal(a.times, b.times)

    def test_phases_move_the_hot_set(self):
        w = workload(num_requests=2000, skew=1.5, seed=0, drift_phases=2)
        first, second = w.nodes[:1000], w.nodes[1000:]
        overlap = hot_set(first) & hot_set(second)
        assert len(overlap) < 10  # re-permuted ranking: mostly disjoint

    def test_phase_sizes_cover_every_request(self):
        w = workload(num_requests=101, skew=1.0, seed=1, drift_phases=3)
        assert len(w.nodes) == 101
        assert np.isin(w.nodes, CANDIDATES).all()

    def test_uniform_drift(self):
        w = workload(num_requests=120, skew=0.0, seed=4, drift_phases=4)
        assert len(w.nodes) == 120

    def test_invalid_phases_rejected(self):
        with pytest.raises(ConfigError):
            workload(num_requests=10, drift_phases=0)


CACHE_BYTES = 50 * 16 * 4.0  # 50 rows/GPU on tiny (dim 16, fp32)
BASE = dict(dataset="tiny", num_gpus=2, hidden_dim=16, batch_size=8,
            fanout=(12,), feature_cache_bytes=CACHE_BYTES, seed=3)
DYNAMIC = dict(dynamic_cache=True, cache_window=2, cache_ewma=0.3,
               cache_prefetch=16)


def _drift_workload(system, requests=192):
    return make_workload(
        WorkloadConfig(num_requests=requests, skew=1.5, drift_phases=2,
                       seed=7),
        np.arange(system.base_dataset.num_nodes),
    )


def _hit_rate(system, wl, qps=2e6):
    before = dict(system.loader.totals)
    serve_once(system, wl, qps, ServeConfig(functional=False))
    d = {k: system.loader.totals[k] - before[k] for k in before}
    served = d["local"] + d["remote"] + d["cold"]
    return (d["local"] + d["remote"]) / max(served, 1)


class TestServingUnderDrift:
    def test_dynamic_hit_rate_at_least_static(self):
        static = build_system("DSP", RunConfig(**BASE))
        dynamic = build_system("DSP", RunConfig(**BASE, **DYNAMIC))
        wl = _drift_workload(static)
        warm = dynamic.numbering.old_to_new[wl.nodes[:48]]
        dynamic.loader.dynamic.warm(warm)
        assert _hit_rate(dynamic, wl) >= _hit_rate(static, wl)

    def test_sweep_byte_identical_across_workers(self):
        """Dynamic policy + drift workload + warmup: every sweep point
        is a pure function of the point, not of process placement."""
        system = build_system("DSP", RunConfig(**BASE, **DYNAMIC))
        wl = _drift_workload(system)
        warm = system.numbering.old_to_new[wl.nodes[:48]]
        blobs = {}
        for workers in (1, 2):
            fresh = build_system("DSP", RunConfig(**BASE, **DYNAMIC))
            points = qps_sweep(fresh, wl, [1000.0, 4000.0],
                               ServeConfig(functional=False),
                               workers=workers, metrics=True,
                               warm_nodes=warm)
            blobs[workers] = json.dumps(
                [p.report.to_dict() for p in points], sort_keys=True
            )
        assert blobs[1] == blobs[2]

    def test_defaults_off_matches_plain_config(self):
        """dynamic_cache=False + compress="none" (the defaults) serve
        byte-identically to a config that never mentions them."""
        plain = build_system("DSP", RunConfig(**BASE))
        explicit = build_system(
            "DSP", RunConfig(**BASE, dynamic_cache=False, compress="none")
        )
        wl = _drift_workload(plain)
        a = serve_once(plain, wl, 2000.0, ServeConfig())
        b = serve_once(explicit, wl, 2000.0, ServeConfig())
        assert a.to_dict() == b.to_dict()
