"""Tests for the open-loop serving workload generator."""

import numpy as np
import pytest

from repro.serve import WorkloadConfig, make_workload
from repro.utils import ConfigError

CANDIDATES = np.arange(500)


def workload(**kw):
    return make_workload(WorkloadConfig(**kw), CANDIDATES)


class TestArrivals:
    def test_poisson_times_sorted_and_positive(self):
        w = workload(num_requests=200, seed=3)
        reqs = w.requests(100.0)
        assert len(reqs) == 200
        arr = np.array([r.arrival for r in reqs])
        assert (np.diff(arr) >= 0).all()
        assert (arr >= 0).all()

    def test_qps_scales_arrivals(self):
        """Common random numbers: doubling QPS halves every arrival."""
        w = workload(num_requests=100, seed=1)
        a = np.array([r.arrival for r in w.requests(100.0)])
        b = np.array([r.arrival for r in w.requests(200.0)])
        np.testing.assert_allclose(b, a / 2)

    def test_poisson_rate_roughly_matches(self):
        w = workload(num_requests=2000, seed=0)
        arr = [r.arrival for r in w.requests(1000.0)]
        rate = len(arr) / arr[-1]
        assert rate == pytest.approx(1000.0, rel=0.15)

    @pytest.mark.parametrize("arrival", ["bursty", "diurnal"])
    def test_modulated_arrivals_sorted(self, arrival):
        w = workload(num_requests=300, arrival=arrival, seed=5)
        arr = np.array([r.arrival for r in w.requests(50.0)])
        assert len(arr) == 300
        assert (np.diff(arr) >= 0).all()

    def test_bursty_has_heavier_tail_than_poisson(self):
        """ON/OFF modulation concentrates arrivals: the shortest
        inter-arrival quantile shrinks vs plain Poisson."""
        p = workload(num_requests=2000, seed=9)
        b = workload(num_requests=2000, arrival="bursty", seed=9,
                     burst_factor=8.0, burst_fraction=0.1)
        gaps_p = np.diff([r.arrival for r in p.requests(100.0)])
        gaps_b = np.diff([r.arrival for r in b.requests(100.0)])
        assert np.percentile(gaps_b, 25) < np.percentile(gaps_p, 25)

    def test_determinism(self):
        a = workload(num_requests=64, seed=11)
        b = workload(num_requests=64, seed=11)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.nodes, b.nodes)


class TestPopularity:
    def test_nodes_drawn_from_candidates(self):
        w = workload(num_requests=400, seed=2)
        assert set(w.nodes) <= set(CANDIDATES.tolist())

    def test_skew_concentrates_mass(self):
        flat = workload(num_requests=3000, skew=0.0, seed=4)
        hot = workload(num_requests=3000, skew=1.5, seed=4)

        def top_share(w):
            _, counts = np.unique(w.nodes, return_counts=True)
            counts = np.sort(counts)[::-1]
            return counts[:10].sum() / counts.sum()

        assert top_share(hot) > 2 * top_share(flat)


class TestValidation:
    def test_bad_arrival_kind(self):
        with pytest.raises(ConfigError):
            workload(arrival="uniform")

    def test_burst_mass_must_leave_off_rate_positive(self):
        with pytest.raises(ConfigError):
            workload(arrival="bursty", burst_factor=10.0, burst_fraction=0.1)

    def test_amplitude_bounds(self):
        with pytest.raises(ConfigError):
            workload(arrival="diurnal", amplitude=1.0)

    def test_num_requests_positive(self):
        with pytest.raises(ConfigError):
            workload(num_requests=0)

    def test_qps_positive(self):
        w = workload(num_requests=8)
        with pytest.raises(ConfigError):
            w.requests(0.0)
