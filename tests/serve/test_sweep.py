"""Tests for the QPS sweep driver and the saturation-knee picker."""

import numpy as np
import pytest

from repro.core import RunConfig, build_system
from repro.serve import (
    ServeConfig,
    SweepPoint,
    WorkloadConfig,
    make_workload,
    max_sustainable_qps,
    qps_sweep,
)
from repro.serve.stats import build_report
from repro.serve.stats import RequestRecord
from repro.utils import ConfigError

CFG = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16, batch_size=8,
                fanout=(5, 3), seed=3)


def point(qps, p99, shed_rate=0.0, slo_s=0.01):
    """A synthetic sweep point with the given p99/shed."""
    recs = []
    for i in range(100):
        r = RequestRecord(rid=i, node=i, arrival=i / qps)
        if i < int(100 * shed_rate):
            r.shed = True
        else:
            r.done = r.arrival + p99
        recs.append(r)
    return SweepPoint(qps=qps, report=build_report("X", qps, slo_s, recs, 10))


class TestSweep:
    def test_points_sorted_and_complete(self):
        system = build_system("DSP", CFG)
        w = make_workload(WorkloadConfig(num_requests=32, seed=1),
                          np.arange(system.base_dataset.num_nodes))
        pts = qps_sweep(system, w, [4000.0, 1000.0], ServeConfig())
        assert [p.qps for p in pts] == [1000.0, 4000.0]
        assert all(p.report.completed > 0 for p in pts)

    def test_sweep_is_repeatable(self):
        """Sampler RNGs are reset per point: sweeping twice on the
        same system instance gives identical reports."""
        system = build_system("DSP", CFG)
        w = make_workload(WorkloadConfig(num_requests=32, seed=1),
                          np.arange(system.base_dataset.num_nodes))
        a = qps_sweep(system, w, [2000.0], ServeConfig())
        b = qps_sweep(system, w, [2000.0], ServeConfig())
        assert a[0].report.to_dict() == b[0].report.to_dict()

    def test_empty_ladder_rejected(self):
        system = build_system("DSP", CFG)
        w = make_workload(WorkloadConfig(num_requests=8),
                          np.arange(system.base_dataset.num_nodes))
        with pytest.raises(ConfigError):
            qps_sweep(system, w, [], ServeConfig())


class TestKnee:
    def test_largest_qualifying_point_wins(self):
        pts = [point(100, 0.002), point(200, 0.005), point(400, 0.02)]
        assert max_sustainable_qps(pts, slo_s=0.01) == 200

    def test_shed_disqualifies(self):
        pts = [point(100, 0.002), point(200, 0.002, shed_rate=0.2)]
        assert max_sustainable_qps(pts, slo_s=0.01) == 100
        assert max_sustainable_qps(pts, slo_s=0.01, shed_tol=0.5) == 200

    def test_no_qualifying_point(self):
        assert max_sustainable_qps([point(100, 0.5)], slo_s=0.01) == 0.0

    def test_defaults_to_report_slo(self):
        pts = [point(100, 0.002, slo_s=0.001)]
        assert max_sustainable_qps(pts) == 0.0  # 2ms p99 > 1ms SLO
        assert max_sustainable_qps(pts, slo_s=0.01) == 100
