"""Tests for the serving pipeline (GNNServer) on the tiny dataset."""

import numpy as np
import pytest

import repro.obs.tracer as tracer_mod
from repro.core import RunConfig, build_system
from repro.obs import Tracer
from repro.serve import (
    GNNServer,
    ServeConfig,
    WorkloadConfig,
    make_workload,
    serve_once,
)
from repro.serve.stats import STAGE_NAMES, build_report
from repro.utils import ConfigError

CFG = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16, batch_size=8,
                fanout=(5, 3), seed=3)


@pytest.fixture(scope="module")
def dsp():
    return build_system("DSP", CFG)


@pytest.fixture(scope="module")
def workload(dsp):
    return make_workload(
        WorkloadConfig(num_requests=48, seed=7),
        np.arange(dsp.base_dataset.num_nodes),
    )


class TestServeRun:
    def test_accounting_adds_up(self, dsp, workload):
        rep = serve_once(dsp, workload, 2000.0, ServeConfig())
        assert rep.offered == len(workload)
        assert rep.completed + rep.shed == rep.offered
        assert rep.completed > 0
        assert rep.p50 <= rep.p95 <= rep.p99 <= rep.max_latency
        assert 0.0 < rep.throughput_qps
        assert rep.goodput_qps <= rep.throughput_qps
        assert set(rep.stage_means) == set(STAGE_NAMES)
        assert all(v >= 0 for v in rep.stage_means.values())

    def test_latency_dominates_stage_sum(self, dsp, workload):
        """Stage decomposition never exceeds the end-to-end latency
        (inter-stage queue waits are the only unattributed time)."""
        rep = serve_once(dsp, workload, 2000.0, ServeConfig())
        stage_sum = sum(rep.stage_means.values())
        assert stage_sum <= rep.mean_latency * (1 + 1e-9)
        assert stage_sum >= 0.5 * rep.mean_latency

    def test_deterministic_under_fixed_seed(self, dsp, workload):
        """Same system, workload and QPS => bit-identical reports."""
        a = serve_once(dsp, workload, 3000.0, ServeConfig())
        b = serve_once(dsp, workload, 3000.0, ServeConfig())
        assert a.to_dict() == b.to_dict()

    def test_functional_reports_accuracy(self, dsp, workload):
        rep = serve_once(dsp, workload, 2000.0,
                         ServeConfig(functional=True))
        assert 0.0 <= rep.accuracy <= 1.0

    def test_cost_only_skips_accuracy(self, dsp, workload):
        rep = serve_once(dsp, workload, 2000.0, ServeConfig())
        assert np.isnan(rep.accuracy)

    def test_routes_to_patch_owner(self, dsp):
        server = GNNServer(dsp)
        nodes = np.arange(dsp.base_dataset.num_nodes)
        for node in nodes[:: len(nodes) // 16]:
            seed = server.map_seed(int(node))
            gpu = server.route(None, seed)
            assert gpu == int(dsp.sampler.owner_of(np.array([seed]))[0])

    def test_sheds_under_overload(self, dsp, workload):
        """A tiny admission bound under a compressed arrival burst
        must shed, and shed requests never complete."""
        rep = serve_once(
            dsp, workload, 2e6,
            ServeConfig(batch_max=2, queue_capacity=2, pipeline_depth=1),
        )
        assert rep.shed > 0
        assert rep.shed_rate == pytest.approx(rep.shed / rep.offered)
        assert rep.completed + rep.shed == rep.offered

    def test_empty_request_list_rejected(self, dsp):
        with pytest.raises(ConfigError):
            GNNServer(dsp).run([])

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ServeConfig(slo_s=0.0)
        with pytest.raises(ConfigError):
            ServeConfig(pipeline_depth=0)
        with pytest.raises(ConfigError):
            ServeConfig(comm_channels=0)


class TestBaselinesServe:
    @pytest.mark.parametrize("name", ["DSP-Pull", "DGL-UVA"])
    def test_other_systems_complete(self, name, workload):
        system = build_system(name, CFG)
        rep = serve_once(system, workload, 2000.0, ServeConfig())
        assert rep.completed + rep.shed == rep.offered
        assert rep.completed > 0

    def test_same_workload_comparable(self, dsp, workload):
        """The same request stream is served by every system: offered
        counts and arrival spans agree across systems."""
        other = build_system("DGL-UVA", CFG)
        a = serve_once(dsp, workload, 1500.0, ServeConfig())
        b = serve_once(other, workload, 1500.0, ServeConfig())
        assert a.offered == b.offered


class TestServeTracing:
    def test_spans_and_counters_emitted(self, dsp, workload):
        tr = Tracer()
        serve_once(dsp, workload, 2000.0, ServeConfig(), tracer=tr)
        cats = {ev.cat for ev in tr.spans()}
        assert {"sample", "load", "compute"} <= cats
        closes = [ev for ev in tr.events
                  if isinstance(ev, tracer_mod.InstantEvent)
                  and ev.name == "batch-close"]
        assert closes
        depths = [p for p in tr.counters() if "depth" in p.values]
        assert depths
        # op spans carry gpu/stage/batch tags
        op = next(ev for ev in tr.spans(cat="sample"))
        assert set(op.args) >= {"gpu", "stage", "batch"}

    def test_tracing_does_not_change_the_simulation(self, dsp, workload):
        plain = serve_once(dsp, workload, 2000.0, ServeConfig())
        traced = serve_once(dsp, workload, 2000.0, ServeConfig(),
                            tracer=Tracer())
        assert traced.to_dict() == plain.to_dict()

    def test_untraced_run_allocates_no_events(self, dsp, workload,
                                              monkeypatch):
        """Zero-cost-off: with no tracer attached, not one event object
        (nor a Tracer) is constructed during a serving run."""
        def boom(*a, **kw):
            raise AssertionError("trace event allocated without a tracer")

        for cls in ("SpanEvent", "InstantEvent", "CounterEvent", "Tracer"):
            monkeypatch.setattr(tracer_mod, cls, boom)
        monkeypatch.setattr(Tracer, "span", boom)
        monkeypatch.setattr(Tracer, "instant", boom)
        monkeypatch.setattr(Tracer, "counter", boom)
        rep = serve_once(dsp, workload, 2000.0, ServeConfig())
        assert rep.completed > 0


class TestReportMath:
    def _records(self):
        from repro.serve.stats import RequestRecord

        recs = []
        for i in range(10):
            r = RequestRecord(rid=i, node=i, arrival=i * 0.01)
            r.done = r.arrival + (0.005 if i < 9 else 0.5)
            r.stages = {s: 0.001 for s in STAGE_NAMES}
            recs.append(r)
        recs[3].shed = True
        recs[3].done = float("nan")
        return recs

    def test_build_report_counts(self):
        rep = build_report("X", 100.0, 0.01, self._records(), num_batches=4)
        assert rep.offered == 10
        assert rep.shed == 1
        assert rep.completed == 9
        assert rep.shed_rate == pytest.approx(0.1)
        # 8 of 9 completions are within the 10ms SLO
        assert rep.slo_attainment == pytest.approx(8 / 10)
        assert rep.goodput_qps < rep.throughput_qps
        assert rep.mean_batch_size == pytest.approx(9 / 4)

    def test_to_dict_units(self):
        rep = build_report("X", 100.0, 0.01, self._records(), num_batches=4)
        d = rep.to_dict()
        assert d["slo_ms"] == pytest.approx(10.0)
        assert d["latency_ms"]["p50"] == pytest.approx(rep.p50 * 1e3)
        assert d["accuracy"] is None  # NaN scrubbed for JSON
