"""Tests for the per-GPU dynamic batcher (max-size / max-wait)."""

import pytest

from repro.engine import Simulator
from repro.engine.simulator import Timeout
from repro.serve.batcher import AdmissionBatcher, BatcherConfig
from repro.serve.workload import Request
from repro.utils import ConfigError, ReproError


def harness(offers, config, consume_delay=0.0, hold=0.0):
    """Drive a batcher with timed ``offers``; collect closed batches.

    ``hold`` keeps the stream open that long after the last offer (so
    timeout closes can be observed before the end-of-stream drain).
    Returns (batches, shed, close_times) where ``batches`` are lists of
    rids in close order.
    """
    sim = Simulator()
    b = AdmissionBatcher(sim, 0, config)
    shed = []

    def arrivals():
        for req in offers:
            if req.arrival > sim.now:
                yield Timeout(req.arrival - sim.now)
            if not b.offer(req):
                shed.append(req.rid)
        if hold:
            yield Timeout(hold)
        b.close()

    batches, closes = [], []

    def consumer():
        while True:
            got = yield b.next_batch()
            if got is None:
                return
            batches.append([r.rid for r in got])
            closes.append(sim.now)
            if consume_delay:
                yield Timeout(consume_delay)

    sim.spawn(arrivals(), name="arrivals")
    sim.spawn(consumer(), name="consumer")
    sim.run()
    return batches, shed, closes


def reqs(arrivals):
    return [Request(rid=i, node=i, arrival=t)
            for i, t in enumerate(arrivals)]


class TestClosing:
    def test_closes_full_at_batch_max(self):
        """Simultaneous arrivals beyond batch_max split into full
        batches immediately, no timeout wait."""
        batches, shed, closes = harness(
            reqs([0.0] * 7), BatcherConfig(batch_max=3, timeout_s=1.0)
        )
        assert [len(b) for b in batches] == [3, 3, 1]
        assert shed == []
        assert closes[0] == 0.0 and closes[1] == 0.0

    def test_closes_on_timeout(self):
        """A lone request waits exactly timeout_s, then closes."""
        batches, _, closes = harness(
            reqs([1.0]), BatcherConfig(batch_max=8, timeout_s=0.25),
            hold=5.0,
        )
        assert batches == [[0]]
        assert closes[0] == pytest.approx(1.25)

    def test_timeout_measured_from_oldest(self):
        """Later arrivals do not extend the oldest request's deadline."""
        batches, _, closes = harness(
            reqs([0.0, 0.2, 0.4]), BatcherConfig(batch_max=8, timeout_s=0.5),
            hold=5.0,
        )
        assert batches == [[0, 1, 2]]
        assert closes[0] == pytest.approx(0.5)

    def test_fifo_order_preserved(self):
        batches, _, _ = harness(
            reqs([0.0, 0.1, 0.2, 0.3]), BatcherConfig(batch_max=2,
                                                      timeout_s=10.0)
        )
        assert batches == [[0, 1], [2, 3]]

    def test_close_drains_partial_batch(self):
        """End of stream flushes whatever is pending without waiting
        for the timeout."""
        batches, _, closes = harness(
            reqs([0.0]), BatcherConfig(batch_max=8, timeout_s=100.0)
        )
        assert batches == [[0]]
        assert closes[0] == pytest.approx(0.0)


class TestShedding:
    def test_sheds_beyond_capacity(self):
        """Simultaneous arrivals beyond the admission bound are
        dropped, not queued (all ten land before the consumer runs)."""
        batches, shed, _ = harness(
            reqs([0.0] * 10),
            BatcherConfig(batch_max=4, timeout_s=1.0, queue_capacity=4),
            consume_delay=50.0,
        )
        assert shed == [4, 5, 6, 7, 8, 9]
        assert sum(len(b) for b in batches) == 4

    def test_no_shed_when_consumer_keeps_up(self):
        _, shed, _ = harness(
            reqs([i * 0.1 for i in range(20)]),
            BatcherConfig(batch_max=4, timeout_s=0.05, queue_capacity=4),
        )
        assert shed == []


class TestProtocol:
    def test_single_consumer_enforced(self):
        sim = Simulator()
        b = AdmissionBatcher(sim, 0, BatcherConfig())

        def consumer():
            yield b.next_batch()

        sim.spawn(consumer(), name="c1")
        sim.spawn(consumer(), name="c2")
        with pytest.raises(ReproError, match="one consumer"):
            sim.run()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            BatcherConfig(batch_max=0)
        with pytest.raises(ConfigError):
            BatcherConfig(timeout_s=-1.0)
        with pytest.raises(ConfigError):
            BatcherConfig(queue_capacity=0)

    def test_zero_timeout_closes_immediately(self):
        """timeout_s=0 degenerates to no batching across arrivals."""
        batches, _, _ = harness(
            reqs([0.0, 0.5, 1.0]), BatcherConfig(batch_max=8, timeout_s=0.0)
        )
        assert batches == [[0], [1], [2]]
