"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.graph import CSRGraph
from repro.utils import ReproError


def small_graph(weighted: bool = False) -> CSRGraph:
    # edges (src -> dst): dst's adjacency list holds src
    src = np.array([1, 2, 0, 2, 3, 0])
    dst = np.array([0, 0, 1, 1, 2, 3])
    w = np.arange(1.0, 7.0, dtype=np.float32) if weighted else None
    return CSRGraph.from_edges(src, dst, num_nodes=4, edge_weights=w)


class TestConstruction:
    def test_from_edges_basic(self):
        g = small_graph()
        assert g.num_nodes == 4
        assert g.num_edges == 6
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert sorted(g.neighbors(1).tolist()) == [0, 2]
        assert g.neighbors(2).tolist() == [3]
        assert g.neighbors(3).tolist() == [0]

    def test_degrees(self):
        g = small_graph()
        assert g.degrees.tolist() == [2, 2, 1, 1]
        assert g.average_degree == pytest.approx(1.5)

    def test_isolated_nodes_allowed(self):
        g = CSRGraph.from_edges(np.array([0]), np.array([1]), num_nodes=5)
        assert g.num_nodes == 5
        assert g.degrees.tolist() == [0, 1, 0, 0, 0]

    def test_empty_graph(self):
        g = CSRGraph.from_edges(np.array([]), np.array([]), num_nodes=3)
        assert g.num_nodes == 3
        assert g.num_edges == 0

    def test_dedup_removes_parallel_edges(self):
        src = np.array([1, 1, 1])
        dst = np.array([0, 0, 0])
        g = CSRGraph.from_edges(src, dst, num_nodes=2)
        assert g.num_edges == 1
        g2 = CSRGraph.from_edges(src, dst, num_nodes=2, dedup=False)
        assert g2.num_edges == 3

    def test_self_loops_kept(self):
        g = CSRGraph.from_edges(np.array([0]), np.array([0]), num_nodes=1)
        assert g.neighbors(0).tolist() == [0]

    def test_rejects_out_of_range(self):
        with pytest.raises(ReproError):
            CSRGraph.from_edges(np.array([0]), np.array([5]), num_nodes=2)
        with pytest.raises(ReproError):
            CSRGraph.from_edges(np.array([-1]), np.array([0]), num_nodes=2)

    def test_rejects_bad_indptr(self):
        with pytest.raises(ReproError):
            CSRGraph(indptr=np.array([1, 2]), indices=np.array([0]))
        with pytest.raises(ReproError):
            CSRGraph(indptr=np.array([0, 2, 1]), indices=np.array([0, 1]))
        with pytest.raises(ReproError):
            CSRGraph(indptr=np.array([0, 3]), indices=np.array([0]))

    def test_rejects_negative_weights(self):
        with pytest.raises(ReproError):
            CSRGraph(
                indptr=np.array([0, 1]),
                indices=np.array([0]),
                edge_weights=np.array([-1.0]),
            )

    def test_weight_shape_mismatch(self):
        with pytest.raises(ReproError):
            CSRGraph(
                indptr=np.array([0, 1]),
                indices=np.array([0]),
                edge_weights=np.array([1.0, 2.0]),
            )


class TestWeights:
    def test_neighbor_weights(self):
        g = small_graph(weighted=True)
        assert g.neighbor_weights(2).tolist() == [5.0]
        assert g.neighbor_weights(3).tolist() == [6.0]

    def test_unweighted_returns_none(self):
        assert small_graph().neighbor_weights(0) is None

    def test_with_node_weights_materializes_on_edges(self):
        g = small_graph()
        node_w = np.array([10.0, 20.0, 30.0, 40.0], dtype=np.float32)
        gw = g.with_node_weights(node_w)
        # adjacency of 0 is [1, 2] -> weights of nodes 1 and 2
        got = dict(zip(gw.neighbors(0).tolist(), gw.neighbor_weights(0).tolist()))
        assert got == {1: 20.0, 2: 30.0}

    def test_with_node_weights_wrong_shape(self):
        with pytest.raises(ReproError):
            small_graph().with_node_weights(np.ones(3))


class TestTransforms:
    def test_reverse_twice_is_identity(self):
        g = small_graph()
        rr = g.reverse().reverse()
        assert rr.num_edges == g.num_edges
        for v in range(g.num_nodes):
            assert sorted(rr.neighbors(v).tolist()) == sorted(g.neighbors(v).tolist())

    def test_reverse_swaps_direction(self):
        g = small_graph()
        r = g.reverse()
        # edge 1->0 in original means 0's adjacency holds 1;
        # after reversing, 1's adjacency holds 0.
        assert 0 in r.neighbors(1).tolist()

    def test_induced_subgraph(self):
        g = small_graph()
        sub, nodes = g.induced_subgraph(np.array([0, 1, 2]))
        assert nodes.tolist() == [0, 1, 2]
        assert sub.num_nodes == 3
        # edge 3->2 dropped (node 3 excluded); 0's neighbors {1,2} kept
        assert sorted(sub.neighbors(0).tolist()) == [1, 2]
        assert sub.neighbors(2).tolist() == []

    def test_permute_preserves_structure(self):
        g = small_graph()
        perm = np.array([2, 0, 3, 1])  # new id of old node v
        p = g.permute(perm)
        assert p.num_edges == g.num_edges
        for old in range(4):
            expect = sorted(perm[u] for u in g.neighbors(old))
            assert sorted(p.neighbors(perm[old]).tolist()) == expect

    def test_permute_rejects_non_permutation(self):
        g = small_graph()
        with pytest.raises(ReproError):
            g.permute(np.array([0, 0, 1, 2]))
        with pytest.raises(ReproError):
            g.permute(np.array([0, 1, 2]))

    def test_topology_nbytes_positive(self):
        g = small_graph(weighted=True)
        unweighted = small_graph()
        assert g.topology_nbytes > unweighted.topology_nbytes > 0
