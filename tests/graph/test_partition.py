"""Tests for graph partitioning."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    Partition,
    dcsbm_graph,
    edge_cut,
    hash_partition,
    ldg_partition,
    metis_partition,
    range_partition,
)
from repro.utils import PartitionError


class TestPartitionType:
    def test_part_sizes(self):
        p = Partition(np.array([0, 1, 1, 0, 2]), 3)
        assert p.part_sizes.tolist() == [2, 2, 1]
        assert p.nodes_of(1).tolist() == [1, 2]

    def test_imbalance(self):
        p = Partition(np.array([0, 0, 0, 1]), 2)
        assert p.imbalance() == pytest.approx(1.5)

    def test_rejects_out_of_range(self):
        with pytest.raises(PartitionError):
            Partition(np.array([0, 3]), 2)
        with pytest.raises(PartitionError):
            Partition(np.array([0]), 0)


class TestBaselinePartitioners:
    def test_hash_balanced(self):
        p = hash_partition(1000, 8)
        sizes = p.part_sizes
        assert sizes.sum() == 1000
        assert sizes.max() - sizes.min() <= 1

    def test_range_contiguous(self):
        p = range_partition(10, 3)
        a = p.assignment
        assert (np.diff(a) >= 0).all()
        assert p.part_sizes.sum() == 10

    def test_hash_deterministic(self):
        assert np.array_equal(hash_partition(100, 4, seed=1).assignment,
                              hash_partition(100, 4, seed=1).assignment)


class TestEdgeCut:
    def test_known_cut(self):
        # two triangles joined by a single edge
        src = np.array([0, 1, 2, 3, 4, 5, 0])
        dst = np.array([1, 2, 0, 4, 5, 3, 3])
        g = CSRGraph.from_edges(src, dst, num_nodes=6)
        p = Partition(np.array([0, 0, 0, 1, 1, 1]), 2)
        assert edge_cut(g, p) == 1

    def test_single_part_zero_cut(self):
        g = dcsbm_graph(200, 2000, rng=0)
        p = Partition(np.zeros(200, dtype=np.int64), 1)
        assert edge_cut(g, p) == 0

    def test_mismatched_sizes(self):
        g = dcsbm_graph(200, 2000, rng=0)
        with pytest.raises(PartitionError):
            edge_cut(g, Partition(np.zeros(100, dtype=np.int64), 1))


class TestMetisPartition:
    @pytest.fixture(scope="class")
    def graph(self):
        return dcsbm_graph(3000, 45_000, num_communities=8, intra_prob=0.9, rng=5)

    def test_valid_and_balanced(self, graph):
        p = metis_partition(graph, 4, rng=0)
        assert p.num_parts == 4
        assert p.num_nodes == graph.num_nodes
        assert p.imbalance() <= 1.10  # small slack over the 1.05 target

    def test_beats_hash_on_community_graph(self, graph):
        """The whole point: multilevel partitioning must exploit locality."""
        metis_cut = edge_cut(graph, metis_partition(graph, 4, rng=0))
        hash_cut = edge_cut(graph, hash_partition(graph.num_nodes, 4))
        assert metis_cut < 0.6 * hash_cut

    def test_single_part(self, graph):
        p = metis_partition(graph, 1)
        assert (p.assignment == 0).all()

    def test_num_parts_validation(self, graph):
        with pytest.raises(PartitionError):
            metis_partition(graph, 0)
        small = dcsbm_graph(10, 30, num_communities=2, rng=0)
        with pytest.raises(PartitionError):
            metis_partition(small, 20)

    def test_deterministic_given_seed(self, graph):
        a = metis_partition(graph, 4, rng=42)
        b = metis_partition(graph, 4, rng=42)
        assert np.array_equal(a.assignment, b.assignment)

    def test_all_parts_nonempty(self, graph):
        p = metis_partition(graph, 8, rng=1)
        assert (p.part_sizes > 0).all()

    def test_disconnected_graph(self):
        """Partitioning must not fail on graphs with isolated nodes."""
        src = np.array([0, 1])
        dst = np.array([1, 0])
        g = CSRGraph.from_edges(src, dst, num_nodes=300)
        p = metis_partition(g, 4, rng=0)
        assert p.num_nodes == 300
        assert p.imbalance() <= 1.2


class TestLDGPartition:
    @pytest.fixture(scope="class")
    def graph(self):
        return dcsbm_graph(3000, 45_000, num_communities=8, intra_prob=0.9, rng=5)

    def test_valid_and_balanced(self, graph):
        p = ldg_partition(graph, 4, rng=0)
        assert p.num_nodes == graph.num_nodes
        assert (p.part_sizes > 0).all()
        assert p.imbalance() <= 1.10

    def test_quality_between_metis_and_hash(self, graph):
        """Streaming beats hash clearly; multilevel beats streaming."""
        ldg = edge_cut(graph, ldg_partition(graph, 4, rng=0))
        metis = edge_cut(graph, metis_partition(graph, 4, rng=0))
        hashed = edge_cut(graph, hash_partition(graph.num_nodes, 4))
        assert ldg < 0.7 * hashed
        assert metis <= ldg * 1.1

    def test_deterministic(self, graph):
        a = ldg_partition(graph, 4, rng=3)
        b = ldg_partition(graph, 4, rng=3)
        assert np.array_equal(a.assignment, b.assignment)

    def test_validation(self, graph):
        with pytest.raises(PartitionError):
            ldg_partition(graph, 0)
        small = dcsbm_graph(10, 30, num_communities=2, rng=0)
        with pytest.raises(PartitionError):
            ldg_partition(small, 50)

    def test_dsp_runs_with_ldg(self):
        from repro.core import RunConfig, build_system

        cfg = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16,
                        batch_size=8, fanout=(4, 3), partitioner="ldg")
        m = build_system("DSP", cfg).run_epoch(max_batches=2,
                                               functional=False)
        assert m.epoch_time > 0
