"""Tests for partition-based node renumbering."""

import numpy as np
import pytest

from repro.graph import (
    dcsbm_graph,
    hash_partition,
    metis_partition,
    renumber_by_partition,
)
from repro.utils import PartitionError


@pytest.fixture(scope="module")
def setting():
    graph = dcsbm_graph(800, 12_000, num_communities=4, rng=9)
    part = metis_partition(graph, 4, rng=0)
    new_graph, new_part, numbering = renumber_by_partition(graph, part)
    return graph, part, new_graph, new_part, numbering


class TestNumbering:
    def test_roundtrip(self, setting):
        _, _, _, _, nb = setting
        ids = np.arange(nb.num_nodes)
        assert np.array_equal(nb.old_to_new[nb.new_to_old], ids)
        assert np.array_equal(nb.new_to_old[nb.old_to_new], ids)

    def test_parts_are_consecutive_ranges(self, setting):
        _, _, _, new_part, nb = setting
        a = new_part.assignment
        assert (np.diff(a) >= 0).all()  # sorted by part == consecutive ranges
        for p in range(nb.num_parts):
            lo, hi = nb.part_offsets[p], nb.part_offsets[p + 1]
            assert (a[lo:hi] == p).all()

    def test_owner_lookup_is_range_check(self, setting):
        _, _, _, new_part, nb = setting
        ids = np.arange(nb.num_nodes)
        assert np.array_equal(nb.owner_of(ids), new_part.assignment)

    def test_local_global_roundtrip(self, setting):
        _, _, _, _, nb = setting
        for p in range(nb.num_parts):
            size = nb.part_size(p)
            local = np.arange(size)
            glob = nb.to_global(p, local)
            assert np.array_equal(nb.owner_of(glob), np.full(size, p))
            assert np.array_equal(nb.to_local(glob), local)

    def test_to_global_bounds(self, setting):
        _, _, _, _, nb = setting
        with pytest.raises(PartitionError):
            nb.to_global(0, np.array([nb.part_size(0)]))

    def test_structure_preserved(self, setting):
        graph, _, new_graph, _, nb = setting
        assert new_graph.num_edges == graph.num_edges
        rng = np.random.default_rng(0)
        for old in rng.integers(0, graph.num_nodes, size=20):
            expect = sorted(nb.old_to_new[graph.neighbors(old)].tolist())
            got = sorted(new_graph.neighbors(nb.old_to_new[old]).tolist())
            assert got == expect

    def test_partition_sizes_preserved(self, setting):
        _, part, _, new_part, _ = setting
        assert np.array_equal(
            np.sort(part.part_sizes), np.sort(new_part.part_sizes)
        )

    def test_mismatched_partition_rejected(self, setting):
        graph, *_ = setting
        with pytest.raises(PartitionError):
            renumber_by_partition(graph, hash_partition(graph.num_nodes + 1, 2))
