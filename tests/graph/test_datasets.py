"""Tests for the synthetic datasets."""

import numpy as np
import pytest

from repro.graph import DATASET_SPECS, load_dataset
from repro.graph.reorder import renumber_by_partition
from repro.graph.partition import hash_partition
from repro.utils import ConfigError


class TestSpecs:
    def test_paper_datasets_present(self):
        assert {"products", "papers", "friendster"} <= set(DATASET_SPECS)

    def test_average_degrees_match_paper_shape(self):
        """Table 3: products 50.5, papers 28.8, friendster 54.5."""
        for name, target in [("products", 50.5), ("papers", 28.8), ("friendster", 54.5)]:
            spec = DATASET_SPECS[name]
            avg = spec.num_edges / spec.num_nodes
            assert avg == pytest.approx(target, rel=0.2)

    def test_feature_dims_match_paper(self):
        assert DATASET_SPECS["products"].feature_dim == 100
        assert DATASET_SPECS["papers"].feature_dim == 128
        assert DATASET_SPECS["friendster"].feature_dim == 256

    def test_friendster_features_dominate_topology(self):
        """Table 3: for Friendster the feature bytes exceed topology bytes."""
        ds = load_dataset("tiny")  # cheap sanity of the property accessor
        assert ds.feature_nbytes == ds.features.nbytes
        f = DATASET_SPECS["friendster"]
        topo_bytes = f.num_edges * 8
        assert f.feature_nbytes > 0.5 * topo_bytes


class TestLoading:
    def test_tiny_loads(self):
        ds = load_dataset("tiny")
        assert ds.num_nodes == 1000
        assert ds.features.shape == (1000, 16)
        assert ds.features.dtype == np.float32
        assert ds.labels.shape == (1000,)
        assert ds.num_classes == 4

    def test_cached(self):
        assert load_dataset("tiny") is load_dataset("tiny")

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            load_dataset("nope")

    def test_splits_disjoint(self):
        ds = load_dataset("tiny")
        train, val, test = set(ds.train_nodes), set(ds.val_nodes), set(ds.test_nodes)
        assert not (train & val) and not (train & test) and not (val & test)
        assert len(train) > 0 and len(val) > 0 and len(test) > 0

    def test_labels_correlate_with_features(self):
        """Nearest-centroid on features must beat random guessing by a lot."""
        ds = load_dataset("tiny")
        centroids = np.stack(
            [ds.features[ds.labels == c].mean(axis=0) for c in range(ds.num_classes)]
        )
        d = ((ds.features[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        acc = np.mean(np.argmin(d, axis=1) == ds.labels)
        assert acc > 2.0 / ds.num_classes

    def test_permuted_consistency(self):
        ds = load_dataset("tiny")
        part = hash_partition(ds.num_nodes, 4, seed=0)
        new_graph, _, nb = renumber_by_partition(ds.graph, part)
        pd = ds.permuted(nb.old_to_new, new_graph)
        v_old = int(ds.train_nodes[0])
        v_new = int(nb.old_to_new[v_old])
        assert np.array_equal(pd.features[v_new], ds.features[v_old])
        assert pd.labels[v_new] == ds.labels[v_old]
        assert v_new in set(pd.train_nodes)
