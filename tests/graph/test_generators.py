"""Tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import dcsbm_graph, rmat_graph, uniform_graph
from repro.utils import ReproError


class TestRMAT:
    def test_shape(self):
        g = rmat_graph(1000, 5000, rng=0)
        assert g.num_nodes == 1000
        assert 0 < g.num_edges <= 5000  # dedup may remove a few

    def test_deterministic(self):
        a = rmat_graph(500, 2000, rng=7)
        b = rmat_graph(500, 2000, rng=7)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)

    def test_degree_skew(self):
        """RMAT must produce a skewed in-degree distribution."""
        g = rmat_graph(4096, 80_000, rng=1)
        deg = np.sort(g.degrees)[::-1]
        top1pct = deg[: len(deg) // 100].sum()
        assert top1pct > 0.05 * g.num_edges  # top 1% of nodes get >5% of edges
        assert deg[0] > 10 * max(1, np.median(deg))

    def test_invalid_probabilities(self):
        with pytest.raises(ReproError):
            rmat_graph(10, 10, a=0.9, b=0.9, c=0.9)

    def test_invalid_sizes(self):
        with pytest.raises(ReproError):
            rmat_graph(0, 10)


class TestDCSBM:
    def test_communities_returned(self):
        g, comm = dcsbm_graph(2000, 20_000, num_communities=8, rng=0, return_communities=True)
        assert g.num_nodes == 2000
        assert set(np.unique(comm)) == set(range(8))

    def test_homophily(self):
        """Most edges should stay inside a community when intra_prob is high."""
        g, comm = dcsbm_graph(
            2000, 30_000, num_communities=8, intra_prob=0.9, rng=0, return_communities=True
        )
        dst = np.repeat(np.arange(g.num_nodes), g.degrees)
        intra = np.mean(comm[g.indices] == comm[dst])
        assert intra > 0.7

    def test_degree_skew(self):
        g = dcsbm_graph(4000, 60_000, rng=2)
        deg = np.sort(g.degrees)[::-1]
        assert deg[0] > 5 * max(1.0, np.median(deg))

    def test_invalid_args(self):
        with pytest.raises(ReproError):
            dcsbm_graph(100, 100, intra_prob=1.5)
        with pytest.raises(ReproError):
            dcsbm_graph(100, 100, num_communities=0)
        with pytest.raises(ReproError):
            dcsbm_graph(10, 100, num_communities=20)


class TestUniform:
    def test_shape_and_determinism(self):
        a = uniform_graph(100, 500, rng=3)
        b = uniform_graph(100, 500, rng=3)
        assert a.num_nodes == 100
        assert np.array_equal(a.indices, b.indices)

    def test_no_strong_skew(self):
        g = uniform_graph(1000, 50_000, rng=4)
        deg = g.degrees
        assert deg.max() < 5 * deg.mean()
