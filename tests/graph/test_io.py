"""Tests for graph/dataset I/O."""

import numpy as np
import pytest

from repro.core import RunConfig, build_system
from repro.graph import load_dataset, uniform_graph
from repro.graph.datasets import register_dataset
from repro.graph.io import (
    dataset_from_arrays,
    load_edge_list,
    load_graph,
    save_graph,
)
from repro.utils import ConfigError, ReproError


class TestEdgeList:
    def test_basic(self, tmp_path):
        p = tmp_path / "edges.txt"
        p.write_text("# a comment\n0 1\n1 2\n2 0\n")
        g = load_edge_list(p)
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert 0 in g.neighbors(1)

    def test_weighted_csv(self, tmp_path):
        p = tmp_path / "edges.csv"
        p.write_text("0,1,2.5\n1,0,1.0\n")
        g = load_edge_list(p, delimiter=",", weighted=True)
        assert g.edge_weights is not None
        assert g.neighbor_weights(1).tolist() == [2.5]

    def test_explicit_num_nodes(self, tmp_path):
        p = tmp_path / "edges.txt"
        p.write_text("0 1\n")
        assert load_edge_list(p, num_nodes=10).num_nodes == 10

    def test_dedup(self, tmp_path):
        p = tmp_path / "edges.txt"
        p.write_text("0 1\n0 1\n0 1\n")
        assert load_edge_list(p).num_edges == 1

    def test_empty_rejected(self, tmp_path):
        p = tmp_path / "edges.txt"
        p.write_text("# nothing here\n")
        with pytest.raises(Exception):
            load_edge_list(p)

    def test_missing_weight_column(self, tmp_path):
        p = tmp_path / "edges.txt"
        p.write_text("0 1\n")
        with pytest.raises(ReproError):
            load_edge_list(p, weighted=True)


class TestGraphRoundtrip:
    def test_unweighted(self, tmp_path):
        g = uniform_graph(50, 400, rng=0)
        path = tmp_path / "g.npz"
        save_graph(path, g)
        h = load_graph(path)
        assert np.array_equal(g.indptr, h.indptr)
        assert np.array_equal(g.indices, h.indices)
        assert h.edge_weights is None

    def test_weighted(self, tmp_path):
        g = uniform_graph(20, 100, rng=1).with_node_weights(
            np.arange(20, dtype=np.float32)
        )
        path = tmp_path / "g.npz"
        save_graph(path, g)
        h = load_graph(path)
        assert np.array_equal(g.edge_weights, h.edge_weights)


class TestCustomDataset:
    def _make(self, name="custom-io-test"):
        rng = np.random.default_rng(0)
        g = uniform_graph(200, 3000, rng=2)
        labels = rng.integers(0, 3, size=200)
        feats = rng.normal(size=(200, 8)).astype(np.float32)
        return dataset_from_arrays(name, g, feats, labels, seed=1)

    def test_dataset_from_arrays(self):
        ds = self._make()
        assert ds.num_classes == 3
        assert len(set(ds.train_nodes) & set(ds.val_nodes)) == 0

    def test_validation(self):
        g = uniform_graph(10, 50, rng=0)
        with pytest.raises(ReproError):
            dataset_from_arrays("x", g, np.zeros((5, 4)), np.zeros(10))
        with pytest.raises(ReproError):
            dataset_from_arrays("x", g, np.zeros((10, 4)),
                                np.zeros(10) - 1)
        with pytest.raises(ReproError):
            dataset_from_arrays("x", g, np.zeros((10, 4)), np.zeros(10),
                                train_fraction=0.0)

    def test_register_and_train_end_to_end(self):
        """An external dataset runs through the full DSP stack."""
        ds = self._make("custom-e2e")
        register_dataset(ds)
        assert load_dataset("custom-e2e") is ds
        cfg = RunConfig(dataset="custom-e2e", num_gpus=2, hidden_dim=8,
                        batch_size=8, fanout=(4, 3))
        m = build_system("DSP", cfg).run_epoch()
        assert np.isfinite(m.loss)

    def test_register_conflict(self):
        ds = self._make("tiny")  # collides with a built-in
        with pytest.raises(ConfigError):
            register_dataset(ds)
