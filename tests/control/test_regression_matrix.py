"""The pinned regression matrix: controller-on vs static, 14 cells.

Seven core chaos scenarios x two workloads (diurnal cycle, phase-drift
Poisson), all at the pipeline's latency-floor SLO.  The controller must
beat the static configuration in **every** cell, and the per-cell
action accounting is pinned so that a behaviour change in the tuner —
even one that still improves SLO minutes — shows up as a diff here.
"""

import pytest

from repro.control import CORE_SCENARIOS, ControllerConfig, control_matrix
from repro.serve import ServeConfig, WorkloadConfig

from tests.control.conftest import CFG, TIGHT_SLO_S

WORKLOADS = {
    "diurnal": WorkloadConfig(num_requests=128, arrival="diurnal", seed=5),
    "drift": WorkloadConfig(num_requests=128, drift_phases=4, seed=5),
}


@pytest.fixture(scope="module")
def matrix():
    return control_matrix(
        "DSP", CFG, ControllerConfig(),
        scenarios=CORE_SCENARIOS,
        workload_configs=WORKLOADS,
        qps=3000.0,
        serve_config=ServeConfig(slo_s=TIGHT_SLO_S),
        workers=2,
    )


def test_every_cell_strictly_improves(matrix):
    for label, cell in matrix["cells"].items():
        assert cell["improved"], label
        assert cell["static_slo_minutes"] > 0, label
        assert (cell["controller_slo_minutes"]
                < cell["static_slo_minutes"]), label


def test_pinned_summary(matrix):
    s = matrix["summary"]
    assert s["cells"] == 14
    assert s["improved_or_equal"] == 14
    assert s["regressed"] == 0
    assert s["total_actions"] == 58
    assert s["total_static_minutes"] == pytest.approx(0.009, abs=1e-9)
    assert s["total_controller_minutes"] == pytest.approx(
        0.0028666666666666667, abs=1e-9
    )


def test_pinned_per_cell_action_counts(matrix):
    """Every cell does two max-wait cuts and recovers fully; the
    link-flap cells need one extra recovery step because the second
    flap re-trips the burn mid-recovery."""
    for label, cell in matrix["cells"].items():
        expected = ({"max-wait-down": 2, "max-wait-recover": 3}
                    if label.startswith("link-flap")
                    else {"max-wait-down": 2, "max-wait-recover": 2})
        assert cell["action_counts"] == expected, label


def test_cells_cover_the_core_scenarios(matrix):
    labels = set(matrix["cells"])
    assert labels == {f"{sc}/{wl}" for sc in CORE_SCENARIOS
                      for wl in WORKLOADS}
    for cell in matrix["cells"].values():
        if cell["scenario"] != "none":
            assert sum(cell["faults"].values()) >= 1


def test_controller_never_sheds_more_than_static(matrix):
    for label, cell in matrix["cells"].items():
        assert cell["controller_shed"] <= cell["static_shed"], label
