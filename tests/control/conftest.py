"""Shared fixtures for the control-plane conformance suite.

Every test in this package runs on the tiny dataset at the pinned
config below.  The serving pipeline's latency floor there is the batch
max-wait itself (2ms by default), so SLOs at or under that floor put
static serving in the burn regime the controller is built for — the
pinned regression figures in these tests all live in that regime.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core import RunConfig, build_system
from repro.serve import WorkloadConfig, make_workload

#: the pinned config every conformance digest is computed against
CFG = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16, batch_size=8,
                fanout=(5, 3), seed=3)

#: the SLO regime where static serving burns budget (== the default
#: batch max-wait, i.e. the pipeline's latency floor)
TIGHT_SLO_S = 2e-3


def digest(payload) -> str:
    """Canonical sha256 of a JSON-safe payload (sorted keys)."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


@pytest.fixture(scope="module")
def system():
    return build_system("DSP", CFG)


@pytest.fixture(scope="module")
def nodes(system):
    return np.arange(system.base_dataset.num_nodes)


@pytest.fixture(scope="module")
def diurnal(nodes):
    """The pinned diurnal stream: 192 requests, seed 5."""
    return make_workload(
        WorkloadConfig(num_requests=192, arrival="diurnal", seed=5), nodes
    )


@pytest.fixture(scope="module")
def poisson(nodes):
    """A small stationary Poisson stream."""
    return make_workload(WorkloadConfig(num_requests=64, seed=1), nodes)
