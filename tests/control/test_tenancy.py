"""Tenancy: deterministic labelling, quotas, priority shedding."""

import pytest

from repro.control import TenancyConfig, TenantSpec, TenantState
from repro.engine import Simulator
from repro.engine.simulator import Timeout
from repro.serve import ServeConfig
from repro.serve.batcher import AdmissionBatcher, BatcherConfig
from repro.serve.sweep import serve_once
from repro.serve.workload import Request
from repro.utils import ConfigError


class TestSpecs:
    @pytest.mark.parametrize("kwargs", [
        {"name": ""},
        {"name": "a", "priority": -1},
        {"name": "a", "quota": 0.0},
        {"name": "a", "quota": 1.5},
        {"name": "a", "weight": 0.0},
    ])
    def test_bad_spec_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TenantSpec(**kwargs)

    def test_empty_tenancy_rejected(self):
        with pytest.raises(ConfigError):
            TenancyConfig(tenants=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            TenancyConfig(tenants=(TenantSpec("a"), TenantSpec("a")))

    def test_uniform_shape(self):
        t = TenancyConfig.uniform(5, seed=9)
        assert [s.name for s in t.tenants] == ["t0", "t1", "t2", "t3", "t4"]
        assert [s.priority for s in t.tenants] == [0, 1, 2, 0, 1]
        assert all(s.quota == pytest.approx(0.4) for s in t.tenants)
        assert t.max_priority() == 2


class TestAssignment:
    def test_label_is_pure_in_rid(self):
        t = TenancyConfig.uniform(3, seed=7)
        assert all(t.tenant_of(rid) == t.tenant_of(rid)
                   for rid in range(50))

    def test_assign_matches_tenant_of(self):
        t = TenancyConfig.uniform(3, seed=7)
        reqs = [Request(rid=i, node=i, arrival=i * 1e-3)
                for i in range(64)]
        labelled = t.assign(reqs)
        for req in labelled:
            assert req.tenant == t.tenant_of(req.rid).name
            assert req.priority == t.tenant_of(req.rid).priority

    def test_assignment_is_split_independent(self):
        """Labelling a sub-stream gives the same labels the requests
        get in the whole stream — replica splits can't skew tenants."""
        t = TenancyConfig.uniform(4, seed=11)
        reqs = [Request(rid=i, node=i, arrival=i * 1e-3)
                for i in range(40)]
        whole = {r.rid: r.tenant for r in t.assign(reqs)}
        evens = {r.rid: r.tenant for r in t.assign(reqs[::2])}
        rev = {r.rid: r.tenant for r in t.assign(list(reversed(reqs)))}
        assert all(whole[rid] == ten for rid, ten in evens.items())
        assert all(whole[rid] == ten for rid, ten in rev.items())

    def test_weights_skew_the_split(self):
        t = TenancyConfig(tenants=(TenantSpec("big", weight=9.0),
                                   TenantSpec("small", weight=1.0)),
                          seed=3)
        labels = [t.tenant_of(rid).name for rid in range(400)]
        assert labels.count("big") > 300

    def test_quota_slots_floor_at_one(self):
        t = TenancyConfig(tenants=(TenantSpec("a", quota=0.001),
                                   TenantSpec("b")), seed=0)
        state = TenantState(t, queue_capacity=64)
        assert state.quota_slots["a"] == 1
        assert state.quota_slots["b"] == 64
        assert state.pending == {"a": 0, "b": 0}


def batcher_harness(offers, config, tenants=None, pressure=0):
    """Drive one batcher; returns (admitted rids, shed [(rid, reason)])."""
    sim = Simulator()
    b = AdmissionBatcher(sim, 0, config, tenants=tenants)
    if pressure:
        b.apply(pressure=pressure)
    shed = []

    def arrivals():
        for req in offers:
            if req.arrival > sim.now:
                yield Timeout(req.arrival - sim.now)
            if not b.offer(req):
                shed.append((req.rid, b.last_shed_reason))
        b.close()

    admitted = []

    def consumer():
        while True:
            got = yield b.next_batch()
            if got is None:
                return
            admitted.extend(r.rid for r in got)

    sim.spawn(arrivals(), name="arrivals")
    sim.spawn(consumer(), name="consumer")
    sim.run()
    return admitted, shed


class TestShedding:
    def test_pressure_sheds_low_priority(self):
        """Pressure p sheds priority < p and admits priority >= p."""
        reqs = [Request(rid=i, node=i, arrival=0.0, priority=i % 2)
                for i in range(8)]
        admitted, shed = batcher_harness(
            reqs, BatcherConfig(batch_max=8, timeout_s=1e-3), pressure=1
        )
        assert sorted(admitted) == [1, 3, 5, 7]
        assert shed == [(0, "priority"), (2, "priority"),
                        (4, "priority"), (6, "priority")]

    def test_zero_pressure_sheds_nothing_by_priority(self):
        reqs = [Request(rid=i, node=i, arrival=0.0) for i in range(4)]
        admitted, shed = batcher_harness(
            reqs, BatcherConfig(batch_max=8, timeout_s=1e-3)
        )
        assert sorted(admitted) == [0, 1, 2, 3]
        assert shed == []

    def test_quota_sheds_over_limit_tenant(self):
        """A tenant at its slot limit sheds with reason 'quota' while
        other tenants keep admitting."""
        tenancy = TenancyConfig(
            tenants=(TenantSpec("hog", quota=0.05), TenantSpec("ok")),
            seed=0,
        )
        cfg = BatcherConfig(batch_max=64, timeout_s=1.0,
                            queue_capacity=40)
        state = TenantState(tenancy, cfg.queue_capacity)
        assert state.quota_slots["hog"] == 2
        reqs = [Request(rid=i, node=i, arrival=0.0, tenant="hog")
                for i in range(4)]
        reqs += [Request(rid=10 + i, node=i, arrival=0.0, tenant="ok")
                 for i in range(4)]
        admitted, shed = batcher_harness(reqs, cfg, tenants=state)
        assert sorted(admitted) == [0, 1, 10, 11, 12, 13]
        assert shed == [(2, "quota"), (3, "quota")]

    def test_pending_released_when_batch_departs(self):
        """Quota accounting is per-queue occupancy, not a rate limit:
        once a batch departs, the tenant admits again."""
        tenancy = TenancyConfig(
            tenants=(TenantSpec("a", quota=0.05),), seed=0
        )
        cfg = BatcherConfig(batch_max=2, timeout_s=1e-4,
                            queue_capacity=40)
        state = TenantState(tenancy, cfg.queue_capacity)
        reqs = [Request(rid=i, node=i, arrival=i * 1e-2, tenant="a")
                for i in range(6)]
        admitted, shed = batcher_harness(reqs, cfg, tenants=state)
        assert sorted(admitted) == [0, 1, 2, 3, 4, 5]
        assert shed == []
        assert state.pending["a"] == 0


class TestServeIntegration:
    @pytest.fixture(scope="class")
    def tenant_report(self, system, diurnal):
        tenancy = TenancyConfig.uniform(3, seed=0)
        cfg = ServeConfig(tenancy=tenancy, check_invariants=True)
        return serve_once(system, diurnal, 3000.0, cfg)

    def test_summary_present_and_conserving(self, tenant_report, diurnal):
        tenants = tenant_report.tenants
        assert sorted(tenants) == ["t0", "t1", "t2"]
        assert sum(t["offered"] for t in tenants.values()) \
            == len(diurnal.nodes)
        for t in tenants.values():
            assert t["offered"] == t["completed"] + t["shed"]
            assert sum(t["shed_by_reason"].values()) == t["shed"]

    def test_records_carry_tenant_labels(self, tenant_report):
        # build_report orders records by rid; every one is labelled
        assert tenant_report.completed + tenant_report.shed \
            == sum(t["offered"] for t in tenant_report.tenants.values())

    def test_tenancy_alone_does_not_change_latency(self, system, diurnal):
        """Labelling requests (quotas unbinding at this load) leaves
        the served stream itself untouched."""
        plain = serve_once(system, diurnal, 3000.0, ServeConfig())
        ten = serve_once(
            system, diurnal, 3000.0,
            ServeConfig(tenancy=TenancyConfig.uniform(2, seed=0)),
        )
        assert ten.p99 == plain.p99
        assert ten.completed == plain.completed

    def test_summary_priorities_follow_uniform_cycle(self, tenant_report):
        assert [t["priority"] for _, t in
                sorted(tenant_report.tenants.items())] == [0, 1, 2]
